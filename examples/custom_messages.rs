//! Defining your own message types: implement [`Serialisable`] +
//! [`Deserialiser`], pick a `SerId` in the user range, and the middleware
//! carries them over any transport — serialising only when a message
//! actually crosses the wire.
//!
//! ```text
//! cargo run --example custom_messages
//! ```

use std::time::Duration;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use kompics_messaging::prelude::*;

/// A domain message: a sensor reading with a station name.
#[derive(Debug, Clone, PartialEq)]
struct Reading {
    station: String,
    seq: u64,
    celsius: f32,
}

const READING_SER_ID: SerId = SerId(200);

impl Serialisable for Reading {
    fn ser_id(&self) -> SerId {
        READING_SER_ID
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.station.len() + 16)
    }

    fn serialise(&self, buf: &mut BytesMut) -> Result<(), SerError> {
        kompics_messaging::core::ser::put_string(buf, &self.station);
        buf.put_u64(self.seq);
        buf.put_f32(self.celsius);
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl Deserialiser<Reading> for Reading {
    const SER_ID: SerId = READING_SER_ID;

    fn deserialise(buf: &mut Bytes) -> Result<Reading, SerError> {
        let station = kompics_messaging::core::ser::get_string(buf, "Reading.station")?;
        if buf.remaining() < 12 {
            return Err(SerError::Truncated { context: "Reading" });
        }
        Ok(Reading {
            station,
            seq: buf.get_u64(),
            celsius: buf.get_f32(),
        })
    }
}

/// Receives `Reading`s — and ignores everything else, Kompics-style.
struct Collector {
    net: RequiredPort<NetworkPort>,
    registry: SerRegistry,
    readings: Vec<Reading>,
}

impl Collector {
    fn new() -> Self {
        let mut registry = SerRegistry::new();
        registry.register::<Reading, Reading>();
        registry.register::<String, String>();
        Collector {
            net: RequiredPort::new(),
            registry,
            readings: Vec::new(),
        }
    }
}

impl ComponentDefinition for Collector {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        kompics_messaging::component::execute_ports!(self, ctx, max, [required net: NetworkPort])
    }
}

impl Require<NetworkPort> for Collector {
    fn handle(&mut self, _ctx: &mut ComponentContext, ev: NetIndication) {
        let NetIndication::Msg(msg) = ev else { return };
        // Dispatch by SerId through the registry: no static knowledge of
        // which type arrives first.
        if msg.ser_id() == READING_SER_ID {
            let reading = msg
                .try_deserialise::<Reading, Reading>()
                .expect("registered reading");
            println!(
                "  [{}] #{:<3} {:>6.2} °C  (via {}, from wire: {})",
                reading.station,
                reading.seq,
                reading.celsius,
                msg.header().protocol(),
                msg.is_from_wire()
            );
            self.readings.push(reading);
        } else if self.registry.contains(msg.ser_id()) {
            println!("  (other registered message: {:?})", msg.ser_id());
        }
    }
}

impl RequireRef<NetworkPort> for Collector {
    fn required_port(&mut self) -> &mut RequiredPort<NetworkPort> {
        &mut self.net
    }
}

fn main() {
    let world = two_host_world(8, &Setup::EuVpc);
    let a = NetAddress::new(world.host_a, 7000);
    let b = NetAddress::new(world.host_b, 7000);
    let net_a = create_network(&world.system, &world.net, NetworkConfig::new(a)).expect("bind");
    let net_b = create_network(&world.system, &world.net, NetworkConfig::new(b)).expect("bind");
    let collector = world.system.create(Collector::new);
    world.system.connect::<NetworkPort, _, _>(&net_b, &collector);
    world.system.start(&net_a);
    world.system.start(&net_b);
    world.system.start(&collector);

    // Send a handful of readings, alternating transports per message.
    println!("sending sensor readings (alternating transports):");
    let sender = world.system.create(Collector::new);
    world.system.connect::<NetworkPort, _, _>(&net_a, &sender);
    world.system.start(&sender);
    sender.on_definition(|s| {
        for seq in 0..6u64 {
            let proto = if seq % 2 == 0 { Transport::Tcp } else { Transport::Udt };
            s.net.trigger(NetRequest::Msg(NetMessage::new(
                a,
                b,
                proto,
                Reading {
                    station: "CAM5-STHLM".to_string(),
                    seq,
                    celsius: 18.5 + seq as f32 * 0.25,
                },
            )));
        }
    });
    world.sim.run_for(Duration::from_secs(1));
    let n = collector.on_definition(|c| c.readings.len());
    println!("\ncollector holds {n} readings — all content round-tripped through the wire format");
    assert_eq!(n, 6);
}
