//! The adaptive `DATA` meta-protocol in action: a stream starts with no
//! knowledge of the path, and the TD(λ) learner shifts it towards the
//! better transport while it runs (the paper's §IV machinery end-to-end).
//!
//! ```text
//! cargo run --release --example adaptive_streaming
//! ```

use kompics_messaging::prelude::*;

fn main() {
    // EU2AU: 320 ms RTT with light loss — TCP collapses, UDT is capped
    // near the 10 MB/s UDP policer, so the learner should drive the ratio
    // towards UDT (+1).
    let dataset = Dataset::climate(48 * 1024 * 1024, 3);
    let cfg = ExperimentConfig::transfer(Setup::Eu2Au, Transport::Data, dataset, 11);
    println!("adaptive DATA stream on {} ({} ms RTT):\n",
        cfg.setup.label(), cfg.setup.rtt().as_millis());
    let result = run_experiment(&cfg);
    assert!(result.verified, "content must verify");

    println!("{:>6} {:>14} {:>9} {:>9}", "t", "throughput", "target", "achieved");
    for p in &result.flow_points {
        println!(
            "{:>5.0}s {:>11.2} MB/s {:>+9.2} {:>+9.2}",
            p.time.as_secs_f64(),
            p.throughput / 1e6,
            p.target_ratio,
            p.achieved_ratio,
        );
    }
    let thr = result.throughput.expect("completed");
    println!(
        "\ntransfer finished in {:.1} s at {:.2} MB/s overall",
        result.transfer_time.expect("completed").as_secs_f64(),
        thr / 1e6
    );
    let last = result.flow_points.last().expect("episodes ran");
    println!(
        "final target ratio {:+.2} (-1 = all TCP, +1 = all UDT)",
        last.target_ratio
    );
}
