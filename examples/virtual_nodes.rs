//! Virtual nodes (§III-B): several addressable component subtrees share
//! one network component; same-host messages are reflected without ever
//! being serialised.
//!
//! ```text
//! cargo run --example virtual_nodes
//! ```

use std::time::Duration;

use kompics_messaging::prelude::*;

/// A vnode worker: replies to every greeting it receives and records
/// whether messages actually crossed the wire.
struct Worker {
    net: RequiredPort<NetworkPort>,
    me: NetAddress,
    greeted: u64,
}

impl Worker {
    fn new(me: NetAddress) -> Self {
        Worker {
            net: RequiredPort::new(),
            me,
            greeted: 0,
        }
    }
}

impl ComponentDefinition for Worker {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        kompics_messaging::component::execute_ports!(self, ctx, max, [required net: NetworkPort])
    }
}

impl Require<NetworkPort> for Worker {
    fn handle(&mut self, _ctx: &mut ComponentContext, ev: NetIndication) {
        if let NetIndication::Msg(msg) = ev {
            let text = msg
                .try_deserialise::<String, String>()
                .unwrap_or_default();
            println!(
                "  vnode {:?} got {:?} (crossed the wire: {})",
                self.me.vnode().expect("vnode address").0,
                text,
                msg.is_from_wire()
            );
            self.greeted += 1;
            if text.starts_with("hello") {
                self.net.trigger(NetRequest::Msg(NetMessage::new(
                    self.me,
                    *msg.header().source(),
                    Transport::Tcp,
                    format!("ack from vnode {}", self.me.vnode().expect("vnode").0),
                )));
            }
        }
    }
}

impl RequireRef<NetworkPort> for Worker {
    fn required_port(&mut self) -> &mut RequiredPort<NetworkPort> {
        &mut self.net
    }
}

fn main() {
    let world = two_host_world(1, &Setup::EuVpc);
    let host = NetAddress::new(world.host_a, 9000);
    let network = create_network(&world.system, &world.net, NetworkConfig::new(host))
        .expect("bind");
    let stats = network.on_definition(|n| n.stats());

    // Three vnodes behind ONE socket, routed by channel selectors.
    let v1 = world.system.create(|| Worker::new(host.with_vnode(VnodeId(1))));
    let v2 = world.system.create(|| Worker::new(host.with_vnode(VnodeId(2))));
    let v3 = world.system.create(|| Worker::new(host.with_vnode(VnodeId(3))));
    connect_vnode(&world.system, &network, &v1, VnodeId(1));
    connect_vnode(&world.system, &network, &v2, VnodeId(2));
    connect_vnode(&world.system, &network, &v3, VnodeId(3));

    world.system.start(&network);
    for v in [&v1, &v2, &v3] {
        world.system.start(v);
    }

    // v1 greets its same-host siblings: delivered by reflection, never
    // serialised.
    println!("vnode 1 greets vnodes 2 and 3 on the same host:");
    v1.on_definition(|w| {
        for target in [VnodeId(2), VnodeId(3)] {
            w.net.trigger(NetRequest::Msg(NetMessage::new(
                w.me,
                host.with_vnode(target),
                Transport::Tcp,
                format!("hello vnode {}", target.0),
            )));
        }
    });
    world.sim.run_for(Duration::from_secs(1));

    let s = stats.lock();
    println!("\nlocal reflections: {}", s.local_reflections);
    println!("messages serialised onto the wire: {}", s.total_sent());
    assert_eq!(s.total_sent(), 0, "same-host vnode traffic stays off the wire");
}
