//! Bulk file transfer across the paper's four EC2 setups, comparing TCP
//! and UDT — a miniature of the paper's Figure 9 experiment.
//!
//! ```text
//! cargo run --release --example file_transfer
//! ```

use kompics_messaging::prelude::*;

fn main() {
    // A 24 MB climate-like dataset keeps the example fast; the bench
    // binaries run the full 395 MB.
    let dataset = Dataset::climate(24 * 1024 * 1024, 7);

    println!("transferring {} MB, disk-to-disk:\n", dataset.size / (1024 * 1024));
    println!("{:<8} {:>10} {:>14} {:>14}", "setup", "RTT", "TCP", "UDT");
    for setup in Setup::paper_setups() {
        let mut row = format!(
            "{:<8} {:>7.0} ms",
            setup.label(),
            setup.rtt().as_secs_f64() * 1e3
        );
        for transport in [Transport::Tcp, Transport::Udt] {
            let cfg = ExperimentConfig::transfer(setup.clone(), transport, dataset, 1);
            let result = run_experiment(&cfg);
            assert!(result.verified, "transfer must verify");
            match result.throughput {
                Some(thr) => row.push_str(&format!(" {:>9.2} MB/s", thr / 1e6)),
                None => row.push_str(&format!("{:>14}", "timed out")),
            }
        }
        println!("{row}");
    }
    println!("\nTCP wins on short paths; UDT holds ~10 MB/s regardless of RTT.");
}
