//! The paper's motivating scenario (§I): a data-analytics pipeline à la
//! Spark/Flink that must move bulk shuffle data between sites *while*
//! keeping low-latency control over the running tasks.
//!
//! A "driver" on the EU host exchanges heartbeat control messages with a
//! "worker" in Sydney while a large shuffle runs in parallel. Run twice:
//! once with the shuffle over plain TCP (control starves behind data),
//! once over the adaptive `DATA` meta-protocol (control interleaves).
//!
//! ```text
//! cargo run --release --example stream_pipeline
//! ```

use std::time::Duration;

use kompics_messaging::prelude::*;

fn run(shuffle_transport: Transport) -> (f64, f64, f64) {
    let shuffle = Dataset::climate(64 * 1024 * 1024, 7);
    let mut cfg = ExperimentConfig::transfer(Setup::Eu2Au, shuffle_transport, shuffle, 21);
    cfg.ping = Some(PingSettings {
        transport: Transport::Tcp,
        interval: Duration::from_millis(200),
    });
    cfg.max_sim_time = Duration::from_secs(400);
    let result = run_experiment(&cfg);
    let ping = result.ping.expect("heartbeats ran");
    let mean_hb = ping.mean().expect("heartbeat RTTs").as_secs_f64() * 1e3;
    let p_max = ping
        .rtts
        .iter()
        .map(std::time::Duration::as_secs_f64)
        .fold(0.0f64, f64::max)
        * 1e3;
    let thr = result.throughput.map_or(0.0, |t| t / 1e6);
    (thr, mean_hb, p_max)
}

fn main() {
    println!("Streaming pipeline on EU ↔ Sydney (320 ms RTT): 64 MB shuffle + heartbeats\n");
    println!(
        "{:<22} {:>16} {:>18} {:>16}",
        "shuffle transport", "shuffle MB/s", "heartbeat mean", "heartbeat max"
    );
    for transport in [Transport::Tcp, Transport::Data] {
        let (thr, mean_hb, max_hb) = run(transport);
        println!(
            "{:<22} {:>13.2}    {:>12.0} ms {:>13.0} ms",
            transport.to_string(),
            thr,
            mean_hb,
            max_hb
        );
    }
    println!(
        "\nWith the shuffle on plain TCP the heartbeats share its channel and\n\
         queue behind megabytes of data. The DATA meta-protocol keeps\n\
         transport queues shallow, so control stays responsive; and on long\n\
         runs, once TCP's fresh-connection honeymoon decays to its ~1 MB/s\n\
         AIMD equilibrium, DATA's learner also wins on bulk throughput\n\
         (see fig9)."
    );
}
