//! Multi-hop forwarding with `RoutingHeader` (paper listing 5): a message
//! travels a → b → c, each hop chosen explicitly, while the final receiver
//! still sees the original sender and can reply directly.
//!
//! ```text
//! cargo run --example multi_hop
//! ```

use std::time::Duration;

use kompics_messaging::prelude::*;

struct Replier {
    net: RequiredPort<NetworkPort>,
    me: NetAddress,
}

impl ComponentDefinition for Replier {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        kompics_messaging::component::execute_ports!(self, ctx, max, [required net: NetworkPort])
    }
}

impl Require<NetworkPort> for Replier {
    fn handle(&mut self, ctx: &mut ComponentContext, ev: NetIndication) {
        if let NetIndication::Msg(msg) = ev {
            let text = msg.try_deserialise::<String, String>().unwrap_or_default();
            println!(
                "[t={}] {} received {:?} (source: {})",
                ctx.now(),
                self.me,
                text,
                msg.header().source()
            );
            if text.starts_with("request") {
                // Reply DIRECTLY to the original source — no hops needed.
                self.net.trigger(NetRequest::Msg(NetMessage::new(
                    self.me,
                    *msg.header().source(),
                    Transport::Tcp,
                    "response (direct)".to_string(),
                )));
            }
        }
    }
}

impl RequireRef<NetworkPort> for Replier {
    fn required_port(&mut self) -> &mut RequiredPort<NetworkPort> {
        &mut self.net
    }
}

fn main() {
    // Three hosts in a line: a -- b -- c (no direct a--c route).
    let sim = Sim::new(5);
    let net = Network::new(&sim);
    let system = ComponentSystem::simulation(&sim, SystemConfig::default());
    let link = || LinkConfig::new(50e6, Duration::from_millis(10));
    let a = net.add_node("a");
    let b = net.add_node("b");
    let c = net.add_node("c");
    net.connect_duplex(a, b, link());
    net.connect_duplex(b, c, link());
    // A direct a<->c path exists (for the direct reply), but the request
    // is explicitly routed through b via its RoutingHeader.
    net.connect_duplex(a, c, link());

    let addr = |node| NetAddress::new(node, 7000);
    let mut stacks = Vec::new();
    for node in [a, b, c] {
        let stack = create_network(&system, &net, NetworkConfig::new(addr(node))).expect("bind");
        system.start(&stack);
        stacks.push(stack);
    }
    let replier = system.create(|| Replier {
        net: RequiredPort::new(),
        me: addr(c),
    });
    system.connect::<NetworkPort, _, _>(&stacks[2], &replier);
    let observer = system.create(|| Replier {
        net: RequiredPort::new(),
        me: addr(a),
    });
    system.connect::<NetworkPort, _, _>(&stacks[0], &observer);
    system.start(&replier);
    system.start(&observer);

    // Send a -> c via b, using an explicit route.
    let header = NetHeader::Routing(RoutingHeader::with_route(
        BasicHeader::new(addr(a), addr(c), Transport::Tcp),
        vec![addr(b)],
    ));
    observer.on_definition(|o| {
        o.net.trigger(NetRequest::Msg(NetMessage::with_header(
            header,
            "request through b".to_string(),
        )));
    });
    sim.run_for(Duration::from_secs(2));

    let forwarded = stacks[1].on_definition(|n| n.stats()).lock().forwarded;
    println!("\nhost b forwarded {forwarded} message(s) without delivering them");
    assert_eq!(forwarded, 1);
}
