//! Quickstart: two hosts, one message per transport, visible middleware
//! stats.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use kompics_messaging::prelude::*;

/// Minimal receiving component: prints whatever arrives.
struct Printer {
    net: RequiredPort<NetworkPort>,
    label: &'static str,
}

impl ComponentDefinition for Printer {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        kompics_messaging::component::execute_ports!(self, ctx, max, [required net: NetworkPort])
    }
}

impl Require<NetworkPort> for Printer {
    fn handle(&mut self, ctx: &mut ComponentContext, ev: NetIndication) {
        if let NetIndication::Msg(msg) = ev {
            let text = msg
                .try_deserialise::<String, String>()
                .unwrap_or_else(|_| "<non-string payload>".into());
            println!(
                "[{} t={}] {:>4} message from {}: {text:?}",
                self.label,
                ctx.now(),
                msg.header().protocol().to_string(),
                msg.header().source(),
            );
        }
    }
}

impl RequireRef<NetworkPort> for Printer {
    fn required_port(&mut self) -> &mut RequiredPort<NetworkPort> {
        &mut self.net
    }
}

/// Sending component: one message per transport on start.
struct Greeter {
    net: RequiredPort<NetworkPort>,
    src: NetAddress,
    dst: NetAddress,
}

impl ComponentDefinition for Greeter {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        kompics_messaging::component::execute_ports!(self, ctx, max, [required net: NetworkPort])
    }

    fn handle_control(&mut self, _ctx: &mut ComponentContext, event: ControlEvent) {
        if event == ControlEvent::Start {
            for proto in [Transport::Udp, Transport::Tcp, Transport::Udt] {
                self.net.trigger(NetRequest::Msg(NetMessage::new(
                    self.src,
                    self.dst,
                    proto,
                    format!("hello via {proto}"),
                )));
            }
        }
    }
}

impl Require<NetworkPort> for Greeter {
    fn handle(&mut self, _ctx: &mut ComponentContext, _ev: NetIndication) {}
}

impl RequireRef<NetworkPort> for Greeter {
    fn required_port(&mut self) -> &mut RequiredPort<NetworkPort> {
        &mut self.net
    }
}

fn main() {
    // A deterministic world: two hosts in the paper's EU-VPC setup.
    let world = two_host_world(42, &Setup::EuVpc);
    let addr_a = NetAddress::new(world.host_a, 7000);
    let addr_b = NetAddress::new(world.host_b, 7000);

    let net_a = create_network(&world.system, &world.net, NetworkConfig::new(addr_a))
        .expect("bind host A");
    let net_b = create_network(&world.system, &world.net, NetworkConfig::new(addr_b))
        .expect("bind host B");

    let greeter = world.system.create(|| Greeter {
        net: RequiredPort::new(),
        src: addr_a,
        dst: addr_b,
    });
    let printer = world.system.create(|| Printer {
        net: RequiredPort::new(),
        label: "host-b",
    });
    world.system.connect::<NetworkPort, _, _>(&net_a, &greeter);
    world.system.connect::<NetworkPort, _, _>(&net_b, &printer);

    world.system.start(&net_a);
    world.system.start(&net_b);
    world.system.start(&printer);
    world.system.start(&greeter);

    // One virtual second is plenty for three messages over a 3 ms link.
    world.sim.run_for(Duration::from_secs(1));

    let stats = net_a.on_definition(|n| n.stats());
    let stats = stats.lock();
    println!("\nhost-a middleware stats:");
    println!("  messages sent:   {} (per transport UDP/TCP/UDT/DATA: {:?})", stats.total_sent(), stats.sent);
    println!("  bytes on wire:   {}", stats.bytes_out);
    println!("  channels opened: {}", stats.channels_opened);
}
