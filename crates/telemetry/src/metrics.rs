//! Low-overhead metric instruments: counters, gauges and log-linear
//! histograms.
//!
//! Instruments are cheap cloneable handles around atomics. Every mutation
//! first checks the owning recorder's `enabled` flag with one relaxed
//! atomic load, so a disabled recorder reduces each instrumented call site
//! to a load-and-branch — the property the engine overhead-guard bench
//! pins down.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter {
    pub(crate) enabled: Arc<AtomicBool>,
    pub(crate) cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` to the counter (no-op while the recorder is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one (no-op while the recorder is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug, Clone)]
pub struct Gauge {
    pub(crate) enabled: Arc<AtomicBool>,
    pub(crate) cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge (no-op while the recorder is disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 until first set).
    #[must_use]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

/// Values below this threshold get their own exact bucket.
const LINEAR_MAX: u64 = 16;
/// Sub-buckets per power of two above the linear range.
const SUB: usize = 16;
/// Total bucket count covering the full `u64` range.
const BUCKETS: usize = LINEAR_MAX as usize + 60 * SUB;

/// Shared storage behind [`Histogram`] handles.
pub(crate) struct HistogramCells {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCells {
    pub(crate) fn new() -> Self {
        HistogramCells {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for HistogramCells {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramCells")
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish()
    }
}

/// Bucket index for a value: exact below [`LINEAR_MAX`], then 16 linear
/// sub-buckets per power of two (log-linear, HdrHistogram-style).
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (msb - 4)) & 0xF) as usize;
        LINEAR_MAX as usize + (msb - 4) * SUB + sub
    }
}

/// Lowest value that lands in bucket `i` (inverse of [`bucket_index`]).
fn bucket_floor(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        i as u64
    } else {
        let oct = (i - LINEAR_MAX as usize) / SUB + 4;
        let sub = ((i - LINEAR_MAX as usize) % SUB) as u64;
        (LINEAR_MAX + sub) << (oct - 4)
    }
}

/// Point-in-time view of a histogram, with approximate percentiles
/// (resolved to the floor of the containing log-linear bucket, i.e. within
/// ~6.25% of the true value).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
}

/// A log-linear histogram of `u64` samples (16 sub-buckets per power of
/// two), with exact count/sum/min/max.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub(crate) enabled: Arc<AtomicBool>,
    pub(crate) cells: Arc<HistogramCells>,
}

impl Histogram {
    /// Records one sample (no-op while the recorder is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let c = &self.cells;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Takes a consistent-enough snapshot for reporting. (Individual cells
    /// are read independently; in the single-threaded simulator the view
    /// is exact.)
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.cells;
        let count = c.count.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramSnapshot {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p90: 0,
                p99: 0,
            };
        }
        let percentile = |p: f64| -> u64 {
            let rank = ((p * count as f64).ceil() as u64).max(1);
            let mut seen = 0u64;
            for (i, b) in c.buckets.iter().enumerate() {
                seen += b.load(Ordering::Relaxed);
                if seen >= rank {
                    return bucket_floor(i);
                }
            }
            c.max.load(Ordering::Relaxed)
        };
        HistogramSnapshot {
            count,
            sum: c.sum.load(Ordering::Relaxed),
            min: c.min.load(Ordering::Relaxed),
            max: c.max.load(Ordering::Relaxed),
            p50: percentile(0.50),
            p90: percentile(0.90),
            p99: percentile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_floor() {
        for v in [0u64, 1, 15, 16, 17, 31, 32, 100, 1023, 1024, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            let floor = bucket_floor(i);
            assert!(floor <= v, "floor({i}) = {floor} > {v}");
            // Next bucket starts above v.
            if i + 1 < BUCKETS {
                assert!(bucket_floor(i + 1) > v, "v {v} not below next bucket");
            }
        }
    }

    #[test]
    fn histogram_percentiles_are_bucket_floors() {
        let enabled = Arc::new(AtomicBool::new(true));
        let h = Histogram {
            enabled,
            cells: Arc::new(HistogramCells::new()),
        };
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 500_500);
        // log-linear resolution: within one sub-bucket (6.25%) below truth
        assert!(s.p50 <= 500 && s.p50 >= 468, "p50 = {}", s.p50);
        assert!(s.p90 <= 900 && s.p90 >= 843, "p90 = {}", s.p90);
        assert!(s.p99 <= 990 && s.p99 >= 927, "p99 = {}", s.p99);
    }

    #[test]
    fn disabled_instruments_are_noops() {
        let enabled = Arc::new(AtomicBool::new(false));
        let c = Counter {
            enabled: enabled.clone(),
            cell: Arc::new(AtomicU64::new(0)),
        };
        let g = Gauge {
            enabled: enabled.clone(),
            cell: Arc::new(AtomicU64::new(0)),
        };
        let h = Histogram {
            enabled,
            cells: Arc::new(HistogramCells::new()),
        };
        c.inc();
        g.set(3.5);
        h.record(9);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0.0);
        assert_eq!(h.count(), 0);
    }
}
