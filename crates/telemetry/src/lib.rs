//! # kmsg-telemetry — deterministic sim-time telemetry
//!
//! Observability substrate for the KompicsMessaging reproduction: a
//! metrics registry (counters, gauges, log-linear histograms), a **flight
//! recorder** capturing structured protocol events to a bounded in-memory
//! ring, JSON/JSONL exporters, and leveled logging for binaries.
//!
//! Three properties drive the design:
//!
//! * **Near-zero cost when off.** A [`Recorder`] starts disabled; every
//!   instrument and [`Recorder::record`] call first checks one shared
//!   atomic flag, so instrumented hot paths pay a relaxed load and a
//!   predictable branch until someone calls [`Recorder::enable`]. Call
//!   sites whose event payload is expensive to build (formatting,
//!   sampling a queue) use [`Recorder::record_with`], which defers the
//!   construction behind the same check.
//! * **Mutex-free recording.** The flight-recorder ring is a
//!   *single-writer* structure: each simulated world owns exactly one
//!   recording thread, so [`Recorder::record`] claims the ring with one
//!   atomic flag (a single uncontended compare-exchange — no `Mutex`, no
//!   parking, no poisoning) and appends. Cross-thread export
//!   ([`Recorder::events`], [`Recorder::to_jsonl`], …) takes the same
//!   claim, so concurrent readers are safe; they simply spin for the
//!   duration of one append in the worst case. This is what lets a
//!   parallel sweep run many worlds — each with its own recorder — with
//!   zero shared lock traffic on the per-event path.
//! * **Determinism.** Timestamps are caller-supplied virtual-clock
//!   nanoseconds — never the wall clock — and exporters iterate sorted
//!   maps with fixed key orders, so the same seed yields byte-identical
//!   `telemetry.json` / JSONL output across runs.
//!
//! ```
//! use kmsg_telemetry::{EventKind, Recorder};
//!
//! let rec = Recorder::new();
//! rec.record(0, EventKind::Mark { id: 1, value: 7 }); // no-op: disabled
//! rec.enable();
//! rec.counter("packets_sent").inc();
//! rec.record(1_000, EventKind::Mark { id: 1, value: 8 });
//! assert_eq!(rec.event_count(), 1);
//! let jsonl = rec.to_jsonl();
//! assert_eq!(jsonl, "{\"t\":1000,\"kind\":\"mark\",\"id\":1,\"value\":8}\n");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod critical_path;
pub mod event;
pub mod export;
pub mod log;
pub mod metrics;
pub mod trace;

use std::cell::UnsafeCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub use event::{Event, EventKind, KIND_COUNT, KIND_LABELS};
pub use log::Level;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use trace::{SpanId, SpanKind, Tracer};

use export::{push_event_json, push_json_f64, push_json_str};
use metrics::HistogramCells;

/// Default flight-recorder capacity (events retained before the oldest are
/// evicted).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

struct Ring {
    buf: VecDeque<Event>,
    cap: usize,
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<HistogramCells>>,
}

struct RecorderInner {
    enabled: Arc<AtomicBool>,
    recorded: AtomicU64,
    evicted: AtomicU64,
    /// Ring-full drops tallied per [`EventKind::index`] — truncated runs
    /// stay self-describing (which kinds the lost events were).
    evicted_by_kind: [AtomicU64; event::KIND_COUNT],
    /// Next causal-span sequence number (see [`trace`]). Relaxed
    /// `fetch_add`: with one writer per world (the same invariant the
    /// ring relies on) allocation order — and therefore every span id —
    /// is deterministic per seed.
    next_span: AtomicU64,
    /// Claim flag for `ring`: `true` while some thread holds the ring.
    /// The record hot path takes this with a single compare-exchange —
    /// with one writer per world (the invariant every simulation upholds)
    /// the claim is always uncontended, so recording never parks, never
    /// touches a `Mutex` and never risks poisoning.
    ring_claim: AtomicBool,
    /// The flight-recorder ring, guarded exclusively by `ring_claim`.
    ring: UnsafeCell<Ring>,
    registry: Mutex<Registry>,
}

// SAFETY: `ring` is only ever touched through `RingGuard`, which takes
// `ring_claim` via an acquire compare-exchange and releases it on drop, so
// access to the `UnsafeCell` contents is mutually exclusive and properly
// synchronised (acquire on claim, release on release).
unsafe impl Sync for RecorderInner {}

/// Exclusive access to the ring, released on drop.
struct RingGuard<'a> {
    inner: &'a RecorderInner,
}

impl RecorderInner {
    /// Claims the ring. One CAS in the uncontended single-writer case;
    /// spins (without parking) if an exporter briefly holds it.
    #[inline]
    fn claim(&self) -> RingGuard<'_> {
        loop {
            if self
                .ring_claim
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return RingGuard { inner: self };
            }
            std::hint::spin_loop();
        }
    }
}

impl RingGuard<'_> {
    #[inline]
    #[allow(clippy::mut_from_ref)]
    fn ring(&mut self) -> &mut Ring {
        // SAFETY: the claim flag grants exclusive access (see `claim`),
        // and the returned borrow is tied to `&mut self`, so it cannot
        // outlive or alias another guard access.
        unsafe { &mut *self.inner.ring.get() }
    }
}

impl Drop for RingGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        self.inner.ring_claim.store(false, Ordering::Release);
    }
}

/// Handle to a telemetry recorder: metrics registry + flight-recorder
/// ring.
///
/// Cloning is cheap and every clone shares the same state, so a recorder
/// can be threaded through all layers of a simulation and enabled once,
/// from anywhere. Recorders start **disabled**: all recording calls are
/// no-ops (one relaxed atomic load) until [`Recorder::enable`].
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .field("events", &self.event_count())
            .finish()
    }
}

impl Recorder {
    /// A disabled recorder with the [`DEFAULT_RING_CAPACITY`].
    #[must_use]
    pub fn new() -> Self {
        Recorder::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A disabled recorder retaining at most `capacity` flight-recorder
    /// events (oldest evicted first).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            inner: Arc::new(RecorderInner {
                enabled: Arc::new(AtomicBool::new(false)),
                recorded: AtomicU64::new(0),
                evicted: AtomicU64::new(0),
                evicted_by_kind: std::array::from_fn(|_| AtomicU64::new(0)),
                next_span: AtomicU64::new(1),
                ring_claim: AtomicBool::new(false),
                ring: UnsafeCell::new(Ring {
                    buf: VecDeque::with_capacity(capacity.min(1024)),
                    cap: capacity.max(1),
                }),
                registry: Mutex::new(Registry::default()),
            }),
        }
    }

    /// Whether recording is currently on.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on for this recorder and every clone of it.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off again.
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Records a flight-recorder event at virtual time `time_ns`
    /// (nanoseconds). No-op while disabled.
    ///
    /// The fast path never takes a `Mutex`: one relaxed load for the
    /// enabled check, then a single uncontended compare-exchange to claim
    /// the single-writer ring (see the module docs).
    #[inline]
    pub fn record(&self, time_ns: u64, kind: EventKind) {
        if !self.is_enabled() {
            return;
        }
        self.push(Event { time_ns, kind });
    }

    /// Records an event whose payload is only built if the recorder is
    /// enabled.
    ///
    /// Use this at call sites where constructing the [`EventKind`]
    /// allocates or computes (formatting endpoints, sampling a queue):
    /// `record` evaluates its argument before the enabled check, whereas
    /// this defers it behind the check entirely.
    #[inline]
    pub fn record_with<F: FnOnce() -> EventKind>(&self, time_ns: u64, kind: F) {
        if !self.is_enabled() {
            return;
        }
        self.push(Event {
            time_ns,
            kind: kind(),
        });
    }

    fn push(&self, ev: Event) {
        self.inner.recorded.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.inner.claim();
        let ring = guard.ring();
        if ring.buf.len() == ring.cap {
            if let Some(old) = ring.buf.pop_front() {
                self.inner.evicted_by_kind[old.kind.index()].fetch_add(1, Ordering::Relaxed);
            }
            self.inner.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.buf.push_back(ev);
    }

    /// Allocates the next causal-span sequence number (a per-recorder
    /// monotone counter starting at 1 — see [`trace::SpanId`]).
    #[inline]
    pub(crate) fn next_span_seq(&self) -> u64 {
        self.inner.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Events currently retained in the ring, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let mut guard = self.inner.claim();
        guard.ring().buf.iter().cloned().collect()
    }

    /// Visits every retained event in order, oldest first, without
    /// cloning the ring.
    ///
    /// This is the typed iteration path for trace consumers (the invariant
    /// oracles in `kmsg-oracle`): they match on [`EventKind`] directly
    /// instead of re-parsing the JSONL export.
    pub fn for_each_event<F: FnMut(&Event)>(&self, mut f: F) {
        let mut guard = self.inner.claim();
        for ev in &guard.ring().buf {
            f(ev);
        }
    }

    /// Runs `f` over the retained events as contiguous slices (oldest
    /// first) and returns its result. Zero-copy companion to
    /// [`Recorder::events`] for consumers that want to fold the stream.
    pub fn with_events<R, F: FnOnce(&[Event], &[Event]) -> R>(&self, f: F) -> R {
        let mut guard = self.inner.claim();
        let (a, b) = guard.ring().buf.as_slices();
        f(a, b)
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.inner.claim().ring().buf.len()
    }

    /// Total events recorded since creation (including evicted ones).
    #[must_use]
    pub fn recorded_total(&self) -> u64 {
        self.inner.recorded.load(Ordering::Relaxed)
    }

    /// Events evicted from the ring because it was full.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.inner.evicted.load(Ordering::Relaxed)
    }

    /// Ring-full drops per event kind: `(label, count)` for every kind
    /// that lost at least one event, sorted by label (the same order the
    /// snapshot's `by_kind` section uses).
    #[must_use]
    pub fn evicted_by_kind(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = self
            .inner
            .evicted_by_kind
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then(|| (event::KIND_LABELS[i], n))
            })
            .collect();
        out.sort_by_key(|(label, _)| *label);
        out
    }

    /// Publishes the per-kind eviction tally as `recorder/dropped/<kind>`
    /// gauges (only kinds that actually lost events), so a truncated run's
    /// metrics snapshot says *what* the ring dropped, not just how much.
    pub fn publish_overflow_gauges(&self) {
        for (label, n) in self.evicted_by_kind() {
            self.gauge(&format!("recorder/dropped/{label}")).set(n as f64);
        }
    }

    /// A span tracer bound to this recorder (cheap, cloneable).
    #[must_use]
    pub fn tracer(&self) -> Tracer {
        Tracer::new(self.clone())
    }

    /// Drops all retained events (counters and metrics are kept).
    pub fn clear_events(&self) {
        self.inner.claim().ring().buf.clear();
    }

    /// Resizes the flight-recorder ring. Long chaos runs overflow the
    /// default capacity and evict the early supervision events; raise it
    /// before the run when the whole stream matters.
    ///
    /// Shrinking evicts the oldest retained events immediately and leaves
    /// a synthetic [`EventKind::Overflow`] marker in their place, stamped
    /// with the oldest surviving timestamp, so trace consumers can tell a
    /// truncated stream from a complete one.
    pub fn set_capacity(&self, capacity: usize) {
        let mut guard = self.inner.claim();
        let ring = guard.ring();
        ring.cap = capacity.max(1);
        if ring.buf.len() <= ring.cap {
            return;
        }
        // One extra eviction buys the slot the marker itself occupies, so
        // the ring still honours the new capacity afterwards.
        let evict = ring.buf.len() - ring.cap + 1;
        for _ in 0..evict {
            if let Some(old) = ring.buf.pop_front() {
                self.inner.evicted_by_kind[old.kind.index()].fetch_add(1, Ordering::Relaxed);
            }
        }
        self.inner.evicted.fetch_add(evict as u64, Ordering::Relaxed);
        let time_ns = ring.buf.front().map_or(0, |e| e.time_ns);
        ring.buf.push_front(Event {
            time_ns,
            kind: EventKind::Overflow {
                evicted: evict as u64,
            },
        });
    }

    /// Registers (or fetches) the counter `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut reg = self.inner.registry.lock().expect("telemetry registry poisoned");
        let cell = reg
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter {
            enabled: self.inner.enabled.clone(),
            cell,
        }
    }

    /// Registers (or fetches) the gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut reg = self.inner.registry.lock().expect("telemetry registry poisoned");
        let cell = reg
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Gauge {
            enabled: self.inner.enabled.clone(),
            cell,
        }
    }

    /// Registers (or fetches) the histogram `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut reg = self.inner.registry.lock().expect("telemetry registry poisoned");
        let cells = reg
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCells::new()))
            .clone();
        Histogram {
            enabled: self.inner.enabled.clone(),
            cells,
        }
    }

    /// Serialises the retained flight-recorder events as JSONL: one JSON
    /// object per line, oldest first, each line terminated by `\n`.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut guard = self.inner.claim();
        let ring = guard.ring();
        let mut out = String::with_capacity(ring.buf.len() * 64);
        for ev in &ring.buf {
            push_event_json(&mut out, ev);
            out.push('\n');
        }
        out
    }

    /// Serialises a metrics + event-count snapshot as pretty-printed JSON
    /// (the `telemetry.json` format).
    ///
    /// Metric maps are emitted in name order and per-kind event counts in
    /// label order, so equal recorded data yields byte-identical text.
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"version\": 1,\n");

        // Event section.
        let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
        let retained = {
            let mut guard = self.inner.claim();
            let ring = guard.ring();
            for ev in &ring.buf {
                *by_kind.entry(ev.kind.label()).or_insert(0) += 1;
            }
            ring.buf.len()
        };
        out.push_str("  \"events\": {\n");
        out.push_str(&format!(
            "    \"recorded\": {},\n    \"retained\": {},\n    \"evicted\": {},\n",
            self.recorded_total(),
            retained,
            self.evicted()
        ));
        out.push_str("    \"by_kind\": {");
        for (i, (kind, n)) in by_kind.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n      ");
            push_json_str(&mut out, kind);
            out.push_str(&format!(": {n}"));
        }
        if !by_kind.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("},\n");
        out.push_str("    \"evicted_by_kind\": {");
        let dropped = self.evicted_by_kind();
        for (i, (kind, n)) in dropped.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n      ");
            push_json_str(&mut out, kind);
            out.push_str(&format!(": {n}"));
        }
        if !dropped.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("}\n  },\n");

        let reg = self.inner.registry.lock().expect("telemetry registry poisoned");

        out.push_str("  \"counters\": {");
        for (i, (name, cell)) in reg.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_str(&mut out, name);
            out.push_str(&format!(": {}", cell.load(Ordering::Relaxed)));
        }
        if !reg.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");

        out.push_str("  \"gauges\": {");
        for (i, (name, cell)) in reg.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_str(&mut out, name);
            out.push_str(": ");
            push_json_f64(&mut out, f64::from_bits(cell.load(Ordering::Relaxed)));
        }
        if !reg.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");

        out.push_str("  \"histograms\": {");
        for (i, (name, cells)) in reg.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_str(&mut out, name);
            let s = Histogram {
                enabled: self.inner.enabled.clone(),
                cells: cells.clone(),
            }
            .snapshot();
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                s.count, s.sum, s.min, s.max, s.p50, s.p90, s.p99
            ));
        }
        if !reg.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Writes [`Recorder::snapshot_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_snapshot(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.snapshot_json())
    }

    /// Writes [`Recorder::to_jsonl`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_jsonl(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_drops_everything() {
        let rec = Recorder::new();
        rec.record(1, EventKind::Mark { id: 0, value: 0 });
        assert_eq!(rec.event_count(), 0);
        assert_eq!(rec.recorded_total(), 0);
    }

    #[test]
    fn record_with_defers_construction_behind_enabled_check() {
        let rec = Recorder::new();
        let mut built = 0u32;
        rec.record_with(1, || {
            built += 1;
            EventKind::Mark { id: 0, value: 0 }
        });
        assert_eq!(built, 0, "disabled recorder must not build the payload");
        assert_eq!(rec.event_count(), 0);
        rec.enable();
        rec.record_with(2, || {
            built += 1;
            EventKind::Mark { id: 1, value: 7 }
        });
        assert_eq!(built, 1);
        assert_eq!(rec.event_count(), 1);
        match rec.events()[0].kind {
            EventKind::Mark { id, value } => {
                assert_eq!((id, value), (1, 7));
            }
            ref k => panic!("unexpected kind {k:?}"),
        }
    }

    #[test]
    fn concurrent_export_while_recording_is_safe() {
        // The ring claim must let an exporter thread read (spinning briefly)
        // while the world's single writer keeps appending. This exercises
        // the claim/release protocol under real contention.
        let rec = Recorder::with_capacity(512);
        rec.enable();
        let writer = {
            let rec = rec.clone();
            std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    rec.record(i, EventKind::Mark { id: i, value: i });
                }
            })
        };
        let mut snapshots = 0usize;
        let mut last = 0usize;
        while snapshots < 200 {
            let evs = rec.events();
            assert!(evs.len() >= last.min(512), "retained count must not shrink");
            // Within one snapshot the ids are strictly increasing: no torn
            // or duplicated entries under concurrent appends.
            for w in evs.windows(2) {
                match (&w[0].kind, &w[1].kind) {
                    (EventKind::Mark { id: a, .. }, EventKind::Mark { id: b, .. }) => {
                        assert!(a < b, "snapshot order corrupted: {a} !< {b}");
                    }
                    _ => unreachable!(),
                }
            }
            last = evs.len();
            snapshots += 1;
        }
        writer.join().expect("writer thread");
        assert_eq!(rec.recorded_total(), 20_000);
        assert_eq!(rec.event_count(), 512);
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let rec = Recorder::with_capacity(3);
        rec.enable();
        for i in 0..5u64 {
            rec.record(i, EventKind::Mark { id: i, value: i });
        }
        assert_eq!(rec.event_count(), 3);
        assert_eq!(rec.recorded_total(), 5);
        assert_eq!(rec.evicted(), 2);
        let ids: Vec<u64> = rec
            .events()
            .iter()
            .map(|e| match e.kind {
                EventKind::Mark { id, .. } => id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    fn eviction_tallies_per_kind() {
        let rec = Recorder::with_capacity(2);
        rec.enable();
        rec.record(1, EventKind::SchedulerQueue { depth: 1 });
        rec.record(2, EventKind::Mark { id: 0, value: 0 });
        rec.record(3, EventKind::Mark { id: 1, value: 1 });
        rec.record(4, EventKind::Mark { id: 2, value: 2 });
        // scheduler_queue then the first mark were evicted.
        assert_eq!(
            rec.evicted_by_kind(),
            vec![("mark", 1), ("scheduler_queue", 1)]
        );
        rec.publish_overflow_gauges();
        let snap = rec.snapshot_json();
        assert!(snap.contains("\"recorder/dropped/mark\": 1"), "{snap}");
        assert!(snap.contains("\"evicted_by_kind\": {"), "{snap}");
        assert!(
            snap.contains("\"scheduler_queue\": 1"),
            "tally in snapshot: {snap}"
        );
        // Shrink-evictions count too (capacity 1 evicts both retained
        // marks: one for the new cap, one for the marker's slot).
        rec.set_capacity(1);
        assert_eq!(rec.evicted_by_kind(), vec![("mark", 3), ("scheduler_queue", 1)]);
    }

    #[test]
    fn shrink_leaves_overflow_marker() {
        let rec = Recorder::with_capacity(8);
        rec.enable();
        for i in 0..6u64 {
            rec.record(i * 10, EventKind::Mark { id: i, value: i });
        }
        rec.set_capacity(3);
        let evs = rec.events();
        assert_eq!(evs.len(), 3);
        match evs[0].kind {
            EventKind::Overflow { evicted } => assert_eq!(evicted, 4),
            ref k => panic!("expected overflow marker first, got {k:?}"),
        }
        // Marker is stamped with the oldest surviving timestamp so the
        // stream stays time-ordered.
        assert_eq!(evs[0].time_ns, evs[1].time_ns);
        assert_eq!(rec.evicted(), 4);
        // Growing (or an equal-size resize) never truncates, so no marker.
        let rec2 = Recorder::with_capacity(4);
        rec2.enable();
        rec2.record(1, EventKind::Mark { id: 0, value: 0 });
        rec2.set_capacity(16);
        assert_eq!(rec2.event_count(), 1);
        assert_eq!(rec2.evicted(), 0);
    }

    #[test]
    fn typed_iteration_matches_events() {
        let rec = Recorder::with_capacity(4);
        rec.enable();
        for i in 0..6u64 {
            rec.record(i, EventKind::Mark { id: i, value: i });
        }
        let mut seen = Vec::new();
        rec.for_each_event(|e| seen.push(e.clone()));
        assert_eq!(seen, rec.events());
        let total = rec.with_events(|a, b| a.len() + b.len());
        assert_eq!(total, rec.event_count());
    }

    #[test]
    fn clones_share_state() {
        let rec = Recorder::new();
        let clone = rec.clone();
        clone.enable();
        assert!(rec.is_enabled());
        rec.record(5, EventKind::Mark { id: 1, value: 2 });
        assert_eq!(clone.event_count(), 1);
        let c1 = rec.counter("x");
        let c2 = clone.counter("x");
        c1.add(4);
        assert_eq!(c2.value(), 4);
    }

    #[test]
    fn identical_recordings_export_identically() {
        let run = || {
            let rec = Recorder::new();
            rec.enable();
            rec.counter("sent").add(3);
            rec.gauge("ratio").set(-0.25);
            rec.histogram("lat_us").record(150);
            rec.histogram("lat_us").record(4000);
            rec.record(10, EventKind::SchedulerQueue { depth: 2 });
            rec.record(
                20,
                EventKind::Decision {
                    flow: 1,
                    step: 0,
                    state: 4,
                    action: 1,
                    reward: 0.5,
                    epsilon: 0.1,
                    greedy: true,
                },
            );
            (rec.to_jsonl(), rec.snapshot_json())
        };
        let (jl_a, js_a) = run();
        let (jl_b, js_b) = run();
        assert_eq!(jl_a, jl_b);
        assert_eq!(js_a, js_b);
        assert!(jl_a.lines().count() == 2);
        assert!(js_a.contains("\"sent\": 3"));
        assert!(js_a.contains("\"ratio\": -0.25"));
        assert!(js_a.contains("\"decision\": 1"));
    }

    #[test]
    fn snapshot_is_valid_enough_json() {
        // Cheap structural check: balanced braces, no trailing commas.
        let rec = Recorder::new();
        rec.enable();
        rec.counter("a").inc();
        let js = rec.snapshot_json();
        let opens = js.matches('{').count();
        let closes = js.matches('}').count();
        assert_eq!(opens, closes);
        assert!(!js.contains(",\n}"));
        assert!(!js.contains(",}"));
    }
}
