//! Minimal leveled logging for binaries.
//!
//! The workspace's library crates are print-free; its binaries emit their
//! tables and diagnostics through these macros instead of raw `println!`,
//! so verbosity is controlled in one place. The default level is
//! [`Level::Info`] — binary table output is unchanged unless the user asks
//! for more (`--verbose`) or a harness silences it.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log verbosity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable problems (stderr).
    Error = 0,
    /// Suspicious conditions worth flagging (stderr).
    Warn = 1,
    /// Normal program output: tables, results (stdout). The default.
    Info = 2,
    /// Extra diagnostics, enabled by `--verbose` (stdout).
    Debug = 3,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the global maximum level that will be emitted.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Current maximum level.
#[must_use]
pub fn max_level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Whether a message at `level` would currently be emitted.
#[must_use]
pub fn enabled(level: Level) -> bool {
    level as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// Convenience for binaries: `--verbose` raises the level to
/// [`Level::Debug`], otherwise leaves the [`Level::Info`] default.
pub fn set_verbose(verbose: bool) {
    if verbose {
        set_level(Level::Debug);
    }
}

/// Logs at [`Level::Error`] to stderr.
#[macro_export]
macro_rules! log_error {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            eprintln!($($arg)*);
        }
    };
}

/// Logs at [`Level::Warn`] to stderr.
#[macro_export]
macro_rules! log_warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            eprintln!($($arg)*);
        }
    };
}

/// Logs at [`Level::Info`] to stdout.
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            println!($($arg)*);
        }
    };
}

/// Logs at [`Level::Debug`] to stdout (hidden unless `--verbose`).
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            println!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_gating() {
        // Default: Info on, Debug off.
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        set_level(Level::Warn);
        assert!(!enabled(Level::Info));
        assert!(enabled(Level::Warn));
        // Restore the default for other tests in this process.
        set_level(Level::Info);
    }
}
