//! Hand-rolled JSON encoding for telemetry output.
//!
//! The workspace carries no JSON dependency, so the exporters build their
//! output with plain string pushes, exactly like the bench harness does
//! for `BENCH_engine.json`. Key order is fixed per event kind and metric
//! maps are iterated in `BTreeMap` order, so two runs that record the same
//! data emit byte-identical text — the property the determinism tests
//! assert.

use crate::event::{Event, EventKind};

/// Appends `s` as a JSON string literal (quotes + backslash escaping, plus
/// control-character escapes).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` as a JSON number.
///
/// Uses Rust's shortest-round-trip `Display`, which is a pure function of
/// the bits — deterministic across runs. Non-finite values (which JSON
/// cannot represent) encode as `null`.
pub fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn field_u64(out: &mut String, key: &str, v: u64) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    out.push_str(&format!("{v}"));
}

fn field_f64(out: &mut String, key: &str, v: f64) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    push_json_f64(out, v);
}

fn field_str(out: &mut String, key: &str, v: &str) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    push_json_str(out, v);
}

fn field_bool(out: &mut String, key: &str, v: bool) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    out.push_str(if v { "true" } else { "false" });
}

/// Appends one event as a single-line JSON object (no trailing newline).
///
/// Every line starts with `"t"` (virtual-clock nanoseconds) and `"kind"`,
/// followed by the variant's fields in declaration order.
pub fn push_event_json(out: &mut String, ev: &Event) {
    out.push_str("{\"t\":");
    out.push_str(&format!("{}", ev.time_ns));
    out.push_str(",\"kind\":");
    push_json_str(out, ev.kind.label());
    match &ev.kind {
        EventKind::TcpCwnd {
            conn,
            cwnd,
            ssthresh,
            cause,
        } => {
            field_u64(out, "conn", *conn);
            field_f64(out, "cwnd", *cwnd);
            field_f64(out, "ssthresh", *ssthresh);
            field_str(out, "cause", cause);
        }
        EventKind::TcpRto {
            conn,
            rto_us,
            consecutive,
        } => {
            field_u64(out, "conn", *conn);
            field_u64(out, "rto_us", *rto_us);
            field_u64(out, "consecutive", *consecutive);
        }
        EventKind::TcpRetransmit { conn, seq, fast } => {
            field_u64(out, "conn", *conn);
            field_u64(out, "seq", *seq);
            field_bool(out, "fast", *fast);
        }
        EventKind::UdtRate {
            conn,
            period_us,
            rate_pps,
            cause,
        } => {
            field_u64(out, "conn", *conn);
            field_f64(out, "period_us", *period_us);
            field_f64(out, "rate_pps", *rate_pps);
            field_str(out, "cause", cause);
        }
        EventKind::UdtNak { conn, sent, losses } => {
            field_u64(out, "conn", *conn);
            field_bool(out, "sent", *sent);
            field_u64(out, "losses", *losses);
        }
        EventKind::LinkQueue {
            link,
            backlog_bytes,
            capacity_bytes,
        } => {
            field_u64(out, "link", *link);
            field_u64(out, "backlog_bytes", *backlog_bytes);
            field_u64(out, "capacity_bytes", *capacity_bytes);
        }
        EventKind::LinkDrop {
            link,
            reason,
            wire_size,
        } => {
            field_u64(out, "link", *link);
            field_str(out, "reason", reason);
            field_u64(out, "wire_size", *wire_size);
        }
        EventKind::Packet {
            src,
            dst,
            proto,
            wire_size,
            outcome,
        } => {
            field_str(out, "src", src);
            field_str(out, "dst", dst);
            field_str(out, "proto", proto);
            field_u64(out, "wire_size", *wire_size);
            field_str(out, "outcome", outcome);
        }
        EventKind::SchedulerQueue { depth } => {
            field_u64(out, "depth", *depth);
        }
        EventKind::ComponentExec { component, handled } => {
            field_u64(out, "component", *component);
            field_u64(out, "handled", *handled);
        }
        EventKind::Decision {
            flow,
            step,
            state,
            action,
            reward,
            epsilon,
            greedy,
        } => {
            field_u64(out, "flow", *flow);
            field_u64(out, "step", *step);
            field_u64(out, "state", *state);
            field_u64(out, "action", *action);
            field_f64(out, "reward", *reward);
            field_f64(out, "epsilon", *epsilon);
            field_bool(out, "greedy", *greedy);
        }
        EventKind::Fault { action, link } => {
            field_str(out, "action", action);
            field_u64(out, "link", *link);
        }
        EventKind::ConnStatus {
            peer,
            transport,
            status,
            attempts,
        } => {
            field_u64(out, "peer", *peer);
            field_str(out, "transport", transport);
            field_str(out, "status", status);
            field_u64(out, "attempts", *attempts);
        }
        EventKind::Overflow { evicted } => {
            field_u64(out, "evicted", *evicted);
        }
        EventKind::Mark { id, value } => {
            field_u64(out, "id", *id);
            field_u64(out, "value", *value);
        }
        EventKind::SpanOpen {
            span,
            parent,
            trace,
            kind,
            key,
        } => {
            field_u64(out, "span", *span);
            field_u64(out, "parent", *parent);
            field_u64(out, "trace", *trace);
            field_str(out, "span_kind", kind);
            field_u64(out, "key", *key);
        }
        EventKind::SpanClose { span, key } => {
            field_u64(out, "span", *span);
            field_u64(out, "key", *key);
        }
        EventKind::Overlay {
            action,
            msg,
            node,
            aux,
        } => {
            field_str(out, "action", action);
            field_u64(out, "msg", *msg);
            field_u64(out, "node", *node);
            field_u64(out, "aux", *aux);
        }
        EventKind::Gossip {
            node,
            peer,
            entries,
        } => {
            field_u64(out, "node", *node);
            field_u64(out, "peer", *peer);
            field_u64(out, "entries", *entries);
        }
        EventKind::CcWindow {
            conn,
            controller,
            cause,
            prev_cwnd,
            cwnd,
            ssthresh,
            w_max,
        } => {
            field_u64(out, "conn", *conn);
            field_str(out, "controller", controller);
            field_str(out, "cause", cause);
            field_f64(out, "prev_cwnd", *prev_cwnd);
            field_f64(out, "cwnd", *cwnd);
            field_f64(out, "ssthresh", *ssthresh);
            field_f64(out, "w_max", *w_max);
        }
        EventKind::BbrState {
            conn,
            phase,
            pacing_rate_bps,
            btl_bw_bps,
            min_rtt_us,
            cwnd,
        } => {
            field_u64(out, "conn", *conn);
            field_str(out, "phase", phase);
            field_f64(out, "pacing_rate_bps", *pacing_rate_bps);
            field_f64(out, "btl_bw_bps", *btl_bw_bps);
            field_u64(out, "min_rtt_us", *min_rtt_us);
            field_f64(out, "cwnd", *cwnd);
        }
        EventKind::CcSwap {
            peer,
            controller,
            recycled,
        } => {
            field_u64(out, "peer", *peer);
            field_str(out, "controller", controller);
            field_bool(out, "recycled", *recycled);
        }
    }
    out.push('}');
}

/// Serialises a recorded stream as Chrome trace-event JSON (the
/// `chrome://tracing` / [Perfetto](https://ui.perfetto.dev) format):
/// one complete-duration (`"ph":"X"`) entry per closed span and one
/// instant (`"ph":"i"`) entry per non-span event, all on one process.
///
/// Tracks (`tid`) group spans by kind label and non-span events under a
/// per-kind `"ev:<kind>"` track, so the middleware, transport and fabric
/// layers land on separate rows. Timestamps are virtual-clock
/// microseconds (fractional, from the ns stamps), so output is a pure
/// function of the event stream — byte-identical for the same seed at
/// any sweep width.
///
/// Spans left open at the end of the stream are emitted with zero
/// duration and `"unclosed":1` rather than dropped.
#[must_use]
pub fn to_chrome_trace(events: &[Event]) -> String {
    use std::collections::BTreeMap;

    // Stable track numbering: kinds in first-appearance order would vary
    // by scenario, so collect and sort labels first.
    let mut tracks: BTreeMap<String, u64> = BTreeMap::new();
    for ev in events {
        let label = match &ev.kind {
            EventKind::SpanOpen { kind, .. } => (*kind).to_string(),
            EventKind::SpanClose { .. } => continue,
            other => format!("ev:{}", other.label()),
        };
        tracks.entry(label).or_insert(0);
    }
    for (i, v) in tracks.values_mut().enumerate() {
        *v = i as u64;
    }

    let us = |ns: u64| ns as f64 / 1000.0;
    let mut entries: Vec<String> = Vec::new();
    // span raw id -> (open index, emitted?) for duration pairing.
    let mut open: BTreeMap<u64, usize> = BTreeMap::new();

    let push_common = |s: &mut String, name: &str, ph: &str, ts_ns: u64, tid: u64| {
        s.push_str("{\"name\":");
        push_json_str(s, name);
        s.push_str(&format!(",\"ph\":\"{ph}\",\"pid\":0,\"tid\":{tid},\"ts\":"));
        push_json_f64(s, us(ts_ns));
    };

    for (i, ev) in events.iter().enumerate() {
        match &ev.kind {
            EventKind::SpanOpen { span, .. } => {
                open.insert(*span, i);
            }
            EventKind::SpanClose { span, key } => {
                let Some(open_idx) = open.remove(span) else {
                    continue;
                };
                let open_ev = &events[open_idx];
                let EventKind::SpanOpen {
                    parent,
                    trace,
                    kind,
                    key: open_key,
                    ..
                } = &open_ev.kind
                else {
                    continue;
                };
                let tid = tracks.get(*kind).copied().unwrap_or(0);
                let mut s = String::new();
                push_common(&mut s, kind, "X", open_ev.time_ns, tid);
                s.push_str(",\"dur\":");
                push_json_f64(&mut s, us(ev.time_ns.saturating_sub(open_ev.time_ns)));
                s.push_str(&format!(
                    ",\"args\":{{\"span\":{span},\"parent\":{parent},\"trace\":{trace},\
                     \"key\":{open_key},\"close_key\":{key}}}}}"
                ));
                entries.push(s);
            }
            other => {
                let label = format!("ev:{}", other.label());
                let tid = tracks.get(&label).copied().unwrap_or(0);
                let mut s = String::new();
                push_common(&mut s, other.label(), "i", ev.time_ns, tid);
                s.push_str(",\"s\":\"t\"}");
                entries.push(s);
            }
        }
    }
    // Unclosed spans: keep them visible instead of silently dropping.
    for (span, open_idx) in open {
        let open_ev = &events[open_idx];
        if let EventKind::SpanOpen {
            parent,
            trace,
            kind,
            key,
            ..
        } = &open_ev.kind
        {
            let tid = tracks.get(*kind).copied().unwrap_or(0);
            let mut s = String::new();
            push_common(&mut s, kind, "X", open_ev.time_ns, tid);
            s.push_str(",\"dur\":0");
            s.push_str(&format!(
                ",\"args\":{{\"span\":{span},\"parent\":{parent},\"trace\":{trace},\
                 \"key\":{key},\"unclosed\":1}}}}"
            ));
            entries.push(s);
        }
    }

    let mut out = String::with_capacity(entries.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(e);
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"metadata\":{");
    for (i, (label, tid)) in tracks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, &format!("track_{tid}"));
        out.push(':');
        push_json_str(&mut out, label);
    }
    out.push_str("}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_lines_are_stable() {
        let mut out = String::new();
        push_event_json(
            &mut out,
            &Event {
                time_ns: 42,
                kind: EventKind::TcpCwnd {
                    conn: 7,
                    cwnd: 2920.0,
                    ssthresh: 64000.5,
                    cause: "rto",
                },
            },
        );
        assert_eq!(
            out,
            "{\"t\":42,\"kind\":\"tcp_cwnd\",\"conn\":7,\"cwnd\":2920,\
             \"ssthresh\":64000.5,\"cause\":\"rto\"}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        push_json_f64(&mut out, f64::NAN);
        out.push(' ');
        push_json_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null null");
    }

    #[test]
    fn span_events_serialize_with_fixed_fields() {
        let mut out = String::new();
        push_event_json(
            &mut out,
            &Event {
                time_ns: 9,
                kind: EventKind::SpanOpen {
                    span: 0x0c00_0000_0000_0001,
                    parent: 0,
                    trace: 0x0c00_0000_0000_0001,
                    kind: "seg",
                    key: 42,
                },
            },
        );
        assert_eq!(
            out,
            "{\"t\":9,\"kind\":\"span_open\",\"span\":864691128455135233,\
             \"parent\":0,\"trace\":864691128455135233,\"span_kind\":\"seg\",\"key\":42}"
        );
        let mut out = String::new();
        push_event_json(
            &mut out,
            &Event {
                time_ns: 10,
                kind: EventKind::SpanClose { span: 3, key: 1 },
            },
        );
        assert_eq!(out, "{\"t\":10,\"kind\":\"span_close\",\"span\":3,\"key\":1}");
    }

    #[test]
    fn chrome_trace_pairs_spans_and_keeps_unclosed() {
        let events = vec![
            Event {
                time_ns: 1_000,
                kind: EventKind::SpanOpen {
                    span: 11,
                    parent: 0,
                    trace: 11,
                    kind: "msg",
                    key: 0,
                },
            },
            Event {
                time_ns: 2_000,
                kind: EventKind::Mark { id: 1, value: 2 },
            },
            Event {
                time_ns: 3_500,
                kind: EventKind::SpanClose { span: 11, key: 0 },
            },
            Event {
                time_ns: 4_000,
                kind: EventKind::SpanOpen {
                    span: 12,
                    parent: 0,
                    trace: 12,
                    kind: "outage",
                    key: 7,
                },
            },
        ];
        let json = to_chrome_trace(&events);
        assert!(json.contains("\"name\":\"msg\",\"ph\":\"X\""));
        assert!(json.contains("\"dur\":2.5"), "{json}");
        assert!(json.contains("\"name\":\"mark\",\"ph\":\"i\""));
        assert!(json.contains("\"unclosed\":1"));
        assert!(json.contains("\"traceEvents\":["));
        // Deterministic: same input, same bytes.
        assert_eq!(json, to_chrome_trace(&events));
        // Balanced structure (cheap validity check, as for snapshots).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
