//! Hand-rolled JSON encoding for telemetry output.
//!
//! The workspace carries no JSON dependency, so the exporters build their
//! output with plain string pushes, exactly like the bench harness does
//! for `BENCH_engine.json`. Key order is fixed per event kind and metric
//! maps are iterated in `BTreeMap` order, so two runs that record the same
//! data emit byte-identical text — the property the determinism tests
//! assert.

use crate::event::{Event, EventKind};

/// Appends `s` as a JSON string literal (quotes + backslash escaping, plus
/// control-character escapes).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` as a JSON number.
///
/// Uses Rust's shortest-round-trip `Display`, which is a pure function of
/// the bits — deterministic across runs. Non-finite values (which JSON
/// cannot represent) encode as `null`.
pub fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn field_u64(out: &mut String, key: &str, v: u64) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    out.push_str(&format!("{v}"));
}

fn field_f64(out: &mut String, key: &str, v: f64) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    push_json_f64(out, v);
}

fn field_str(out: &mut String, key: &str, v: &str) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    push_json_str(out, v);
}

fn field_bool(out: &mut String, key: &str, v: bool) {
    out.push(',');
    push_json_str(out, key);
    out.push(':');
    out.push_str(if v { "true" } else { "false" });
}

/// Appends one event as a single-line JSON object (no trailing newline).
///
/// Every line starts with `"t"` (virtual-clock nanoseconds) and `"kind"`,
/// followed by the variant's fields in declaration order.
pub fn push_event_json(out: &mut String, ev: &Event) {
    out.push_str("{\"t\":");
    out.push_str(&format!("{}", ev.time_ns));
    out.push_str(",\"kind\":");
    push_json_str(out, ev.kind.label());
    match &ev.kind {
        EventKind::TcpCwnd {
            conn,
            cwnd,
            ssthresh,
            cause,
        } => {
            field_u64(out, "conn", *conn);
            field_f64(out, "cwnd", *cwnd);
            field_f64(out, "ssthresh", *ssthresh);
            field_str(out, "cause", cause);
        }
        EventKind::TcpRto {
            conn,
            rto_us,
            consecutive,
        } => {
            field_u64(out, "conn", *conn);
            field_u64(out, "rto_us", *rto_us);
            field_u64(out, "consecutive", *consecutive);
        }
        EventKind::TcpRetransmit { conn, seq, fast } => {
            field_u64(out, "conn", *conn);
            field_u64(out, "seq", *seq);
            field_bool(out, "fast", *fast);
        }
        EventKind::UdtRate {
            conn,
            period_us,
            rate_pps,
            cause,
        } => {
            field_u64(out, "conn", *conn);
            field_f64(out, "period_us", *period_us);
            field_f64(out, "rate_pps", *rate_pps);
            field_str(out, "cause", cause);
        }
        EventKind::UdtNak { conn, sent, losses } => {
            field_u64(out, "conn", *conn);
            field_bool(out, "sent", *sent);
            field_u64(out, "losses", *losses);
        }
        EventKind::LinkQueue {
            link,
            backlog_bytes,
            capacity_bytes,
        } => {
            field_u64(out, "link", *link);
            field_u64(out, "backlog_bytes", *backlog_bytes);
            field_u64(out, "capacity_bytes", *capacity_bytes);
        }
        EventKind::LinkDrop {
            link,
            reason,
            wire_size,
        } => {
            field_u64(out, "link", *link);
            field_str(out, "reason", reason);
            field_u64(out, "wire_size", *wire_size);
        }
        EventKind::Packet {
            src,
            dst,
            proto,
            wire_size,
            outcome,
        } => {
            field_str(out, "src", src);
            field_str(out, "dst", dst);
            field_str(out, "proto", proto);
            field_u64(out, "wire_size", *wire_size);
            field_str(out, "outcome", outcome);
        }
        EventKind::SchedulerQueue { depth } => {
            field_u64(out, "depth", *depth);
        }
        EventKind::ComponentExec { component, handled } => {
            field_u64(out, "component", *component);
            field_u64(out, "handled", *handled);
        }
        EventKind::Decision {
            flow,
            step,
            state,
            action,
            reward,
            epsilon,
            greedy,
        } => {
            field_u64(out, "flow", *flow);
            field_u64(out, "step", *step);
            field_u64(out, "state", *state);
            field_u64(out, "action", *action);
            field_f64(out, "reward", *reward);
            field_f64(out, "epsilon", *epsilon);
            field_bool(out, "greedy", *greedy);
        }
        EventKind::Fault { action, link } => {
            field_str(out, "action", action);
            field_u64(out, "link", *link);
        }
        EventKind::ConnStatus {
            peer,
            transport,
            status,
            attempts,
        } => {
            field_u64(out, "peer", *peer);
            field_str(out, "transport", transport);
            field_str(out, "status", status);
            field_u64(out, "attempts", *attempts);
        }
        EventKind::Overflow { evicted } => {
            field_u64(out, "evicted", *evicted);
        }
        EventKind::Mark { id, value } => {
            field_u64(out, "id", *id);
            field_u64(out, "value", *value);
        }
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_lines_are_stable() {
        let mut out = String::new();
        push_event_json(
            &mut out,
            &Event {
                time_ns: 42,
                kind: EventKind::TcpCwnd {
                    conn: 7,
                    cwnd: 2920.0,
                    ssthresh: 64000.5,
                    cause: "rto",
                },
            },
        );
        assert_eq!(
            out,
            "{\"t\":42,\"kind\":\"tcp_cwnd\",\"conn\":7,\"cwnd\":2920,\
             \"ssthresh\":64000.5,\"cause\":\"rto\"}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        push_json_f64(&mut out, f64::NAN);
        out.push(' ');
        push_json_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null null");
    }
}
