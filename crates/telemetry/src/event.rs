//! Flight-recorder event schema.
//!
//! Every event pairs a virtual-clock timestamp with one [`EventKind`]
//! variant. The variants mirror the instrumented subsystems of the
//! simulator: TCP congestion control, UDT rate control, link queues,
//! packet lifecycles, the component scheduler and the Sarsa(λ) learner.
//! Fields are plain numbers (or `&'static str` labels) so recording never
//! allocates on the common paths; only packet-lifecycle events carry
//! endpoint strings, and those are built solely when the recorder is
//! enabled.

/// One recorded flight-recorder event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Virtual-clock timestamp in nanoseconds ([`crate::Recorder::record`]
    /// never reads the wall clock, so output is deterministic per seed).
    pub time_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The structured payload of an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// TCP congestion-window transition (slow-start/recovery boundaries,
    /// not per-ACK growth).
    TcpCwnd {
        /// Connection id.
        conn: u64,
        /// New congestion window, bytes.
        cwnd: f64,
        /// New slow-start threshold, bytes.
        ssthresh: f64,
        /// What triggered the transition (`"rto"`, `"fast_recovery"`,
        /// `"recovery_exit"`, ...).
        cause: &'static str,
    },
    /// TCP retransmission timeout fired.
    TcpRto {
        /// Connection id.
        conn: u64,
        /// Back-off-doubled RTO now armed, microseconds.
        rto_us: u64,
        /// Consecutive timeouts on this connection.
        consecutive: u64,
    },
    /// TCP segment (re)sent by loss recovery.
    TcpRetransmit {
        /// Connection id.
        conn: u64,
        /// Sequence number of the retransmitted segment.
        seq: u64,
        /// `true` for fast retransmit, `false` for RTO-driven resend.
        fast: bool,
    },
    /// UDT sending-rate update (DAIMD increase or NAK-driven decrease).
    UdtRate {
        /// Connection id.
        conn: u64,
        /// New inter-packet sending period, microseconds.
        period_us: f64,
        /// Equivalent packet rate, packets/second.
        rate_pps: f64,
        /// `"syn_increase"` or `"nak_decrease"`.
        cause: &'static str,
    },
    /// UDT NAK round (loss report sent by the receiver or processed by the
    /// sender).
    UdtNak {
        /// Connection id.
        conn: u64,
        /// `true` when this side emitted the NAK, `false` when it received
        /// one.
        sent: bool,
        /// Number of sequence numbers reported lost.
        losses: u64,
    },
    /// Link queue occupancy sampled after a transmit decision.
    LinkQueue {
        /// Link id.
        link: u64,
        /// Backlogged bytes waiting for the wire.
        backlog_bytes: u64,
        /// Queue capacity, bytes.
        capacity_bytes: u64,
    },
    /// Packet dropped at a link.
    LinkDrop {
        /// Link id.
        link: u64,
        /// Drop reason label (`"queue_overflow"`, `"random_loss"`,
        /// `"policed"`, `"link_down"`).
        reason: &'static str,
        /// Wire size of the dropped packet, bytes.
        wire_size: u64,
    },
    /// Packet lifecycle record, folded in from the simulator's packet
    /// tracer.
    Packet {
        /// Source endpoint, formatted `node:port`.
        src: String,
        /// Destination endpoint, formatted `node:port`.
        dst: String,
        /// Wire protocol label (`"tcp"`, `"udp"`, `"udt"`).
        proto: &'static str,
        /// Wire size, bytes.
        wire_size: u64,
        /// Lifecycle outcome (`"sent"`, `"delivered"`,
        /// `"dropped:queue_overflow"`, ...).
        outcome: String,
    },
    /// Component-scheduler ready-queue depth right after an enqueue.
    SchedulerQueue {
        /// Components queued (including the one just enqueued).
        depth: u64,
    },
    /// One component execute batch.
    ComponentExec {
        /// Component id.
        component: u64,
        /// Messages/events handled in this batch. Deliberately a
        /// deterministic count, not a wall-clock duration — see the
        /// determinism notes in DESIGN.md §8.
        handled: u64,
    },
    /// One Sarsa(λ) decision.
    Decision {
        /// Flow label of the learner instance.
        flow: u64,
        /// Learner step counter at decision time.
        step: u64,
        /// Discretised state index the decision was made in.
        state: u64,
        /// Chosen action index.
        action: u64,
        /// Reward observed for the previous action.
        reward: f64,
        /// Exploration rate at decision time.
        epsilon: f64,
        /// Whether the chosen action was the greedy one.
        greedy: bool,
    },
    /// A scripted fault injection or heal applied to a link (one event per
    /// affected link, in plan order — chaos runs replay byte-for-byte).
    Fault {
        /// Action label (`"sever"`, `"link_down"`, `"link_up"`,
        /// `"burst_on"`, `"burst_off"`, `"latency_spike"`,
        /// `"latency_clear"`).
        action: &'static str,
        /// Link id the action was applied to.
        link: u64,
    },
    /// Middleware channel status transition (supervision observed an
    /// outage, a successful reconnect, or gave up).
    ConnStatus {
        /// Remote peer encoded as `node_index << 16 | port`.
        peer: u64,
        /// Transport label of the supervised channel.
        transport: &'static str,
        /// `"lost"`, `"restored"` or `"dropped"`.
        status: &'static str,
        /// Reconnect attempts so far (meaningful for `"restored"`).
        attempts: u64,
    },
    /// Synthetic truncation marker: the ring evicted events it can no
    /// longer show (currently emitted by [`crate::Recorder::set_capacity`]
    /// when shrinking mid-run). Oracles that need a complete stream —
    /// e.g. packet conservation — treat any trace containing this marker
    /// (or a nonzero [`crate::Recorder::evicted`] count) as truncated and
    /// skip instead of false-failing.
    Overflow {
        /// Events evicted by the truncation this marker stands in for.
        evicted: u64,
    },
    /// Generic instrumentation marker for tests and harnesses.
    Mark {
        /// Caller-defined marker id.
        id: u64,
        /// Caller-defined value.
        value: u64,
    },
}

impl EventKind {
    /// Stable snake_case label of the variant, used as the JSON `kind`
    /// field and for per-kind event counts in snapshots.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::TcpCwnd { .. } => "tcp_cwnd",
            EventKind::TcpRto { .. } => "tcp_rto",
            EventKind::TcpRetransmit { .. } => "tcp_retransmit",
            EventKind::UdtRate { .. } => "udt_rate",
            EventKind::UdtNak { .. } => "udt_nak",
            EventKind::LinkQueue { .. } => "link_queue",
            EventKind::LinkDrop { .. } => "link_drop",
            EventKind::Packet { .. } => "packet",
            EventKind::SchedulerQueue { .. } => "scheduler_queue",
            EventKind::ComponentExec { .. } => "component_exec",
            EventKind::Decision { .. } => "decision",
            EventKind::Fault { .. } => "fault",
            EventKind::ConnStatus { .. } => "conn_status",
            EventKind::Overflow { .. } => "overflow",
            EventKind::Mark { .. } => "mark",
        }
    }
}
