//! Flight-recorder event schema.
//!
//! Every event pairs a virtual-clock timestamp with one [`EventKind`]
//! variant. The variants mirror the instrumented subsystems of the
//! simulator: TCP congestion control, UDT rate control, link queues,
//! packet lifecycles, the component scheduler and the Sarsa(λ) learner.
//! Fields are plain numbers (or `&'static str` labels) so recording never
//! allocates on the common paths; only packet-lifecycle events carry
//! endpoint strings, and those are built solely when the recorder is
//! enabled.

/// One recorded flight-recorder event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Virtual-clock timestamp in nanoseconds ([`crate::Recorder::record`]
    /// never reads the wall clock, so output is deterministic per seed).
    pub time_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The structured payload of an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// TCP congestion-window transition (slow-start/recovery boundaries,
    /// not per-ACK growth).
    TcpCwnd {
        /// Connection id.
        conn: u64,
        /// New congestion window, bytes.
        cwnd: f64,
        /// New slow-start threshold, bytes.
        ssthresh: f64,
        /// What triggered the transition (`"rto"`, `"fast_recovery"`,
        /// `"recovery_exit"`, ...).
        cause: &'static str,
    },
    /// TCP retransmission timeout fired.
    TcpRto {
        /// Connection id.
        conn: u64,
        /// Back-off-doubled RTO now armed, microseconds.
        rto_us: u64,
        /// Consecutive timeouts on this connection.
        consecutive: u64,
    },
    /// TCP segment (re)sent by loss recovery.
    TcpRetransmit {
        /// Connection id.
        conn: u64,
        /// Sequence number of the retransmitted segment.
        seq: u64,
        /// `true` for fast retransmit, `false` for RTO-driven resend.
        fast: bool,
    },
    /// UDT sending-rate update (DAIMD increase or NAK-driven decrease).
    UdtRate {
        /// Connection id.
        conn: u64,
        /// New inter-packet sending period, microseconds.
        period_us: f64,
        /// Equivalent packet rate, packets/second.
        rate_pps: f64,
        /// `"syn_increase"` or `"nak_decrease"`.
        cause: &'static str,
    },
    /// UDT NAK round (loss report sent by the receiver or processed by the
    /// sender).
    UdtNak {
        /// Connection id.
        conn: u64,
        /// `true` when this side emitted the NAK, `false` when it received
        /// one.
        sent: bool,
        /// Number of sequence numbers reported lost.
        losses: u64,
    },
    /// Link queue occupancy sampled after a transmit decision.
    LinkQueue {
        /// Link id.
        link: u64,
        /// Backlogged bytes waiting for the wire.
        backlog_bytes: u64,
        /// Queue capacity, bytes.
        capacity_bytes: u64,
    },
    /// Packet dropped at a link.
    LinkDrop {
        /// Link id.
        link: u64,
        /// Drop reason label (`"queue_overflow"`, `"random_loss"`,
        /// `"policed"`, `"link_down"`).
        reason: &'static str,
        /// Wire size of the dropped packet, bytes.
        wire_size: u64,
    },
    /// Packet lifecycle record, folded in from the simulator's packet
    /// tracer.
    Packet {
        /// Source endpoint, formatted `node:port`.
        src: String,
        /// Destination endpoint, formatted `node:port`.
        dst: String,
        /// Wire protocol label (`"tcp"`, `"udp"`, `"udt"`).
        proto: &'static str,
        /// Wire size, bytes.
        wire_size: u64,
        /// Lifecycle outcome (`"sent"`, `"delivered"`,
        /// `"dropped:queue_overflow"`, ...).
        outcome: String,
    },
    /// Component-scheduler ready-queue depth right after an enqueue.
    SchedulerQueue {
        /// Components queued (including the one just enqueued).
        depth: u64,
    },
    /// One component execute batch.
    ComponentExec {
        /// Component id.
        component: u64,
        /// Messages/events handled in this batch. Deliberately a
        /// deterministic count, not a wall-clock duration — see the
        /// determinism notes in DESIGN.md §8.
        handled: u64,
    },
    /// One Sarsa(λ) decision.
    Decision {
        /// Flow label of the learner instance.
        flow: u64,
        /// Learner step counter at decision time.
        step: u64,
        /// Discretised state index the decision was made in.
        state: u64,
        /// Chosen action index.
        action: u64,
        /// Reward observed for the previous action.
        reward: f64,
        /// Exploration rate at decision time.
        epsilon: f64,
        /// Whether the chosen action was the greedy one.
        greedy: bool,
    },
    /// A scripted fault injection or heal applied to a link (one event per
    /// affected link, in plan order — chaos runs replay byte-for-byte).
    Fault {
        /// Action label (`"sever"`, `"link_down"`, `"link_up"`,
        /// `"burst_on"`, `"burst_off"`, `"latency_spike"`,
        /// `"latency_clear"`).
        action: &'static str,
        /// Link id the action was applied to.
        link: u64,
    },
    /// Middleware channel status transition (supervision observed an
    /// outage, a successful reconnect, or gave up).
    ConnStatus {
        /// Remote peer encoded as `node_index << 16 | port`.
        peer: u64,
        /// Transport label of the supervised channel.
        transport: &'static str,
        /// `"lost"`, `"restored"` or `"dropped"`.
        status: &'static str,
        /// Reconnect attempts so far (meaningful for `"restored"`).
        attempts: u64,
    },
    /// Synthetic truncation marker: the ring evicted events it can no
    /// longer show (currently emitted by [`crate::Recorder::set_capacity`]
    /// when shrinking mid-run). Oracles that need a complete stream —
    /// e.g. packet conservation — treat any trace containing this marker
    /// (or a nonzero [`crate::Recorder::evicted`] count) as truncated and
    /// skip instead of false-failing.
    Overflow {
        /// Events evicted by the truncation this marker stands in for.
        evicted: u64,
    },
    /// Generic instrumentation marker for tests and harnesses.
    Mark {
        /// Caller-defined marker id.
        id: u64,
        /// Caller-defined value.
        value: u64,
    },
    /// A causal span opened (see [`crate::trace`]). Spans form a forest
    /// per trace: `parent == 0` marks a root. All fields are plain
    /// numbers or static labels so the record path never allocates.
    SpanOpen {
        /// Packed span id ([`crate::trace::SpanId`]): kind byte in the
        /// top 8 bits, per-recorder sequence below.
        span: u64,
        /// Packed id of the enclosing span, `0` for roots.
        parent: u64,
        /// Trace id this span belongs to (the root span's id), `0` when
        /// the work is not attributed to one application message.
        trace: u64,
        /// Span kind label (`"msg"`, `"enqueue"`, `"xmit"`, `"outage"`,
        /// `"backoff"`, `"redial"`, `"seg"`, `"hop"`, ...).
        kind: &'static str,
        /// Kind-specific correlation key (channel key, `conn << 32 | seq`,
        /// link id, ...). `0` when unused.
        key: u64,
    },
    /// A causal span closed. Every [`EventKind::SpanOpen`] in a complete
    /// trace has exactly one close at `time_ns >=` its open time (checked
    /// by the span oracle in `kmsg-oracle`).
    SpanClose {
        /// Packed id of the span being closed.
        span: u64,
        /// Kind-specific outcome key (`0` = normal; e.g. `1` on a `seg`
        /// span that was retransmitted, drop-reason index on a `hop`).
        key: u64,
    },
    /// One pub/sub overlay action (publish, route selection, reroute,
    /// delivery, or a drop). All fields are plain numbers so recording
    /// never allocates; the overlay oracle reconstructs loop-freedom and
    /// at-most-once delivery from these.
    Overlay {
        /// Action label (`"publish"`, `"route"`, `"reroute"`, `"deliver"`,
        /// `"dup_drop"`, `"no_route"`, `"stale_drop"`, `"ttl_drop"`,
        /// `"link_down"`, `"link_up"`).
        action: &'static str,
        /// Overlay message id (`origin_node << 32 | seq`), `0` when the
        /// action is not tied to one message.
        msg: u64,
        /// Node index where the action happened.
        node: u64,
        /// Action-specific payload: the packed relay path on
        /// `route`/`reroute` (one node index + 1 per byte, low byte first,
        /// `u64::MAX` = unencodable), the subject hash on
        /// `publish`/`deliver`, the peer node on `link_down`/`link_up`.
        aux: u64,
    },
    /// One gossip digest sent to a peer (periodic anti-entropy round or
    /// an event-driven flood after a local table change).
    Gossip {
        /// Sending node index.
        node: u64,
        /// Receiving peer node index.
        peer: u64,
        /// Link-state plus subscription entries carried in the digest.
        entries: u64,
    },
    /// Congestion-window transition of a pluggable (non-Reno) congestion
    /// controller. Reno keeps emitting [`EventKind::TcpCwnd`] (byte-stable
    /// legacy stream); CUBIC and BBR emit this richer record so the
    /// per-controller oracles can check window-growth legality.
    CcWindow {
        /// Connection id.
        conn: u64,
        /// Controller label (`"cubic"`, `"bbr"`).
        controller: &'static str,
        /// Transition cause (`"epoch"`, `"growth"`, `"loss"`, `"rto"`).
        cause: &'static str,
        /// Congestion window before the transition, bytes.
        prev_cwnd: f64,
        /// Congestion window after the transition, bytes.
        cwnd: f64,
        /// Slow-start threshold after the transition, bytes.
        ssthresh: f64,
        /// Controller-specific reference window, bytes (CUBIC `W_max`;
        /// `0` when the controller has none).
        w_max: f64,
    },
    /// BBR-style controller state checkpoint: emitted on every phase
    /// transition and whenever the bottleneck-bandwidth estimate is
    /// re-adopted, so the BBR oracle can bound pacing rate and cwnd
    /// against the estimated BDP.
    BbrState {
        /// Connection id.
        conn: u64,
        /// Phase label (`"startup"`, `"drain"`, `"probe_bw"`).
        phase: &'static str,
        /// Current pacing rate, bytes/second.
        pacing_rate_bps: f64,
        /// Windowed-max bottleneck bandwidth estimate, bytes/second.
        btl_bw_bps: f64,
        /// Windowed-min RTT estimate, microseconds.
        min_rtt_us: u64,
        /// Congestion window (inflight cap), bytes.
        cwnd: f64,
    },
    /// A per-destination congestion-controller swap decision on the DATA
    /// policy surface: the stack policy re-selected the controller for a
    /// peer, optionally recycling the live TCP channel so the change takes
    /// effect immediately.
    CcSwap {
        /// Peer key (`node_index << 16 | port`, the `ConnStatus` encoding).
        peer: u64,
        /// The controller now selected (`"reno"`, `"cubic"`, `"bbr"`).
        controller: &'static str,
        /// Whether a live channel was recycled onto the new controller
        /// (`false` when the swap only affects future dials).
        recycled: bool,
    },
}

/// Number of [`EventKind`] variants — sizes per-kind tally arrays.
pub const KIND_COUNT: usize = 22;

/// Stable snake_case labels, indexed by [`EventKind::index`].
pub const KIND_LABELS: [&str; KIND_COUNT] = [
    "tcp_cwnd",
    "tcp_rto",
    "tcp_retransmit",
    "udt_rate",
    "udt_nak",
    "link_queue",
    "link_drop",
    "packet",
    "scheduler_queue",
    "component_exec",
    "decision",
    "fault",
    "conn_status",
    "overflow",
    "mark",
    "span_open",
    "span_close",
    "overlay",
    "gossip",
    "cc_window",
    "bbr_state",
    "cc_swap",
];

impl EventKind {
    /// Dense variant index into [`KIND_LABELS`] and per-kind tallies.
    #[must_use]
    pub fn index(&self) -> usize {
        match self {
            EventKind::TcpCwnd { .. } => 0,
            EventKind::TcpRto { .. } => 1,
            EventKind::TcpRetransmit { .. } => 2,
            EventKind::UdtRate { .. } => 3,
            EventKind::UdtNak { .. } => 4,
            EventKind::LinkQueue { .. } => 5,
            EventKind::LinkDrop { .. } => 6,
            EventKind::Packet { .. } => 7,
            EventKind::SchedulerQueue { .. } => 8,
            EventKind::ComponentExec { .. } => 9,
            EventKind::Decision { .. } => 10,
            EventKind::Fault { .. } => 11,
            EventKind::ConnStatus { .. } => 12,
            EventKind::Overflow { .. } => 13,
            EventKind::Mark { .. } => 14,
            EventKind::SpanOpen { .. } => 15,
            EventKind::SpanClose { .. } => 16,
            EventKind::Overlay { .. } => 17,
            EventKind::Gossip { .. } => 18,
            EventKind::CcWindow { .. } => 19,
            EventKind::BbrState { .. } => 20,
            EventKind::CcSwap { .. } => 21,
        }
    }

    /// Stable snake_case label of the variant, used as the JSON `kind`
    /// field and for per-kind event counts in snapshots.
    #[must_use]
    pub fn label(&self) -> &'static str {
        KIND_LABELS[self.index()]
    }
}
