//! Critical-path reconstruction over recorded causal spans.
//!
//! Consumes the flat event stream ([`EventKind::SpanOpen`] /
//! [`EventKind::SpanClose`] plus the ordinary protocol events) and
//! rebuilds *where simulated time went*:
//!
//! * [`SpanForest`] — every recorded span with its parent/trace links and
//!   open/close stamps, in stream order;
//! * [`message_breakdowns`] — per application message (one `msg` root
//!   span each), an exact partition of its latency into
//!   queue / serialize / wire / retransmit / reconnect / idle;
//! * [`self_profile`] — per span kind, exclusive ("self") sim-time with
//!   child spans subtracted — the flame-graph view of a component;
//! * [`recovery_attribution`] — the chaos ride-out table: one supervision
//!   outage decomposed into backoff / redial / requeue / detect+idle
//!   components that **sum exactly** to the lost-to-restored window.
//!
//! Every function here is a pure fold over the event slice — no clocks,
//! no maps with nondeterministic iteration — so equal streams produce
//! equal tables, which the chaos benchmark's same-seed assertions rely
//! on.

use std::collections::HashMap;

use crate::event::{Event, EventKind};

/// One reconstructed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Packed span id (see [`crate::trace::SpanId`]).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Trace (root-span) id, 0 for unattributed work.
    pub trace: u64,
    /// Kind label from the open event.
    pub kind: &'static str,
    /// Correlation key from the open event.
    pub key: u64,
    /// Open timestamp, virtual ns.
    pub open_ns: u64,
    /// Close timestamp, `None` if the stream ended with the span open.
    pub close_ns: Option<u64>,
    /// Outcome key from the close event (0 while open).
    pub close_key: u64,
}

impl Span {
    /// Duration in ns; open spans count as zero-length.
    #[must_use]
    pub fn dur_ns(&self) -> u64 {
        self.close_ns
            .map_or(0, |c| c.saturating_sub(self.open_ns))
    }

    /// The `[open, close)` interval (open spans collapse to a point).
    #[must_use]
    pub fn interval(&self) -> (u64, u64) {
        (self.open_ns, self.close_ns.unwrap_or(self.open_ns))
    }
}

/// All spans of a recorded stream, in open order.
#[derive(Debug, Default, Clone)]
pub struct SpanForest {
    spans: Vec<Span>,
    by_id: HashMap<u64, usize>,
}

impl SpanForest {
    /// Rebuilds the forest from an event stream. Closes without a
    /// matching open (evicted from a truncated ring) are ignored.
    #[must_use]
    pub fn build(events: &[Event]) -> SpanForest {
        let mut forest = SpanForest::default();
        for ev in events {
            match &ev.kind {
                EventKind::SpanOpen {
                    span,
                    parent,
                    trace,
                    kind,
                    key,
                } => {
                    forest.by_id.insert(*span, forest.spans.len());
                    forest.spans.push(Span {
                        id: *span,
                        parent: *parent,
                        trace: *trace,
                        kind,
                        key: *key,
                        open_ns: ev.time_ns,
                        close_ns: None,
                        close_key: 0,
                    });
                }
                EventKind::SpanClose { span, key } => {
                    if let Some(&i) = forest.by_id.get(span) {
                        forest.spans[i].close_ns = Some(ev.time_ns);
                        forest.spans[i].close_key = *key;
                    }
                }
                _ => {}
            }
        }
        forest
    }

    /// Spans in open order.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Looks a span up by id.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<&Span> {
        self.by_id.get(&id).map(|&i| &self.spans[i])
    }

    /// Direct children of `id`, in open order.
    #[must_use]
    pub fn children_of(&self, id: u64) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.parent == id).collect()
    }

    /// Spans of one kind, in open order.
    #[must_use]
    pub fn of_kind(&self, kind: &str) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.kind == kind).collect()
    }
}

/// Clips `iv` to `win`, dropping empty leftovers.
fn clip(iv: (u64, u64), win: (u64, u64)) -> Option<(u64, u64)> {
    let a = iv.0.max(win.0);
    let b = iv.1.min(win.1);
    (a < b).then_some((a, b))
}

/// Total length of the union of intervals.
fn union_len(mut iv: Vec<(u64, u64)>) -> u64 {
    iv.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (a, b) in iv {
        match cur {
            Some((ca, cb)) if a <= cb => cur = Some((ca, cb.max(b))),
            Some((ca, cb)) => {
                total += cb - ca;
                let _ = ca;
                cur = Some((a, b));
            }
            None => cur = Some((a, b)),
        }
    }
    if let Some((ca, cb)) = cur {
        total += cb - ca;
    }
    total
}

/// Exact partition of `window` across interval classes by priority:
/// every elementary sub-interval is charged to the *first* class covering
/// it; whatever no class covers lands in the trailing "idle" bucket. The
/// returned lengths (one per class, plus idle last) always sum to the
/// window length.
fn partition(window: (u64, u64), classes: &[Vec<(u64, u64)>]) -> Vec<u64> {
    let mut edges: Vec<u64> = vec![window.0, window.1];
    let clipped: Vec<Vec<(u64, u64)>> = classes
        .iter()
        .map(|c| c.iter().filter_map(|&iv| clip(iv, window)).collect())
        .collect();
    for c in &clipped {
        for &(a, b) in c {
            edges.push(a);
            edges.push(b);
        }
    }
    edges.sort_unstable();
    edges.dedup();
    let mut out = vec![0u64; classes.len() + 1];
    for w in edges.windows(2) {
        let (a, b) = (w[0], w[1]);
        let hit = clipped
            .iter()
            .position(|c| c.iter().any(|&(ca, cb)| ca <= a && cb >= b));
        match hit {
            Some(i) => out[i] += b - a,
            None => *out.last_mut().expect("idle bucket") += b - a,
        }
    }
    out
}

/// Latency breakdown of one application message (its `msg` root span).
/// The six components sum exactly to `total_ns`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgBreakdown {
    /// Trace id (the `msg` span id).
    pub trace: u64,
    /// Correlation key of the root span (packed destination).
    pub key: u64,
    /// Send-to-acked-delivery latency, ns (0 for unclosed messages).
    pub total_ns: u64,
    /// Time spent queued behind other frames (enqueue spans).
    pub queue_ns: u64,
    /// Middleware processing at the edges (deliver spans).
    pub serialize_ns: u64,
    /// Time on the wire making first-transmission progress.
    pub wire_ns: u64,
    /// Wire time overlapping retransmitted transport segments.
    pub retransmit_ns: u64,
    /// Time overlapping a supervision outage (reconnect episode).
    pub reconnect_ns: u64,
    /// Remainder: covered by no recorded activity.
    pub idle_ns: u64,
}

/// Per-message breakdowns, one per **closed** `msg` root span, in open
/// order. Reconnect time is any overlap with an `outage` span;
/// retransmit time is wire time overlapping a transport segment that was
/// retransmitted (`seg` spans closed with key 1); queue/wire come from
/// the message's own `enqueue`/`xmit` children. Priority on overlap:
/// reconnect > retransmit > wire > queue > serialize.
#[must_use]
pub fn message_breakdowns(forest: &SpanForest) -> Vec<MsgBreakdown> {
    let outages: Vec<(u64, u64)> = forest.of_kind("outage").iter().map(|s| s.interval()).collect();
    let rexmit_segs: Vec<(u64, u64)> = forest
        .of_kind("seg")
        .iter()
        .filter(|s| s.close_key == 1)
        .map(|s| s.interval())
        .collect();
    let mut out = Vec::new();
    for msg in forest.of_kind("msg") {
        let Some(close) = msg.close_ns else { continue };
        let window = (msg.open_ns, close);
        let mut queue = Vec::new();
        let mut xmit = Vec::new();
        let mut deliver = Vec::new();
        for s in forest.spans() {
            if s.trace != msg.id {
                continue;
            }
            match s.kind {
                "enqueue" => queue.push(s.interval()),
                "xmit" => xmit.push(s.interval()),
                "deliver" => deliver.push(s.interval()),
                _ => {}
            }
        }
        // Retransmit overlap only counts where the message was actually
        // on the wire, so pre-intersect segs with the xmit intervals.
        let rexmit: Vec<(u64, u64)> = rexmit_segs
            .iter()
            .flat_map(|&r| xmit.iter().filter_map(move |&x| clip(r, x)))
            .collect();
        let parts = partition(
            window,
            &[outages.clone(), rexmit, xmit.clone(), queue, deliver],
        );
        out.push(MsgBreakdown {
            trace: msg.id,
            key: msg.key,
            total_ns: close - msg.open_ns,
            reconnect_ns: parts[0],
            retransmit_ns: parts[1],
            wire_ns: parts[2],
            queue_ns: parts[3],
            serialize_ns: parts[4],
            idle_ns: parts[5],
        });
    }
    out
}

/// One row of the per-kind self-time profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// Span kind label.
    pub kind: &'static str,
    /// Spans of this kind (closed or not).
    pub count: u64,
    /// Total inclusive duration, ns.
    pub total_ns: u64,
    /// Exclusive duration: inclusive minus the union of child spans.
    pub self_ns: u64,
}

/// Per-kind self-time profile (the flame-graph totals), sorted by label
/// so output is deterministic.
#[must_use]
pub fn self_profile(forest: &SpanForest) -> Vec<ProfileRow> {
    let mut children: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
    for s in forest.spans() {
        if s.parent != 0 {
            children.entry(s.parent).or_default().push(s.interval());
        }
    }
    let mut rows: HashMap<&'static str, ProfileRow> = HashMap::new();
    for s in forest.spans() {
        let row = rows.entry(s.kind).or_insert(ProfileRow {
            kind: s.kind,
            count: 0,
            total_ns: 0,
            self_ns: 0,
        });
        row.count += 1;
        let dur = s.dur_ns();
        row.total_ns += dur;
        let covered = children.get(&s.id).map_or(0, |kids| {
            union_len(
                kids.iter()
                    .filter_map(|&iv| clip(iv, s.interval()))
                    .collect(),
            )
        });
        row.self_ns += dur.saturating_sub(covered.min(dur));
    }
    let mut out: Vec<ProfileRow> = rows.into_values().collect();
    out.sort_by_key(|r| r.kind);
    out
}

/// The chaos ride-out table: one recovery window decomposed into
/// component latencies that sum exactly to `total_ns`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryAttribution {
    /// Channel key of the outage span that restored first.
    pub channel_key: u64,
    /// Window start: the earliest outage open (first `ConnectionLost`).
    pub from_ns: u64,
    /// Window end: the earliest outage close (first restore/drop).
    pub to_ns: u64,
    /// `to_ns - from_ns`; always equals the sum of all component values.
    pub total_ns: u64,
    /// `(label, ns)` components: `backoff`, `redial`, `requeue`, `idle`.
    pub components: Vec<(&'static str, u64)>,
}

/// Reconstructs the recovery attribution for the first-healed supervision
/// outage: the window runs from the **earliest** outage open (matching
/// the "first lost" edge of a recovery-latency measurement) to the
/// earliest outage close, and is partitioned over that outage's child
/// spans (redial first, then backoff, then requeue; the uncovered rest is
/// detection/idle time). Returns `None` when no outage span closed.
#[must_use]
pub fn recovery_attribution(forest: &SpanForest) -> Option<RecoveryAttribution> {
    let outages = forest.of_kind("outage");
    let from_ns = outages.iter().map(|s| s.open_ns).min()?;
    let first_healed = outages
        .iter()
        .filter(|s| s.close_ns.is_some())
        .min_by_key(|s| (s.close_ns.expect("filtered"), s.open_ns, s.id))?;
    let to_ns = first_healed.close_ns.expect("filtered");
    let window = (from_ns, to_ns);
    let mut backoff = Vec::new();
    let mut redial = Vec::new();
    let mut requeue = Vec::new();
    for c in forest.children_of(first_healed.id) {
        match c.kind {
            "backoff" => backoff.push(c.interval()),
            "redial" => redial.push(c.interval()),
            "requeue" => requeue.push(c.interval()),
            _ => {}
        }
    }
    let parts = partition(window, &[redial, backoff, requeue]);
    Some(RecoveryAttribution {
        channel_key: first_healed.key,
        from_ns,
        to_ns,
        total_ns: to_ns - from_ns,
        components: vec![
            ("backoff", parts[1]),
            ("redial", parts[0]),
            ("requeue", parts[2]),
            ("idle", parts[3]),
        ],
    })
}

/// Decomposes one overlay rerouting episode the way
/// [`recovery_attribution`] decomposes a supervision recovery: the caller
/// supplies the measured delivery-gap window (`window_from_ns` = the
/// fault hitting the wire, `window_to_ns` = the first delivery over the
/// surviving path) and the components partition it exactly:
///
/// * `detect` — fault applied until the overlay observed the channel
///   death (`reroute` span open; transport timeout territory);
/// * `route_compute` — link-state BFS time inside the reroute span;
/// * `flush` — the rest of the reroute span (re-sending buffered frames
///   onto the surviving path);
/// * `transit` — reroute span close until the rerouted frame was
///   delivered (connect + wire time on the alternate path).
///
/// Uses the **earliest** reroute span that closed inside the window.
/// Returns `None` when no reroute span closed in the window, or the
/// window does not contain the span.
#[must_use]
pub fn reroute_attribution(
    forest: &SpanForest,
    window_from_ns: u64,
    window_to_ns: u64,
) -> Option<RecoveryAttribution> {
    let episode = forest
        .of_kind("reroute")
        .into_iter()
        .filter(|s| {
            s.open_ns >= window_from_ns
                && s.close_ns.is_some_and(|c| c <= window_to_ns)
        })
        .min_by_key(|s| (s.open_ns, s.id))?;
    let close_ns = episode.close_ns.expect("filtered");
    let compute: Vec<(u64, u64)> = forest
        .children_of(episode.id)
        .into_iter()
        .filter(|c| c.kind == "route_compute")
        .map(Span::interval)
        .collect();
    let compute_ns: u64 = compute
        .iter()
        .map(|(a, b)| b - a)
        .sum::<u64>()
        .min(close_ns - episode.open_ns);
    Some(RecoveryAttribution {
        channel_key: episode.key,
        from_ns: window_from_ns,
        to_ns: window_to_ns,
        total_ns: window_to_ns - window_from_ns,
        components: vec![
            ("detect", episode.open_ns - window_from_ns),
            ("route_compute", compute_ns),
            ("flush", (close_ns - episode.open_ns) - compute_ns),
            ("transit", window_to_ns - close_ns),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanKind;
    use crate::Recorder;

    fn ev_open(t: u64, span: u64, parent: u64, trace: u64, kind: &'static str, key: u64) -> Event {
        Event {
            time_ns: t,
            kind: EventKind::SpanOpen {
                span,
                parent,
                trace,
                kind,
                key,
            },
        }
    }

    fn ev_close(t: u64, span: u64, key: u64) -> Event {
        Event {
            time_ns: t,
            kind: EventKind::SpanClose { span, key },
        }
    }

    #[test]
    fn forest_links_parents_and_closes() {
        let events = vec![
            ev_open(10, 1, 0, 1, "msg", 5),
            ev_open(12, 2, 1, 1, "enqueue", 0),
            ev_close(20, 2, 0),
            ev_close(30, 1, 0),
        ];
        let f = SpanForest::build(&events);
        assert_eq!(f.spans().len(), 2);
        assert_eq!(f.get(1).expect("root").dur_ns(), 20);
        assert_eq!(f.children_of(1).len(), 1);
        assert_eq!(f.of_kind("enqueue")[0].interval(), (12, 20));
        // A close without an open (truncated ring) is ignored.
        let f2 = SpanForest::build(&[ev_close(5, 99, 0)]);
        assert!(f2.spans().is_empty());
    }

    #[test]
    fn partition_is_exact_and_prioritised() {
        // window [0,100): class A covers [10,40), class B covers [30,60).
        let parts = partition(
            (0, 100),
            &[vec![(10, 40)], vec![(30, 60)]],
        );
        assert_eq!(parts, vec![30, 20, 50]); // A, B-minus-A, idle
        assert_eq!(parts.iter().sum::<u64>(), 100);
    }

    #[test]
    fn message_breakdown_components_sum_to_total() {
        let events = vec![
            ev_open(0, 1, 0, 1, "msg", 9),
            ev_open(0, 2, 1, 1, "enqueue", 0),
            ev_close(40, 2, 0),
            ev_open(40, 3, 1, 1, "xmit", 0),
            // An outage overlaps the tail of the transmission.
            ev_open(70, 4, 0, 0, "outage", 7),
            ev_close(90, 4, 0),
            ev_close(100, 3, 0),
            ev_close(120, 1, 0),
        ];
        let f = SpanForest::build(&events);
        let b = message_breakdowns(&f);
        assert_eq!(b.len(), 1);
        let m = &b[0];
        assert_eq!(m.total_ns, 120);
        assert_eq!(m.queue_ns, 40);
        assert_eq!(m.wire_ns, 40); // [40,70) + [90,100)
        assert_eq!(m.reconnect_ns, 20); // [70,90)
        assert_eq!(m.idle_ns, 20); // [100,120)
        assert_eq!(
            m.queue_ns + m.serialize_ns + m.wire_ns + m.retransmit_ns + m.reconnect_ns + m.idle_ns,
            m.total_ns
        );
    }

    #[test]
    fn retransmit_overlap_charged_within_xmit_only() {
        let events = vec![
            ev_open(0, 1, 0, 1, "msg", 0),
            ev_open(10, 2, 1, 1, "xmit", 0),
            ev_close(50, 2, 0),
            // Retransmitted segment overlapping [30,80): only [30,50)
            // falls inside the xmit window.
            ev_open(30, 3, 0, 0, "seg", 77),
            ev_close(80, 3, 1),
            ev_close(90, 1, 0),
        ];
        let f = SpanForest::build(&events);
        let m = &message_breakdowns(&f)[0];
        assert_eq!(m.retransmit_ns, 20);
        assert_eq!(m.wire_ns, 20); // [10,30)
        assert_eq!(m.idle_ns, 90 - 20 - 20);
    }

    #[test]
    fn self_profile_subtracts_children() {
        let events = vec![
            ev_open(0, 1, 0, 1, "msg", 0),
            ev_open(10, 2, 1, 1, "xmit", 0),
            ev_close(60, 2, 0),
            ev_close(100, 1, 0),
        ];
        let rows = self_profile(&SpanForest::build(&events));
        let msg = rows.iter().find(|r| r.kind == "msg").expect("msg row");
        assert_eq!(msg.total_ns, 100);
        assert_eq!(msg.self_ns, 50);
        let xmit = rows.iter().find(|r| r.kind == "xmit").expect("xmit row");
        assert_eq!(xmit.self_ns, 50);
    }

    #[test]
    fn recovery_attribution_sums_exactly() {
        let events = vec![
            ev_open(1_000, 10, 0, 0, "outage", 42),
            ev_open(1_000, 11, 10, 0, "requeue", 2),
            ev_close(1_000, 11, 0),
            ev_open(1_000, 12, 10, 0, "backoff", 1),
            ev_close(1_100, 12, 0),
            ev_open(1_100, 13, 10, 0, "redial", 1),
            ev_close(1_160, 13, 1),
            ev_open(1_160, 14, 10, 0, "backoff", 2),
            ev_close(1_360, 14, 0),
            ev_open(1_360, 15, 10, 0, "redial", 2),
            ev_close(1_400, 15, 0),
            ev_close(1_400, 10, 0),
        ];
        let att = recovery_attribution(&SpanForest::build(&events)).expect("attribution");
        assert_eq!(att.total_ns, 400);
        assert_eq!(att.channel_key, 42);
        let get = |k: &str| {
            att.components
                .iter()
                .find(|(l, _)| *l == k)
                .map(|(_, v)| *v)
                .expect("component")
        };
        assert_eq!(get("backoff"), 300);
        assert_eq!(get("redial"), 100);
        assert_eq!(get("requeue"), 0);
        assert_eq!(get("idle"), 0);
        assert_eq!(
            att.components.iter().map(|(_, v)| v).sum::<u64>(),
            att.total_ns
        );
    }

    #[test]
    fn reroute_attribution_sums_exactly() {
        // Fault at 1_000, reroute span opens at detection (1_400) with one
        // route_compute child, closes after flush (1_450); first rerouted
        // delivery at 1_500.
        let events = vec![
            ev_open(1_400, 10, 0, 0, "reroute", 7),
            ev_open(1_400, 11, 10, 0, "route_compute", 7),
            ev_close(1_420, 11, 0),
            ev_close(1_450, 10, 0),
        ];
        let att = reroute_attribution(&SpanForest::build(&events), 1_000, 1_500)
            .expect("attribution");
        assert_eq!(att.total_ns, 500);
        assert_eq!(att.channel_key, 7);
        let get = |k: &str| {
            att.components
                .iter()
                .find(|(l, _)| *l == k)
                .map(|(_, v)| *v)
                .expect("component")
        };
        assert_eq!(get("detect"), 400);
        assert_eq!(get("route_compute"), 20);
        assert_eq!(get("flush"), 30);
        assert_eq!(get("transit"), 50);
        assert_eq!(
            att.components.iter().map(|(_, v)| v).sum::<u64>(),
            att.total_ns
        );
    }

    #[test]
    fn recovery_window_starts_at_earliest_outage() {
        // A second channel lost earlier but healed later: the window
        // starts at its open (first lost) and ends at the first heal.
        let events = vec![
            ev_open(500, 20, 0, 0, "outage", 1),
            ev_open(1_000, 10, 0, 0, "outage", 2),
            ev_close(1_400, 10, 0),
            ev_close(2_000, 20, 0),
        ];
        let att = recovery_attribution(&SpanForest::build(&events)).expect("attribution");
        assert_eq!(att.from_ns, 500);
        assert_eq!(att.to_ns, 1_400);
        assert_eq!(att.total_ns, 900);
        assert_eq!(att.channel_key, 2);
        assert_eq!(
            att.components.iter().map(|(_, v)| v).sum::<u64>(),
            att.total_ns
        );
    }

    #[test]
    fn tracer_output_feeds_the_analyzer() {
        let rec = Recorder::new();
        rec.enable();
        let tr = rec.tracer();
        let msg = tr.open_root(0, SpanKind::Msg, 1);
        let q = tr.open(0, SpanKind::Enqueue, msg, msg, 0);
        tr.close(25, q);
        let x = tr.open(25, SpanKind::Xmit, msg, msg, 0);
        tr.close(75, x);
        tr.close(80, msg);
        let f = SpanForest::build(&rec.events());
        let b = message_breakdowns(&f);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].queue_ns, 25);
        assert_eq!(b[0].wire_ns, 50);
        assert_eq!(b[0].idle_ns, 5);
    }
}
