//! Causal spans over the flight recorder.
//!
//! A **span** is an interval of virtual time attributed to one stage of a
//! message's life (queueing, transmission, a link hop, a reconnect
//! episode, ...). Spans are recorded as plain flight-recorder events —
//! [`EventKind::SpanOpen`] / [`EventKind::SpanClose`] — so they inherit
//! every property of the ring: lock-free single-writer recording,
//! deterministic sim-time stamps, JSONL export, and ~zero cost while the
//! recorder is disabled.
//!
//! Span ids are **packed 8-byte handles** in the slab-handle idiom: the
//! top byte carries the [`SpanKind`], the low 56 bits a per-recorder
//! sequence number. The hot path allocates nothing — opening a span is
//! one relaxed `fetch_add` plus one ring append, and a disabled recorder
//! returns [`SpanId::NONE`] after a single relaxed load.
//!
//! Spans form a forest: a root span (opened with [`Tracer::open_root`])
//! doubles as the **trace id** for the whole message, and children carry
//! both their parent's id and the trace id so consumers can reconstruct
//! per-message critical paths ([`crate::critical_path`]) without a join
//! over intermediate spans.

use crate::event::EventKind;
use crate::Recorder;

/// What a span measures. The discriminant is packed into the top byte of
/// every [`SpanId`], so a raw id is self-describing even without its
/// open event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// Whole application message: middleware `send` to acked delivery.
    Msg = 1,
    /// Frame waiting in a channel's pending queue.
    Enqueue = 2,
    /// Frame on the wire: first byte written to fully acknowledged.
    Xmit = 3,
    /// Transport resolution for one message (DATA striping / failover).
    ChannelPick = 4,
    /// Supervision episode: channel lost to restored (or dropped).
    Outage = 5,
    /// Reconnect backoff timer armed to fired.
    Backoff = 6,
    /// One redial attempt: connect issued to established (or failed).
    Redial = 7,
    /// Unacked frames requeued ahead of pending on channel death.
    Requeue = 8,
    /// DATA frame rerouted to the surviving transport.
    Failover = 9,
    /// Frame handed to the destination port (delivery edge).
    Deliver = 10,
    /// Receiver-side duplicate absorbed by session dedup.
    Dedup = 11,
    /// One transport segment: first transmission to cumulative ack.
    Seg = 12,
    /// UDT loss recovery: first NAK-listed packet to loss list drained.
    NakRecovery = 13,
    /// Packet in flight across the fabric: injected to delivered/dropped.
    Flight = 14,
    /// One link traversal (queue + wire + propagation) of one packet.
    Hop = 15,
    /// One learner decision (Sarsa step) — instant.
    Decide = 16,
    /// Overlay rerouting episode: link loss observed to rerouted frames
    /// flushed onto the surviving path.
    Reroute = 17,
    /// One overlay route computation (link-state BFS) — instant.
    RouteCompute = 18,
}

impl SpanKind {
    /// Stable label used in span events and trace exports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Msg => "msg",
            SpanKind::Enqueue => "enqueue",
            SpanKind::Xmit => "xmit",
            SpanKind::ChannelPick => "channel_pick",
            SpanKind::Outage => "outage",
            SpanKind::Backoff => "backoff",
            SpanKind::Redial => "redial",
            SpanKind::Requeue => "requeue",
            SpanKind::Failover => "failover",
            SpanKind::Deliver => "deliver",
            SpanKind::Dedup => "dedup",
            SpanKind::Seg => "seg",
            SpanKind::NakRecovery => "nak_recovery",
            SpanKind::Flight => "flight",
            SpanKind::Hop => "hop",
            SpanKind::Decide => "decide",
            SpanKind::Reroute => "reroute",
            SpanKind::RouteCompute => "route_compute",
        }
    }

    /// Recovers the kind from a packed id's top byte.
    #[must_use]
    pub fn from_byte(b: u8) -> Option<SpanKind> {
        Some(match b {
            1 => SpanKind::Msg,
            2 => SpanKind::Enqueue,
            3 => SpanKind::Xmit,
            4 => SpanKind::ChannelPick,
            5 => SpanKind::Outage,
            6 => SpanKind::Backoff,
            7 => SpanKind::Redial,
            8 => SpanKind::Requeue,
            9 => SpanKind::Failover,
            10 => SpanKind::Deliver,
            11 => SpanKind::Dedup,
            12 => SpanKind::Seg,
            13 => SpanKind::NakRecovery,
            14 => SpanKind::Flight,
            15 => SpanKind::Hop,
            16 => SpanKind::Decide,
            17 => SpanKind::Reroute,
            18 => SpanKind::RouteCompute,
            _ => return None,
        })
    }
}

/// Packed 8-byte span handle: `kind << 56 | sequence`.
///
/// `SpanId::NONE` (all zeros) means "no span" — it is what every tracer
/// call returns while the recorder is disabled, and closing it is a
/// no-op, so instrumented code threads ids around unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SpanId(u64);

impl SpanId {
    /// The null span: never recorded, closing it is a no-op.
    pub const NONE: SpanId = SpanId(0);

    /// Rebuilds a handle from its raw packed value (e.g. a field carried
    /// through an in-memory struct).
    #[must_use]
    pub fn from_raw(raw: u64) -> SpanId {
        SpanId(raw)
    }

    /// The raw packed value (0 for [`SpanId::NONE`]).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Whether this is the null span.
    #[must_use]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The kind packed into the top byte, if the id is valid.
    #[must_use]
    pub fn kind(self) -> Option<SpanKind> {
        SpanKind::from_byte((self.0 >> 56) as u8)
    }

    /// The low 56-bit allocation sequence number.
    #[must_use]
    pub fn seq(self) -> u64 {
        self.0 & ((1 << 56) - 1)
    }
}

/// Span recording front-end: a thin, cloneable wrapper over a
/// [`Recorder`] that allocates ids and stamps open/close events.
#[derive(Debug, Clone)]
pub struct Tracer {
    rec: Recorder,
}

impl Tracer {
    /// A tracer recording into `rec`.
    #[must_use]
    pub fn new(rec: Recorder) -> Tracer {
        Tracer { rec }
    }

    /// Whether spans are currently being recorded (one relaxed load).
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.rec.is_enabled()
    }

    /// The recorder this tracer stamps into.
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// Opens a span at virtual time `time_ns`. Returns [`SpanId::NONE`]
    /// without recording anything while the recorder is disabled.
    #[inline]
    pub fn open(
        &self,
        time_ns: u64,
        kind: SpanKind,
        parent: SpanId,
        trace: SpanId,
        key: u64,
    ) -> SpanId {
        if !self.rec.is_enabled() {
            return SpanId::NONE;
        }
        let id = SpanId(((kind as u64) << 56) | self.rec.next_span_seq());
        self.rec.record(
            time_ns,
            EventKind::SpanOpen {
                span: id.0,
                parent: parent.0,
                trace: trace.0,
                kind: kind.label(),
                key,
            },
        );
        id
    }

    /// Opens a root span whose id doubles as the trace id for all its
    /// descendants.
    #[inline]
    pub fn open_root(&self, time_ns: u64, kind: SpanKind, key: u64) -> SpanId {
        if !self.rec.is_enabled() {
            return SpanId::NONE;
        }
        let id = SpanId(((kind as u64) << 56) | self.rec.next_span_seq());
        self.rec.record(
            time_ns,
            EventKind::SpanOpen {
                span: id.0,
                parent: 0,
                trace: id.0,
                kind: kind.label(),
                key,
            },
        );
        id
    }

    /// Closes a span with outcome key 0. No-op for [`SpanId::NONE`].
    #[inline]
    pub fn close(&self, time_ns: u64, span: SpanId) {
        self.close_with(time_ns, span, 0);
    }

    /// Closes a span with a kind-specific outcome key. No-op for
    /// [`SpanId::NONE`] — which is also what keeps the disabled path
    /// free: a span that was never opened is never closed.
    #[inline]
    pub fn close_with(&self, time_ns: u64, span: SpanId, key: u64) {
        if span.is_none() {
            return;
        }
        self.rec
            .record(time_ns, EventKind::SpanClose { span: span.0, key });
    }

    /// Records a zero-duration span (open + close at the same instant) —
    /// for lifecycle *edges* (a requeue, a dedup hit, a learner decision)
    /// where the interesting datum is when it happened and its key.
    #[inline]
    pub fn instant(&self, time_ns: u64, kind: SpanKind, parent: SpanId, trace: SpanId, key: u64) {
        let id = self.open(time_ns, kind, parent, trace, key);
        self.close(time_ns, id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_free_and_returns_none() {
        let rec = Recorder::new();
        let tr = rec.tracer();
        let id = tr.open_root(5, SpanKind::Msg, 9);
        assert!(id.is_none());
        tr.close(6, id);
        tr.instant(7, SpanKind::Requeue, id, id, 0);
        assert_eq!(rec.event_count(), 0);
        assert_eq!(rec.recorded_total(), 0);
    }

    #[test]
    fn ids_pack_kind_and_sequence() {
        let rec = Recorder::new();
        rec.enable();
        let tr = rec.tracer();
        let root = tr.open_root(1, SpanKind::Msg, 0);
        let child = tr.open(2, SpanKind::Xmit, root, root, 42);
        assert_eq!(root.kind(), Some(SpanKind::Msg));
        assert_eq!(child.kind(), Some(SpanKind::Xmit));
        assert_eq!(root.seq(), 1);
        assert_eq!(child.seq(), 2);
        assert_eq!(SpanId::from_raw(child.raw()), child);
        assert!(!child.is_none());
        tr.close(3, child);
        tr.close(4, root);
        let evs = rec.events();
        assert_eq!(evs.len(), 4);
        match evs[1].kind {
            EventKind::SpanOpen {
                span,
                parent,
                trace,
                kind,
                key,
            } => {
                assert_eq!(span, child.raw());
                assert_eq!(parent, root.raw());
                assert_eq!(trace, root.raw());
                assert_eq!(kind, "xmit");
                assert_eq!(key, 42);
            }
            ref k => panic!("unexpected {k:?}"),
        }
        match evs[3].kind {
            EventKind::SpanClose { span, key } => {
                assert_eq!(span, root.raw());
                assert_eq!(key, 0);
            }
            ref k => panic!("unexpected {k:?}"),
        }
    }

    #[test]
    fn same_inputs_allocate_identical_ids() {
        let run = || {
            let rec = Recorder::new();
            rec.enable();
            let tr = rec.tracer();
            let a = tr.open_root(1, SpanKind::Msg, 0);
            let b = tr.open(2, SpanKind::Seg, a, a, 7);
            tr.close(3, b);
            tr.close(4, a);
            (a.raw(), b.raw(), rec.to_jsonl())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn kind_round_trips_through_byte() {
        for k in [
            SpanKind::Msg,
            SpanKind::Enqueue,
            SpanKind::Xmit,
            SpanKind::ChannelPick,
            SpanKind::Outage,
            SpanKind::Backoff,
            SpanKind::Redial,
            SpanKind::Requeue,
            SpanKind::Failover,
            SpanKind::Deliver,
            SpanKind::Dedup,
            SpanKind::Seg,
            SpanKind::NakRecovery,
            SpanKind::Flight,
            SpanKind::Hop,
            SpanKind::Decide,
        ] {
            assert_eq!(SpanKind::from_byte(k as u8), Some(k), "{}", k.label());
        }
        assert_eq!(SpanKind::from_byte(0), None);
        assert_eq!(SpanKind::from_byte(200), None);
    }
}
