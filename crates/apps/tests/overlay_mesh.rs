//! Mesh overlay scenario tests: seeded runs are byte-identical, the
//! oracle suite stays clean over a seed range, the scenario-sized
//! recorder ring never evicts control-plane events, and scripted
//! partitions actually exercise the reroute path.

use kmsg_apps::{overlay_oracle_config, overlay_run_facts, run_overlay_spec, OverlaySpec};

#[test]
fn same_seed_runs_are_byte_identical() {
    let spec = OverlaySpec::generate(11);
    let a = run_overlay_spec(&spec);
    let b = run_overlay_spec(&spec);
    assert_eq!(a.render(), b.render());
    assert_eq!(
        a.recorder.events().len(),
        b.recorder.events().len(),
        "traces must replay exactly"
    );
}

#[test]
fn oracle_suite_is_clean_over_seed_range() {
    let cfg = overlay_oracle_config();
    let mut partitioned = 0u32;
    let mut rerouted = 0u32;
    for seed in 0..8 {
        let spec = OverlaySpec::generate(seed);
        let report = run_overlay_spec(&spec);
        let facts = overlay_run_facts(&report);
        let events = report.recorder.events();
        let violations = kmsg_oracle::check_all(&events, &facts, &cfg);
        assert!(
            violations.is_empty(),
            "seed {seed}: {}\n{}",
            kmsg_oracle::render_verdict(&violations),
            report.render()
        );
        assert!(facts.completed, "seed {seed}: lost deliveries\n{}", report.render());
        assert!(report.facts.converged, "seed {seed}: tables diverged");
        // The scenario-sized ring must never evict supervision events.
        assert_eq!(
            report.evicted_conn_status, 0,
            "seed {seed}: ConnStatus evicted from a scenario-sized ring"
        );
        if !spec.partitions.is_empty() {
            partitioned += 1;
            let reroutes: u64 = report.per_node.iter().map(|n| n.reroutes).sum();
            if reroutes > 0 {
                rerouted += 1;
            }
        }
    }
    assert!(partitioned >= 2, "seed range must include partitioned runs");
    assert!(rerouted >= 1, "partitions must exercise the reroute path");
}

#[test]
fn partitioned_run_reroutes_and_stays_at_most_once() {
    // Find a generated spec with a partition overlapping a publish so the
    // reroute path is guaranteed hot, then check the invariants directly.
    let spec = (0..64)
        .map(OverlaySpec::generate)
        .find(|s| {
            s.partitions.iter().any(|w| {
                s.publishes
                    .iter()
                    .any(|p| p.at_ms >= w.from_ms.saturating_sub(300) && p.at_ms < w.to_ms)
            })
        })
        .expect("some seed publishes into a partition window");
    let report = run_overlay_spec(&spec);
    assert_eq!(
        report.facts.delivered, report.facts.expected_deliveries,
        "all deliveries must arrive despite the partition\n{}",
        report.render()
    );
    assert!(report.facts.converged);
    for (i, n) in report.per_node.iter().enumerate() {
        assert_eq!(n.ttl_drops, 0, "node {i} dropped frames on TTL");
    }
    assert_eq!(report.channels_dropped, 0, "supervision must not exhaust its budget");
}
