//! Property-based tests on the workload generators.

use proptest::prelude::*;

use kmsg_apps::dataset::{chunk_hash, Dataset, DatasetKind};

proptest! {
    #[test]
    fn dataset_chunks_tile(size in 1usize..50_000, chunk in 1usize..9_999, seed in 0u64..50,
                           climate in any::<bool>()) {
        let kind = if climate { DatasetKind::Climate } else { DatasetKind::Random };
        let ds = Dataset { kind, size, seed };
        let whole = ds.chunk(0, size);
        let mut tiled = Vec::new();
        let mut offset = 0;
        while offset < size {
            tiled.extend_from_slice(&ds.chunk(offset, chunk));
            offset += chunk;
        }
        prop_assert_eq!(whole.to_vec(), tiled);
    }

    #[test]
    fn checksum_order_independent(size in 1usize..20_000, chunk in 100usize..5_000,
                                  seed in 0u64..50, shuffle_seed in 0u64..50) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let ds = Dataset::climate(size, seed);
        let expected = ds.checksum(chunk);
        let mut offsets: Vec<usize> = (0..ds.chunk_count(chunk)).map(|i| i * chunk).collect();
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(shuffle_seed);
        offsets.shuffle(&mut rng);
        let mut acc = 0u64;
        for off in offsets {
            acc = acc.wrapping_add(chunk_hash(off as u64, &ds.chunk(off, chunk)));
        }
        prop_assert_eq!(acc, expected);
    }

    #[test]
    fn disk_model_completion_monotonic(sizes in proptest::collection::vec(1usize..1_000_000, 1..20)) {
        let mut disk = kmsg_apps::DiskModel::new(100e6);
        let mut last = kmsg_netsim::time::SimTime::ZERO;
        for s in sizes {
            let done = disk.access(kmsg_netsim::time::SimTime::ZERO, s);
            prop_assert!(done >= last, "completions must be ordered");
            last = done;
        }
    }
}
