//! Property-based tests on the workload generators, sampled by the
//! deterministic [`PropRunner`] — every case replays from its seeded
//! stream.

use kmsg_apps::dataset::{chunk_hash, Dataset, DatasetKind};
use kmsg_netsim::testutil::PropRunner;
use rand::Rng;

#[test]
fn dataset_chunks_tile() {
    PropRunner::new("dataset-chunks-tile").cases(64).run(
        |rng| {
            (
                rng.gen_range(1usize..50_000),
                rng.gen_range(1usize..9_999),
                rng.gen_range(0u64..50),
                rng.gen_bool(0.5),
            )
        },
        |&(size, chunk, seed, climate)| {
            let kind = if climate {
                DatasetKind::Climate
            } else {
                DatasetKind::Random
            };
            let ds = Dataset { kind, size, seed };
            let whole = ds.chunk(0, size);
            let mut tiled = Vec::new();
            let mut offset = 0;
            while offset < size {
                tiled.extend_from_slice(&ds.chunk(offset, chunk));
                offset += chunk;
            }
            assert_eq!(whole.to_vec(), tiled);
        },
    );
}

#[test]
fn checksum_order_independent() {
    PropRunner::new("dataset-checksum-order-independent")
        .cases(64)
        .run(
            |rng| {
                (
                    rng.gen_range(1usize..20_000),
                    rng.gen_range(100usize..5_000),
                    rng.gen_range(0u64..50),
                    rng.gen_range(0u64..50),
                )
            },
            |&(size, chunk, seed, shuffle_seed)| {
                use rand::seq::SliceRandom;
                use rand::SeedableRng;
                let ds = Dataset::climate(size, seed);
                let expected = ds.checksum(chunk);
                let mut offsets: Vec<usize> =
                    (0..ds.chunk_count(chunk)).map(|i| i * chunk).collect();
                let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(shuffle_seed);
                offsets.shuffle(&mut rng);
                let mut acc = 0u64;
                for off in offsets {
                    acc = acc.wrapping_add(chunk_hash(off as u64, &ds.chunk(off, chunk)));
                }
                assert_eq!(acc, expected);
            },
        );
}

#[test]
fn disk_model_completion_monotonic() {
    PropRunner::new("disk-completion-monotonic").cases(64).run(
        |rng| {
            let n = rng.gen_range(1usize..20);
            (0..n)
                .map(|_| rng.gen_range(1usize..1_000_000))
                .collect::<Vec<usize>>()
        },
        |sizes| {
            let mut disk = kmsg_apps::DiskModel::new(100e6);
            let mut last = kmsg_netsim::time::SimTime::ZERO;
            for &s in sizes {
                let done = disk.access(kmsg_netsim::time::SimTime::ZERO, s);
                assert!(done >= last, "completions must be ordered");
                last = done;
            }
        },
    );
}
