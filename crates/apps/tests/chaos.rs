//! Chaos integration: a `Transport::Data` transfer driven through a
//! scripted two-second partition must ride it out — the supervised
//! channels die, redial with backoff, and the transfer completes after
//! the heal with the content verifying (exactly-once at the session
//! layer). Two runs with the same seed must emit byte-identical
//! flight-recorder telemetry.

use std::time::Duration;

use kmsg_apps::{run_experiment, Dataset, ExperimentConfig, Setup};
use kmsg_core::prelude::*;
use kmsg_netsim::faults::FaultPlan;
use kmsg_netsim::link::LinkConfig;
use kmsg_netsim::packet::NodeId;
use kmsg_netsim::time::SimTime;

/// A 10 MB/s, 20 ms RTT link: slow enough that a 12 MB transfer spans the
/// partition window, fast enough to finish in simulated seconds.
fn chaos_setup() -> Setup {
    Setup::Custom {
        label: "chaos-10MB/s-10ms",
        link: LinkConfig::new(10e6, Duration::from_millis(10)),
    }
}

/// Impatient transports so channel death — and with it supervision — is
/// observable inside a two-second outage, plus a generous redial budget.
fn impatient_template() -> NetworkConfig {
    // The harness overwrites the address per host.
    let mut cfg = NetworkConfig::new(NetAddress::new(NodeId::from_index(0), 0));
    cfg.tcp.min_rto = Duration::from_millis(100);
    cfg.tcp.max_rto = Duration::from_millis(400);
    cfg.tcp.max_consecutive_timeouts = 3;
    cfg.tcp.syn_retries = 1;
    cfg.udt.exp_timeout = Duration::from_millis(100);
    cfg.udt.max_expirations = 5;
    cfg.reconnect = Some(ReconnectConfig {
        max_retries: 30,
        base_backoff: Duration::from_millis(100),
        max_backoff: Duration::from_millis(400),
        probe_interval: Some(Duration::from_secs(2)),
    });
    cfg
}

/// A 12 MB DATA transfer cut by a full partition from 0.6 s to 2.6 s.
fn chaos_config(seed: u64) -> ExperimentConfig {
    let dataset = Dataset::random(12_000_000, 5);
    let mut cfg = ExperimentConfig::transfer(chaos_setup(), Transport::Data, dataset, seed);
    cfg.net_template = Some(impatient_template());
    cfg.max_sim_time = Duration::from_secs(120);
    cfg.telemetry = true;
    // Causal spans stamp every packet flight and transport segment, so a
    // 12 MB transfer far outgrows the 64k default ring; keep the whole
    // run (faults at t=0.6s included) resident.
    cfg.telemetry_capacity = Some(1 << 21);
    cfg.faults = Some(FaultPlan::new().partition_between(
        SimTime::from_millis(600),
        SimTime::from_millis(2600),
        &[NodeId::from_index(0)],
        &[NodeId::from_index(1)],
    ));
    cfg
}

#[test]
fn data_transfer_rides_out_a_two_second_partition() {
    let result = run_experiment(&chaos_config(11));
    assert!(result.verified, "content must verify after the partition");
    let thr = result.throughput.expect("transfer must complete after the heal");
    assert!(thr > 0.0, "goodput after heal, got {thr}");
    assert_eq!(result.faults_applied, 4, "2 links severed + 2 healed");
    assert!(
        result.sender_net.reconnects >= 1,
        "the supervisor must have reconnected at least one channel: {:?}",
        result.sender_net
    );
    // Redelivered chunks are deduplicated at the session layer, never
    // surfaced twice (verified == true already implies this; the counter
    // additionally accounts for every redundant delivery).
    let jsonl = result.recorder.to_jsonl();
    assert!(
        jsonl.contains("\"conn_status\""),
        "supervision transitions must reach the flight recorder"
    );
    assert!(jsonl.contains("\"lost\""), "ConnectionLost must be recorded");
    assert!(jsonl.contains("\"restored\""), "ConnectionRestored must be recorded");
}

#[test]
fn same_seed_chaos_runs_are_byte_identical() {
    let run = || {
        let result = run_experiment(&chaos_config(23));
        assert!(result.verified, "each run must complete and verify");
        (
            result.faults_applied,
            result.sender_net.reconnects,
            result.duplicates,
            result.recorder.to_jsonl(),
        )
    };
    let (faults_1, reconnects_1, dups_1, jsonl_1) = run();
    let (faults_2, reconnects_2, dups_2, jsonl_2) = run();
    assert_eq!(faults_1, faults_2);
    assert_eq!(reconnects_1, reconnects_2);
    assert_eq!(dups_1, dups_2);
    assert!(jsonl_1.contains("\"fault\""), "injections must be in the stream");
    assert_eq!(jsonl_1, jsonl_2, "chaos telemetry must replay byte-for-byte");
}
