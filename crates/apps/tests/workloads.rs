//! Integration tests for the workload components themselves: multi-round
//! transfers, ping statistics, and sender/receiver bookkeeping.

use std::time::Duration;

use kmsg_apps::*;
use kmsg_component::prelude::*;
use kmsg_core::prelude::*;

fn build_pair(
    world: &TwoHostWorld,
) -> (
    NetAddress,
    NetAddress,
    ComponentRef<kmsg_core::net::NetworkComponent>,
    ComponentRef<kmsg_core::net::NetworkComponent>,
) {
    let a = NetAddress::new(world.host_a, 7000);
    let b = NetAddress::new(world.host_b, 7001);
    let na = create_network(&world.system, &world.net, NetworkConfig::new(a)).expect("bind a");
    let nb = create_network(&world.system, &world.net, NetworkConfig::new(b)).expect("bind b");
    world.system.start(&na);
    world.system.start(&nb);
    (a, b, na, nb)
}

#[test]
fn multi_round_transfer_verifies_and_times_rounds() {
    let world = two_host_world(3, &Setup::EuVpc);
    let (a, b, na, nb) = build_pair(&world);
    let dataset = Dataset::climate(4 * 1024 * 1024, 9);
    let rounds = 3;
    let sender = world.system.create(|| {
        FileSender::new(SenderConfig {
            rounds,
            disk_rate: None,
            ..SenderConfig::new(dataset, a, b, Transport::Tcp)
        })
    });
    world.system.connect::<NetworkPort, _, _>(&na, &sender);
    let receiver = world.system.create(|| {
        FileReceiver::new(ReceiverConfig {
            rounds,
            disk_rate: None,
            ..ReceiverConfig::new(dataset)
        })
    });
    world.system.connect::<NetworkPort, _, _>(&nb, &receiver);
    let rx = receiver.on_definition(|r| r.stats());
    world.system.start(&receiver);
    world.system.start(&sender);
    world.sim.run_for(Duration::from_secs(60));

    let stats = rx.lock().clone();
    assert_eq!(
        stats.bytes_received,
        dataset.size as u64 * u64::from(rounds),
        "all rounds must arrive"
    );
    assert_eq!(stats.round_done_at.len(), rounds as usize);
    assert!(stats.round_done_at.windows(2).all(|w| w[0] < w[1]));
    assert!(receiver.on_definition(|r| r.verified()), "3x checksum");
    assert_eq!(stats.duplicates, 0, "round offsets are globally unique");
}

#[test]
fn sender_stats_track_confirmations() {
    let world = two_host_world(4, &Setup::EuVpc);
    let (a, b, na, nb) = build_pair(&world);
    let dataset = Dataset::random(2 * 1024 * 1024, 1);
    let sender = world.system.create(|| {
        FileSender::new(SenderConfig {
            disk_rate: None,
            ..SenderConfig::new(dataset, a, b, Transport::Udt)
        })
    });
    world.system.connect::<NetworkPort, _, _>(&na, &sender);
    let receiver = world
        .system
        .create(|| FileReceiver::new(ReceiverConfig { disk_rate: None, ..ReceiverConfig::new(dataset) }));
    world.system.connect::<NetworkPort, _, _>(&nb, &receiver);
    let tx = sender.on_definition(|s| s.stats());
    world.system.start(&receiver);
    world.system.start(&sender);
    world.sim.run_for(Duration::from_secs(30));
    let stats = *tx.lock();
    assert_eq!(stats.bytes_sent, dataset.size as u64);
    assert_eq!(stats.bytes_confirmed, dataset.size as u64);
    assert_eq!(stats.failures, 0);
    assert!(stats.done_at.is_some());
}

#[test]
fn pinger_measures_all_transports() {
    for transport in [Transport::Tcp, Transport::Udt, Transport::Udp] {
        let world = two_host_world(5, &Setup::EuVpc);
        let (a, b, na, nb) = build_pair(&world);
        let pinger = world.system.create(|| {
            Pinger::new(PingerConfig {
                transport,
                interval: Duration::from_millis(100),
                ..PingerConfig::new(a, b)
            })
        });
        world.system.connect::<NetworkPort, _, _>(&na, &pinger);
        let ponger = world.system.create(|| Ponger::new(b));
        world.system.connect::<NetworkPort, _, _>(&nb, &ponger);
        let stats = pinger.on_definition(|p| p.stats());
        world.system.start(&pinger);
        world.system.start(&ponger);
        world.sim.run_for(Duration::from_secs(5));
        let s = stats.lock().clone();
        assert!(s.received >= 40, "{transport}: got {} pongs", s.received);
        let mean = s.mean().expect("rtts").as_secs_f64();
        assert!(
            (0.003..0.02).contains(&mean),
            "{transport}: mean RTT should be ~3 ms, got {mean}"
        );
        assert_eq!(ponger.on_definition(|p| p.answered()), s.received);
    }
}

#[test]
fn receiver_samples_capture_wire_ratio() {
    use kmsg_core::data::{DataNetworkConfig, PrpKind};
    use kmsg_netsim::rng::SeedSource;

    let world = two_host_world(6, &Setup::EuVpc);
    let a = NetAddress::new(world.host_a, 7000);
    let b = NetAddress::new(world.host_b, 7001);
    // Sender side: interceptor with a fixed 50-50 target ratio.
    let dn = kmsg_core::data::create_data_network(
        &world.system,
        &world.net,
        NetworkConfig::new(a),
        DataNetworkConfig {
            prp: PrpKind::Static(Ratio::BALANCED),
            seeds: SeedSource::new(6),
            ..DataNetworkConfig::default()
        },
    )
    .expect("bind a");
    let nb = create_network(&world.system, &world.net, NetworkConfig::new(b)).expect("bind b");
    dn.start(&world.system);
    world.system.start(&nb);

    let dataset = Dataset::random(6 * 1024 * 1024, 2);
    let sender = world.system.create(|| {
        FileSender::new(SenderConfig {
            disk_rate: None,
            ..SenderConfig::new(dataset, a, b, Transport::Data)
        })
    });
    world.system.connect::<NetworkPort, _, _>(&dn.interceptor, &sender);
    let receiver = world.system.create(|| {
        FileReceiver::new(ReceiverConfig {
            disk_rate: None,
            sample_every: Duration::from_millis(500),
            ..ReceiverConfig::new(dataset)
        })
    });
    world.system.connect::<NetworkPort, _, _>(&nb, &receiver);
    let rx = receiver.on_definition(|r| r.stats());
    world.system.start(&receiver);
    world.system.start(&sender);
    world.sim.run_for(Duration::from_secs(20));
    let stats = rx.lock().clone();
    assert!(receiver.on_definition(|r| r.verified()));
    let tcp = stats.by_transport[Transport::Tcp.to_byte() as usize];
    let udt = stats.by_transport[Transport::Udt.to_byte() as usize];
    assert!(tcp > 0 && udt > 0, "both transports must carry chunks");
    // A 50-50 static ratio keeps per-window wire ratios near 0.
    let mixed = stats
        .samples
        .iter()
        .filter_map(ReceiverSample::wire_ratio)
        .filter(|r| r.abs() < 0.5)
        .count();
    assert!(mixed > 0, "windows must show the balanced mix: {:?}", stats.samples);
}
