//! Differential congestion-controller testing: the same scenario run
//! under Reno, CUBIC and BBR must be oracle-clean every time — the
//! conservation, delivery and span oracles judge the middleware trace,
//! the controller legality oracles judge the telemetry of whichever
//! controller ran — and on a loss-free link the delivered payload must
//! be byte-identical across all three: the controller choice shapes
//! *when* bytes move, never *which* bytes arrive.

use std::sync::Arc;
use std::time::Duration;

use kmsg_apps::fuzz::{oracle_config, run_scenario, ScenarioSpec};
use kmsg_core::prelude::*;
use kmsg_netsim::cc::{CcAlgorithm, CcConfig};
use kmsg_netsim::engine::Sim;
use kmsg_netsim::iface::{Connection, StreamAccept, StreamEvents};
use kmsg_netsim::link::LinkConfig;
use kmsg_netsim::network::Network;
use kmsg_netsim::packet::Endpoint;
use kmsg_netsim::tcp::{TcpConfig, TcpConn, TcpListener};
use kmsg_netsim::testutil::{pattern_bytes, PatternSender, Recorder};
use kmsg_oracle::{check_all, render_verdict};

/// One fixed lossy end-to-end scenario; only the controller varies.
fn differential_spec(cc: CcAlgorithm) -> ScenarioSpec {
    ScenarioSpec {
        seed: 41,
        relays: 0,
        bandwidth_mbps: 10,
        delay_ms: 5,
        loss_ppm: 1_000,
        jitter_us: 0,
        size_kb: 512,
        transport: Transport::Tcp,
        pings: false,
        cc,
        swap: None,
        faults: Vec::new(),
        horizon_ms: 60_000,
    }
}

#[test]
fn same_scenario_is_oracle_clean_under_every_controller() {
    for cc in CcAlgorithm::all() {
        let spec = differential_spec(cc);
        let run = run_scenario(&spec);
        assert!(
            run.facts.verified,
            "{} transfer must complete and verify",
            cc.label()
        );
        let events = run.result.recorder.events();
        let violations = check_all(&events, &run.facts, &oracle_config(&spec));
        assert!(
            violations.is_empty(),
            "the {} run must be oracle-clean:\n{}",
            cc.label(),
            render_verdict(&violations)
        );
    }
}

struct AcceptRecorder(Arc<Recorder>);
impl StreamAccept for AcceptRecorder {
    fn on_accept(&self, _conn: &Connection) -> Arc<dyn StreamEvents> {
        self.0.clone()
    }
}

/// Runs one loss-free TCP transfer under `cc` and returns the exact byte
/// stream the receiver saw.
fn delivered_payload(cc: CcAlgorithm, total: usize) -> Vec<u8> {
    let sim = Sim::new(5);
    let net = Network::new(&sim);
    let a = net.add_node("a");
    let b = net.add_node("b");
    net.connect_duplex(a, b, LinkConfig::new(10e6, Duration::from_millis(5)));
    let server = Arc::new(Recorder::default());
    let cfg = TcpConfig {
        cc: CcConfig::for_algorithm(cc),
        ..TcpConfig::default()
    };
    let _listener = TcpListener::bind(
        &net,
        b,
        80,
        cfg.clone(),
        Arc::new(AcceptRecorder(server.clone())),
    )
    .expect("bind");
    let pump = PatternSender::new(&sim, total);
    let _conn = TcpConn::connect(&net, a, Endpoint::new(b, 80), cfg, pump).expect("connect");
    sim.run_for(Duration::from_secs(60));
    assert!(server.in_order(), "{} delivery must be in order", cc.label());
    server.data()
}

#[test]
fn loss_free_runs_deliver_byte_identical_payloads() {
    const TOTAL: usize = 300_000;
    let expected = pattern_bytes(0, TOTAL);
    let payloads: Vec<(CcAlgorithm, Vec<u8>)> = CcAlgorithm::all()
        .into_iter()
        .map(|cc| (cc, delivered_payload(cc, TOTAL)))
        .collect();
    for (cc, data) in &payloads {
        assert_eq!(data.len(), TOTAL, "{} transfer must complete", cc.label());
        assert!(
            data.as_slice() == &expected[..],
            "{} must deliver the exact sent pattern",
            cc.label()
        );
    }
    let reno = &payloads[0].1;
    assert!(
        payloads.iter().all(|(_, d)| d == reno),
        "every controller must deliver the identical byte stream"
    );
}
