//! Datacenter-scale topology generators and the converging-senders
//! scenario family.
//!
//! The paper's evaluation uses two-host worlds; the scaling experiments
//! (`BENCH_scale.json`, EXPERIMENTS.md "Scaling") need worlds with
//! hundreds to tens of thousands of hosts. This module generates three
//! standard shapes directly into a [`Network`]:
//!
//! * [`star_fanin`] — N senders behind a hub, one fat link to the sink
//!   (the incast shape used by the memory and scaling benchmarks),
//! * [`fat_tree`] — a k-ary fat-tree (k pods, (k/2)² cores, k³/4 hosts)
//!   with deterministic single-path routing to a designated sink,
//! * [`wan_mesh`] — fully meshed sites with per-site host stars and
//!   seed-jittered inter-site latencies.
//!
//! Routes are installed only between each sender and the sink (both
//! directions): the scenario family is *converging* traffic, and avoiding
//! the all-pairs table is what keeps a 10⁴-host world cheap to set up.
//! Every generator is purely structural except the WAN latency jitter,
//! which draws from the simulation's named seed stream (`"topo-wan"`), so
//! a given seed always yields byte-identical worlds.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use kmsg_netsim::engine::Sim;
use kmsg_netsim::iface::{CloseReason, Connection, StreamAccept, StreamEvents};
use kmsg_netsim::link::{LinkConfig, LinkId};
use kmsg_netsim::network::Network;
use kmsg_netsim::packet::{Endpoint, NodeId};
use kmsg_netsim::tcp::{TcpConfig, TcpConn, TcpListener};
use parking_lot::Mutex;
use rand::Rng;

/// Edge (host-attach) link rate, bytes/sec: 1 Gbit.
const EDGE_RATE: f64 = 1.25e8;
/// Aggregation / core / hub uplink rate, bytes/sec: 10 Gbit.
const CORE_RATE: f64 = 1.25e9;
/// Intra-datacenter per-hop propagation delay.
const HOP_DELAY: Duration = Duration::from_micros(50);

/// A generated topology: the sink, the senders, and the node path each
/// sender's route takes (for loop-freedom checks and diagnostics).
#[derive(Debug, Clone)]
pub struct Topology {
    /// Human-readable shape label (e.g. `star-1000`).
    pub label: String,
    /// The single traffic sink all senders converge on.
    pub sink: NodeId,
    /// The sending hosts.
    pub senders: Vec<NodeId>,
    /// Total nodes created (hosts + switches/routers).
    pub node_count: usize,
    /// Total directed links created.
    pub link_count: usize,
    /// Node path (inclusive of both endpoints) of each sender→sink route,
    /// parallel to `senders`.
    pub paths: Vec<Vec<NodeId>>,
    /// One-way inter-site delays drawn for [`wan_mesh`] (empty for the
    /// datacenter shapes); exposed so tests can pin seed-determinism.
    pub wan_delays: Vec<Duration>,
}

impl Topology {
    /// All hosts including the sink.
    #[must_use]
    pub fn hosts(&self) -> usize {
        self.senders.len() + 1
    }

    /// `Err` with a description if any recorded path repeats a node (a
    /// routing loop) or doesn't start/end at the right hosts.
    ///
    /// # Errors
    ///
    /// Returns the offending path's description.
    pub fn check_loop_free(&self) -> Result<(), String> {
        for (s, path) in self.senders.iter().zip(&self.paths) {
            if path.first() != Some(s) || path.last() != Some(&self.sink) {
                return Err(format!("path for {s:?} has wrong endpoints: {path:?}"));
            }
            let mut seen: Vec<NodeId> = Vec::with_capacity(path.len());
            for &n in path {
                if seen.contains(&n) {
                    return Err(format!("path for {s:?} revisits {n:?}: {path:?}"));
                }
                seen.push(n);
            }
        }
        Ok(())
    }
}

fn edge_link() -> LinkConfig {
    LinkConfig::new(EDGE_RATE, HOP_DELAY)
}

fn core_link() -> LinkConfig {
    LinkConfig::new(CORE_RATE, HOP_DELAY)
}

/// N senders fan in through a hub to one sink: `sender → hub → sink`,
/// edge-rate first hop, core-rate shared last hop. The canonical incast
/// world for the memory and scaling benchmarks.
#[must_use]
pub fn star_fanin(net: &Network, senders: usize) -> Topology {
    let sink = net.add_node("sink");
    let hub = net.add_node("hub");
    let (hub_sink, sink_hub) = net.connect_duplex(hub, sink, core_link());
    let mut nodes = Vec::with_capacity(senders);
    let mut paths = Vec::with_capacity(senders);
    let mut links = 2;
    for i in 0..senders {
        let s = net.add_node(format!("s{i}"));
        let (up, down) = net.connect_duplex(s, hub, edge_link());
        links += 2;
        net.set_route(s, sink, vec![up, hub_sink]);
        net.set_route(sink, s, vec![sink_hub, down]);
        paths.push(vec![s, hub, sink]);
        nodes.push(s);
    }
    Topology {
        label: format!("star-{senders}"),
        sink,
        senders: nodes,
        node_count: senders + 2,
        link_count: links,
        paths,
        wan_delays: Vec::new(),
    }
}

/// A k-ary fat-tree (k even): k pods of k/2 edge and k/2 aggregation
/// switches, (k/2)² cores, k/2 hosts per edge switch — k³/4 hosts total.
/// Host 0 is the sink; each other host gets one deterministic loop-free
/// route to it (up-path chosen by the sender's index, as ECMP hashing
/// would).
///
/// # Panics
///
/// Panics if `k` is odd or less than 2.
#[must_use]
pub fn fat_tree(net: &Network, k: usize) -> Topology {
    assert!(k >= 2 && k % 2 == 0, "fat-tree arity must be even, got {k}");
    let half = k / 2;

    // Switch fabric.
    let cores: Vec<NodeId> = (0..half * half)
        .map(|c| net.add_node(format!("core{c}")))
        .collect();
    let mut edges = Vec::with_capacity(k); // [pod][e]
    let mut aggs = Vec::with_capacity(k); // [pod][a]
    let mut links = 0usize;
    // Duplex links, keyed by construction order.
    let mut edge_agg = vec![vec![NO_LINK; half * half]; k]; // [pod][e*half+a]
    let mut agg_core = vec![vec![NO_LINK; half * half]; k]; // [pod][a*half+j]
    for pod in 0..k {
        let e: Vec<NodeId> = (0..half)
            .map(|i| net.add_node(format!("p{pod}e{i}")))
            .collect();
        let a: Vec<NodeId> = (0..half)
            .map(|i| net.add_node(format!("p{pod}a{i}")))
            .collect();
        for (ei, &en) in e.iter().enumerate() {
            for (ai, &an) in a.iter().enumerate() {
                let (up, down) = raw_duplex(net, en, an, core_link());
                edge_agg[pod][ei * half + ai] = (up, down);
                links += 2;
            }
        }
        for (ai, &an) in a.iter().enumerate() {
            for j in 0..half {
                let core = ai * half + j;
                let (up, down) = raw_duplex(net, an, cores[core], core_link());
                agg_core[pod][ai * half + j] = (up, down);
                links += 2;
            }
        }
        edges.push(e);
        aggs.push(a);
    }

    // Hosts: half per edge switch; (pod, edge, slot) → global index.
    let mut hosts = Vec::with_capacity(k * half * half);
    let mut host_up_down = Vec::with_capacity(k * half * half);
    for pod in 0..k {
        for e in 0..half {
            for slot in 0..half {
                let h = net.add_node(format!("h{pod}-{e}-{slot}"));
                let (up, down) = raw_duplex(net, h, edges[pod][e], edge_link());
                links += 2;
                hosts.push(h);
                host_up_down.push((up, down));
            }
        }
    }

    let sink = hosts[0];
    let (sink_up, sink_down) = host_up_down[0];
    let sink_pod = 0;
    let sink_edge = 0;
    let mut senders = Vec::with_capacity(hosts.len() - 1);
    let mut paths = Vec::with_capacity(hosts.len() - 1);
    for (gi, &h) in hosts.iter().enumerate().skip(1) {
        let pod = gi / (half * half);
        let e = (gi / half) % half;
        let (up, down) = host_up_down[gi];
        // Up-path choice: deterministic spread by sender index.
        let a = gi % half;
        let (fwd, rev, path) = if pod == sink_pod && e == sink_edge {
            // Same edge switch: one hop up, one down.
            (
                vec![up, sink_down],
                vec![sink_up, down],
                vec![h, edges[pod][e], sink],
            )
        } else if pod == sink_pod {
            // Same pod: via an aggregation switch.
            let (ea_up, ea_down) = edge_agg[pod][e * half + a];
            let (sa_up, sa_down) = edge_agg[pod][sink_edge * half + a];
            (
                vec![up, ea_up, sa_down, sink_down],
                vec![sink_up, sa_up, ea_down, down],
                vec![h, edges[pod][e], aggs[pod][a], edges[pod][sink_edge], sink],
            )
        } else {
            // Cross-pod: via core j, reachable from agg `a` on both sides.
            let j = gi % half;
            let core = a * half + j;
            let (ea_up, ea_down) = edge_agg[pod][e * half + a];
            let (ac_up, ac_down) = agg_core[pod][a * half + j];
            let (sc_up, sc_down) = agg_core[sink_pod][a * half + j];
            let (sa_up, sa_down) = edge_agg[sink_pod][sink_edge * half + a];
            (
                vec![up, ea_up, ac_up, sc_down, sa_down, sink_down],
                vec![sink_up, sa_up, sc_up, ac_down, ea_down, down],
                vec![
                    h,
                    edges[pod][e],
                    aggs[pod][a],
                    cores[core],
                    aggs[sink_pod][a],
                    edges[sink_pod][sink_edge],
                    sink,
                ],
            )
        };
        net.set_route(h, sink, fwd);
        net.set_route(sink, h, rev);
        paths.push(path);
        senders.push(h);
    }
    Topology {
        label: format!("fat-tree-k{k}"),
        sink,
        senders,
        node_count: hosts.len() + k * k + half * half,
        link_count: links,
        paths,
        wan_delays: Vec::new(),
    }
}

/// Fully meshed WAN sites, each a star of hosts around a site router.
/// Inter-site one-way delays are jittered in 10–160 ms from the
/// simulation's `"topo-wan"` seed stream; host 0 of site 0 is the sink.
///
/// # Panics
///
/// Panics if `sites` is 0 or `hosts_per_site` is 0.
#[must_use]
pub fn wan_mesh(net: &Network, sites: usize, hosts_per_site: usize) -> Topology {
    assert!(sites > 0 && hosts_per_site > 0);
    let mut rng = net.sim().seeds().stream("topo-wan");
    let routers: Vec<NodeId> = (0..sites)
        .map(|s| net.add_node(format!("site{s}")))
        .collect();
    let mut links = 0usize;
    // Inter-site duplex links: mesh[a][b] is the a→b link (a != b).
    let mut mesh = vec![vec![NO_LINK; sites]; sites];
    let mut wan_delays = Vec::with_capacity(sites * (sites - 1) / 2);
    for a in 0..sites {
        for b in (a + 1)..sites {
            let delay = Duration::from_micros(rng.gen_range(10_000u64..160_000));
            wan_delays.push(delay);
            let cfg = LinkConfig::new(EDGE_RATE, delay);
            let (ab, ba) = raw_duplex(net, routers[a], routers[b], cfg);
            mesh[a][b] = (ab, ba);
            mesh[b][a] = (ba, ab);
            links += 2;
        }
    }
    let mut hosts = Vec::with_capacity(sites * hosts_per_site);
    let mut host_up_down = Vec::with_capacity(sites * hosts_per_site);
    for s in 0..sites {
        for h in 0..hosts_per_site {
            let n = net.add_node(format!("w{s}-{h}"));
            let (up, down) = raw_duplex(net, n, routers[s], edge_link());
            links += 2;
            hosts.push(n);
            host_up_down.push((up, down));
        }
    }
    let sink = hosts[0];
    let (sink_up, sink_down) = host_up_down[0];
    let mut senders = Vec::with_capacity(hosts.len() - 1);
    let mut paths = Vec::with_capacity(hosts.len() - 1);
    for (gi, &h) in hosts.iter().enumerate().skip(1) {
        let site = gi / hosts_per_site;
        let (up, down) = host_up_down[gi];
        if site == 0 {
            net.set_route(h, sink, vec![up, sink_down]);
            net.set_route(sink, h, vec![sink_up, down]);
            paths.push(vec![h, routers[0], sink]);
        } else {
            let (fwd_wan, rev_wan) = mesh[site][0];
            net.set_route(h, sink, vec![up, fwd_wan, sink_down]);
            net.set_route(sink, h, vec![sink_up, rev_wan, down]);
            paths.push(vec![h, routers[site], routers[0], sink]);
        }
        senders.push(h);
    }
    Topology {
        label: format!("wan-mesh-{sites}x{hosts_per_site}"),
        sink,
        senders,
        node_count: hosts.len() + sites,
        link_count: links,
        paths,
        wan_delays,
    }
}

/// Two directed links without the endpoint route entries
/// [`Network::connect_duplex`] would install (switch-to-switch links are
/// route *segments*, not endpoints).
fn raw_duplex(net: &Network, _a: NodeId, _b: NodeId, cfg: LinkConfig) -> (LinkId, LinkId) {
    let ab = net.add_link(cfg.clone());
    let ba = net.add_link(cfg);
    (ab, ba)
}

/// Placeholder for link matrices filled during construction.
const NO_LINK: (LinkId, LinkId) = (LinkId::from_index(u32::MAX), LinkId::from_index(u32::MAX));

// ---------------------------------------------------------------------------
// Converging-senders scenario family
// ---------------------------------------------------------------------------

/// Which generated shape a converging-senders scenario runs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScaleShape {
    /// [`star_fanin`] with this many senders.
    Star {
        /// Number of sending hosts.
        senders: usize,
    },
    /// [`fat_tree`] of the given (even) arity; all k³/4 − 1 non-sink
    /// hosts send.
    FatTree {
        /// Fat-tree arity `k`.
        k: usize,
    },
    /// [`wan_mesh`] with `sites × hosts_per_site` hosts.
    WanMesh {
        /// Number of fully meshed sites.
        sites: usize,
        /// Hosts per site.
        hosts_per_site: usize,
    },
}

/// Parameters of one converging-senders run.
#[derive(Debug, Clone)]
pub struct ConvergeSpec {
    /// World seed (drives link jitter and the WAN mesh delays).
    pub seed: u64,
    /// Topology shape.
    pub shape: ScaleShape,
    /// Payload bytes each sender pushes to the sink before closing.
    pub bytes_per_sender: usize,
    /// Gap between successive connection starts (spreads the SYN storm).
    pub stagger: Duration,
    /// Simulated-time budget; the run stops early once every flow closes.
    pub sim_budget: Duration,
}

impl ConvergeSpec {
    /// A star incast with sensible defaults: 64 KiB per sender, 20 µs
    /// stagger, 120 s budget.
    #[must_use]
    pub fn star(seed: u64, senders: usize) -> ConvergeSpec {
        ConvergeSpec {
            seed,
            shape: ScaleShape::Star { senders },
            bytes_per_sender: 64 * 1024,
            stagger: Duration::from_micros(20),
            sim_budget: Duration::from_secs(120),
        }
    }
}

/// Outcome of a converging-senders run.
#[derive(Debug, Clone)]
pub struct ConvergeReport {
    /// Topology label.
    pub label: String,
    /// Hosts in the world (senders + sink).
    pub hosts: usize,
    /// Flows opened (= senders).
    pub flows: usize,
    /// Payload bytes the sink received.
    pub delivered_bytes: u64,
    /// Client-side flows that saw an orderly close.
    pub closed_flows: usize,
    /// Events the engine executed.
    pub events: u64,
    /// Simulated time consumed.
    pub sim_secs: f64,
    /// Wall-clock seconds spent building the world (nodes, links, routes,
    /// flow setup).
    pub setup_secs: f64,
    /// Wall-clock seconds spent running the simulation.
    pub run_secs: f64,
}

/// Streams `quota` bytes into the connection as buffer space allows, then
/// closes; counts orderly closes into the shared counter.
struct Pump {
    remaining: Mutex<usize>,
    chunk: Bytes,
    closed: Arc<AtomicUsize>,
}

impl Pump {
    fn drive(&self, conn: &Connection) {
        let mut rem = self.remaining.lock();
        while *rem > 0 {
            let want = (*rem).min(self.chunk.len());
            let accepted = conn.send(self.chunk.slice(0..want));
            *rem -= accepted;
            if accepted < want {
                return; // buffer full; resume on_writable
            }
        }
        drop(rem);
        conn.close();
    }
}

impl StreamEvents for Pump {
    fn on_connected(&self, conn: &Connection) {
        self.drive(conn);
    }
    fn on_writable(&self, conn: &Connection) {
        self.drive(conn);
    }
    fn on_closed(&self, _conn: &Connection, reason: CloseReason) {
        if reason == CloseReason::Normal {
            self.closed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Sink side: counts delivered payload bytes across all accepted flows.
struct SinkEvents {
    delivered: Arc<AtomicU64>,
}

impl StreamEvents for SinkEvents {
    fn on_data(&self, _conn: &Connection, data: Bytes) {
        self.delivered.fetch_add(data.len() as u64, Ordering::Relaxed);
    }
}

struct SinkAccept {
    events: Arc<SinkEvents>,
}

impl StreamAccept for SinkAccept {
    fn on_accept(&self, _conn: &Connection) -> Arc<dyn StreamEvents> {
        self.events.clone()
    }
}

/// Sink listening port for converging-senders worlds.
pub const CONVERGE_PORT: u16 = 7001;

/// Builds the world for `spec` and returns it with the sink's delivered
/// counter installed — used by benchmarks that want to interleave their
/// own measurements (e.g. heap probes) between setup, connect, and run.
pub struct ConvergeWorld {
    /// The simulation engine.
    pub sim: Sim,
    /// The network fabric.
    pub net: Network,
    /// The generated topology.
    pub topo: Topology,
    /// Payload bytes delivered to the sink so far.
    pub delivered: Arc<AtomicU64>,
    /// Client flows that closed normally so far.
    pub closed: Arc<AtomicUsize>,
    /// Keeps the listener (and its accepted flows) alive.
    _listener: TcpListener,
}

/// Builds the simulation world and binds the sink listener (no flows yet).
#[must_use]
pub fn build_converge_world(spec: &ConvergeSpec) -> ConvergeWorld {
    let sim = Sim::new(spec.seed);
    let net = Network::new(&sim);
    let topo = match spec.shape {
        ScaleShape::Star { senders } => star_fanin(&net, senders),
        ScaleShape::FatTree { k } => fat_tree(&net, k),
        ScaleShape::WanMesh {
            sites,
            hosts_per_site,
        } => wan_mesh(&net, sites, hosts_per_site),
    };
    let delivered = Arc::new(AtomicU64::new(0));
    let closed = Arc::new(AtomicUsize::new(0));
    let listener = TcpListener::bind(
        &net,
        topo.sink,
        CONVERGE_PORT,
        TcpConfig::default(),
        Arc::new(SinkAccept {
            events: Arc::new(SinkEvents {
                delivered: delivered.clone(),
            }),
        }),
    )
    .expect("bind converge sink");
    ConvergeWorld {
        sim,
        net,
        topo,
        delivered,
        closed,
        _listener: listener,
    }
}

impl ConvergeWorld {
    /// Opens one pumping flow per sender, each start staggered. Returns a
    /// shared vec the connection handles accumulate into as the staggered
    /// connects execute — the caller must keep it alive until the run
    /// finishes, because dropping a client handle tears its flow down.
    #[must_use]
    pub fn start_senders(
        &self,
        bytes_per_sender: usize,
        stagger: Duration,
    ) -> Arc<Mutex<Vec<TcpConn>>> {
        let chunk = Bytes::from(vec![0xC5u8; 64 * 1024]);
        let sink_ep = Endpoint::new(self.topo.sink, CONVERGE_PORT);
        let conns: Arc<Mutex<Vec<TcpConn>>> =
            Arc::new(Mutex::new(Vec::with_capacity(self.topo.senders.len())));
        for (i, &s) in self.topo.senders.iter().enumerate() {
            let net = self.net.clone();
            let sink = conns.clone();
            let pump = Arc::new(Pump {
                remaining: Mutex::new(bytes_per_sender),
                chunk: chunk.clone(),
                closed: self.closed.clone(),
            });
            let at = stagger * u32::try_from(i % 1_000_000).expect("stagger index fits");
            self.sim.schedule_in(at, move |_| {
                let conn = TcpConn::connect(&net, s, sink_ep, TcpConfig::default(), pump)
                    .expect("converge connect");
                sink.lock().push(conn);
            });
        }
        conns
    }

    /// Runs until every sender delivered and closed, or the budget runs
    /// out. Returns simulated seconds consumed.
    pub fn run_until_drained(
        &self,
        expected_bytes: u64,
        expected_closes: usize,
        budget: Duration,
    ) -> f64 {
        let start = self.sim.now();
        let step = Duration::from_millis(250);
        let deadline = start + budget;
        loop {
            self.sim.run_for(step);
            let done = self.delivered.load(Ordering::Relaxed) >= expected_bytes
                && self.closed.load(Ordering::Relaxed) >= expected_closes;
            if done || self.sim.now() >= deadline {
                return self.sim.now().duration_since(start).as_secs_f64();
            }
        }
    }
}

/// Runs one converging-senders scenario end to end.
#[must_use]
pub fn run_converging_senders(spec: &ConvergeSpec) -> ConvergeReport {
    let setup_wall = std::time::Instant::now();
    let world = build_converge_world(spec);
    let conns = world.start_senders(spec.bytes_per_sender, spec.stagger);
    let setup_secs = setup_wall.elapsed().as_secs_f64();

    let flows = world.topo.senders.len();
    let expected = spec.bytes_per_sender as u64 * flows as u64;
    let run_wall = std::time::Instant::now();
    let sim_secs = world.run_until_drained(expected, flows, spec.sim_budget);
    let run_secs = run_wall.elapsed().as_secs_f64();
    drop(conns);
    ConvergeReport {
        label: world.topo.label.clone(),
        hosts: world.topo.hosts(),
        flows,
        delivered_bytes: world.delivered.load(Ordering::Relaxed),
        closed_flows: world.closed.load(Ordering::Relaxed),
        events: world.sim.events_executed(),
        sim_secs,
        setup_secs,
        run_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_net(seed: u64) -> (Sim, Network) {
        let sim = Sim::new(seed);
        let net = Network::new(&sim);
        (sim, net)
    }

    #[test]
    fn star_routes_every_sender_to_sink_and_back() {
        let (_sim, net) = fresh_net(7);
        let t = star_fanin(&net, 50);
        assert_eq!(t.senders.len(), 50);
        assert_eq!(t.hosts(), 51);
        for &s in &t.senders {
            assert!(net.route(s, t.sink).is_some(), "missing {s:?}→sink");
            assert!(net.route(t.sink, s).is_some(), "missing sink→{s:?}");
        }
        t.check_loop_free().expect("star paths are loop-free");
    }

    #[test]
    fn star_degenerate_single_host_world() {
        let (_sim, net) = fresh_net(7);
        let t = star_fanin(&net, 1);
        assert_eq!(t.senders.len(), 1);
        assert_eq!(t.node_count, 3);
        assert_eq!(t.link_count, 4);
        assert!(net.route(t.senders[0], t.sink).is_some());
        t.check_loop_free().expect("degenerate star is loop-free");
    }

    #[test]
    fn fat_tree_routes_are_loop_free_and_deterministic() {
        let (_sim, net) = fresh_net(3);
        let t = fat_tree(&net, 4);
        assert_eq!(t.senders.len(), 4 * 4 * 4 / 4 - 1, "k³/4 hosts minus sink");
        for &s in &t.senders {
            assert!(net.route(s, t.sink).is_some());
            assert!(net.route(t.sink, s).is_some());
        }
        t.check_loop_free().expect("fat-tree paths are loop-free");
        // Cross-pod paths traverse exactly 7 nodes, same-pod at most 5.
        assert!(t.paths.iter().all(|p| p.len() == 3 || p.len() == 5 || p.len() == 7));
        assert!(t.paths.iter().any(|p| p.len() == 7), "some cross-pod path");

        // Same seed ⇒ identical structure.
        let (_sim2, net2) = fresh_net(3);
        let t2 = fat_tree(&net2, 4);
        assert_eq!(t.paths, t2.paths);
        assert_eq!(t.link_count, t2.link_count);
    }

    #[test]
    fn wan_mesh_is_routable_loop_free_and_seeded() {
        let (_sim, net) = fresh_net(11);
        let t = wan_mesh(&net, 4, 5);
        assert_eq!(t.senders.len(), 19);
        for &s in &t.senders {
            assert!(net.route(s, t.sink).is_some());
            assert!(net.route(t.sink, s).is_some());
        }
        t.check_loop_free().expect("mesh paths are loop-free");
        assert_eq!(t.wan_delays.len(), 6, "4 sites fully meshed");

        // Same seed reproduces the jittered delays; a different seed moves
        // at least one of them.
        let (_s2, net2) = fresh_net(11);
        assert_eq!(wan_mesh(&net2, 4, 5).wan_delays, t.wan_delays);
        let (_s3, net3) = fresh_net(12);
        assert_ne!(wan_mesh(&net3, 4, 5).wan_delays, t.wan_delays);
    }

    #[test]
    fn ten_thousand_host_star_builds() {
        let (_sim, net) = fresh_net(1);
        let t = star_fanin(&net, 10_000);
        assert_eq!(t.hosts(), 10_001);
        assert_eq!(t.link_count, 2 * 10_000 + 2);
        // Spot-check routability at the far end of the table.
        let last = *t.senders.last().expect("has senders");
        assert!(net.route(last, t.sink).is_some());
        assert!(net.route(t.sink, last).is_some());
        t.check_loop_free().expect("10k star is loop-free");
    }

    #[test]
    fn converging_senders_deliver_everything() {
        let mut spec = ConvergeSpec::star(5, 100);
        spec.bytes_per_sender = 16 * 1024;
        let r = run_converging_senders(&spec);
        assert_eq!(r.flows, 100);
        assert_eq!(r.delivered_bytes, 100 * 16 * 1024);
        assert_eq!(r.closed_flows, 100, "every client sees an orderly close");
        assert!(r.sim_secs < 100.0, "finished inside the budget");
    }

    #[test]
    fn converging_senders_are_deterministic_per_seed() {
        let mut spec = ConvergeSpec::star(9, 60);
        spec.bytes_per_sender = 8 * 1024;
        let a = run_converging_senders(&spec);
        let b = run_converging_senders(&spec);
        assert_eq!(a.events, b.events, "same seed, same event count");
        assert_eq!(a.delivered_bytes, b.delivered_bytes);
        assert_eq!(a.sim_secs, b.sim_secs);
    }

    #[test]
    fn converging_senders_on_fat_tree_and_mesh() {
        for shape in [
            ScaleShape::FatTree { k: 4 },
            ScaleShape::WanMesh {
                sites: 3,
                hosts_per_site: 4,
            },
        ] {
            let spec = ConvergeSpec {
                seed: 2,
                shape,
                bytes_per_sender: 4 * 1024,
                stagger: Duration::from_micros(20),
                sim_budget: Duration::from_secs(120),
            };
            let r = run_converging_senders(&spec);
            assert_eq!(
                r.delivered_bytes,
                r.flows as u64 * 4 * 1024,
                "{}: all bytes arrive",
                r.label
            );
            assert_eq!(r.closed_flows, r.flows, "{}: all flows close", r.label);
        }
    }
}
