//! Application message types and their serialisers.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use kmsg_core::ser::{get_bytes, Deserialiser, SerError, SerId, Serialisable};

/// Serialiser id of [`ChunkMsg`].
pub const CHUNK_SER_ID: SerId = SerId(100);
/// Serialiser id of [`PingMsg`].
pub const PING_SER_ID: SerId = SerId(101);
/// Serialiser id of [`PongMsg`].
pub const PONG_SER_ID: SerId = SerId(102);

/// One piece of a file transfer: the byte range starting at `offset`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMsg {
    /// Byte offset of this chunk within the dataset.
    pub offset: u64,
    /// The chunk's bytes.
    pub data: Bytes,
}

impl Serialisable for ChunkMsg {
    fn ser_id(&self) -> SerId {
        CHUNK_SER_ID
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.data.len() + 12)
    }

    fn serialise(&self, buf: &mut BytesMut) -> Result<(), SerError> {
        buf.put_u64(self.offset);
        kmsg_core::ser::put_bytes(buf, &self.data);
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl Deserialiser<ChunkMsg> for ChunkMsg {
    const SER_ID: SerId = CHUNK_SER_ID;

    fn deserialise(buf: &mut Bytes) -> Result<ChunkMsg, SerError> {
        if buf.remaining() < 8 {
            return Err(SerError::Truncated { context: "ChunkMsg" });
        }
        let offset = buf.get_u64();
        let data = get_bytes(buf, "ChunkMsg")?;
        Ok(ChunkMsg { offset, data })
    }
}

/// A timing-sensitive control request ("ping").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PingMsg {
    /// Sequence number, echoed by the pong.
    pub seq: u64,
}

impl Serialisable for PingMsg {
    fn ser_id(&self) -> SerId {
        PING_SER_ID
    }

    fn size_hint(&self) -> Option<usize> {
        Some(8)
    }

    fn serialise(&self, buf: &mut BytesMut) -> Result<(), SerError> {
        buf.put_u64(self.seq);
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl Deserialiser<PingMsg> for PingMsg {
    const SER_ID: SerId = PING_SER_ID;

    fn deserialise(buf: &mut Bytes) -> Result<PingMsg, SerError> {
        if buf.remaining() < 8 {
            return Err(SerError::Truncated { context: "PingMsg" });
        }
        Ok(PingMsg { seq: buf.get_u64() })
    }
}

/// The reply to a [`PingMsg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PongMsg {
    /// The ping's sequence number.
    pub seq: u64,
}

impl Serialisable for PongMsg {
    fn ser_id(&self) -> SerId {
        PONG_SER_ID
    }

    fn size_hint(&self) -> Option<usize> {
        Some(8)
    }

    fn serialise(&self, buf: &mut BytesMut) -> Result<(), SerError> {
        buf.put_u64(self.seq);
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl Deserialiser<PongMsg> for PongMsg {
    const SER_ID: SerId = PONG_SER_ID;

    fn deserialise(buf: &mut Bytes) -> Result<PongMsg, SerError> {
        if buf.remaining() < 8 {
            return Err(SerError::Truncated { context: "PongMsg" });
        }
        Ok(PongMsg { seq: buf.get_u64() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T>(value: &T) -> T
    where
        T: Serialisable + Deserialiser<T>,
    {
        let mut buf = BytesMut::new();
        value.serialise(&mut buf).expect("serialise");
        let mut bytes = buf.freeze();
        T::deserialise(&mut bytes).expect("deserialise")
    }

    #[test]
    fn chunk_round_trip() {
        let c = ChunkMsg {
            offset: 123_456,
            data: Bytes::from_static(b"chunky"),
        };
        assert_eq!(round_trip(&c), c);
        assert_eq!(c.ser_id(), CHUNK_SER_ID);
    }

    #[test]
    fn ping_pong_round_trip() {
        assert_eq!(round_trip(&PingMsg { seq: 9 }), PingMsg { seq: 9 });
        assert_eq!(round_trip(&PongMsg { seq: 9 }), PongMsg { seq: 9 });
    }

    #[test]
    fn ser_ids_are_user_range_and_distinct() {
        assert!(CHUNK_SER_ID >= SerId::USER_START);
        assert_ne!(CHUNK_SER_ID, PING_SER_ID);
        assert_ne!(PING_SER_ID, PONG_SER_ID);
    }

    #[test]
    fn truncated_inputs_error() {
        let mut short = Bytes::from_static(&[1, 2, 3]);
        assert!(ChunkMsg::deserialise(&mut short).is_err());
        let mut short = Bytes::from_static(&[1, 2, 3]);
        assert!(PingMsg::deserialise(&mut short).is_err());
    }
}
