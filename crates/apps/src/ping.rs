//! Ping/pong components (§V-A.2): timing-sensitive control messages whose
//! round-trip time is measured while (possibly) competing with bulk data
//! transfer — the paper's Figure 8 workload.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use kmsg_component::prelude::*;
use kmsg_core::prelude::*;
use kmsg_netsim::stats::OnlineStats;
use kmsg_netsim::time::SimTime;

use crate::msgs::{PingMsg, PongMsg};

/// Pinger configuration.
#[derive(Debug, Clone)]
pub struct PingerConfig {
    /// This host's address.
    pub src: NetAddress,
    /// The ponger's address.
    pub dst: NetAddress,
    /// Transport for the pings (the paper uses TCP for control traffic).
    pub transport: Transport,
    /// Interval between pings.
    pub interval: Duration,
}

impl PingerConfig {
    /// Pings over TCP every 250 ms.
    #[must_use]
    pub fn new(src: NetAddress, dst: NetAddress) -> Self {
        PingerConfig {
            src,
            dst,
            transport: Transport::Tcp,
            interval: Duration::from_millis(250),
        }
    }
}

/// Collected round-trip times.
#[derive(Debug, Clone, Default)]
pub struct PingStats {
    /// All RTT samples in order.
    pub rtts: Vec<Duration>,
    /// Online summary of the samples (seconds).
    pub summary: OnlineStats,
    /// Pings sent.
    pub sent: u64,
    /// Pongs received.
    pub received: u64,
}

impl PingStats {
    /// Mean RTT, if any samples exist.
    #[must_use]
    pub fn mean(&self) -> Option<Duration> {
        if self.summary.count() == 0 {
            None
        } else {
            Some(Duration::from_secs_f64(self.summary.mean()))
        }
    }
}

/// Shared handle to ping statistics.
pub type PingStatsHandle = Arc<Mutex<PingStats>>;

/// Sends pings on a timer; measures RTTs from the matching pongs.
pub struct Pinger {
    /// Network port.
    pub net: RequiredPort<NetworkPort>,
    cfg: PingerConfig,
    next_seq: u64,
    in_flight: HashMap<u64, SimTime>,
    stats: PingStatsHandle,
}

impl std::fmt::Debug for Pinger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pinger").field("next_seq", &self.next_seq).finish()
    }
}

impl Pinger {
    /// Creates the pinger.
    #[must_use]
    pub fn new(cfg: PingerConfig) -> Self {
        Pinger {
            net: RequiredPort::new(),
            cfg,
            next_seq: 0,
            in_flight: HashMap::new(),
            stats: Arc::new(Mutex::new(PingStats::default())),
        }
    }

    /// The live stats handle.
    #[must_use]
    pub fn stats(&self) -> PingStatsHandle {
        self.stats.clone()
    }

    fn send_ping(&mut self, now: SimTime) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.in_flight.insert(seq, now);
        self.stats.lock().sent += 1;
        self.net.trigger(NetRequest::Msg(NetMessage::new(
            self.cfg.src,
            self.cfg.dst,
            self.cfg.transport,
            PingMsg { seq },
        )));
    }
}

impl ComponentDefinition for Pinger {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        kmsg_component::execute_ports!(self, ctx, max, [required net: NetworkPort])
    }

    fn handle_control(&mut self, ctx: &mut ComponentContext, event: ControlEvent) {
        if event == ControlEvent::Start {
            ctx.schedule_periodic(Duration::ZERO, self.cfg.interval);
        }
    }

    fn on_timeout(&mut self, ctx: &mut ComponentContext, _id: TimeoutId) {
        self.send_ping(ctx.now());
    }
}

impl Require<NetworkPort> for Pinger {
    fn handle(&mut self, ctx: &mut ComponentContext, ev: NetIndication) {
        let NetIndication::Msg(msg) = ev else {
            return;
        };
        let Ok(pong) = msg.try_deserialise::<PongMsg, PongMsg>() else {
            return;
        };
        if let Some(sent_at) = self.in_flight.remove(&pong.seq) {
            let rtt = ctx.now().duration_since(sent_at);
            let mut stats = self.stats.lock();
            stats.rtts.push(rtt);
            stats.summary.push(rtt.as_secs_f64());
            stats.received += 1;
        }
    }
}

impl RequireRef<NetworkPort> for Pinger {
    fn required_port(&mut self) -> &mut RequiredPort<NetworkPort> {
        &mut self.net
    }
}

/// Answers every ping with a pong over the same transport, back to the
/// message's source address.
pub struct Ponger {
    /// Network port.
    pub net: RequiredPort<NetworkPort>,
    addr: NetAddress,
    answered: u64,
}

impl std::fmt::Debug for Ponger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ponger").field("answered", &self.answered).finish()
    }
}

impl Ponger {
    /// Creates a ponger replying from `addr`.
    #[must_use]
    pub fn new(addr: NetAddress) -> Self {
        Ponger {
            net: RequiredPort::new(),
            addr,
            answered: 0,
        }
    }

    /// Pings answered so far.
    #[must_use]
    pub fn answered(&self) -> u64 {
        self.answered
    }
}

impl ComponentDefinition for Ponger {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        kmsg_component::execute_ports!(self, ctx, max, [required net: NetworkPort])
    }
}

impl Require<NetworkPort> for Ponger {
    fn handle(&mut self, _ctx: &mut ComponentContext, ev: NetIndication) {
        let NetIndication::Msg(msg) = ev else {
            return;
        };
        let Ok(ping) = msg.try_deserialise::<PingMsg, PingMsg>() else {
            return;
        };
        let reply_to = *msg.header().source();
        let proto = msg.header().protocol();
        self.answered += 1;
        self.net.trigger(NetRequest::Msg(NetMessage::new(
            self.addr,
            reply_to,
            proto,
            PongMsg { seq: ping.seq },
        )));
    }
}

impl RequireRef<NetworkPort> for Ponger {
    fn required_port(&mut self) -> &mut RequiredPort<NetworkPort> {
        &mut self.net
    }
}
