//! Mesh pub/sub scenarios for the self-healing routing overlay.
//!
//! An [`OverlaySpec`] describes one seeded overlay run: a ring (optionally
//! chorded) mesh of middleware stacks, a static subscription table, a
//! timed publish schedule and scripted partition windows that sever mesh
//! edges and heal them again. [`run_overlay_spec`] builds the world —
//! one [`NetworkComponent`](kmsg_core::net::NetworkComponent) with the
//! impatient supervision template plus one
//! [`OverlayComponent`] per node — drives the schedule, lets gossip
//! resettle, and returns an [`OverlayReport`] whose
//! [`OverlayFacts`] feed the
//! [`OverlayOracle`](kmsg_oracle::OverlayOracle) alongside the recorded
//! trace. Specs generate deterministically from a seed
//! ([`OverlaySpec::generate`]) and equal seeds yield byte-identical
//! reports ([`OverlayReport::render`]).

use std::time::Duration;

use bytes::Bytes;
use kmsg_component::prelude::*;
use kmsg_core::prelude::*;
use kmsg_netsim::engine::Sim;
use kmsg_netsim::link::LinkConfig;
use kmsg_netsim::network::Network;
use kmsg_netsim::packet::NodeId;
use kmsg_netsim::rng::SeedSource;
use kmsg_netsim::time::SimTime;
use kmsg_netsim::{FaultController, FaultPlan, Recorder, RecorderTracer};
use kmsg_oracle::OverlayFacts;
use rand::Rng;

/// Listen port of every overlay node's middleware stack.
pub const OVERLAY_PORT: u16 = 7100;

/// One timed publish in the schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishSpec {
    /// When the publish fires, simulated milliseconds.
    pub at_ms: u64,
    /// Publishing node index.
    pub node: u32,
    /// Subject the message is published under.
    pub subject: String,
}

/// One scripted partition window severing a mesh edge in both directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// One endpoint of the severed edge.
    pub a: u32,
    /// The other endpoint.
    pub b: u32,
    /// Window start (sever), simulated milliseconds.
    pub from_ms: u64,
    /// Window end (heal), simulated milliseconds; always `> from_ms`.
    pub to_ms: u64,
}

/// A fully explicit overlay scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlaySpec {
    /// Root seed: drives the simulation RNG streams and (for generated
    /// specs) the scenario shape itself.
    pub seed: u64,
    /// Mesh size; the base topology is a ring of this many nodes.
    pub nodes: u32,
    /// Add chord edges `i — i+2` for even `i` (denser reroute options).
    pub chords: bool,
    /// Static subscription table: `(node, subject)` pairs.
    pub subs: Vec<(u32, String)>,
    /// Timed publish schedule.
    pub publishes: Vec<PublishSpec>,
    /// Scripted partition windows. Generated specs keep windows
    /// sequential in time and their edges vertex-disjoint so merged
    /// `ConnStatus` streams stay per-channel legal.
    pub partitions: Vec<PartitionWindow>,
    /// Hard wall on simulated time, ms (leaves a settle window after the
    /// last heal for gossip to reconverge).
    pub horizon_ms: u64,
}

impl OverlaySpec {
    /// Generates the scenario for a fuzz seed. Same seed, same spec.
    #[must_use]
    pub fn generate(seed: u64) -> OverlaySpec {
        let mut rng = SeedSource::new(seed).stream("overlay-scenario");
        let nodes = rng.gen_range(4..=7u64) as u32;
        let chords = rng.gen_bool(0.4);
        let pool = ["alpha", "beta", "gamma"];
        let n_subjects = rng.gen_range(1..=2usize);
        let subjects: Vec<&str> = pool[..n_subjects].to_vec();
        let mut subs = Vec::new();
        for s in &subjects {
            let n_subs = rng.gen_range(1..=3u64);
            let mut chosen = std::collections::BTreeSet::new();
            for _ in 0..n_subs {
                chosen.insert(rng.gen_range(0..u64::from(nodes)) as u32);
            }
            for n in chosen {
                subs.push((n, (*s).to_string()));
            }
        }
        let n_pubs = rng.gen_range(3..=8u64);
        let mut publishes: Vec<PublishSpec> = (0..n_pubs)
            .map(|_| PublishSpec {
                at_ms: rng.gen_range(500..9_000u64),
                node: rng.gen_range(0..u64::from(nodes)) as u32,
                subject: subjects[rng.gen_range(0..subjects.len() as u64) as usize].to_string(),
            })
            .collect();
        publishes.sort_by_key(|p| p.at_ms);
        // Sequential windows on vertex-disjoint ring edges (0—1, then
        // 2—3): the merged ConnStatus stream then never interleaves two
        // outages of channels sharing a peer key.
        let n_parts = rng.gen_range(0..=2u64);
        let mut partitions = Vec::new();
        let mut earliest = 1_000u64;
        for k in 0..n_parts {
            let from_ms = rng.gen_range(earliest..earliest + 1_000);
            let to_ms = from_ms + rng.gen_range(800..2_000u64);
            partitions.push(PartitionWindow {
                a: 2 * k as u32,
                b: 2 * k as u32 + 1,
                from_ms,
                to_ms,
            });
            earliest = to_ms + 3_000;
        }
        OverlaySpec {
            seed,
            nodes,
            chords,
            subs,
            publishes,
            partitions,
            horizon_ms: 16_000,
        }
    }

    /// The undirected mesh edges: the ring, plus chords when enabled.
    #[must_use]
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let n = self.nodes;
        if n == 2 {
            // Degenerate "ring": one edge (the reconnect-baseline world).
            return vec![(0, 1)];
        }
        let mut out: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        if self.chords && n > 4 {
            for i in (0..n).step_by(2) {
                let j = (i + 2) % n;
                if i != j && !out.contains(&(i, j)) && !out.contains(&(j, i)) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Deliveries the subscription table calls for: every publish reaches
    /// every subscriber of its subject (including the origin itself).
    #[must_use]
    pub fn expected_deliveries(&self) -> u64 {
        self.publishes
            .iter()
            .map(|p| self.subs.iter().filter(|(_, s)| *s == p.subject).count() as u64)
            .sum()
    }

    /// Flight-recorder ring capacity sized from the scenario: enough for
    /// the packet-level trace of every publish crossing the mesh plus the
    /// supervision and overlay chatter, so control-plane events
    /// (`ConnStatus`) are never evicted mid-run.
    #[must_use]
    pub fn telemetry_capacity(&self) -> usize {
        let base = 1 << 16;
        let per_publish = 4_096 * self.nodes as usize;
        base + per_publish * self.publishes.len().max(1)
    }
}

/// Subscriber application: counts deliveries, forwards queued commands.
struct OverlayCounter {
    overlay: RequiredPort<OverlayPort>,
    commands: SelfPort<OverlayRequest>,
    delivered: u64,
}

impl OverlayCounter {
    fn new() -> Self {
        OverlayCounter {
            overlay: RequiredPort::new(),
            commands: SelfPort::new(),
            delivered: 0,
        }
    }
}

impl ComponentDefinition for OverlayCounter {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        kmsg_component::execute_ports!(self, ctx, max, [
            required overlay: OverlayPort,
            selfport commands: OverlayRequest,
        ])
    }
}

impl Require<OverlayPort> for OverlayCounter {
    fn handle(&mut self, _ctx: &mut ComponentContext, _ev: OverlayDelivery) {
        self.delivered += 1;
    }
}

impl HandleSelf<OverlayRequest> for OverlayCounter {
    fn handle_self(&mut self, _ctx: &mut ComponentContext, req: OverlayRequest) {
        self.overlay.trigger(req);
    }
}

impl RequireRef<OverlayPort> for OverlayCounter {
    fn required_port(&mut self) -> &mut RequiredPort<OverlayPort> {
        &mut self.overlay
    }
}

/// Per-node end-of-run counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OverlayNodeSummary {
    /// Messages this node published.
    pub published: u64,
    /// Deliveries that reached this node's subscriber application.
    pub delivered: u64,
    /// Duplicate copies absorbed by this node's dedup window.
    pub dup_drops: u64,
    /// Publishes/resends that found no usable route from this node.
    pub no_route: u64,
    /// Reroute episodes this node ran.
    pub reroutes: u64,
    /// Buffered messages this node re-sent along fresh paths.
    pub resends: u64,
    /// Frames this node's middleware killed on TTL expiry.
    pub ttl_drops: u64,
}

/// Everything one overlay run produced.
#[derive(Debug)]
pub struct OverlayReport {
    /// Oracle-facing end-of-run facts.
    pub facts: OverlayFacts,
    /// Per-node counters, indexed by node.
    pub per_node: Vec<OverlayNodeSummary>,
    /// Final link-state/subscription table digest per node.
    pub digests: Vec<u64>,
    /// Channels re-established across all nodes.
    pub reconnects: u64,
    /// Channels that exhausted their reconnect budget.
    pub channels_dropped: u64,
    /// `conn_status` events evicted from the recorder ring (must be 0
    /// with a scenario-sized ring).
    pub evicted_conn_status: u64,
    /// Total events evicted from the ring, all kinds.
    pub evicted_events: u64,
    /// The run's flight recorder (trace input for the oracle suite).
    pub recorder: Recorder,
}

impl OverlayReport {
    /// Deterministic text rendering; equal seeds must yield equal text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let f = &self.facts;
        out.push_str(&format!(
            "nodes={} published={} expected={} delivered={} dup={} no_route={} \
             converged={}\n",
            f.nodes, f.published, f.expected_deliveries, f.delivered, f.duplicates, f.no_route,
            f.converged
        ));
        for (i, n) in self.per_node.iter().enumerate() {
            out.push_str(&format!(
                "node{i}: pub={} del={} dup={} no_route={} reroutes={} resends={} \
                 ttl_drops={} digest={:016x}\n",
                n.published, n.delivered, n.dup_drops, n.no_route, n.reroutes, n.resends,
                n.ttl_drops, self.digests[i]
            ));
        }
        out.push_str(&format!(
            "reconnects={} dropped={} evicted_conn_status={}\n",
            self.reconnects, self.channels_dropped, self.evicted_conn_status
        ));
        out
    }
}

/// Builds the mesh world, runs the schedule and derives the facts.
///
/// # Panics
///
/// Panics if a network stack fails to bind (ports are fixed and the world
/// is fresh, so this indicates a harness bug).
#[must_use]
pub fn run_overlay_spec(spec: &OverlaySpec) -> OverlayReport {
    let sim = Sim::new(spec.seed);
    let recorder = sim.recorder().clone();
    recorder.set_capacity(spec.telemetry_capacity());
    recorder.enable();
    let net = Network::new(&sim);
    net.set_tracer(RecorderTracer::new(recorder.clone()));
    let link = LinkConfig::new(20e6, Duration::from_millis(5));
    let nodes: Vec<NodeId> = (0..spec.nodes).map(|i| net.add_node(format!("n{i}"))).collect();
    for (a, b) in spec.edges() {
        for (x, y) in [(a, b), (b, a)] {
            let l = net.add_link(link.clone());
            net.set_route(nodes[x as usize], nodes[y as usize], vec![l]);
        }
    }
    let system = ComponentSystem::simulation(&sim, SystemConfig::default());
    let seeds = SeedSource::new(spec.seed ^ 0x0E71);

    // The impatient supervision template (the chaos-benchmark tuning):
    // link death is detected in hundreds of milliseconds, so the overlay's
    // reroute has something to beat inside a short partition window.
    let net_cfg = |addr: NetAddress| {
        let mut cfg = NetworkConfig::new(addr);
        cfg.tcp.min_rto = Duration::from_millis(100);
        cfg.tcp.max_rto = Duration::from_millis(400);
        cfg.tcp.max_consecutive_timeouts = 2;
        cfg.tcp.syn_retries = 1;
        cfg.reconnect = Some(ReconnectConfig {
            max_retries: 60,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(400),
            probe_interval: Some(Duration::from_secs(2)),
        });
        cfg
    };

    let edges = spec.edges();
    let neighbours = |i: u32| -> Vec<NetAddress> {
        edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == i {
                    Some(b)
                } else if b == i {
                    Some(a)
                } else {
                    None
                }
            })
            .map(|j| NetAddress::new(nodes[j as usize], OVERLAY_PORT))
            .collect()
    };

    let mut net_stats = Vec::new();
    let mut overlays = Vec::new();
    let mut overlay_stats = Vec::new();
    let mut apps = Vec::new();
    let mut senders = Vec::new();
    for i in 0..spec.nodes {
        let addr = NetAddress::new(nodes[i as usize], OVERLAY_PORT);
        let network = create_network(&system, &net, net_cfg(addr)).expect("bind overlay node");
        net_stats.push(network.on_definition(|n| n.stats()));
        let mut cfg = OverlayConfig::new(addr, neighbours(i));
        cfg.gossip_interval = Duration::from_millis(250);
        cfg.subscriptions = spec
            .subs
            .iter()
            .filter(|(n, _)| *n == i)
            .map(|(_, s)| s.clone())
            .collect();
        let rng = seeds.stream(&format!("overlay-node-{i}"));
        let rec = recorder.clone();
        let overlay = system.create(move || OverlayComponent::new(cfg, rng, rec));
        overlay_stats.push(overlay.on_definition(|o| o.stats()));
        system.connect::<NetworkPort, _, _>(&network, &overlay);
        let app = system.create(OverlayCounter::new);
        system.connect::<OverlayPort, _, _>(&overlay, &app);
        senders.push(app.self_ref(|h| &mut h.commands));
        system.start(&network);
        system.start(&overlay);
        system.start(&app);
        overlays.push(overlay);
        apps.push(app);
    }

    let mut plan = FaultPlan::new();
    for w in &spec.partitions {
        for (x, y) in [(w.a, w.b), (w.b, w.a)] {
            let l = net
                .route(nodes[x as usize], nodes[y as usize])
                .expect("mesh edge has a route")[0];
            plan = plan.down_between(
                l,
                SimTime::from_millis(w.from_ms),
                SimTime::from_millis(w.to_ms),
            );
        }
    }
    let _ctl = Some(plan).filter(|p| !p.is_empty()).map(|p| FaultController::install(&net, p));

    for p in &spec.publishes {
        let at = SimTime::from_millis(p.at_ms);
        if sim.now() < at {
            sim.run_until(at);
        }
        let payload = Bytes::from(format!("{}@{}ms", p.subject, p.at_ms).into_bytes());
        senders[p.node as usize].push(OverlayRequest::Publish {
            subject: p.subject.clone(),
            payload,
        });
    }
    sim.run_until(SimTime::from_millis(spec.horizon_ms));
    recorder.publish_overflow_gauges();

    let per_node: Vec<OverlayNodeSummary> = (0..spec.nodes as usize)
        .map(|i| {
            let o = overlay_stats[i].lock();
            OverlayNodeSummary {
                published: o.published,
                delivered: o.delivered,
                dup_drops: o.dup_drops,
                no_route: o.no_route,
                reroutes: o.reroutes,
                resends: o.resends,
                ttl_drops: net_stats[i].lock().ttl_drops,
            }
        })
        .collect();
    let digests: Vec<u64> = overlays
        .iter()
        .map(|o| o.on_definition(|c| c.table_digest()))
        .collect();
    let converged = digests.windows(2).all(|d| d[0] == d[1]);
    let delivered: u64 = per_node.iter().map(|n| n.delivered).sum();
    let facts = OverlayFacts {
        nodes: u64::from(spec.nodes),
        published: per_node.iter().map(|n| n.published).sum(),
        expected_deliveries: spec.expected_deliveries(),
        delivered,
        duplicates: per_node.iter().map(|n| n.dup_drops).sum(),
        no_route: per_node.iter().map(|n| n.no_route).sum(),
        converged,
    };
    let (mut reconnects, mut channels_dropped) = (0u64, 0u64);
    for s in &net_stats {
        let sup = s.lock().supervision();
        reconnects += sup.reconnects;
        channels_dropped += sup.channels_dropped;
    }
    let evicted_conn_status = recorder
        .evicted_by_kind()
        .into_iter()
        .find(|(k, _)| *k == "conn_status")
        .map_or(0, |(_, n)| n);
    OverlayReport {
        facts,
        per_node,
        digests,
        reconnects,
        channels_dropped,
        evicted_conn_status,
        evicted_events: recorder.evicted(),
        recorder,
    }
}

/// The oracle configuration an overlay run's trace is judged under: every
/// generated partition heals, the mesh stays connected throughout, and
/// the horizon leaves a settle window — so completion (every expected
/// delivery) and convergence are both hard promises.
#[must_use]
pub fn overlay_oracle_config() -> kmsg_oracle::OracleConfig {
    kmsg_oracle::OracleConfig {
        expect_completion: true,
        faults_must_heal: true,
        // Mirror the impatient supervision template the runner installs:
        // its RTO cap is 400 ms, so backoff legally stops doubling there.
        max_rto_us: 400_000,
        ..kmsg_oracle::OracleConfig::default()
    }
}

/// [`RunFacts`](kmsg_oracle::RunFacts) for an overlay run: the transfer
/// fields describe the pub/sub workload (completed = all expected
/// deliveries arrived, verified = tables reconverged), supervision
/// counters come from the middleware stacks, and [`OverlayFacts`] carry
/// the overlay-specific accounting.
#[must_use]
pub fn overlay_run_facts(report: &OverlayReport) -> kmsg_oracle::RunFacts {
    kmsg_oracle::RunFacts {
        completed: report.facts.delivered == report.facts.expected_deliveries,
        verified: report.facts.converged,
        duplicates: report.facts.duplicates,
        out_of_order: 0,
        reconnects: report.reconnects,
        reconnect_attempts: report.reconnects,
        channels_dropped: report.channels_dropped,
        failovers: 0,
        controller_swaps: 0,
        fifo_expected: false,
        evicted_events: report.evicted_events,
        overlay: Some(report.facts.clone()),
        pool_live_at_end: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_well_formed() {
        for seed in 0..20 {
            let a = OverlaySpec::generate(seed);
            let b = OverlaySpec::generate(seed);
            assert_eq!(a, b);
            assert!(a.nodes >= 4 && a.nodes <= 7);
            assert!(!a.subs.is_empty());
            assert!(!a.publishes.is_empty());
            // Windows are sequential and on vertex-disjoint ring edges.
            for w in a.partitions.windows(2) {
                assert!(w[1].from_ms > w[0].to_ms);
                let (x, y) = (w[0].a, w[0].b);
                assert!(w[1].a != x && w[1].a != y && w[1].b != x && w[1].b != y);
            }
            for p in &a.partitions {
                assert!(p.to_ms > p.from_ms);
                assert!(p.to_ms + 3_000 < a.horizon_ms, "settle window preserved");
            }
            let last_pub = a.publishes.iter().map(|p| p.at_ms).max().unwrap_or(0);
            assert!(last_pub + 3_000 < a.horizon_ms);
        }
    }

    #[test]
    fn edges_stay_connected_without_any_single_edge() {
        let spec = OverlaySpec::generate(3);
        let edges = spec.edges();
        // Removing any one edge leaves the ring (plus chords) connected.
        for skip in 0..edges.len() {
            let mut adj = vec![Vec::new(); spec.nodes as usize];
            for (k, &(a, b)) in edges.iter().enumerate() {
                if k != skip {
                    adj[a as usize].push(b as usize);
                    adj[b as usize].push(a as usize);
                }
            }
            let mut seen = vec![false; spec.nodes as usize];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(v) = stack.pop() {
                for &w in &adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "cut edge {skip} disconnected the mesh");
        }
    }
}
