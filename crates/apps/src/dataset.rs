//! Synthetic transfer datasets.
//!
//! The paper transfers a ~395 MB NetCDF climate file (CESM/CAM5 output)
//! and notes that, with the Snappy handler in the pipeline, results depend
//! on the data's compressibility. [`Dataset`] generates deterministic
//! synthetic data in two flavours:
//!
//! * [`DatasetKind::Climate`] — gridded floating-point fields with
//!   embedded metadata tags: lightly compressible (~10%), like Snappy on
//!   real NetCDF float data;
//! * [`DatasetKind::Random`] — incompressible noise.
//!
//! Chunks are a pure function of `(seed, offset)`, so sender and receiver
//! can independently verify content without sharing the data.

use bytes::Bytes;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// The paper's transfer size: ~395 MB.
pub const PAPER_DATASET_SIZE: usize = 395 * 1024 * 1024;

/// The paper's message chunk size (fits the serialisation buffers).
pub const PAPER_CHUNK_SIZE: usize = 65 * 1000;

/// Dataset flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// NetCDF-like gridded climate data (compressible).
    Climate,
    /// Incompressible random bytes.
    Random,
}

/// A deterministic synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dataset {
    /// Flavour.
    pub kind: DatasetKind,
    /// Total size in bytes.
    pub size: usize,
    /// Content seed.
    pub seed: u64,
}

impl Dataset {
    /// A climate-like dataset of `size` bytes.
    #[must_use]
    pub fn climate(size: usize, seed: u64) -> Self {
        Dataset {
            kind: DatasetKind::Climate,
            size,
            seed,
        }
    }

    /// An incompressible dataset of `size` bytes.
    #[must_use]
    pub fn random(size: usize, seed: u64) -> Self {
        Dataset {
            kind: DatasetKind::Random,
            size,
            seed,
        }
    }

    /// The bytes at `[offset, offset + len)`, clamped to the dataset end.
    #[must_use]
    pub fn chunk(&self, offset: usize, len: usize) -> Bytes {
        let end = self.size.min(offset + len);
        if offset >= end {
            return Bytes::new();
        }
        let len = end - offset;
        let mut out = Vec::with_capacity(len);
        match self.kind {
            DatasetKind::Random => {
                // Incompressible: a counter-mode stream, restartable at any
                // 64-byte block boundary.
                const BLOCK: usize = 64;
                let first_block = offset / BLOCK;
                let last_block = (end - 1) / BLOCK;
                for block in first_block..=last_block {
                    let mut rng =
                        ChaCha12Rng::seed_from_u64(self.seed ^ (block as u64).wrapping_mul(0x9e37));
                    let mut data = [0u8; BLOCK];
                    rng.fill(&mut data[..]);
                    let block_start = block * BLOCK;
                    let from = offset.max(block_start) - block_start;
                    let to = end.min(block_start + BLOCK) - block_start;
                    out.extend_from_slice(&data[from..to]);
                }
            }
            DatasetKind::Climate => {
                // A "record" stream: 16-byte records of [station tag |
                // smooth field value], restartable at record boundaries.
                const REC: usize = 16;
                let first_rec = offset / REC;
                let last_rec = (end - 1) / REC;
                for rec in first_rec..=last_rec {
                    let data = climate_record(self.seed, rec);
                    let rec_start = rec * REC;
                    let from = offset.max(rec_start) - rec_start;
                    let to = end.min(rec_start + REC) - rec_start;
                    out.extend_from_slice(&data[from..to]);
                }
            }
        }
        Bytes::from(out)
    }

    /// Order-independent checksum over all chunk-aligned pieces of the
    /// dataset: wrapping sum of per-chunk FNV hashes keyed by offset.
    /// Receivers can accumulate the same value chunk by chunk, in any
    /// arrival order; `n` repeated transfers accumulate `n × checksum`.
    #[must_use]
    pub fn checksum(&self, chunk_size: usize) -> u64 {
        let mut acc = 0u64;
        let mut offset = 0;
        while offset < self.size {
            let chunk = self.chunk(offset, chunk_size);
            acc = acc.wrapping_add(chunk_hash(offset as u64, &chunk));
            offset += chunk_size;
        }
        acc
    }

    /// Number of chunks of `chunk_size` covering the dataset.
    #[must_use]
    pub fn chunk_count(&self, chunk_size: usize) -> usize {
        self.size.div_ceil(chunk_size)
    }
}

/// 16 bytes of climate-like record `rec`: a repeating variable tag plus
/// two smoothly-varying float fields. Floating-point model output is
/// nearly incompressible for byte-oriented codecs like Snappy (the
/// mantissa bits are high-entropy even when the signal is smooth), so
/// this compresses only lightly (~10%) — matching the paper's NetCDF
/// dataset, whose results were network-bound despite the Snappy handler.
fn climate_record(seed: u64, rec: usize) -> [u8; 16] {
    let t = rec as f64 * 0.01;
    let field = (t.sin() * 120.0 + (seed % 17) as f64) as f32;
    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(b"CAM5");
    out[4..8].copy_from_slice(&u32::try_from(rec % 1_000_000).expect("fits").to_le_bytes());
    out[8..12].copy_from_slice(&field.to_le_bytes());
    out[12..16].copy_from_slice(&(field * 0.731).to_le_bytes());
    out
}

/// Per-chunk hash used by the order-independent [`Dataset::checksum`].
#[must_use]
pub fn chunk_hash(offset: u64, data: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = 0xcbf2_9ce4_8422_2325 ^ offset.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_are_deterministic() {
        let ds = Dataset::climate(100_000, 42);
        assert_eq!(ds.chunk(1000, 500), ds.chunk(1000, 500));
        let ds2 = Dataset::climate(100_000, 43);
        assert_ne!(ds.chunk(1000, 500), ds2.chunk(1000, 500));
    }

    #[test]
    fn chunks_tile_the_dataset() {
        for kind in [DatasetKind::Climate, DatasetKind::Random] {
            let ds = Dataset {
                kind,
                size: 10_000,
                seed: 7,
            };
            let whole = ds.chunk(0, 10_000);
            let mut tiled = Vec::new();
            let mut offset = 0;
            while offset < ds.size {
                let c = ds.chunk(offset, 777);
                tiled.extend_from_slice(&c);
                offset += 777;
            }
            assert_eq!(whole, Bytes::from(tiled), "{kind:?}");
        }
    }

    #[test]
    fn chunk_clamps_at_end() {
        let ds = Dataset::random(1000, 1);
        assert_eq!(ds.chunk(900, 500).len(), 100);
        assert_eq!(ds.chunk(1000, 500).len(), 0);
        assert_eq!(ds.chunk(2000, 500).len(), 0);
    }

    #[test]
    fn climate_is_compressible_random_is_not() {
        let climate = Dataset::climate(60_000, 1).chunk(0, 60_000);
        let random = Dataset::random(60_000, 1).chunk(0, 60_000);
        let c1 = kmsg_core::codec::compress(&climate);
        let c2 = kmsg_core::codec::compress(&random);
        assert!(
            c1.len() < climate.len() * 97 / 100,
            "climate data should compress a little (like Snappy on floats), got {} -> {}",
            climate.len(),
            c1.len()
        );
        assert!(
            c2.len() > random.len() * 9 / 10,
            "random data should not compress, got {} -> {}",
            random.len(),
            c2.len()
        );
    }

    #[test]
    fn checksum_is_order_independent() {
        let ds = Dataset::climate(50_000, 3);
        let expected = ds.checksum(7000);
        // Accumulate in reverse order.
        let mut acc = 0u64;
        let mut offsets: Vec<usize> = (0..ds.chunk_count(7000)).map(|i| i * 7000).collect();
        offsets.reverse();
        for off in offsets {
            let chunk = ds.chunk(off, 7000);
            acc = acc.wrapping_add(chunk_hash(off as u64, &chunk));
        }
        assert_eq!(acc, expected);
    }

    #[test]
    fn checksum_detects_corruption() {
        let ds = Dataset::climate(10_000, 3);
        let good = ds.checksum(1000);
        let mut acc = 0u64;
        for i in 0..ds.chunk_count(1000) {
            let off = i * 1000;
            let mut data = ds.chunk(off, 1000).to_vec();
            if i == 3 {
                data[5] ^= 0xff;
            }
            acc = acc.wrapping_add(chunk_hash(off as u64, &data));
        }
        assert_ne!(acc, good);
    }

    #[test]
    fn paper_constants() {
        assert_eq!(PAPER_DATASET_SIZE, 414_187_520);
        assert_eq!(PAPER_CHUNK_SIZE, 65_000);
    }
}
