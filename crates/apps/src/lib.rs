//! # kmsg-apps — evaluation applications for KompicsMessaging
//!
//! The workloads of the paper's evaluation (§V): bulk file transfer with
//! 65 kB chunking and `MessageNotify`-based pipelining ([`transfer`]),
//! timing-sensitive ping/pong control traffic ([`ping`]), deterministic
//! synthetic datasets with controllable compressibility ([`dataset`]),
//! sequential-disk models ([`disk`]), the calibrated EC2-like environments
//! ([`scenario`]), a one-call experiment harness ([`experiment`]), the
//! seeded scenario generator behind the simulation fuzzer ([`fuzz`]) and
//! mesh pub/sub scenarios for the self-healing routing overlay
//! ([`overlay_scenario`]).

#![warn(missing_docs)]

pub mod dataset;
pub mod disk;
pub mod experiment;
pub mod fuzz;
pub mod msgs;
pub mod overlay_scenario;
pub mod ping;
pub mod scenario;
pub mod topology;
pub mod transfer;

pub use dataset::{Dataset, DatasetKind, PAPER_CHUNK_SIZE, PAPER_DATASET_SIZE};
pub use disk::{DiskModel, DISK_RATE, MEMORY_RATE};
pub use experiment::{
    run_experiment, run_in_world, CcSwap, ExperimentConfig, ExperimentResult, PingSettings,
};
pub use fuzz::{
    build_chain_world, run_scenario, ChainWorld, FaultKind, FaultSpec, FuzzRun, ScenarioSpec,
};
pub use msgs::{ChunkMsg, PingMsg, PongMsg};
pub use overlay_scenario::{
    overlay_oracle_config, overlay_run_facts, run_overlay_spec, OverlayNodeSummary, OverlayReport,
    OverlaySpec, PartitionWindow, PublishSpec, OVERLAY_PORT,
};
pub use ping::{PingStats, PingStatsHandle, Pinger, PingerConfig, Ponger};
pub use scenario::{two_host_world, Setup, TwoHostWorld};
pub use topology::{
    build_converge_world, fat_tree, run_converging_senders, star_fanin, wan_mesh, ConvergeReport,
    ConvergeSpec, ConvergeWorld, ScaleShape, Topology, CONVERGE_PORT,
};
pub use transfer::{
    FileReceiver, FileSender, ReceiverConfig, ReceiverSample, ReceiverStats, SenderConfig,
    SenderStats,
};
