//! A sequential-disk model.
//!
//! The paper's local (0 ms RTT) setup "simply measures disk throughput":
//! the file transfer is disk-to-disk, so both ends are rate-limited by
//! storage. [`DiskModel`] serialises accesses analytically, exactly like
//! the link model: each access occupies the disk for `bytes / rate` and
//! completes when the backlog before it has drained.

use kmsg_netsim::time::SimTime;
use std::time::Duration;

/// Sequential throughput of the c3.2xlarge SSDs in the paper's setup,
/// bytes/second (the observed disk-limited transfer rate).
pub const DISK_RATE: f64 = 110e6;

/// Memory-to-memory rate observed in the paper ("memory to memory we
/// reached even higher throughput of around 150 MB/s").
pub const MEMORY_RATE: f64 = 150e6;

/// An analytic sequential disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    rate: f64,
    busy_until: SimTime,
}

impl DiskModel {
    /// A disk with the given sequential rate in bytes/second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "disk rate must be positive");
        DiskModel {
            rate,
            busy_until: SimTime::ZERO,
        }
    }

    /// Queues an access of `bytes` at `now`; returns when it completes.
    pub fn access(&mut self, now: SimTime, bytes: usize) -> SimTime {
        let start = self.busy_until.max(now);
        self.busy_until = start + Duration::from_secs_f64(bytes as f64 / self.rate);
        self.busy_until
    }

    /// When the disk becomes idle.
    #[must_use]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// The configured rate in bytes/second.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accesses_serialise() {
        let mut d = DiskModel::new(100e6);
        let t0 = SimTime::ZERO;
        let first = d.access(t0, 50_000_000); // 0.5 s
        let second = d.access(t0, 50_000_000); // queued behind: 1.0 s
        assert_eq!(first, SimTime::from_secs_f64(0.5));
        assert_eq!(second, SimTime::from_secs(1));
    }

    #[test]
    fn idle_disk_starts_immediately() {
        let mut d = DiskModel::new(100e6);
        let _ = d.access(SimTime::ZERO, 100_000_000);
        // After the backlog drains, a later access starts at `now`.
        let later = SimTime::from_secs(10);
        let done = d.access(later, 100_000_000);
        assert_eq!(done, SimTime::from_secs(11));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = DiskModel::new(0.0);
    }
}
