//! The reusable two-host experiment harness driving the paper's
//! evaluation scenarios: a (possibly absent) bulk transfer between host A
//! and host B, optionally with parallel ping/pong control traffic, over a
//! chosen transport — including the adaptive `DATA` meta-protocol.
//!
//! Every figure-regeneration binary in `kmsg-bench` is a thin loop over
//! [`run_experiment`].

use std::time::Duration;

use kmsg_core::data::FlowPoint;
use kmsg_core::prelude::*;
use kmsg_netsim::cc::CcAlgorithm;
use kmsg_netsim::rng::SeedSource;
use kmsg_netsim::{FaultController, FaultPlan, Recorder, RecorderTracer};

use crate::dataset::Dataset;
use crate::ping::{PingStats, Pinger, PingerConfig, Ponger};
use crate::scenario::{two_host_world, Setup, TwoHostWorld};
use crate::transfer::{
    FileReceiver, FileSender, ReceiverConfig, ReceiverSample, SenderConfig,
};

/// Ports used by the harness.
const SENDER_PORT: u16 = 7000;
const RECEIVER_PORT: u16 = 7001;

/// Ping sub-configuration.
#[derive(Debug, Clone)]
pub struct PingSettings {
    /// Transport for the pings.
    pub transport: Transport,
    /// Ping interval.
    pub interval: Duration,
}

impl Default for PingSettings {
    fn default() -> Self {
        PingSettings {
            transport: Transport::Tcp,
            interval: Duration::from_millis(250),
        }
    }
}

/// A scripted mid-run congestion-controller swap: at `at` (simulated
/// time from the run start) the sender's stack policy re-selects `algo`
/// for the receiver and recycles the live TCP channel onto it (the DATA
/// stack-policy surface, driven by the harness instead of a learner).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CcSwap {
    /// When to apply the swap.
    pub at: Duration,
    /// The controller to swap the sender→receiver TCP stack onto.
    pub algo: CcAlgorithm,
}

/// A complete experiment description.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Which environment to run in.
    pub setup: Setup,
    /// Root seed (vary per repetition).
    pub seed: u64,
    /// Transport for the bulk data: `Tcp`, `Udt` or `Data`.
    pub data_transport: Transport,
    /// The dataset to transfer; `None` disables the bulk transfer
    /// (ping-only runs).
    pub transfer: Option<Dataset>,
    /// Parallel control traffic, if any.
    pub ping: Option<PingSettings>,
    /// Interceptor configuration (used when `data_transport` is `Data`).
    pub data_cfg: DataNetworkConfig,
    /// Network/transport configuration template (address is overwritten).
    pub net_template: Option<NetworkConfig>,
    /// Back-to-back transfer rounds over the SAME long-lived middleware:
    /// the learner persists between rounds (the paper repeats runs against
    /// a standing deployment). Timing and throughput are reported for the
    /// LAST round.
    pub transfer_rounds: u32,
    /// Model disks at the endpoints (the paper's disk-to-disk runs).
    pub use_disk: bool,
    /// Hard wall on simulated time.
    pub max_sim_time: Duration,
    /// Receiver sampling window (throughput / wire-ratio series).
    pub sample_every: Duration,
    /// Scripted fault injections applied to the world (chaos runs);
    /// `None` leaves the network healthy.
    pub faults: Option<FaultPlan>,
    /// Scripted mid-run congestion-controller swap; `None` keeps the
    /// configured controller for the whole run.
    pub cc_swap: Option<CcSwap>,
    /// Enable the flight recorder: every layer's telemetry events (TCP
    /// cwnd transitions, UDT rate updates, link drops, scheduler depth,
    /// learner decisions, per-packet traces) are captured in the sim's
    /// [`Recorder`], exposed via [`ExperimentResult::recorder`].
    pub telemetry: bool,
    /// Flight-recorder ring capacity override. Long chaos runs overflow
    /// the default 65 536-event ring and evict the mid-run supervision
    /// events; `None` keeps the default.
    pub telemetry_capacity: Option<usize>,
}

impl ExperimentConfig {
    /// A disk-to-disk transfer of `dataset` over `transport` in `setup`.
    #[must_use]
    pub fn transfer(setup: Setup, transport: Transport, dataset: Dataset, seed: u64) -> Self {
        ExperimentConfig {
            setup,
            seed,
            data_transport: transport,
            transfer: Some(dataset),
            ping: None,
            data_cfg: DataNetworkConfig {
                seeds: SeedSource::new(seed),
                ..DataNetworkConfig::default()
            },
            net_template: None,
            transfer_rounds: 1,
            use_disk: true,
            max_sim_time: Duration::from_secs(1200),
            sample_every: Duration::from_secs(1),
            faults: None,
            cc_swap: None,
            telemetry: false,
            telemetry_capacity: None,
        }
    }

    /// A ping-only run (control-message baseline).
    #[must_use]
    pub fn ping_only(setup: Setup, ping: PingSettings, seed: u64, duration: Duration) -> Self {
        ExperimentConfig {
            setup,
            seed,
            data_transport: Transport::Tcp,
            transfer: None,
            ping: Some(ping),
            data_cfg: DataNetworkConfig {
                seeds: SeedSource::new(seed),
                ..DataNetworkConfig::default()
            },
            net_template: None,
            transfer_rounds: 1,
            use_disk: true,
            max_sim_time: duration,
            sample_every: Duration::from_secs(1),
            faults: None,
            cc_swap: None,
            telemetry: false,
            telemetry_capacity: None,
        }
    }
}

/// What an experiment produced.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Disk-to-disk transfer time, if the transfer completed.
    pub transfer_time: Option<Duration>,
    /// Goodput over the whole transfer, bytes/s.
    pub throughput: Option<f64>,
    /// Whether the received data verified against the dataset checksum.
    pub verified: bool,
    /// Receiver-side windows (throughput + true wire ratio).
    pub receiver_samples: Vec<ReceiverSample>,
    /// Interceptor flow telemetry (only for `DATA` runs).
    pub flow_points: Vec<FlowPoint>,
    /// Ping statistics, if pings ran.
    pub ping: Option<PingStats>,
    /// Sender-side middleware counters (bytes on wire, per-transport
    /// messages, reflections, …).
    pub sender_net: MiddlewareStats,
    /// Receiver-side middleware counters.
    pub receiver_net: MiddlewareStats,
    /// Duplicate chunks the receiver deduplicated (at-least-once
    /// redelivery during supervised reconnects surfaces here).
    pub duplicates: u64,
    /// Fresh chunks that arrived below the highest offset seen so far
    /// (out-of-order arrivals; zero on a calm single-channel run).
    pub out_of_order: u64,
    /// Link-level fault actions the scripted plan applied.
    pub faults_applied: u64,
    /// Simulation events executed (diagnostics).
    pub events: u64,
    /// The simulation's telemetry recorder — populated when
    /// [`ExperimentConfig::telemetry`] was on, otherwise empty. Export with
    /// [`Recorder::write_snapshot`] / [`Recorder::write_jsonl`].
    pub recorder: Recorder,
}

/// Runs one experiment to completion (transfer finished or the time wall).
///
/// # Panics
///
/// Panics if the network stacks fail to bind (ports are fixed and worlds
/// are fresh, so this indicates a harness bug).
#[must_use]
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    let world = two_host_world(cfg.seed, &cfg.setup);
    run_in_world(&world, cfg)
}

/// Runs one experiment inside an already-built world.
///
/// [`run_experiment`] builds the standard two-host world from
/// [`ExperimentConfig::setup`]; this entry point lets callers (notably the
/// scenario fuzzer) supply arbitrary topologies — relay chains, asymmetric
/// links — as long as `world.host_a` can reach `world.host_b` and back.
/// `cfg.setup` is ignored.
///
/// # Panics
///
/// Panics if the network stacks fail to bind (ports are fixed and worlds
/// are fresh, so this indicates a harness bug).
#[must_use]
pub fn run_in_world(world: &TwoHostWorld, cfg: &ExperimentConfig) -> ExperimentResult {
    if cfg.telemetry {
        if let Some(cap) = cfg.telemetry_capacity {
            world.sim.recorder().set_capacity(cap);
        }
        world.sim.recorder().enable();
        // Fold the packet tracer into the same flight-recorder stream.
        world
            .net
            .set_tracer(RecorderTracer::new(world.sim.recorder().clone()));
    }
    let fault_ctl = cfg
        .faults
        .clone()
        .filter(|p| !p.is_empty())
        .map(|p| FaultController::install(&world.net, p));
    let a_addr = NetAddress::new(world.host_a, SENDER_PORT);
    let b_addr = NetAddress::new(world.host_b, RECEIVER_PORT);

    let mk_net_cfg = |addr: NetAddress| match &cfg.net_template {
        Some(t) => NetworkConfig { addr, ..t.clone() },
        None => NetworkConfig::new(addr),
    };

    // Host A: full DataNetwork stack (interceptor is pass-through for
    // non-DATA traffic, so it is always safe to include).
    let data_cfg = DataNetworkConfig {
        seeds: SeedSource::new(cfg.seed ^ 0xD47A),
        recorder: world.sim.recorder().clone(),
        ..cfg.data_cfg.clone()
    };
    let dn = kmsg_core::data::create_data_network(
        &world.system,
        &world.net,
        mk_net_cfg(a_addr),
        data_cfg,
    )
    .expect("bind sender stack");
    let data_stats = dn.interceptor.on_definition(|c| c.stats());
    let a_net_stats = dn.network.on_definition(|n| n.stats());

    // Host B: plain network stack.
    let b_net = kmsg_core::net::create_network(&world.system, &world.net, mk_net_cfg(b_addr))
        .expect("bind receiver stack");
    let b_net_stats = b_net.on_definition(|n| n.stats());

    // Transfer components.
    let disk_rate = if cfg.use_disk {
        Some(crate::disk::DISK_RATE)
    } else {
        None
    };
    let transfer_parts = cfg.transfer.map(|dataset| {
        let sender = world.system.create(|| {
            FileSender::new(SenderConfig {
                disk_rate,
                rounds: cfg.transfer_rounds.max(1),
                ..SenderConfig::new(dataset, a_addr, b_addr, cfg.data_transport)
            })
        });
        world
            .system
            .connect::<NetworkPort, _, _>(&dn.interceptor, &sender);
        let receiver = world.system.create(|| {
            FileReceiver::new(ReceiverConfig {
                disk_rate,
                rounds: cfg.transfer_rounds.max(1),
                sample_every: cfg.sample_every,
                ..ReceiverConfig::new(dataset)
            })
        });
        world.system.connect::<NetworkPort, _, _>(&b_net, &receiver);
        // Free while the recorder is disabled: instants check the enable
        // flag before allocating a span id.
        let tracer = world.sim.recorder().tracer();
        receiver.on_definition(move |r| r.attach_tracer(tracer));
        let rx_stats = receiver.on_definition(|r| r.stats());
        (sender, receiver, rx_stats, dataset)
    });

    // Ping components.
    let ping_parts = cfg.ping.as_ref().map(|ping| {
        let pinger = world.system.create(|| {
            Pinger::new(PingerConfig {
                transport: ping.transport,
                interval: ping.interval,
                ..PingerConfig::new(a_addr, b_addr)
            })
        });
        world
            .system
            .connect::<NetworkPort, _, _>(&dn.interceptor, &pinger);
        let ponger = world.system.create(|| Ponger::new(b_addr));
        world.system.connect::<NetworkPort, _, _>(&b_net, &ponger);
        let stats = pinger.on_definition(|p| p.stats());
        world.system.start(&pinger);
        world.system.start(&ponger);
        stats
    });

    dn.start(&world.system);
    world.system.start(&b_net);
    if let Some((sender, receiver, _, _)) = &transfer_parts {
        world.system.start(receiver);
        world.system.start(sender);
    }

    // Drive the simulation until the transfer completes (or the wall).
    let step = Duration::from_millis(200);
    let mut elapsed = Duration::ZERO;
    let mut swap_pending = cfg.cc_swap;
    while elapsed < cfg.max_sim_time {
        world.sim.run_for(step);
        elapsed += step;
        if let Some(swap) = swap_pending {
            if elapsed >= swap.at {
                dn.network
                    .on_definition(|n| n.swap_controller(b_addr.as_socket(), swap.algo));
                swap_pending = None;
            }
        }
        if let Some((_, _, rx_stats, _)) = &transfer_parts {
            if rx_stats.lock().done_at.is_some() {
                // Small grace period so trailing notifies and pongs land.
                world.sim.run_for(Duration::from_millis(500));
                break;
            }
        }
    }

    let (transfer_time, throughput, verified, receiver_samples) = match &transfer_parts {
        Some((_, receiver, rx_stats, dataset)) => {
            let stats = rx_stats.lock().clone();
            // Report the LAST round: earlier rounds warm the middleware.
            let time = match stats.round_done_at.len() {
                0 => None,
                1 => stats.round_done_at.first().map(|t| t.duration_since(
                    kmsg_netsim::time::SimTime::ZERO,
                )),
                n => Some(stats.round_done_at[n - 1].duration_since(stats.round_done_at[n - 2])),
            };
            let complete = stats.done_at.is_some();
            let time = if complete { time } else { None };
            let thr = time.map(|t| dataset.size as f64 / t.as_secs_f64());
            let verified = receiver.on_definition(kmsg_apps_receiver_verified);
            (time, thr, verified, stats.samples)
        }
        None => (None, None, true, Vec::new()),
    };

    let flow_points = data_stats
        .lock()
        .get(&b_addr.as_socket())
        .cloned()
        .unwrap_or_default();
    let ping = ping_parts.map(|h| h.lock().clone());

    let sender_net = a_net_stats.lock().clone();
    let receiver_net = b_net_stats.lock().clone();
    let (duplicates, out_of_order) = transfer_parts.as_ref().map_or((0, 0), |(_, _, rx, _)| {
        let stats = rx.lock();
        (stats.duplicates, stats.out_of_order)
    });
    ExperimentResult {
        transfer_time,
        throughput,
        verified,
        receiver_samples,
        flow_points,
        ping,
        sender_net,
        receiver_net,
        duplicates,
        out_of_order,
        faults_applied: fault_ctl.map_or(0, |c| c.applied()),
        events: world.sim.events_executed(),
        recorder: world.sim.recorder().clone(),
    }
}

// Free function to satisfy the closure signature of `on_definition`.
fn kmsg_apps_receiver_verified(r: &mut FileReceiver) -> bool {
    r.verified()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_transfer_on_vpc_is_disk_limited() {
        let dataset = Dataset::random(20_000_000, 5);
        let cfg = ExperimentConfig::transfer(Setup::EuVpc, Transport::Tcp, dataset, 1);
        let result = run_experiment(&cfg);
        assert!(result.verified, "content must verify");
        let thr = result.throughput.expect("completed");
        assert!(
            thr > 50e6,
            "VPC TCP should run near disk speed, got {:.1} MB/s",
            thr / 1e6
        );
    }

    #[test]
    fn udt_policed_near_10mbps_on_wan() {
        let dataset = Dataset::random(15_000_000, 5);
        let cfg = ExperimentConfig::transfer(Setup::Eu2Us, Transport::Udt, dataset, 2);
        let result = run_experiment(&cfg);
        assert!(result.verified);
        let thr = result.throughput.expect("completed");
        assert!(
            (2e6..12e6).contains(&thr),
            "WAN UDT sits under the 10 MB/s policer, got {:.1} MB/s",
            thr / 1e6
        );
    }

    #[test]
    fn tcp_collapses_at_eu2au() {
        let dataset = Dataset::random(3_000_000, 5);
        let cfg = ExperimentConfig::transfer(Setup::Eu2Au, Transport::Tcp, dataset, 3);
        let result = run_experiment(&cfg);
        assert!(result.verified);
        let thr = result.throughput.expect("completed");
        assert!(
            thr < 3e6,
            "lossy 320 ms TCP must collapse, got {:.1} MB/s",
            thr / 1e6
        );
    }

    #[test]
    fn telemetry_streams_are_byte_identical_per_seed() {
        // The full stack instrumented (transports, links, scheduler,
        // learner, packet tracer): two runs with the same seed must emit
        // byte-identical flight-recorder JSONL and snapshot JSON.
        let run = || {
            let dataset = Dataset::random(2_000_000, 5);
            let mut cfg = ExperimentConfig::transfer(Setup::Eu2Us, Transport::Data, dataset, 77);
            cfg.max_sim_time = Duration::from_secs(30);
            cfg.telemetry = true;
            let result = run_experiment(&cfg);
            (result.recorder.to_jsonl(), result.recorder.snapshot_json())
        };
        let (jsonl_a, snap_a) = run();
        let (jsonl_b, snap_b) = run();
        assert!(!jsonl_a.is_empty(), "telemetry must capture events");
        assert!(
            jsonl_a.lines().count() > 100,
            "a DATA transfer should produce a rich event stream, got {}",
            jsonl_a.lines().count()
        );
        assert_eq!(jsonl_a, jsonl_b, "flight-recorder JSONL must be reproducible");
        assert_eq!(snap_a, snap_b, "snapshot JSON must be reproducible");
    }

    #[test]
    fn mid_run_controller_swap_is_counted_and_harmless() {
        let dataset = Dataset::random(2_000_000, 5);
        let mut cfg = ExperimentConfig::transfer(Setup::Eu2Us, Transport::Tcp, dataset, 9);
        cfg.max_sim_time = Duration::from_secs(60);
        cfg.cc_swap = Some(CcSwap {
            at: Duration::from_millis(400),
            algo: CcAlgorithm::Cubic,
        });
        let result = run_experiment(&cfg);
        assert!(result.verified, "the swap must not corrupt the transfer");
        assert!(result.transfer_time.is_some(), "the swap must not stall it");
        assert_eq!(
            result.sender_net.controller_swaps, 1,
            "the scripted swap must recycle the live channel exactly once"
        );
    }

    #[test]
    fn telemetry_off_keeps_recorder_empty() {
        let cfg = ExperimentConfig::ping_only(
            Setup::EuVpc,
            PingSettings::default(),
            5,
            Duration::from_secs(2),
        );
        let result = run_experiment(&cfg);
        assert_eq!(result.recorder.event_count(), 0);
        assert_eq!(result.recorder.recorded_total(), 0);
    }

    #[test]
    fn ping_only_baseline_matches_rtt() {
        let cfg = ExperimentConfig::ping_only(
            Setup::Eu2Us,
            PingSettings::default(),
            4,
            Duration::from_secs(10),
        );
        let result = run_experiment(&cfg);
        let ping = result.ping.expect("ping stats");
        assert!(ping.received > 20);
        let mean = ping.mean().expect("rtts").as_secs_f64();
        assert!(
            (0.15..0.18).contains(&mean),
            "ping-only RTT should be ~155 ms, got {mean}"
        );
    }
}
