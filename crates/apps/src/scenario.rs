//! The paper's experiment environments (§V-A, Figure 7): pairs of EC2
//! c3.2xlarge instances at increasing distances, modelled as calibrated
//! simulator topologies.
//!
//! | Setup  | RTT     | Notes                                            |
//! |--------|---------|--------------------------------------------------|
//! | Local  | ~0 ms   | loopback, disk-limited (~110 MB/s, mem 150 MB/s) |
//! | EU-VPC | ~3 ms   | same VPC in Ireland                              |
//! | EU2US  | ~155 ms | Ireland ↔ North California, light random loss    |
//! | EU2AU  | ~320 ms | Ireland ↔ Sydney, light random loss              |
//!
//! All wide-area links carry Amazon's UDP policer (~10 MB/s), which the
//! paper identifies as UDT's throughput cap.

use std::time::Duration;

use kmsg_component::prelude::*;
use kmsg_netsim::engine::Sim;
use kmsg_netsim::link::{LinkConfig, PolicerConfig};
use kmsg_netsim::network::Network;
use kmsg_netsim::packet::NodeId;

/// An experiment environment.
#[derive(Debug, Clone, PartialEq)]
pub enum Setup {
    /// Same machine, SSD to SSD over loopback.
    Local,
    /// Two instances in the same Virtual Private Cloud (Ireland).
    EuVpc,
    /// Ireland ↔ North California.
    Eu2Us,
    /// Ireland ↔ Sydney.
    Eu2Au,
    /// A custom link (e.g. the §IV-B2 analysis link: 100 MB/s, 10 ms).
    Custom {
        /// Label for reports.
        label: &'static str,
        /// The directed link configuration (used in both directions).
        link: LinkConfig,
    },
}

impl Setup {
    /// The four paper setups in evaluation order.
    #[must_use]
    pub fn paper_setups() -> Vec<Setup> {
        vec![Setup::Local, Setup::EuVpc, Setup::Eu2Us, Setup::Eu2Au]
    }

    /// Human-readable label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Setup::Local => "Local",
            Setup::EuVpc => "EU-VPC",
            Setup::Eu2Us => "EU2US",
            Setup::Eu2Au => "EU2AU",
            Setup::Custom { label, .. } => label,
        }
    }

    /// The nominal round-trip time of the setup.
    #[must_use]
    pub fn rtt(&self) -> Duration {
        match self {
            Setup::Local => Duration::from_micros(100),
            Setup::EuVpc => Duration::from_millis(3),
            Setup::Eu2Us => Duration::from_millis(155),
            Setup::Eu2Au => Duration::from_millis(320),
            Setup::Custom { link, .. } => link.delay * 2,
        }
    }

    /// Whether both endpoints live on the same machine.
    #[must_use]
    pub fn is_local(&self) -> bool {
        matches!(self, Setup::Local)
    }

    /// The directed link configuration for this setup.
    #[must_use]
    pub fn link(&self) -> LinkConfig {
        let one_way = self.rtt() / 2;
        match self {
            Setup::Local => LinkConfig::new(crate::disk::MEMORY_RATE, one_way),
            Setup::EuVpc => {
                LinkConfig::new(125e6, one_way).udp_policer(PolicerConfig::ec2_udp())
            }
            Setup::Eu2Us | Setup::Eu2Au => LinkConfig::new(125e6, one_way)
                .random_loss(5e-5)
                .udp_policer(PolicerConfig::ec2_udp()),
            Setup::Custom { link, .. } => link.clone(),
        }
    }

    /// The §IV-B2 analysis link: 100 MB/s with 10 ms one-way delay.
    #[must_use]
    pub fn analysis_link() -> Setup {
        Setup::Custom {
            label: "100MB/s-10ms",
            link: LinkConfig::new(100e6, Duration::from_millis(10)),
        }
    }
}

/// A simulated world with two (possibly identical) hosts.
#[derive(Debug, Clone)]
pub struct TwoHostWorld {
    /// The simulation clock/engine.
    pub sim: Sim,
    /// The network fabric.
    pub net: Network,
    /// The component system (virtual-time scheduler).
    pub system: ComponentSystem,
    /// The sender-side host.
    pub host_a: NodeId,
    /// The receiver-side host (equals `host_a` for [`Setup::Local`]).
    pub host_b: NodeId,
    /// The a→b link (loopback for [`Setup::Local`]); handy for targeting
    /// fault plans at the world.
    pub link_ab: kmsg_netsim::link::LinkId,
    /// The b→a link (equals `link_ab` for [`Setup::Local`]).
    pub link_ba: kmsg_netsim::link::LinkId,
}

/// Builds the world for a setup. For non-local setups the two hosts are
/// connected with a symmetric pair of links; for [`Setup::Local`] a single
/// host routes to itself through a loopback link at memory speed.
#[must_use]
pub fn two_host_world(seed: u64, setup: &Setup) -> TwoHostWorld {
    let sim = Sim::new(seed);
    let net = Network::new(&sim);
    let system = ComponentSystem::simulation(&sim, SystemConfig::default());
    if setup.is_local() {
        let host = net.add_node("local");
        let lo = net.add_link(setup.link());
        net.set_route(host, host, vec![lo]);
        TwoHostWorld {
            sim,
            net,
            system,
            host_a: host,
            host_b: host,
            link_ab: lo,
            link_ba: lo,
        }
    } else {
        let a = net.add_node("host-a");
        let b = net.add_node("host-b");
        let (link_ab, link_ba) = net.connect_duplex(a, b, setup.link());
        TwoHostWorld {
            sim,
            net,
            system,
            host_a: a,
            host_b: b,
            link_ab,
            link_ba,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setups_cover_all_rtts() {
        let setups = Setup::paper_setups();
        assert_eq!(setups.len(), 4);
        let rtts: Vec<f64> = setups.iter().map(|s| s.rtt().as_secs_f64()).collect();
        assert!(rtts.windows(2).all(|w| w[0] < w[1]), "RTTs increase: {rtts:?}");
    }

    #[test]
    fn wan_setups_are_policed_and_lossy() {
        let us = Setup::Eu2Us.link();
        assert!(us.udp_policer.is_some());
        assert!(us.random_loss > 0.0);
        let vpc = Setup::EuVpc.link();
        assert!(vpc.udp_policer.is_some());
        assert_eq!(vpc.random_loss, 0.0);
        assert!(Setup::Local.link().udp_policer.is_none());
    }

    #[test]
    fn local_world_is_one_host() {
        let w = two_host_world(1, &Setup::Local);
        assert_eq!(w.host_a, w.host_b);
        // Loopback route installed.
        assert!(w.net.route(w.host_a, w.host_a).is_some());
    }

    #[test]
    fn wan_world_is_two_hosts() {
        let w = two_host_world(1, &Setup::Eu2Au);
        assert_ne!(w.host_a, w.host_b);
        assert!(w.net.route(w.host_a, w.host_b).is_some());
        assert!(w.net.route(w.host_b, w.host_a).is_some());
    }

    #[test]
    fn analysis_link_matches_paper() {
        let s = Setup::analysis_link();
        assert_eq!(s.rtt(), Duration::from_millis(20));
        assert_eq!(s.link().bandwidth, 100e6);
    }
}
