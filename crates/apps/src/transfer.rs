//! File transfer components (§V-A.1): a sender that splits a dataset into
//! 65 kB messages and streams them with `MessageNotify`-based pipelining,
//! and a receiver that writes them to a simulated disk, verifies content
//! and measures throughput.
//!
//! Mirrors the paper's design: chunks are read from "disk" asynchronously
//! (the read never outpaces the disk model), sends are fire-and-pipeline
//! (a bounded number of outstanding notifications), and the disk-to-disk
//! transfer time is taken at the receiver when the last byte hits its
//! disk.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use kmsg_component::prelude::*;
use kmsg_core::prelude::*;
use kmsg_netsim::time::SimTime;

use crate::dataset::{chunk_hash, Dataset};
use crate::disk::DiskModel;
use crate::msgs::ChunkMsg;

/// Sender configuration.
#[derive(Debug, Clone)]
pub struct SenderConfig {
    /// The dataset to transfer.
    pub dataset: Dataset,
    /// This host's address (message source).
    pub src: NetAddress,
    /// The receiver's address.
    pub dst: NetAddress,
    /// Transport for the chunks: `Tcp`, `Udt` or `Data`.
    pub transport: Transport,
    /// Chunk payload size (the paper: 65 kB).
    pub chunk_size: usize,
    /// Maximum chunks awaiting a `Sent` notification.
    pub pipeline_depth: usize,
    /// How many times to send the dataset back to back. The middleware
    /// (and any learner in it) stays up between rounds, modelling the
    /// paper's repeated runs against a long-lived deployment.
    pub rounds: u32,
    /// Read-side disk; `None` for memory-to-memory sends.
    pub disk_rate: Option<f64>,
}

impl SenderConfig {
    /// A sender with the paper's defaults (65 kB chunks, pipelined,
    /// disk-backed).
    #[must_use]
    pub fn new(dataset: Dataset, src: NetAddress, dst: NetAddress, transport: Transport) -> Self {
        SenderConfig {
            dataset,
            src,
            dst,
            transport,
            chunk_size: crate::dataset::PAPER_CHUNK_SIZE,
            // `Sent` notifications fire on transport acknowledgement, so
            // the pipeline must cover the largest bandwidth-delay product
            // (UDT at ~10 MB/s over 320 ms needs ~3.2 MB in flight).
            pipeline_depth: 96,
            rounds: 1,
            disk_rate: Some(crate::disk::DISK_RATE),
        }
    }
}

/// Live sender-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SenderStats {
    /// Bytes handed to the network layer.
    pub bytes_sent: u64,
    /// Bytes confirmed `Sent` by the network layer.
    pub bytes_confirmed: u64,
    /// Failed sends.
    pub failures: u64,
    /// When the last chunk was confirmed.
    pub done_at: Option<SimTime>,
}

/// Shared handle to a sender's stats.
pub type SenderStatsHandle = Arc<Mutex<SenderStats>>;

/// The sending component.
pub struct FileSender {
    /// Network port.
    pub net: RequiredPort<NetworkPort>,
    cfg: SenderConfig,
    round: u32,
    next_offset: usize,
    outstanding: HashMap<u64, usize>,
    next_token: u64,
    disk: Option<DiskModel>,
    waiting_for_disk: bool,
    stats: SenderStatsHandle,
}

impl std::fmt::Debug for FileSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileSender")
            .field("next_offset", &self.next_offset)
            .field("outstanding", &self.outstanding.len())
            .finish()
    }
}

impl FileSender {
    /// Creates the sender.
    #[must_use]
    pub fn new(cfg: SenderConfig) -> Self {
        let disk = cfg.disk_rate.map(DiskModel::new);
        FileSender {
            net: RequiredPort::new(),
            cfg,
            round: 0,
            next_offset: 0,
            outstanding: HashMap::new(),
            next_token: 1,
            disk,
            waiting_for_disk: false,
            stats: Arc::new(Mutex::new(SenderStats::default())),
        }
    }

    /// The live stats handle.
    #[must_use]
    pub fn stats(&self) -> SenderStatsHandle {
        self.stats.clone()
    }

    fn build_message(&self, offset: u64, data: bytes::Bytes) -> NetMessage {
        let chunk = ChunkMsg { offset, data };
        match self.cfg.transport {
            Transport::Data => NetMessage::with_header(
                NetHeader::Data(DataHeader::new(self.cfg.src, self.cfg.dst)),
                chunk,
            ),
            proto => NetMessage::new(self.cfg.src, self.cfg.dst, proto, chunk),
        }
    }

    fn all_rounds_sent(&self) -> bool {
        self.round + 1 >= self.cfg.rounds.max(1) && self.next_offset >= self.cfg.dataset.size
    }

    fn pump(&mut self, ctx: &mut ComponentContext) {
        let now = ctx.now();
        while self.outstanding.len() < self.cfg.pipeline_depth {
            if self.next_offset >= self.cfg.dataset.size {
                if self.round + 1 >= self.cfg.rounds.max(1) {
                    return;
                }
                self.round += 1;
                self.next_offset = 0;
            }
            // Respect the read disk: wait until it catches up.
            if let Some(disk) = &self.disk {
                let busy = disk.busy_until();
                if busy > now {
                    if !self.waiting_for_disk {
                        self.waiting_for_disk = true;
                        ctx.schedule_once(busy.duration_since(now));
                    }
                    return;
                }
            }
            let len = self.cfg.chunk_size.min(self.cfg.dataset.size - self.next_offset);
            if let Some(disk) = &mut self.disk {
                let _ready = disk.access(now, len);
            }
            let data = self.cfg.dataset.chunk(self.next_offset, len);
            // Offsets are globally unique across rounds so the receiver can
            // de-duplicate and attribute bytes to rounds.
            let global = u64::from(self.round) * self.cfg.dataset.size as u64
                + self.next_offset as u64;
            let msg = self.build_message(global, data);
            let token = NotifyToken::new(self.next_token);
            self.next_token += 1;
            self.outstanding.insert(token.id, len);
            self.next_offset += len;
            self.stats.lock().bytes_sent += len as u64;
            self.net.trigger(NetRequest::NotifyReq(token, msg));
        }
    }
}

impl ComponentDefinition for FileSender {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        kmsg_component::execute_ports!(self, ctx, max, [required net: NetworkPort])
    }

    fn handle_control(&mut self, ctx: &mut ComponentContext, event: ControlEvent) {
        if event == ControlEvent::Start {
            self.pump(ctx);
        }
    }

    fn on_timeout(&mut self, ctx: &mut ComponentContext, _id: TimeoutId) {
        self.waiting_for_disk = false;
        self.pump(ctx);
    }
}

impl Require<NetworkPort> for FileSender {
    fn handle(&mut self, ctx: &mut ComponentContext, ev: NetIndication) {
        if let NetIndication::NotifyResp(token, status) = ev {
            if let Some(len) = self.outstanding.remove(&token.id) {
                let mut stats = self.stats.lock();
                if status.is_success() {
                    stats.bytes_confirmed += len as u64;
                } else {
                    stats.failures += 1;
                }
                let complete = self.all_rounds_sent() && self.outstanding.is_empty();
                if complete && stats.done_at.is_none() {
                    stats.done_at = Some(ctx.now());
                }
                drop(stats);
                self.pump(ctx);
            }
        }
    }
}

impl RequireRef<NetworkPort> for FileSender {
    fn required_port(&mut self) -> &mut RequiredPort<NetworkPort> {
        &mut self.net
    }
}

/// Receiver configuration.
#[derive(Debug, Clone)]
pub struct ReceiverConfig {
    /// Expected dataset (for size and checksum verification).
    pub dataset: Dataset,
    /// Chunk size the sender uses (for checksum verification).
    pub chunk_size: usize,
    /// Expected number of back-to-back dataset rounds.
    pub rounds: u32,
    /// Write-side disk; `None` for memory-to-memory.
    pub disk_rate: Option<f64>,
    /// Interval for the per-window throughput/ratio samples.
    pub sample_every: Duration,
}

impl ReceiverConfig {
    /// A receiver matching [`SenderConfig::new`] defaults.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        ReceiverConfig {
            dataset,
            chunk_size: crate::dataset::PAPER_CHUNK_SIZE,
            rounds: 1,
            disk_rate: Some(crate::disk::DISK_RATE),
            sample_every: Duration::from_secs(1),
        }
    }
}

/// One receiver-side sample window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceiverSample {
    /// End of the window.
    pub time: SimTime,
    /// Goodput in the window, bytes/s.
    pub throughput: f64,
    /// Chunks that arrived over TCP in the window.
    pub tcp_msgs: u64,
    /// Chunks that arrived over UDT in the window.
    pub udt_msgs: u64,
}

impl ReceiverSample {
    /// The window's *true protocol ratio* in signed form (−1 ≙ all TCP,
    /// +1 ≙ all UDT); `None` for an empty window.
    #[must_use]
    pub fn wire_ratio(&self) -> Option<f64> {
        let total = self.tcp_msgs + self.udt_msgs;
        if total == 0 {
            None
        } else {
            Some(2.0 * self.udt_msgs as f64 / total as f64 - 1.0)
        }
    }
}

/// Live receiver-side counters.
#[derive(Debug, Clone, Default)]
pub struct ReceiverStats {
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Chunks received.
    pub chunks: u64,
    /// Duplicate chunks (same offset seen twice).
    pub duplicates: u64,
    /// Chunks that arrived below the highest offset seen so far without
    /// being duplicates. Zero on a calm single-channel run (FIFO); DATA
    /// runs and supervised reconnects legitimately reorder.
    pub out_of_order: u64,
    /// Accumulated order-independent checksum.
    pub checksum: u64,
    /// Completion time: the last byte of the final round written to disk.
    pub done_at: Option<SimTime>,
    /// Completion time of each round.
    pub round_done_at: Vec<SimTime>,
    /// Per-window samples.
    pub samples: Vec<ReceiverSample>,
    /// Total chunks per transport (indexed by `Transport::to_byte`).
    pub by_transport: [u64; 4],
}

/// Shared handle to a receiver's stats.
pub type ReceiverStatsHandle = Arc<Mutex<ReceiverStats>>;

/// The receiving component.
pub struct FileReceiver {
    /// Network port.
    pub net: RequiredPort<NetworkPort>,
    cfg: ReceiverConfig,
    disk: Option<DiskModel>,
    seen_offsets: std::collections::HashSet<u64>,
    max_offset_seen: Option<u64>,
    window_bytes: u64,
    window_tcp: u64,
    window_udt: u64,
    window_started: SimTime,
    stats: ReceiverStatsHandle,
    tracer: Option<kmsg_telemetry::Tracer>,
}

impl std::fmt::Debug for FileReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileReceiver")
            .field("received", &self.stats.lock().bytes_received)
            .finish()
    }
}

impl FileReceiver {
    /// Creates the receiver.
    #[must_use]
    pub fn new(cfg: ReceiverConfig) -> Self {
        let disk = cfg.disk_rate.map(DiskModel::new);
        FileReceiver {
            net: RequiredPort::new(),
            cfg,
            disk,
            seen_offsets: std::collections::HashSet::new(),
            max_offset_seen: None,
            window_bytes: 0,
            window_tcp: 0,
            window_udt: 0,
            window_started: SimTime::ZERO,
            stats: Arc::new(Mutex::new(ReceiverStats::default())),
            tracer: None,
        }
    }

    /// Bridges duplicate-suppression into a telemetry recorder: each chunk
    /// absorbed by offset dedup leaves a root `dedup` instant span keyed by
    /// the duplicated offset.
    pub fn attach_tracer(&mut self, tracer: kmsg_telemetry::Tracer) {
        self.tracer = Some(tracer);
    }

    /// The live stats handle.
    #[must_use]
    pub fn stats(&self) -> ReceiverStatsHandle {
        self.stats.clone()
    }

    /// Whether all bytes of all rounds arrived and the accumulated
    /// checksum matches.
    #[must_use]
    pub fn verified(&self) -> bool {
        let stats = self.stats.lock();
        let rounds = u64::from(self.cfg.rounds.max(1));
        stats.bytes_received == self.cfg.dataset.size as u64 * rounds
            && stats.checksum
                == self
                    .cfg
                    .dataset
                    .checksum(self.cfg.chunk_size)
                    .wrapping_mul(rounds)
    }
}

impl ComponentDefinition for FileReceiver {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        kmsg_component::execute_ports!(self, ctx, max, [required net: NetworkPort])
    }

    fn handle_control(&mut self, ctx: &mut ComponentContext, event: ControlEvent) {
        if event == ControlEvent::Start {
            self.window_started = ctx.now();
            ctx.schedule_periodic(self.cfg.sample_every, self.cfg.sample_every);
        }
    }

    fn on_timeout(&mut self, ctx: &mut ComponentContext, _id: TimeoutId) {
        let now = ctx.now();
        let dt = now.duration_since(self.window_started).as_secs_f64();
        let throughput = if dt > 0.0 {
            self.window_bytes as f64 / dt
        } else {
            0.0
        };
        self.stats.lock().samples.push(ReceiverSample {
            time: now,
            throughput,
            tcp_msgs: self.window_tcp,
            udt_msgs: self.window_udt,
        });
        self.window_bytes = 0;
        self.window_tcp = 0;
        self.window_udt = 0;
        self.window_started = now;
    }
}

impl Require<NetworkPort> for FileReceiver {
    fn handle(&mut self, ctx: &mut ComponentContext, ev: NetIndication) {
        let NetIndication::Msg(msg) = ev else {
            return;
        };
        let Ok(chunk) = msg.try_deserialise::<ChunkMsg, ChunkMsg>() else {
            return; // not a chunk (e.g. a ping sharing the port)
        };
        let now = ctx.now();
        let len = chunk.data.len();
        let proto = msg.header().protocol();
        let mut stats = self.stats.lock();
        if !self.seen_offsets.insert(chunk.offset) {
            stats.duplicates += 1;
            if let Some(tr) = &self.tracer {
                use kmsg_telemetry::{SpanId, SpanKind};
                tr.instant(
                    now.as_nanos(),
                    SpanKind::Dedup,
                    SpanId::NONE,
                    SpanId::NONE,
                    chunk.offset,
                );
            }
            return;
        }
        // Offsets are sent in strictly increasing global order, so a fresh
        // chunk below the running maximum arrived out of order.
        match self.max_offset_seen {
            Some(max) if chunk.offset < max => stats.out_of_order += 1,
            _ => self.max_offset_seen = Some(self.max_offset_seen.unwrap_or(0).max(chunk.offset)),
        }
        stats.bytes_received += len as u64;
        stats.chunks += 1;
        let rel = chunk.offset % self.cfg.dataset.size as u64;
        stats.checksum = stats.checksum.wrapping_add(chunk_hash(rel, &chunk.data));
        stats.by_transport[proto.to_byte() as usize] += 1;
        self.window_bytes += len as u64;
        match proto {
            Transport::Tcp => self.window_tcp += 1,
            Transport::Udt => self.window_udt += 1,
            _ => {}
        }
        let write_done = match &mut self.disk {
            Some(disk) => disk.access(now, len),
            None => now,
        };
        let total = self.cfg.dataset.size as u64 * u64::from(self.cfg.rounds.max(1));
        let next_round_edge =
            self.cfg.dataset.size as u64 * (stats.round_done_at.len() as u64 + 1);
        if stats.bytes_received >= next_round_edge {
            stats.round_done_at.push(write_done);
        }
        if stats.bytes_received >= total && stats.done_at.is_none() {
            stats.done_at = Some(write_done);
        }
    }
}

impl RequireRef<NetworkPort> for FileReceiver {
    fn required_port(&mut self) -> &mut RequiredPort<NetworkPort> {
        &mut self.net
    }
}
