//! Seeded scenario generation for the simulation fuzzer.
//!
//! A [`ScenarioSpec`] is a small, fully explicit description of one fuzz
//! run: a relay-chain topology, a link shape (bandwidth, delay, loss,
//! jitter), a workload (transport, transfer size, optional pings) and a
//! scripted [`FaultPlan`] whose every window heals before the horizon.
//! Specs are *generated* deterministically from a seed
//! ([`ScenarioSpec::generate`]), *run* with [`run_scenario`] (which also
//! derives the [`RunFacts`] and the matching
//! [`OracleConfig`](kmsg_oracle::OracleConfig) for the oracle suite),
//! *serialized* to the replayable `failing_seed.json` artifact
//! ([`ScenarioSpec::to_json`] / [`ScenarioSpec::from_json`]) and *shrunk*
//! via the [`Shrinkable`] implementation when an oracle fires.

use std::time::Duration;

use kmsg_component::prelude::{ComponentSystem, SystemConfig};
use kmsg_core::prelude::*;
use kmsg_netsim::engine::Sim;
use kmsg_netsim::faults::FaultPlan;
use kmsg_netsim::link::{GeConfig, LinkConfig, LinkId};
use kmsg_netsim::network::Network;
use kmsg_netsim::rng::SeedSource;
use kmsg_netsim::time::SimTime;
use kmsg_oracle::{Json, OracleConfig, RunFacts, Shrinkable};
use rand::Rng;

use kmsg_netsim::cc::CcAlgorithm;

use crate::dataset::Dataset;
use crate::experiment::{run_in_world, CcSwap, ExperimentConfig, ExperimentResult, PingSettings};
use crate::scenario::{Setup, TwoHostWorld};

/// Latest time (ms) a generated fault window may heal; the horizon stays
/// well past this so recovery is always observable.
const FAULT_DEADLINE_MS: u64 = 30_000;

/// Kinds of scripted link fault a scenario can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sever the link, restore it at the end of the window.
    Down,
    /// A Gilbert–Elliott burst-loss episode ([`GeConfig::bursty`]).
    Burst,
    /// A transient extra propagation delay.
    Spike,
}

impl FaultKind {
    /// Stable label used in artifacts.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Down => "down",
            FaultKind::Burst => "burst",
            FaultKind::Spike => "spike",
        }
    }

    /// Parses an artifact label.
    #[must_use]
    pub fn from_label(label: &str) -> Option<FaultKind> {
        match label {
            "down" => Some(FaultKind::Down),
            "burst" => Some(FaultKind::Burst),
            "spike" => Some(FaultKind::Spike),
            _ => None,
        }
    }
}

/// One scripted fault window on one directed link of the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// What happens.
    pub kind: FaultKind,
    /// Which hop of the chain (clamped to the chain length at install).
    pub hop: u32,
    /// `true` targets the a→b direction of the hop, `false` the reverse.
    pub forward: bool,
    /// Window start, simulated milliseconds.
    pub from_ms: u64,
    /// Window end (heal), simulated milliseconds; always `> from_ms`.
    pub to_ms: u64,
    /// Extra delay for [`FaultKind::Spike`] (ms); ignored otherwise.
    pub spike_ms: u64,
}

/// A fully explicit fuzz scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Root seed: drives the simulation RNG streams *and* (for generated
    /// specs) the scenario shape itself.
    pub seed: u64,
    /// Relay hosts between the endpoints (`0` = direct link).
    pub relays: u32,
    /// Per-hop bandwidth, MB/s.
    pub bandwidth_mbps: u64,
    /// Per-hop one-way propagation delay, ms.
    pub delay_ms: u64,
    /// Independent per-packet loss, parts per million.
    pub loss_ppm: u64,
    /// Per-packet uniform extra delay bound, µs (reordering pressure).
    pub jitter_us: u64,
    /// Transfer size, KiB.
    pub size_kb: u64,
    /// Bulk transport: `Tcp`, `Udt` or the adaptive `Data`.
    pub transport: Transport,
    /// Run parallel ping/pong control traffic.
    pub pings: bool,
    /// Initial congestion controller for TCP channels (both stacks).
    pub cc: CcAlgorithm,
    /// Optional scripted mid-run controller swap: `(at_ms, controller)`
    /// re-selects the sender→receiver TCP stack at `at_ms` and recycles
    /// the live channel.
    pub swap: Option<(u64, CcAlgorithm)>,
    /// Scripted fault windows (all heal before [`FAULT_DEADLINE_MS`]).
    pub faults: Vec<FaultSpec>,
    /// Hard wall on simulated time, ms.
    pub horizon_ms: u64,
}

impl ScenarioSpec {
    /// Generates the scenario for a fuzz seed. Same seed, same spec.
    #[must_use]
    pub fn generate(seed: u64) -> ScenarioSpec {
        let mut rng = SeedSource::new(seed).stream("fuzz-scenario");
        let relays = rng.gen_range(0..=2u64) as u32;
        let bandwidth_mbps = rng.gen_range(1..=50u64);
        let delay_ms = rng.gen_range(1..=40u64);
        let loss_ppm = *[0, 0, 1_000, 10_000]
            .get(rng.gen_range(0..4usize))
            .expect("index in range");
        let jitter_us = *[0, 0, 500, 2_000]
            .get(rng.gen_range(0..4usize))
            .expect("index in range");
        let size_kb = rng.gen_range(16..=256u64);
        let transport = match rng.gen_range(0..3u32) {
            0 => Transport::Tcp,
            1 => Transport::Udt,
            _ => Transport::Data,
        };
        let pings = rng.gen_bool(0.5);
        let pick_cc = |r: &mut kmsg_netsim::rng::RngStream| {
            CcAlgorithm::all()[r.gen_range(0..CcAlgorithm::all().len())]
        };
        let cc = pick_cc(&mut rng);
        let swap = rng
            .gen_bool(1.0 / 3.0)
            .then(|| (rng.gen_range(500..10_000u64), pick_cc(&mut rng)));
        let n_faults = rng.gen_range(0..=2u64);
        let faults = (0..n_faults)
            .map(|_| {
                let kind = match rng.gen_range(0..3u32) {
                    0 => FaultKind::Down,
                    1 => FaultKind::Burst,
                    _ => FaultKind::Spike,
                };
                let from_ms = rng.gen_range(500..10_000u64);
                let to_ms = from_ms + rng.gen_range(200..3_000u64);
                FaultSpec {
                    kind,
                    hop: rng.gen_range(0..=u64::from(relays)) as u32,
                    forward: rng.gen_bool(0.5),
                    from_ms,
                    to_ms: to_ms.min(FAULT_DEADLINE_MS),
                    spike_ms: rng.gen_range(50..500u64),
                }
            })
            .collect();
        ScenarioSpec {
            seed,
            relays,
            bandwidth_mbps,
            delay_ms,
            loss_ppm,
            jitter_us,
            size_kb,
            transport,
            pings,
            cc,
            swap,
            faults,
            horizon_ms: 120_000,
        }
    }

    /// The per-hop directed link configuration.
    #[must_use]
    pub fn link_config(&self) -> LinkConfig {
        let mut link = LinkConfig::new(
            self.bandwidth_mbps as f64 * 1e6,
            Duration::from_millis(self.delay_ms),
        );
        if self.loss_ppm > 0 {
            link = link.random_loss(self.loss_ppm as f64 / 1e6);
        }
        if self.jitter_us > 0 {
            link = link.jitter(Duration::from_micros(self.jitter_us));
        }
        link
    }

    /// Builds the scripted fault plan against a built chain.
    #[must_use]
    pub fn fault_plan(&self, chain: &ChainWorld) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for f in &self.faults {
            let hop = (f.hop as usize).min(chain.forward.len() - 1);
            let link = if f.forward {
                chain.forward[hop]
            } else {
                chain.reverse[hop]
            };
            let from = SimTime::from_millis(f.from_ms);
            let to = SimTime::from_millis(f.to_ms.max(f.from_ms + 1));
            plan = match f.kind {
                FaultKind::Down => plan.down_between(link, from, to),
                FaultKind::Burst => plan.loss_burst(link, from, to, GeConfig::bursty()),
                FaultKind::Spike => {
                    plan.latency_spike(link, from, to, Duration::from_millis(f.spike_ms))
                }
            };
        }
        plan
    }

    /// Serializes the spec as a replayable artifact document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let faults = self
            .faults
            .iter()
            .map(|f| {
                Json::obj(vec![
                    ("kind", Json::Str(f.kind.label().to_string())),
                    ("hop", Json::Num(f.hop as f64)),
                    ("forward", Json::Bool(f.forward)),
                    ("from_ms", Json::Num(f.from_ms as f64)),
                    ("to_ms", Json::Num(f.to_ms as f64)),
                    ("spike_ms", Json::Num(f.spike_ms as f64)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("seed", Json::Num(self.seed as f64)),
            ("relays", Json::Num(f64::from(self.relays))),
            ("bandwidth_mbps", Json::Num(self.bandwidth_mbps as f64)),
            ("delay_ms", Json::Num(self.delay_ms as f64)),
            ("loss_ppm", Json::Num(self.loss_ppm as f64)),
            ("jitter_us", Json::Num(self.jitter_us as f64)),
            ("size_kb", Json::Num(self.size_kb as f64)),
            ("transport", Json::Str(self.transport.label().to_string())),
            ("pings", Json::Bool(self.pings)),
            ("cc", Json::Str(self.cc.label().to_string())),
            ("faults", Json::Arr(faults)),
            ("horizon_ms", Json::Num(self.horizon_ms as f64)),
        ];
        if let Some((at_ms, algo)) = self.swap {
            fields.push(("swap_ms", Json::Num(at_ms as f64)));
            fields.push(("swap_cc", Json::Str(algo.label().to_string())));
        }
        Json::obj(fields)
    }

    /// Parses a spec back out of an artifact document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or ill-typed field.
    pub fn from_json(doc: &Json) -> Result<ScenarioSpec, String> {
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer field '{key}'"))
        };
        let transport = match doc.get("transport").and_then(Json::as_str) {
            Some("tcp") => Transport::Tcp,
            Some("udt") => Transport::Udt,
            Some("data") => Transport::Data,
            other => return Err(format!("bad transport {other:?}")),
        };
        let faults = doc
            .get("faults")
            .and_then(Json::as_arr)
            .ok_or("missing field 'faults'")?
            .iter()
            .map(|f| {
                let fnum = |key: &str| {
                    f.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("fault missing field '{key}'"))
                };
                Ok(FaultSpec {
                    kind: f
                        .get("kind")
                        .and_then(Json::as_str)
                        .and_then(FaultKind::from_label)
                        .ok_or("fault with bad kind")?,
                    hop: u32::try_from(fnum("hop")?).map_err(|e| e.to_string())?,
                    forward: f
                        .get("forward")
                        .and_then(Json::as_bool)
                        .ok_or("fault missing field 'forward'")?,
                    from_ms: fnum("from_ms")?,
                    to_ms: fnum("to_ms")?,
                    spike_ms: fnum("spike_ms")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        // Lenient on the controller dimension: artifacts that predate it
        // decode as plain Reno with no swap.
        let cc = match doc.get("cc").and_then(Json::as_str) {
            Some(label) => CcAlgorithm::from_label(label)
                .ok_or_else(|| format!("bad controller {label:?}"))?,
            None => CcAlgorithm::Reno,
        };
        let swap = match doc.get("swap_ms") {
            Some(_) => Some((
                num("swap_ms")?,
                doc.get("swap_cc")
                    .and_then(Json::as_str)
                    .and_then(CcAlgorithm::from_label)
                    .ok_or("swap with bad controller")?,
            )),
            None => None,
        };
        Ok(ScenarioSpec {
            seed: num("seed")?,
            relays: u32::try_from(num("relays")?).map_err(|e| e.to_string())?,
            bandwidth_mbps: num("bandwidth_mbps")?,
            delay_ms: num("delay_ms")?,
            loss_ppm: num("loss_ppm")?,
            jitter_us: num("jitter_us")?,
            size_kb: num("size_kb")?,
            transport,
            pings: doc
                .get("pings")
                .and_then(Json::as_bool)
                .ok_or("missing field 'pings'")?,
            cc,
            swap,
            faults,
            horizon_ms: num("horizon_ms")?,
        })
    }
}

/// A built relay-chain world plus the directed link ids of every hop.
#[derive(Debug, Clone)]
pub struct ChainWorld {
    /// The two endpoints and shared simulation fabric (relays are routed
    /// through, not bound to).
    pub world: TwoHostWorld,
    /// Hop links in the a→b direction, endpoint-a side first.
    pub forward: Vec<LinkId>,
    /// Hop links in the b→a direction, endpoint-a side first.
    pub reverse: Vec<LinkId>,
}

/// Builds the relay-chain world for a spec: `host-a ↔ relay… ↔ host-b`
/// with identical per-hop links and end-to-end routes through the chain.
#[must_use]
pub fn build_chain_world(spec: &ScenarioSpec) -> ChainWorld {
    let sim = Sim::new(spec.seed);
    let net = Network::new(&sim);
    let system = ComponentSystem::simulation(&sim, SystemConfig::default());
    let mut nodes = vec![net.add_node("host-a")];
    for i in 0..spec.relays {
        nodes.push(net.add_node(format!("relay-{i}")));
    }
    nodes.push(net.add_node("host-b"));
    let link = spec.link_config();
    let mut forward = Vec::new();
    let mut reverse = Vec::new();
    for pair in nodes.windows(2) {
        let (ab, ba) = net.connect_duplex(pair[0], pair[1], link.clone());
        forward.push(ab);
        reverse.push(ba);
    }
    let host_a = nodes[0];
    let host_b = *nodes.last().expect("at least two nodes");
    if spec.relays > 0 {
        net.set_route(host_a, host_b, forward.clone());
        let mut back: Vec<LinkId> = reverse.clone();
        back.reverse();
        net.set_route(host_b, host_a, back);
    }
    ChainWorld {
        world: TwoHostWorld {
            sim,
            net,
            system,
            host_a,
            host_b,
            link_ab: forward[0],
            link_ba: reverse[0],
        },
        forward,
        reverse,
    }
}

/// The network template every fuzz run uses: somewhat impatient transports
/// (so fault windows surface as observable supervision episodes inside the
/// horizon) with reconnect supervision on.
#[must_use]
pub fn fuzz_net_template() -> NetworkConfig {
    // The harness overwrites the address per host.
    let mut cfg = NetworkConfig::new(NetAddress::new(
        kmsg_netsim::packet::NodeId::from_index(0),
        0,
    ));
    cfg.tcp.min_rto = Duration::from_millis(200);
    cfg.tcp.max_rto = Duration::from_secs(2);
    cfg.tcp.max_consecutive_timeouts = 8;
    cfg.tcp.syn_retries = 3;
    cfg.udt.exp_timeout = Duration::from_millis(300);
    cfg.udt.max_expirations = 8;
    cfg.reconnect = Some(ReconnectConfig {
        max_retries: 50,
        base_backoff: Duration::from_millis(100),
        max_backoff: Duration::from_secs(1),
        probe_interval: Some(Duration::from_secs(2)),
    });
    cfg
}

/// The experiment configuration a spec runs under.
#[must_use]
pub fn experiment_config(spec: &ScenarioSpec) -> ExperimentConfig {
    // The setup is ignored: `run_in_world` takes the chain world directly.
    let dataset = Dataset::random(usize::try_from(spec.size_kb).expect("size fits") * 1024, 5);
    let mut cfg = ExperimentConfig::transfer(Setup::Local, spec.transport, dataset, spec.seed);
    let mut tpl = fuzz_net_template();
    tpl.tcp.cc.algorithm = spec.cc;
    cfg.net_template = Some(tpl);
    cfg.cc_swap = spec.swap.map(|(at_ms, algo)| CcSwap {
        at: Duration::from_millis(at_ms),
        algo,
    });
    cfg.max_sim_time = Duration::from_millis(spec.horizon_ms);
    cfg.use_disk = false;
    cfg.ping = spec.pings.then(PingSettings::default);
    cfg.telemetry = true;
    // Keep the whole stream: truncated traces void the stream-shape
    // oracles, and fuzz transfers are small enough to record fully.
    cfg.telemetry_capacity = Some(2_000_000);
    cfg
}

/// Derives the oracle configuration a spec's trace must be judged under.
#[must_use]
pub fn oracle_config(spec: &ScenarioSpec) -> OracleConfig {
    let tpl = fuzz_net_template();
    let bw = spec.bandwidth_mbps as f64 * 1e6;
    let queue_s = (bw * spec.delay_ms as f64 / 1e3).max(256.0 * 1024.0) / bw;
    let spike_s = spec
        .faults
        .iter()
        .map(|f| f.spike_ms)
        .max()
        .unwrap_or(0) as f64
        / 1e3;
    let per_hop_s = queue_s + spec.delay_ms as f64 / 1e3 + spec.jitter_us as f64 / 1e6 + spike_s;
    let hops = f64::from(spec.relays + 1);
    let grace_s = per_hop_s * hops * 2.0 + 1.0;
    OracleConfig {
        mss: tpl.tcp.mss as u64,
        max_rto_us: u64::try_from(tpl.tcp.max_rto.as_micros()).expect("rto fits"),
        drain_grace_ns: (grace_s * 1e9) as u64,
        // Fault-free, low-loss runs must finish inside the generous
        // horizon; anything harsher may legitimately time out or drop.
        expect_completion: spec.faults.is_empty() && spec.loss_ppm <= 1_000,
        faults_must_heal: true,
        ..OracleConfig::default()
    }
}

/// One executed scenario: the raw experiment result plus the end-of-run
/// facts the oracles consume alongside the recorded trace.
#[derive(Debug)]
pub struct FuzzRun {
    /// Full harness output (recorder, counters, timings).
    pub result: ExperimentResult,
    /// Oracle-facing summary derived from `result`.
    pub facts: RunFacts,
}

/// Runs a spec to completion (or its horizon) and derives the run facts.
#[must_use]
pub fn run_scenario(spec: &ScenarioSpec) -> FuzzRun {
    let chain = build_chain_world(spec);
    let mut cfg = experiment_config(spec);
    cfg.faults = Some(spec.fault_plan(&chain)).filter(|p| !p.is_empty());
    let result = run_in_world(&chain.world, &cfg);
    // A transfer can finish before the last scheduled heal fires; without
    // it the trace would show an unpaired fault and trip [faults/unhealed]
    // spuriously. Drive the sim past every heal (plus a grace tick).
    if let Some(last_heal_ms) = spec.faults.iter().map(|f| f.to_ms.max(f.from_ms + 1)).max() {
        let heal_horizon = SimTime::from_millis(last_heal_ms + 1);
        if chain.world.sim.now() < heal_horizon {
            chain.world.sim.run_until(heal_horizon);
        }
    }
    // Sampled between events (the engine never parks mid-dispatch), so
    // pool occupancy must equal the trace's unmatched sends exactly — the
    // conservation oracle's pool-leak cross-check relies on this.
    let pool_live = chain.world.net.packets_in_flight() as u64;
    let sup_a = result.sender_net.supervision();
    let sup_b = result.receiver_net.supervision();
    let facts = RunFacts {
        completed: result.transfer_time.is_some(),
        verified: result.verified,
        duplicates: result.duplicates,
        out_of_order: result.out_of_order,
        reconnects: sup_a.reconnects + sup_b.reconnects,
        reconnect_attempts: sup_a.reconnect_attempts + sup_b.reconnect_attempts,
        channels_dropped: sup_a.channels_dropped + sup_b.channels_dropped,
        failovers: sup_a.failovers + sup_b.failovers,
        controller_swaps: sup_a.controller_swaps + sup_b.controller_swaps,
        fifo_expected: matches!(spec.transport, Transport::Tcp | Transport::Udt),
        evicted_events: result.recorder.evicted(),
        overlay: None,
        pool_live_at_end: Some(pool_live),
    };
    FuzzRun { result, facts }
}

impl Shrinkable for ScenarioSpec {
    fn candidates(&self) -> Vec<ScenarioSpec> {
        let mut out = Vec::new();
        // Most aggressive first: whole fault windows, then topology, then
        // workload size, then noise knobs.
        for i in 0..self.faults.len() {
            let mut s = self.clone();
            s.faults.remove(i);
            out.push(s);
        }
        if self.relays > 0 {
            let mut s = self.clone();
            s.relays = 0;
            out.push(s);
            if self.relays > 1 {
                let mut s = self.clone();
                s.relays -= 1;
                out.push(s);
            }
        }
        if self.size_kb > 16 {
            let mut s = self.clone();
            s.size_kb = (self.size_kb / 2).max(16);
            out.push(s);
        }
        if self.loss_ppm > 0 {
            let mut s = self.clone();
            s.loss_ppm = 0;
            out.push(s);
        }
        if self.jitter_us > 0 {
            let mut s = self.clone();
            s.jitter_us = 0;
            out.push(s);
        }
        if self.swap.is_some() {
            let mut s = self.clone();
            s.swap = None;
            out.push(s);
        }
        if self.pings {
            let mut s = self.clone();
            s.pings = false;
            out.push(s);
        }
        if self.cc != CcAlgorithm::Reno {
            let mut s = self.clone();
            s.cc = CcAlgorithm::Reno;
            out.push(s);
        }
        out
    }

    fn complexity(&self) -> u64 {
        self.faults.len() as u64 * 10_000
            + u64::from(self.relays) * 1_000
            + self.size_kb
            + u64::from(self.swap.is_some()) * 300
            + u64::from(self.loss_ppm > 0) * 200
            + u64::from(self.jitter_us > 0) * 100
            + u64::from(self.pings) * 50
            + u64::from(self.cc != CcAlgorithm::Reno) * 20
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_bounded() {
        for seed in 0..50 {
            let a = ScenarioSpec::generate(seed);
            let b = ScenarioSpec::generate(seed);
            assert_eq!(a, b, "seed {seed} regenerated differently");
            assert!(a.relays <= 2);
            assert!((1..=50).contains(&a.bandwidth_mbps));
            assert!((16..=256).contains(&a.size_kb));
            assert!(a.faults.len() <= 2);
            for f in &a.faults {
                assert!(f.to_ms > f.from_ms || f.to_ms == FAULT_DEADLINE_MS);
                assert!(f.to_ms <= FAULT_DEADLINE_MS, "faults heal before the deadline");
                assert!(f.hop <= a.relays);
            }
            assert!(a.horizon_ms > 2 * FAULT_DEADLINE_MS);
            if let Some((at_ms, _)) = a.swap {
                assert!((500..10_000).contains(&at_ms), "swap inside the fault era");
            }
        }
    }

    #[test]
    fn generation_covers_the_controller_dimension() {
        let mut controllers = std::collections::BTreeSet::new();
        let mut swaps = 0;
        for seed in 0..200 {
            let spec = ScenarioSpec::generate(seed);
            controllers.insert(spec.cc.label());
            swaps += usize::from(spec.swap.is_some());
        }
        assert_eq!(controllers.len(), 3, "all controllers generated: {controllers:?}");
        assert!(
            (20..180).contains(&swaps),
            "roughly a third of scenarios carry a swap, got {swaps}/200"
        );
    }

    #[test]
    fn pre_controller_artifacts_decode_as_reno() {
        let spec = ScenarioSpec::generate(3);
        let mut doc = spec.to_json();
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "cc" && k != "swap_ms" && k != "swap_cc");
        }
        let back = ScenarioSpec::from_json(&doc).expect("lenient decode");
        assert_eq!(back.cc, CcAlgorithm::Reno);
        assert_eq!(back.swap, None);
    }

    #[test]
    fn specs_round_trip_through_artifacts() {
        for seed in 0..50 {
            let spec = ScenarioSpec::generate(seed);
            let text = spec.to_json().render();
            let doc = Json::parse(&text).expect("artifact parses");
            let back = ScenarioSpec::from_json(&doc).expect("artifact decodes");
            assert_eq!(back, spec, "seed {seed} did not round-trip");
            assert_eq!(back.to_json().render(), text, "render is a fixed point");
        }
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        let spec = ScenarioSpec::generate(3);
        let mut doc = spec.to_json();
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "transport");
        }
        assert!(ScenarioSpec::from_json(&doc).is_err());
        assert!(ScenarioSpec::from_json(&Json::Null).is_err());
    }

    #[test]
    fn chain_world_routes_end_to_end() {
        let mut spec = ScenarioSpec::generate(7);
        spec.relays = 2;
        let chain = build_chain_world(&spec);
        assert_eq!(chain.forward.len(), 3);
        assert_eq!(chain.reverse.len(), 3);
        let w = &chain.world;
        assert_eq!(
            w.net.route(w.host_a, w.host_b),
            Some(chain.forward.clone()),
            "forward route walks the chain"
        );
        let back = w.net.route(w.host_b, w.host_a).expect("reverse route");
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], chain.reverse[2], "reverse route starts at b's hop");
    }

    #[test]
    fn shrink_candidates_strictly_reduce_complexity() {
        for seed in 0..50 {
            let spec = ScenarioSpec::generate(seed);
            for cand in spec.candidates() {
                assert!(
                    cand.complexity() < spec.complexity(),
                    "seed {seed}: candidate did not get simpler"
                );
            }
        }
    }

    #[test]
    fn fault_plan_pairs_every_window() {
        let mut spec = ScenarioSpec::generate(11);
        spec.relays = 1;
        spec.faults = vec![
            FaultSpec {
                kind: FaultKind::Down,
                hop: 0,
                forward: true,
                from_ms: 1_000,
                to_ms: 2_000,
                spike_ms: 0,
            },
            FaultSpec {
                kind: FaultKind::Spike,
                hop: 5, // out of range: clamps to the last hop
                forward: false,
                from_ms: 3_000,
                to_ms: 4_000,
                spike_ms: 100,
            },
        ];
        let chain = build_chain_world(&spec);
        let plan = spec.fault_plan(&chain);
        assert_eq!(plan.events().len(), 4, "each window is a fault + its heal");
    }
}
