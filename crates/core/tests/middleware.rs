//! End-to-end middleware tests: two simulated hosts exchanging messages
//! through full KompicsMessaging stacks (component system + network
//! component + transports).

use std::sync::Arc;

use std::time::Duration;

use bytes::Bytes;
use kmsg_component::prelude::*;
use kmsg_core::prelude::*;
use kmsg_netsim::cc::CcAlgorithm;
use kmsg_netsim::engine::Sim;
use kmsg_netsim::link::LinkConfig;
use kmsg_netsim::network::Network;
use kmsg_netsim::packet::NodeId;

/// Test application: records everything, sends on command.
struct Harness {
    net: RequiredPort<NetworkPort>,
    commands: SelfPort<NetRequest>,
    received: Vec<NetMessage>,
    notifies: Vec<(NotifyToken, DeliveryStatus)>,
    statuses: Vec<ChannelStatus>,
}

impl Harness {
    fn new() -> Self {
        Harness {
            net: RequiredPort::new(),
            commands: SelfPort::new(),
            received: Vec::new(),
            notifies: Vec::new(),
            statuses: Vec::new(),
        }
    }
}

impl ComponentDefinition for Harness {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        kmsg_component::execute_ports!(self, ctx, max, [
            required net: NetworkPort,
            selfport commands: NetRequest,
        ])
    }
}

impl Require<NetworkPort> for Harness {
    fn handle(&mut self, _ctx: &mut ComponentContext, ev: NetIndication) {
        match ev {
            NetIndication::Msg(m) => self.received.push(m),
            NetIndication::NotifyResp(t, s) => self.notifies.push((t, s)),
            NetIndication::Status(s) => self.statuses.push(s),
        }
    }
}

impl HandleSelf<NetRequest> for Harness {
    fn handle_self(&mut self, _ctx: &mut ComponentContext, req: NetRequest) {
        self.net.trigger(req);
    }
}

impl RequireRef<NetworkPort> for Harness {
    fn required_port(&mut self) -> &mut RequiredPort<NetworkPort> {
        &mut self.net
    }
}

struct Stack {
    addr: NetAddress,
    network: ComponentRef<NetworkComponent>,
    app: ComponentRef<Harness>,
    send: SelfRef<NetRequest>,
    stats: StatsHandle,
}

struct World {
    sim: Sim,
    net: Network,
    system: ComponentSystem,
}

fn world(link: LinkConfig, n_nodes: usize) -> (World, Vec<NodeId>) {
    let sim = Sim::new(77);
    let net = Network::new(&sim);
    let nodes: Vec<NodeId> = (0..n_nodes).map(|i| net.add_node(format!("h{i}"))).collect();
    for i in 0..n_nodes {
        for j in 0..n_nodes {
            if i != j {
                let l = net.add_link(link.clone());
                net.set_route(nodes[i], nodes[j], vec![l]);
            }
        }
    }
    let system = ComponentSystem::simulation(&sim, SystemConfig::default());
    (World { sim, net, system }, nodes)
}

fn stack(w: &World, node: NodeId, port: u16) -> Stack {
    stack_cfg(w, NetworkConfig::new(NetAddress::new(node, port)))
}

fn stack_cfg(w: &World, cfg: NetworkConfig) -> Stack {
    let addr = cfg.addr;
    let network = create_network(&w.system, &w.net, cfg).expect("bind");
    let stats = network.on_definition(|n| n.stats());
    let app = w.system.create(Harness::new);
    w.system.connect::<NetworkPort, _, _>(&network, &app);
    let send = app.self_ref(|h| &mut h.commands);
    w.system.start(&network);
    w.system.start(&app);
    Stack {
        addr,
        network,
        app,
        send,
        stats,
    }
}

fn default_link() -> LinkConfig {
    LinkConfig::new(10e6, Duration::from_millis(5))
}

#[test]
fn tcp_message_round_trip() {
    let (w, nodes) = world(default_link(), 2);
    let a = stack(&w, nodes[0], 7000);
    let b = stack(&w, nodes[1], 7000);
    a.send.push(NetRequest::Msg(NetMessage::new(
        a.addr,
        b.addr,
        Transport::Tcp,
        "hello over tcp".to_string(),
    )));
    w.sim.run_for(Duration::from_secs(2));
    let got = b.app.on_definition(|h| h.received.clone());
    assert_eq!(got.len(), 1);
    assert!(got[0].is_from_wire());
    assert_eq!(
        got[0].try_deserialise::<String, String>().expect("payload"),
        "hello over tcp"
    );
    assert_eq!(got[0].header().protocol(), Transport::Tcp);
    assert_eq!(*got[0].header().source(), a.addr);
}

#[test]
fn udt_message_round_trip() {
    let (w, nodes) = world(default_link(), 2);
    let a = stack(&w, nodes[0], 7000);
    let b = stack(&w, nodes[1], 7000);
    a.send.push(NetRequest::Msg(NetMessage::new(
        a.addr,
        b.addr,
        Transport::Udt,
        Bytes::from_static(b"udt payload"),
    )));
    w.sim.run_for(Duration::from_secs(2));
    let got = b.app.on_definition(|h| h.received.clone());
    assert_eq!(got.len(), 1);
    assert_eq!(
        got[0].try_deserialise::<Bytes, Bytes>().expect("payload"),
        Bytes::from_static(b"udt payload")
    );
    assert_eq!(got[0].header().protocol(), Transport::Udt);
}

#[test]
fn udp_message_round_trip_and_size_limit() {
    let (w, nodes) = world(default_link(), 2);
    let a = stack(&w, nodes[0], 7000);
    let b = stack(&w, nodes[1], 7000);
    a.send.push(NetRequest::NotifyReq(
        NotifyToken::new(1),
        NetMessage::new(a.addr, b.addr, Transport::Udp, "small".to_string()),
    ));
    // Oversized datagram must fail cleanly. Use incompressible data so the
    // Snappy stand-in cannot shrink it below the limit.
    let big: Vec<u8> = {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(3);
        (0..70_000).map(|_| rng.gen()).collect()
    };
    a.send.push(NetRequest::NotifyReq(
        NotifyToken::new(2),
        NetMessage::new(a.addr, b.addr, Transport::Udp, Bytes::from(big)),
    ));
    w.sim.run_for(Duration::from_secs(2));
    let got = b.app.on_definition(|h| h.received.len());
    assert_eq!(got, 1, "only the small datagram arrives");
    let notifies = a.app.on_definition(|h| h.notifies.clone());
    assert_eq!(notifies.len(), 2);
    assert_eq!(notifies[0].1, DeliveryStatus::Sent);
    assert_eq!(
        notifies[1].1,
        DeliveryStatus::Failed(SendError::TooLargeForUdp)
    );
}

#[test]
fn notify_sent_for_stream_transports() {
    let (w, nodes) = world(default_link(), 2);
    let a = stack(&w, nodes[0], 7000);
    let b = stack(&w, nodes[1], 7000);
    for (id, proto) in [(1u64, Transport::Tcp), (2, Transport::Udt)] {
        a.send.push(NetRequest::NotifyReq(
            NotifyToken::new(id),
            NetMessage::new(a.addr, b.addr, proto, format!("m{id}")),
        ));
    }
    w.sim.run_for(Duration::from_secs(3));
    let notifies = a.app.on_definition(|h| h.notifies.clone());
    assert_eq!(notifies.len(), 2);
    assert!(notifies.iter().all(|(_, s)| *s == DeliveryStatus::Sent));
    assert_eq!(b.app.on_definition(|h| h.received.len()), 2);
}

#[test]
fn fifo_order_per_transport() {
    let (w, nodes) = world(default_link(), 2);
    let a = stack(&w, nodes[0], 7000);
    let b = stack(&w, nodes[1], 7000);
    for i in 0..50u64 {
        a.send.push(NetRequest::Msg(NetMessage::new(
            a.addr,
            b.addr,
            Transport::Tcp,
            i,
        )));
    }
    w.sim.run_for(Duration::from_secs(3));
    let got: Vec<u64> = b.app.on_definition(|h| {
        h.received
            .iter()
            .map(|m| m.try_deserialise::<u64, u64>().expect("u64"))
            .collect()
    });
    assert_eq!(got, (0..50).collect::<Vec<_>>(), "TCP preserves FIFO");
}

#[test]
fn local_reflection_skips_serialisation() {
    let (w, nodes) = world(default_link(), 1);
    let a = stack(&w, nodes[0], 7000);
    // Send to our own address (e.g. between vnodes of the same host).
    a.send.push(NetRequest::NotifyReq(
        NotifyToken::new(9),
        NetMessage::new(a.addr, a.addr, Transport::Tcp, "loop".to_string()),
    ));
    w.sim.run_for(Duration::from_secs(1));
    let got = a.app.on_definition(|h| h.received.clone());
    assert_eq!(got.len(), 1);
    assert!(!got[0].is_from_wire(), "reflected without serialisation");
    assert_eq!(
        a.app.on_definition(|h| h.notifies.clone())[0].1,
        DeliveryStatus::DeliveredLocally
    );
    assert_eq!(a.stats.lock().local_reflections, 1);
    assert_eq!(a.stats.lock().total_sent(), 0, "nothing hit the wire");
}

#[test]
fn vnode_channels_route_by_id() {
    let (w, nodes) = world(default_link(), 2);
    let a = stack(&w, nodes[0], 7000);
    // Host B: one network component, two vnode clients.
    let b_addr = NetAddress::new(nodes[1], 7000);
    let b_net = create_network(&w.system, &w.net, NetworkConfig::new(b_addr)).expect("bind");
    let v1 = w.system.create(Harness::new);
    let v2 = w.system.create(Harness::new);
    connect_vnode(&w.system, &b_net, &v1, VnodeId(1));
    connect_vnode(&w.system, &b_net, &v2, VnodeId(2));
    w.system.start(&b_net);
    w.system.start(&v1);
    w.system.start(&v2);

    for (vnode, text) in [(VnodeId(1), "to-v1"), (VnodeId(2), "to-v2")] {
        a.send.push(NetRequest::Msg(NetMessage::new(
            a.addr,
            b_addr.with_vnode(vnode),
            Transport::Tcp,
            text.to_string(),
        )));
    }
    w.sim.run_for(Duration::from_secs(2));
    let got1 = v1.on_definition(|h| h.received.clone());
    let got2 = v2.on_definition(|h| h.received.clone());
    assert_eq!(got1.len(), 1);
    assert_eq!(got2.len(), 1);
    assert_eq!(
        got1[0].try_deserialise::<String, String>().expect("p"),
        "to-v1"
    );
    assert_eq!(
        got2[0].try_deserialise::<String, String>().expect("p"),
        "to-v2"
    );
}

#[test]
fn same_host_vnodes_reflect_locally() {
    let (w, nodes) = world(default_link(), 1);
    let addr = NetAddress::new(nodes[0], 7000);
    let net_comp = create_network(&w.system, &w.net, NetworkConfig::new(addr)).expect("bind");
    let stats = net_comp.on_definition(|n| n.stats());
    let v1 = w.system.create(Harness::new);
    let v2 = w.system.create(Harness::new);
    connect_vnode(&w.system, &net_comp, &v1, VnodeId(1));
    connect_vnode(&w.system, &net_comp, &v2, VnodeId(2));
    let send1 = v1.self_ref(|h| &mut h.commands);
    w.system.start(&net_comp);
    w.system.start(&v1);
    w.system.start(&v2);

    send1.push(NetRequest::Msg(NetMessage::new(
        addr.with_vnode(VnodeId(1)),
        addr.with_vnode(VnodeId(2)),
        Transport::Tcp,
        "vnode-to-vnode".to_string(),
    )));
    w.sim.run_for(Duration::from_secs(1));
    assert_eq!(v1.on_definition(|h| h.received.len()), 0, "selector filters v1");
    let got = v2.on_definition(|h| h.received.clone());
    assert_eq!(got.len(), 1);
    assert!(!got[0].is_from_wire(), "same-host vnodes never serialise");
    assert_eq!(stats.lock().local_reflections, 1);
}

#[test]
fn multi_hop_routing_forwards() {
    let (w, nodes) = world(default_link(), 3);
    let a = stack(&w, nodes[0], 7000);
    let b = stack(&w, nodes[1], 7000);
    let c = stack(&w, nodes[2], 7000);
    // a -> (via b) -> c
    let header = NetHeader::Routing(RoutingHeader::with_route(
        BasicHeader::new(a.addr, c.addr, Transport::Tcp),
        vec![b.addr],
    ));
    a.send.push(NetRequest::Msg(NetMessage::with_header(
        header,
        "through the middle".to_string(),
    )));
    w.sim.run_for(Duration::from_secs(3));
    assert_eq!(b.app.on_definition(|h| h.received.len()), 0, "b only forwards");
    assert_eq!(b.stats.lock().forwarded, 1);
    let got = c.app.on_definition(|h| h.received.clone());
    assert_eq!(got.len(), 1);
    assert_eq!(
        got[0].try_deserialise::<String, String>().expect("p"),
        "through the middle"
    );
    // The source presented to c is the original sender: c can reply
    // directly (the paper's replyTo motivation).
    assert_eq!(*got[0].header().source(), a.addr);
}

#[test]
fn reply_reuses_inbound_channel() {
    let (w, nodes) = world(default_link(), 2);
    let a = stack(&w, nodes[0], 7000);
    let b = stack(&w, nodes[1], 7000);
    a.send.push(NetRequest::Msg(NetMessage::new(
        a.addr,
        b.addr,
        Transport::Tcp,
        "ping".to_string(),
    )));
    w.sim.run_for(Duration::from_secs(1));
    // B replies.
    b.send.push(NetRequest::Msg(NetMessage::new(
        b.addr,
        a.addr,
        Transport::Tcp,
        "pong".to_string(),
    )));
    w.sim.run_for(Duration::from_secs(2));
    assert_eq!(a.app.on_definition(|h| h.received.len()), 1);
    // A opened one channel; B reused the accepted one (one open each).
    assert_eq!(a.stats.lock().channels_opened, 1);
    assert_eq!(b.stats.lock().channels_opened, 1, "reply must reuse the channel");
}

#[test]
fn unresolved_data_falls_back_to_tcp() {
    let (w, nodes) = world(default_link(), 2);
    let a = stack(&w, nodes[0], 7000);
    let b = stack(&w, nodes[1], 7000);
    let msg = NetMessage::with_header(
        NetHeader::Data(DataHeader::new(a.addr, b.addr)),
        "raw data msg".to_string(),
    );
    a.send.push(NetRequest::Msg(msg));
    w.sim.run_for(Duration::from_secs(2));
    let got = b.app.on_definition(|h| h.received.clone());
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].header().protocol(), Transport::Tcp, "fallback applied");
    assert_eq!(a.stats.lock().unresolved_data, 1);
}

#[test]
fn per_message_transport_mixing_on_one_destination() {
    let (w, nodes) = world(default_link(), 2);
    let a = stack(&w, nodes[0], 7000);
    let b = stack(&w, nodes[1], 7000);
    // Alternate transports message by message — the paper's core ability.
    for i in 0..30u64 {
        let proto = match i % 3 {
            0 => Transport::Tcp,
            1 => Transport::Udt,
            _ => Transport::Udp,
        };
        a.send.push(NetRequest::Msg(NetMessage::new(a.addr, b.addr, proto, i)));
    }
    w.sim.run_for(Duration::from_secs(5));
    let by_proto = b.app.on_definition(|h| {
        let mut counts = [0u32; 4];
        for m in &h.received {
            counts[m.header().protocol().to_byte() as usize] += 1;
        }
        counts
    });
    assert_eq!(by_proto[Transport::Tcp.to_byte() as usize], 10);
    assert_eq!(by_proto[Transport::Udt.to_byte() as usize], 10);
    assert_eq!(by_proto[Transport::Udp.to_byte() as usize], 10);
    let stats = a.stats.lock();
    assert_eq!(stats.sent[Transport::Tcp.to_byte() as usize], 10);
    assert_eq!(stats.sent[Transport::Udt.to_byte() as usize], 10);
}

#[test]
fn data_network_resolves_protocols() {
    let (w, nodes) = world(default_link(), 2);
    // Host A gets the full DataNetwork wrapper.
    let a_addr = NetAddress::new(nodes[0], 7000);
    let data_cfg = DataNetworkConfig {
        prp: PrpKind::Static(Ratio::BALANCED),
        psp: PspKind::Pattern(PatternKind::MinimalRest),
        seeds: kmsg_netsim::rng::SeedSource::new(1),
        ..DataNetworkConfig::default()
    };
    let dn = create_data_network(
        &w.system,
        &w.net,
        NetworkConfig::new(a_addr),
        data_cfg,
    )
    .expect("bind");
    let app = w.system.create(Harness::new);
    w.system.connect::<NetworkPort, _, _>(&dn.interceptor, &app);
    let send = app.self_ref(|h| &mut h.commands);
    dn.start(&w.system);
    w.system.start(&app);

    let b = stack(&w, nodes[1], 7000);
    for i in 0..20u64 {
        let msg = NetMessage::with_header(
            NetHeader::Data(DataHeader::new(a_addr, b.addr)),
            i,
        );
        send.push(NetRequest::Msg(msg));
    }
    w.sim.run_for(Duration::from_secs(5));
    let (tcp, udt) = b.app.on_definition(|h| {
        let tcp = h
            .received
            .iter()
            .filter(|m| m.header().protocol() == Transport::Tcp)
            .count();
        let udt = h
            .received
            .iter()
            .filter(|m| m.header().protocol() == Transport::Udt)
            .count();
        (tcp, udt)
    });
    assert_eq!(tcp + udt, 20, "all messages resolved and delivered");
    assert_eq!(tcp, 10, "50-50 pattern splits evenly");
    assert_eq!(udt, 10);
}

#[test]
fn deterministic_replay() {
    let run = || {
        let (w, nodes) = world(default_link().random_loss(0.01), 2);
        let a = stack(&w, nodes[0], 7000);
        let b = stack(&w, nodes[1], 7000);
        for i in 0..100u64 {
            a.send.push(NetRequest::Msg(NetMessage::new(
                a.addr,
                b.addr,
                Transport::Tcp,
                i,
            )));
        }
        w.sim.run_for(Duration::from_secs(5));
        (
            b.app.on_definition(|h| h.received.len()),
            w.sim.events_executed(),
            a.network.on_definition(|n| n.stats().lock().bytes_out),
        )
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed must reproduce exactly");
    assert_eq!(first.0, 100);
}

#[test]
fn short_outage_is_survived_by_tcp_retransmission() {
    let (w, nodes) = world(default_link(), 2);
    let a = stack(&w, nodes[0], 7000);
    let b = stack(&w, nodes[1], 7000);
    // Establish the channel.
    a.send.push(NetRequest::Msg(NetMessage::new(a.addr, b.addr, Transport::Tcp, 0u64)));
    w.sim.run_for(Duration::from_millis(200));
    // 300 ms outage on the a->b direction.
    let ab = w.net.route(nodes[0], nodes[1]).expect("route")[0];
    w.net.link(ab).set_up(false);
    for i in 1..=20u64 {
        a.send.push(NetRequest::Msg(NetMessage::new(a.addr, b.addr, Transport::Tcp, i)));
    }
    w.sim.run_for(Duration::from_millis(300));
    w.net.link(ab).set_up(true);
    w.sim.run_for(Duration::from_secs(10));
    let got: Vec<u64> = b.app.on_definition(|h| {
        h.received
            .iter()
            .map(|m| m.try_deserialise::<u64, u64>().expect("u64"))
            .collect()
    });
    assert_eq!(got, (0..=20).collect::<Vec<_>>(), "RTO must recover the burst");
}

#[test]
fn permanent_outage_fails_notifies_at_most_once() {
    let (w, nodes) = world(default_link(), 2);
    // Supervision off: this pins the legacy at-most-once contract.
    let mut cfg = NetworkConfig::new(NetAddress::new(nodes[0], 7000));
    cfg.reconnect = None;
    let a = stack_cfg(&w, cfg);
    let b = stack(&w, nodes[1], 7000);
    a.send.push(NetRequest::NotifyReq(
        NotifyToken::new(1),
        NetMessage::new(a.addr, b.addr, Transport::Tcp, 1u64),
    ));
    w.sim.run_for(Duration::from_millis(500));
    assert_eq!(b.app.on_definition(|h| h.received.len()), 1);
    // Cut both directions permanently.
    for (x, y) in [(nodes[0], nodes[1]), (nodes[1], nodes[0])] {
        let l = w.net.route(x, y).expect("route")[0];
        w.net.link(l).set_up(false);
    }
    for i in 2..=5u64 {
        a.send.push(NetRequest::NotifyReq(
            NotifyToken::new(i),
            NetMessage::new(a.addr, b.addr, Transport::Tcp, i),
        ));
    }
    // Long enough for TCP to give up (15 backoffs capped at 60 s would be
    // huge; consecutive-timeout abort kicks in much earlier with min RTO).
    w.sim.run_for(Duration::from_secs(900));
    let notifies = a.app.on_definition(|h| h.notifies.clone());
    let failed: Vec<u64> = notifies
        .iter()
        .filter(|(_, s)| matches!(s, DeliveryStatus::Failed(SendError::ChannelClosed)))
        .map(|(t, _)| t.id)
        .collect();
    assert_eq!(failed, vec![2, 3, 4, 5], "queued messages fail on channel death");
    assert_eq!(
        b.app.on_definition(|h| h.received.len()),
        1,
        "at-most-once: messages 2..=5 are lost, not retried by the middleware"
    );
    assert_eq!(a.stats.lock().channels_closed, 1);
}

/// The middleware is executor-agnostic: the same components run under the
/// thread-pool scheduler. Same-host vnode traffic needs no virtual time
/// (reflection does not touch the simulated wire), so this exercises the
/// real-threads path end to end.
#[test]
fn vnode_reflection_under_thread_pool_scheduler() {
    let sim = Sim::new(1);
    let net = Network::new(&sim);
    let node = net.add_node("host");
    let system = ComponentSystem::threaded(SystemConfig {
        threads: 2,
        ..SystemConfig::default()
    });
    let addr = NetAddress::new(node, 7000);
    let net_comp = create_network(&system, &net, NetworkConfig::new(addr)).expect("bind");
    let v1 = system.create(Harness::new);
    let v2 = system.create(Harness::new);
    connect_vnode(&system, &net_comp, &v1, VnodeId(1));
    connect_vnode(&system, &net_comp, &v2, VnodeId(2));
    let send = v1.self_ref(|h| &mut h.commands);
    system.start(&net_comp);
    system.start(&v1);
    system.start(&v2);
    for i in 0..50u64 {
        send.push(NetRequest::Msg(NetMessage::new(
            addr.with_vnode(VnodeId(1)),
            addr.with_vnode(VnodeId(2)),
            Transport::Tcp,
            i,
        )));
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let n = v2.on_definition(|h| h.received.len());
        if n == 50 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "threaded reflection stalled at {n}/50");
        std::thread::sleep(Duration::from_millis(5));
    }
    let got: Vec<u64> = v2.on_definition(|h| {
        h.received
            .iter()
            .map(|m| m.try_deserialise::<u64, u64>().expect("u64"))
            .collect()
    });
    assert_eq!(got, (0..50).collect::<Vec<_>>(), "FIFO reflection under threads");
    assert!(got.iter().all(|_| true));
    system.shutdown();
}

#[test]
fn idle_channels_are_torn_down_when_configured() {
    let (w, nodes) = world(default_link(), 2);
    let a_addr = NetAddress::new(nodes[0], 7000);
    let mut cfg = NetworkConfig::new(a_addr);
    cfg.idle_timeout = Some(Duration::from_secs(3));
    let a_net = create_network(&w.system, &w.net, cfg).expect("bind");
    let a_stats = a_net.on_definition(|n| n.stats());
    let a_app = w.system.create(Harness::new);
    w.system.connect::<NetworkPort, _, _>(&a_net, &a_app);
    let send = a_app.self_ref(|h| &mut h.commands);
    w.system.start(&a_net);
    w.system.start(&a_app);
    let b = stack(&w, nodes[1], 7000);
    send.push(NetRequest::Msg(NetMessage::new(
        a_addr,
        b.addr,
        Transport::Tcp,
        "hi".to_string(),
    )));
    w.sim.run_for(Duration::from_secs(1));
    assert_eq!(a_stats.lock().channels_opened, 1);
    assert_eq!(a_stats.lock().channels_closed, 0);
    // Idle past the timeout: the sweeper closes the channel.
    w.sim.run_for(Duration::from_secs(10));
    assert_eq!(a_stats.lock().channels_closed, 1, "idle sweep must close");
    // A new message transparently re-opens it.
    send.push(NetRequest::Msg(NetMessage::new(
        a_addr,
        b.addr,
        Transport::Tcp,
        "again".to_string(),
    )));
    w.sim.run_for(Duration::from_secs(2));
    assert_eq!(a_stats.lock().channels_opened, 2);
    assert_eq!(b.app.on_definition(|h| h.received.len()), 2);
}

#[test]
fn compression_reduces_wire_bytes_for_compressible_payloads() {
    let (w, nodes) = world(default_link(), 2);
    let a = stack(&w, nodes[0], 7000);
    let b = stack(&w, nodes[1], 7000);
    let compressible = Bytes::from(vec![9u8; 50_000]);
    a.send.push(NetRequest::Msg(NetMessage::new(
        a.addr,
        b.addr,
        Transport::Tcp,
        compressible.clone(),
    )));
    w.sim.run_for(Duration::from_secs(2));
    let wire = a.stats.lock().bytes_out;
    assert!(
        wire < 5_000,
        "constant payload should compress away on the wire, got {wire}"
    );
    // The receiver still sees the original bytes.
    let got = b.app.on_definition(|h| h.received.clone());
    assert_eq!(
        got[0].try_deserialise::<Bytes, Bytes>().expect("payload"),
        compressible
    );
}

/// §III-A: "A single instance of the component only allows one port to
/// listen on per protocol, but if more are required another instance with
/// a different configuration can simply be started."
#[test]
fn multiple_network_instances_per_host() {
    let (w, nodes) = world(default_link(), 2);
    // Two independent middleware instances on host 0, ports 7000 and 7100.
    let a1 = stack(&w, nodes[0], 7000);
    let a2 = stack(&w, nodes[0], 7100);
    let b = stack(&w, nodes[1], 7000);
    // Binding the same port twice must fail cleanly.
    assert!(create_network(
        &w.system,
        &w.net,
        NetworkConfig::new(NetAddress::new(nodes[0], 7000))
    )
    .is_err());
    a1.send.push(NetRequest::Msg(NetMessage::new(
        a1.addr,
        b.addr,
        Transport::Tcp,
        "from-7000".to_string(),
    )));
    a2.send.push(NetRequest::Msg(NetMessage::new(
        a2.addr,
        b.addr,
        Transport::Udt,
        "from-7100".to_string(),
    )));
    w.sim.run_for(Duration::from_secs(2));
    let got: Vec<(String, NetAddress)> = b.app.on_definition(|h| {
        h.received
            .iter()
            .map(|m| {
                (
                    m.try_deserialise::<String, String>().expect("p"),
                    *m.header().source(),
                )
            })
            .collect()
    });
    assert_eq!(got.len(), 2);
    assert!(got.iter().any(|(s, src)| s == "from-7000" && *src == a1.addr));
    assert!(got.iter().any(|(s, src)| s == "from-7100" && *src == a2.addr));
    // Each instance keeps its own channels and stats.
    assert_eq!(a1.stats.lock().total_sent(), 1);
    assert_eq!(a2.stats.lock().total_sent(), 1);
    // Replies route back to the correct instance.
    b.send.push(NetRequest::Msg(NetMessage::new(
        b.addr,
        a2.addr,
        Transport::Tcp,
        "to-7100".to_string(),
    )));
    w.sim.run_for(Duration::from_secs(2));
    assert_eq!(a2.app.on_definition(|h| h.received.len()), 1);
    assert_eq!(a1.app.on_definition(|h| h.received.len()), 0);
}

/// Notification responses carry the requesting vnode in their token, so
/// vnode channels deliver them only to the requesting subtree.
#[test]
fn vnode_scoped_notify_routing() {
    let (w, nodes) = world(default_link(), 2);
    let b = stack(&w, nodes[1], 7000);
    let a_addr = NetAddress::new(nodes[0], 7000);
    let a_net = create_network(&w.system, &w.net, NetworkConfig::new(a_addr)).expect("bind");
    let v1 = w.system.create(Harness::new);
    let v2 = w.system.create(Harness::new);
    connect_vnode(&w.system, &a_net, &v1, VnodeId(1));
    connect_vnode(&w.system, &a_net, &v2, VnodeId(2));
    let send1 = v1.self_ref(|h| &mut h.commands);
    w.system.start(&a_net);
    w.system.start(&v1);
    w.system.start(&v2);

    send1.push(NetRequest::NotifyReq(
        NotifyToken::for_vnode(VnodeId(1), 42),
        NetMessage::new(
            a_addr.with_vnode(VnodeId(1)),
            b.addr,
            Transport::Tcp,
            "scoped".to_string(),
        ),
    ));
    w.sim.run_for(Duration::from_secs(2));
    assert_eq!(b.app.on_definition(|h| h.received.len()), 1);
    let n1 = v1.on_definition(|h| h.notifies.clone());
    assert_eq!(n1.len(), 1, "requesting vnode gets the response");
    assert_eq!(n1[0].0, NotifyToken::for_vnode(VnodeId(1), 42));
    assert_eq!(n1[0].1, DeliveryStatus::Sent);
    assert!(
        v2.on_definition(|h| h.notifies.is_empty()),
        "other vnodes must not see it"
    );
}

/// Channel supervision: a multi-second outage kills the TCP channel, the
/// supervisor redials with backoff, and every queued message — including
/// frames that were in flight when the connection died — is delivered
/// after the heal (at-least-once within the retry budget).
#[test]
fn supervision_reconnects_and_redelivers_after_outage() {
    let (w, nodes) = world(default_link(), 2);
    let mut cfg = NetworkConfig::new(NetAddress::new(nodes[0], 7000));
    // Impatient TCP so the channel death is observable within the outage.
    cfg.tcp.min_rto = Duration::from_millis(100);
    cfg.tcp.max_rto = Duration::from_millis(400);
    cfg.tcp.max_consecutive_timeouts = 2;
    cfg.tcp.syn_retries = 1;
    cfg.reconnect = Some(ReconnectConfig {
        max_retries: 30,
        base_backoff: Duration::from_millis(100),
        max_backoff: Duration::from_millis(400),
        probe_interval: Some(Duration::from_secs(2)),
    });
    let a = stack_cfg(&w, cfg);
    let b = stack(&w, nodes[1], 7000);
    a.send.push(NetRequest::NotifyReq(
        NotifyToken::new(1),
        NetMessage::new(a.addr, b.addr, Transport::Tcp, 1u64),
    ));
    w.sim.run_for(Duration::from_millis(500));
    assert_eq!(b.app.on_definition(|h| h.received.len()), 1);
    // Cut both directions for four seconds.
    let links: Vec<_> = [(nodes[0], nodes[1]), (nodes[1], nodes[0])]
        .iter()
        .map(|&(x, y)| w.net.route(x, y).expect("route")[0])
        .collect();
    for &l in &links {
        w.net.link(l).set_up(false);
    }
    for i in 2..=6u64 {
        a.send.push(NetRequest::NotifyReq(
            NotifyToken::new(i),
            NetMessage::new(a.addr, b.addr, Transport::Tcp, i),
        ));
    }
    w.sim.run_for(Duration::from_secs(4));
    let statuses = a.app.on_definition(|h| h.statuses.clone());
    assert!(
        statuses
            .iter()
            .any(|s| s.status == ConnStatus::ConnectionLost && s.transport == Transport::Tcp),
        "the outage must surface as ConnectionLost, got {statuses:?}"
    );
    for &l in &links {
        w.net.link(l).set_up(true);
    }
    w.sim.run_for(Duration::from_secs(15));
    let statuses = a.app.on_definition(|h| h.statuses.clone());
    assert!(
        statuses.iter().any(|s| matches!(
            s.status,
            ConnStatus::ConnectionRestored { attempts } if attempts >= 1
        )),
        "the heal must surface as ConnectionRestored, got {statuses:?}"
    );
    // At-least-once: everything queued during the outage arrives.
    let got: Vec<u64> = b.app.on_definition(|h| {
        h.received
            .iter()
            .map(|m| m.try_deserialise::<u64, u64>().expect("u64"))
            .collect()
    });
    for i in 1..=6u64 {
        assert!(got.contains(&i), "message {i} must survive the outage, got {got:?}");
    }
    let notifies = a.app.on_definition(|h| h.notifies.clone());
    assert!(
        notifies.iter().all(|(_, s)| *s == DeliveryStatus::Sent),
        "no send may fail within the retry budget, got {notifies:?}"
    );
    let stats = a.stats.lock();
    assert!(stats.reconnect_attempts >= 1);
    assert!(stats.reconnects >= 1, "supervision must re-establish the channel");
    assert_eq!(stats.channels_dropped, 0, "budget must not be exhausted");
}

/// Regression: the idle sweeper must not tear down a channel that still
/// has frames awaiting transport acknowledgement — the quiet period while
/// TCP retransmits into an outage is not "idle", and closing there would
/// lose the frames.
#[test]
fn idle_sweep_spares_channels_with_unacked_frames() {
    let (w, nodes) = world(default_link(), 2);
    let mut cfg = NetworkConfig::new(NetAddress::new(nodes[0], 7000));
    cfg.idle_timeout = Some(Duration::from_secs(2));
    let a = stack_cfg(&w, cfg);
    let b = stack(&w, nodes[1], 7000);
    a.send.push(NetRequest::Msg(NetMessage::new(a.addr, b.addr, Transport::Tcp, 0u64)));
    w.sim.run_for(Duration::from_millis(500));
    // Cut the data direction only: the next frame is written to the
    // transport but can never be acknowledged.
    let ab = w.net.route(nodes[0], nodes[1]).expect("route")[0];
    w.net.link(ab).set_up(false);
    a.send.push(NetRequest::NotifyReq(
        NotifyToken::new(7),
        NetMessage::new(a.addr, b.addr, Transport::Tcp, 1u64),
    ));
    // Well past the idle timeout; TCP keeps retransmitting underneath.
    w.sim.run_for(Duration::from_secs(6));
    assert_eq!(
        a.stats.lock().channels_closed,
        0,
        "a channel with unacked frames is not idle"
    );
    w.net.link(ab).set_up(true);
    w.sim.run_for(Duration::from_secs(5));
    assert_eq!(b.app.on_definition(|h| h.received.len()), 2);
    let notifies = a.app.on_definition(|h| h.notifies.clone());
    assert!(
        notifies.iter().any(|(t, s)| t.id == 7 && *s == DeliveryStatus::Sent),
        "the retransmitted frame must eventually confirm, got {notifies:?}"
    );
}

/// Graceful degradation: when the UDT channel exhausts its reconnect
/// budget mid-outage while the (more patient) TCP channel survives, new
/// DATA traffic fails over to TCP.
#[test]
fn data_fails_over_to_surviving_transport() {
    let (w, nodes) = world(default_link(), 2);
    let mut cfg = NetworkConfig::new(NetAddress::new(nodes[0], 7000));
    // DATA resolves to UDT by default; UDT gives up fast and has a tiny
    // retry budget, while TCP (default 15 consecutive timeouts) rides out
    // the whole outage.
    cfg.data_fallback = Some(Transport::Udt);
    cfg.udt.exp_timeout = Duration::from_millis(100);
    cfg.udt.max_expirations = 3;
    cfg.reconnect = Some(ReconnectConfig {
        max_retries: 1,
        base_backoff: Duration::from_millis(100),
        max_backoff: Duration::from_millis(200),
        probe_interval: None,
    });
    let a = stack_cfg(&w, cfg);
    let b = stack(&w, nodes[1], 7000);
    // Establish both stream channels.
    a.send.push(NetRequest::Msg(NetMessage::with_header(
        NetHeader::Data(DataHeader::new(a.addr, b.addr)),
        0u64,
    )));
    a.send.push(NetRequest::Msg(NetMessage::new(a.addr, b.addr, Transport::Tcp, 100u64)));
    w.sim.run_for(Duration::from_secs(1));
    assert_eq!(b.app.on_definition(|h| h.received.len()), 2);
    let links: Vec<_> = [(nodes[0], nodes[1]), (nodes[1], nodes[0])]
        .iter()
        .map(|&(x, y)| w.net.route(x, y).expect("route")[0])
        .collect();
    for &l in &links {
        w.net.link(l).set_up(false);
    }
    // In-flight data makes UDT's expiration timer fire: the channel dies,
    // one redial fails (handshake gives up after ~3 s), budget exhausted.
    a.send.push(NetRequest::Msg(NetMessage::with_header(
        NetHeader::Data(DataHeader::new(a.addr, b.addr)),
        1u64,
    )));
    w.sim.run_for(Duration::from_secs(8));
    let statuses = a.app.on_definition(|h| h.statuses.clone());
    assert!(
        statuses
            .iter()
            .any(|s| s.status == ConnStatus::ConnectionDropped && s.transport == Transport::Udt),
        "UDT must exhaust its budget, got {statuses:?}"
    );
    // New DATA traffic now reroutes to the surviving TCP channel.
    for i in 2..=4u64 {
        a.send.push(NetRequest::Msg(NetMessage::with_header(
            NetHeader::Data(DataHeader::new(a.addr, b.addr)),
            i,
        )));
    }
    for &l in &links {
        w.net.link(l).set_up(true);
    }
    w.sim.run_for(Duration::from_secs(10));
    assert!(a.stats.lock().failovers >= 3, "DATA sends must fail over");
    let got: Vec<(u64, Transport)> = b.app.on_definition(|h| {
        h.received
            .iter()
            .map(|m| {
                (
                    m.try_deserialise::<u64, u64>().expect("u64"),
                    m.header().protocol(),
                )
            })
            .collect()
    });
    for i in 2..=4u64 {
        assert!(
            got.iter().any(|&(v, t)| v == i && t == Transport::Tcp),
            "message {i} must arrive over TCP, got {got:?}"
        );
    }
}

/// Regression: a deliberately cyclic route must die at the TTL, not
/// circulate forever. Each forwarding host charges one unit of budget;
/// the host that would forward at zero drops with a recorded reason.
#[test]
fn cyclic_route_is_killed_by_ttl() {
    let (w, nodes) = world(default_link(), 3);
    w.sim.recorder().enable();
    let a = stack(&w, nodes[0], 7000);
    let b = stack(&w, nodes[1], 7000);
    let c = stack(&w, nodes[2], 7000);
    // a -> b -> a -> b -> a -> b -> ... never reaching c.
    let mut rh = RoutingHeader::with_route(
        BasicHeader::new(a.addr, c.addr, Transport::Tcp),
        vec![b.addr, a.addr, b.addr, a.addr, b.addr],
    );
    rh.ttl = 3;
    a.send.push(NetRequest::Msg(NetMessage::with_header(
        NetHeader::Routing(rh),
        "doomed".to_string(),
    )));
    w.sim.run_for(Duration::from_secs(3));
    assert_eq!(c.app.on_definition(|h| h.received.len()), 0, "never reaches c");
    // b forwards at ttl 3 and 1; a forwards at ttl 2 and drops at 0.
    assert_eq!(b.stats.lock().forwarded, 2);
    assert_eq!(a.stats.lock().forwarded, 1);
    assert_eq!(a.stats.lock().ttl_drops, 1, "the cycle dies at the TTL");
    assert_eq!(b.stats.lock().ttl_drops, 0);
    let drops = w
        .sim
        .recorder()
        .events()
        .iter()
        .filter(|e| e.kind.label() == "overlay")
        .count();
    assert_eq!(drops, 1, "the drop is recorded with a reason");
}

/// Supervision edge case: link flaps arriving while the channel is
/// already `Reconnecting` must neither double-supervise nor wedge the
/// state machine — every `restored` pairs with a preceding `lost`, and
/// all queued traffic still arrives after the final heal.
#[test]
fn flap_while_reconnecting_keeps_supervision_consistent() {
    let (w, nodes) = world(default_link(), 2);
    let mut cfg = NetworkConfig::new(NetAddress::new(nodes[0], 7000));
    cfg.tcp.min_rto = Duration::from_millis(100);
    cfg.tcp.max_rto = Duration::from_millis(400);
    cfg.tcp.max_consecutive_timeouts = 2;
    cfg.tcp.syn_retries = 1;
    cfg.reconnect = Some(ReconnectConfig {
        max_retries: 60,
        base_backoff: Duration::from_millis(100),
        max_backoff: Duration::from_millis(400),
        probe_interval: Some(Duration::from_secs(2)),
    });
    let a = stack_cfg(&w, cfg);
    let b = stack(&w, nodes[1], 7000);
    a.send.push(NetRequest::Msg(NetMessage::new(a.addr, b.addr, Transport::Tcp, 0u64)));
    w.sim.run_for(Duration::from_millis(500));
    let links: Vec<_> = [(nodes[0], nodes[1]), (nodes[1], nodes[0])]
        .iter()
        .map(|&(x, y)| w.net.route(x, y).expect("route")[0])
        .collect();
    let mut next = 1u64;
    // Three flaps: cut, queue traffic, briefly heal mid-backoff, cut again
    // while redials are in flight.
    for _ in 0..3 {
        for &l in &links {
            w.net.link(l).set_up(false);
        }
        for _ in 0..2 {
            a.send.push(NetRequest::NotifyReq(
                NotifyToken::new(next),
                NetMessage::new(a.addr, b.addr, Transport::Tcp, next),
            ));
            next += 1;
        }
        w.sim.run_for(Duration::from_millis(1_700));
        for &l in &links {
            w.net.link(l).set_up(true);
        }
        w.sim.run_for(Duration::from_millis(300));
    }
    w.sim.run_for(Duration::from_secs(15));
    // Status stream must alternate: no restored without a preceding lost,
    // never two losses without a heal in between.
    let statuses = a.app.on_definition(|h| h.statuses.clone());
    let mut down = false;
    for s in statuses.iter().filter(|s| s.transport == Transport::Tcp) {
        match s.status {
            ConnStatus::ConnectionLost => {
                assert!(!down, "double ConnectionLost without a heal: {statuses:?}");
                down = true;
            }
            ConnStatus::ConnectionRestored { .. } => {
                assert!(down, "ConnectionRestored without a loss: {statuses:?}");
                down = false;
            }
            ConnStatus::ConnectionDropped => panic!("budget exhausted: {statuses:?}"),
        }
    }
    assert!(!down, "the final heal must be observed");
    let got: Vec<u64> = b.app.on_definition(|h| {
        h.received
            .iter()
            .map(|m| m.try_deserialise::<u64, u64>().expect("u64"))
            .collect()
    });
    for i in 1..next {
        assert!(got.contains(&i), "message {i} must survive the flaps, got {got:?}");
    }
    let stats = a.stats.lock();
    assert!(stats.reconnects >= 1, "supervision must re-establish the channel");
    assert_eq!(stats.channels_dropped, 0);
}

/// Supervision edge case: once exponential backoff saturates at
/// `max_backoff`, every further wait stays within the deterministic
/// ±25% jitter band around the cap — and the whole schedule replays
/// byte-identically for the same seed.
#[test]
fn backoff_saturates_at_max_with_bounded_jitter() {
    let run = || {
        let (w, nodes) = world(default_link(), 2);
        w.sim.recorder().enable();
        let mut cfg = NetworkConfig::new(NetAddress::new(nodes[0], 7000));
        cfg.tcp.min_rto = Duration::from_millis(100);
        cfg.tcp.max_rto = Duration::from_millis(400);
        cfg.tcp.max_consecutive_timeouts = 2;
        cfg.tcp.syn_retries = 1;
        cfg.reconnect = Some(ReconnectConfig {
            max_retries: 100,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(400),
            probe_interval: None,
        });
        let a = stack_cfg(&w, cfg);
        let b = stack(&w, nodes[1], 7000);
        a.send.push(NetRequest::Msg(NetMessage::new(a.addr, b.addr, Transport::Tcp, 0u64)));
        w.sim.run_for(Duration::from_millis(500));
        let links: Vec<_> = [(nodes[0], nodes[1]), (nodes[1], nodes[0])]
            .iter()
            .map(|&(x, y)| w.net.route(x, y).expect("route")[0])
            .collect();
        for &l in &links {
            w.net.link(l).set_up(false);
        }
        a.send.push(NetRequest::Msg(NetMessage::new(a.addr, b.addr, Transport::Tcp, 1u64)));
        // Long outage: backoff doubles 100 -> 200 -> 400 and then sits at
        // the 400 ms cap for many rounds.
        w.sim.run_for(Duration::from_secs(20));
        for &l in &links {
            w.net.link(l).set_up(true);
        }
        w.sim.run_for(Duration::from_secs(10));
        assert!(a.stats.lock().reconnects >= 1);
        let forest = kmsg_telemetry::critical_path::SpanForest::build(
            &w.sim.recorder().events(),
        );
        let waits: Vec<u64> = forest
            .of_kind("backoff")
            .iter()
            .filter_map(|s| s.close_ns.map(|c| c - s.open_ns))
            .collect();
        assert!(
            waits.len() >= 6,
            "the outage must produce a saturated backoff schedule, got {waits:?}"
        );
        for &w_ns in &waits {
            assert!(
                w_ns <= 500_000_000,
                "backoff may never exceed max_backoff + 25% jitter, got {w_ns} ns"
            );
        }
        // Everything past the doubling ramp sits in the ±25% band around
        // the 400 ms cap.
        for &w_ns in &waits[3..] {
            assert!(
                (300_000_000..=500_000_000).contains(&w_ns),
                "saturated backoff must stay within the jitter band, got {w_ns} ns"
            );
        }
        waits
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "the jittered schedule must replay exactly");
}

/// Runtime controller swap (the DATA stack-policy surface): swapping a
/// live TCP channel onto CUBIC recycles the connection in place — no
/// ConnectionLost surfaces, traffic keeps flowing, the swap is counted
/// as a supervision episode and recorded on the flight recorder.
#[test]
fn runtime_controller_swap_recycles_the_live_channel() {
    let (w, nodes) = world(default_link(), 2);
    w.sim.recorder().enable();
    let a = stack(&w, nodes[0], 7000);
    let b = stack(&w, nodes[1], 7000);
    for i in 0..10u64 {
        a.send.push(NetRequest::Msg(NetMessage::new(a.addr, b.addr, Transport::Tcp, i)));
    }
    w.sim.run_for(Duration::from_secs(2));
    assert_eq!(b.app.on_definition(|h| h.received.len()), 10);
    let changed = a
        .network
        .on_definition(|n| n.swap_controller(b.addr.as_socket(), CcAlgorithm::Cubic));
    assert!(changed, "reno -> cubic is an effective change");
    w.sim.run_for(Duration::from_secs(1));
    {
        let stats = a.stats.lock();
        assert_eq!(stats.controller_swaps, 1);
        assert_eq!(stats.channels_opened, 2, "the recycle dials a fresh connection");
        assert_eq!(stats.channels_closed, 1);
    }
    for i in 10..20u64 {
        a.send.push(NetRequest::Msg(NetMessage::new(a.addr, b.addr, Transport::Tcp, i)));
    }
    w.sim.run_for(Duration::from_secs(2));
    let got: Vec<u64> = b.app.on_definition(|h| {
        h.received
            .iter()
            .map(|m| m.try_deserialise::<u64, u64>().expect("u64"))
            .collect()
    });
    assert_eq!(got, (0..20).collect::<Vec<_>>(), "no traffic lost across the swap");
    // The deliberate recycle must not masquerade as an outage.
    let statuses = a.app.on_definition(|h| h.statuses.clone());
    assert!(
        !statuses.iter().any(|s| s.status == ConnStatus::ConnectionLost),
        "a swap is not an outage, got {statuses:?}"
    );
    // Re-selecting the same controller is a no-op.
    let changed = a
        .network
        .on_definition(|n| n.swap_controller(b.addr.as_socket(), CcAlgorithm::Cubic));
    assert!(!changed);
    assert_eq!(a.stats.lock().controller_swaps, 1, "no-op swaps do not recycle");
    // The decision is on the flight recorder, once.
    let swaps: Vec<(&'static str, bool)> = w
        .sim
        .recorder()
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            kmsg_telemetry::EventKind::CcSwap {
                controller,
                recycled,
                ..
            } => Some((controller, recycled)),
            _ => None,
        })
        .collect();
    assert_eq!(swaps, vec![("cubic", true)]);
}

/// A controller override installed before any traffic applies on the
/// first dial: the policy changes, nothing is recycled, and the fresh
/// connection runs the selected controller (visible as BBR telemetry).
#[test]
fn controller_swap_before_dial_applies_on_first_connect() {
    let (w, nodes) = world(default_link(), 2);
    w.sim.recorder().enable();
    let a = stack(&w, nodes[0], 7000);
    let b = stack(&w, nodes[1], 7000);
    let changed = a
        .network
        .on_definition(|n| n.swap_controller(b.addr.as_socket(), CcAlgorithm::Bbr));
    assert!(changed, "a policy change with no live channel still counts");
    assert_eq!(a.stats.lock().controller_swaps, 0, "nothing to recycle yet");
    for i in 0..40u64 {
        a.send.push(NetRequest::Msg(NetMessage::new(a.addr, b.addr, Transport::Tcp, i)));
    }
    w.sim.run_for(Duration::from_secs(3));
    assert_eq!(b.app.on_definition(|h| h.received.len()), 40);
    assert_eq!(a.stats.lock().channels_opened, 1);
    let events = w.sim.recorder().events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, kmsg_telemetry::EventKind::BbrState { .. })),
        "the first dial must pick BBR up from the stack policy"
    );
    assert!(
        events.iter().any(|e| matches!(
            e.kind,
            kmsg_telemetry::EventKind::CcSwap {
                controller: "bbr",
                recycled: false,
                ..
            }
        )),
        "the pre-dial swap is recorded as not recycled"
    );
}

/// Garbage on the wire must never take the middleware down — it is
/// counted and dropped.
#[test]
fn garbage_datagrams_are_counted_not_fatal() {
    use kmsg_netsim::udp::UdpSocket;

    let (w, nodes) = world(default_link(), 2);
    let a = stack(&w, nodes[0], 7000);
    let b = stack(&w, nodes[1], 7000);
    // A rogue UDP socket spews non-frame bytes at B's middleware port.
    struct Mute;
    impl kmsg_netsim::udp::UdpEvents for Mute {
        fn on_datagram(
            &self,
            _s: &UdpSocket,
            _src: kmsg_netsim::packet::Endpoint,
            _d: Bytes,
        ) {
        }
    }
    let rogue = UdpSocket::bind(&w.net, nodes[0], 9999, Arc::new(Mute)).expect("bind");
    for junk in [&b"not a frame"[..], &[0xff; 64][..], &[0, 0, 0, 200, 1][..]] {
        rogue
            .send_to(b.addr.as_socket(), Bytes::copy_from_slice(junk))
            .expect("send");
    }
    w.sim.run_for(Duration::from_secs(1));
    assert!(b.stats.lock().decode_failures >= 3, "junk counted");
    // The stack still works afterwards.
    a.send.push(NetRequest::Msg(NetMessage::new(
        a.addr,
        b.addr,
        Transport::Udp,
        "still alive".to_string(),
    )));
    w.sim.run_for(Duration::from_secs(1));
    assert_eq!(b.app.on_definition(|h| h.received.len()), 1);
}
