//! End-to-end overlay tests: full middleware stacks (network component +
//! transports) with an [`OverlayComponent`] on top, exchanging pub/sub
//! traffic through a simulated mesh and rerouting around partitions.

use std::time::Duration;

use bytes::Bytes;
use kmsg_component::prelude::*;
use kmsg_core::prelude::*;
use kmsg_netsim::engine::Sim;
use kmsg_netsim::link::LinkConfig;
use kmsg_netsim::network::Network;
use kmsg_netsim::packet::NodeId;
use kmsg_netsim::rng::SeedSource;

/// Test subscriber: records deliveries, publishes on command.
struct SubApp {
    overlay: RequiredPort<OverlayPort>,
    commands: SelfPort<OverlayRequest>,
    deliveries: Vec<OverlayDelivery>,
}

impl SubApp {
    fn new() -> Self {
        SubApp {
            overlay: RequiredPort::new(),
            commands: SelfPort::new(),
            deliveries: Vec::new(),
        }
    }
}

impl ComponentDefinition for SubApp {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        kmsg_component::execute_ports!(self, ctx, max, [
            required overlay: OverlayPort,
            selfport commands: OverlayRequest,
        ])
    }
}

impl Require<OverlayPort> for SubApp {
    fn handle(&mut self, _ctx: &mut ComponentContext, ev: OverlayDelivery) {
        self.deliveries.push(ev);
    }
}

impl HandleSelf<OverlayRequest> for SubApp {
    fn handle_self(&mut self, _ctx: &mut ComponentContext, req: OverlayRequest) {
        self.overlay.trigger(req);
    }
}

impl RequireRef<OverlayPort> for SubApp {
    fn required_port(&mut self) -> &mut RequiredPort<OverlayPort> {
        &mut self.overlay
    }
}

struct Node {
    net_stats: StatsHandle,
    overlay: ComponentRef<OverlayComponent>,
    overlay_stats: OverlayStatsHandle,
    app: ComponentRef<SubApp>,
    send: SelfRef<OverlayRequest>,
}

struct World {
    sim: Sim,
    net: Network,
    system: ComponentSystem,
    seeds: SeedSource,
}

const PORT: u16 = 7100;

fn world(n_nodes: usize) -> (World, Vec<NodeId>) {
    let sim = Sim::new(77);
    let net = Network::new(&sim);
    let link = LinkConfig::new(10e6, Duration::from_millis(5));
    let nodes: Vec<NodeId> = (0..n_nodes).map(|i| net.add_node(format!("h{i}"))).collect();
    for i in 0..n_nodes {
        for j in 0..n_nodes {
            if i != j {
                let l = net.add_link(link.clone());
                net.set_route(nodes[i], nodes[j], vec![l]);
            }
        }
    }
    let system = ComponentSystem::simulation(&sim, SystemConfig::default());
    (
        World {
            sim,
            net,
            system,
            seeds: SeedSource::new(9),
        },
        nodes,
    )
}

/// An impatient supervision template so link death is detected within a
/// short scripted partition (mirrors the chaos benchmark tuning).
fn impatient(addr: NetAddress) -> NetworkConfig {
    let mut cfg = NetworkConfig::new(addr);
    cfg.tcp.min_rto = Duration::from_millis(100);
    cfg.tcp.max_rto = Duration::from_millis(400);
    cfg.tcp.max_consecutive_timeouts = 2;
    cfg.tcp.syn_retries = 1;
    cfg.reconnect = Some(ReconnectConfig {
        max_retries: 30,
        base_backoff: Duration::from_millis(100),
        max_backoff: Duration::from_millis(400),
        probe_interval: Some(Duration::from_secs(2)),
    });
    cfg
}

fn build_node(w: &World, node: NodeId, peers: &[NodeId], subjects: &[&str]) -> Node {
    let addr = NetAddress::new(node, PORT);
    let network = create_network(&w.system, &w.net, impatient(addr)).expect("bind");
    let net_stats = network.on_definition(|n| n.stats());
    let mut cfg = OverlayConfig::new(
        addr,
        peers.iter().map(|&p| NetAddress::new(p, PORT)).collect(),
    );
    cfg.gossip_interval = Duration::from_millis(200);
    cfg.subscriptions = subjects.iter().map(|s| (*s).to_string()).collect();
    let rng = w.seeds.stream(&format!("overlay-{}", node.index()));
    let recorder = w.sim.recorder().clone();
    let overlay = w
        .system
        .create(move || OverlayComponent::new(cfg, rng, recorder));
    let overlay_stats = overlay.on_definition(|o| o.stats());
    w.system.connect::<NetworkPort, _, _>(&network, &overlay);
    let app = w.system.create(SubApp::new);
    w.system.connect::<OverlayPort, _, _>(&overlay, &app);
    let send = app.self_ref(|h| &mut h.commands);
    w.system.start(&network);
    w.system.start(&overlay);
    w.system.start(&app);
    Node {
        net_stats,
        overlay,
        overlay_stats,
        app,
        send,
    }
}

fn publish(node: &Node, subject: &str, payload: &'static [u8]) {
    node.send.push(OverlayRequest::Publish {
        subject: subject.to_string(),
        payload: Bytes::from_static(payload),
    });
}

fn cut(w: &World, nodes: &[NodeId], i: usize, j: usize, up: bool) {
    for (x, y) in [(nodes[i], nodes[j]), (nodes[j], nodes[i])] {
        let l = w.net.route(x, y).expect("route")[0];
        w.net.link(l).set_up(up);
    }
}

/// The tentpole behaviour: when the direct link dies, the overlay
/// re-sends along a surviving multi-hop route *before* channel
/// supervision manages a reconnect, and receiver dedup keeps delivery
/// at-most-once once supervision's requeue lands after the heal.
#[test]
fn overlay_reroutes_around_partition_before_reconnect() {
    let (w, nodes) = world(3);
    let a = build_node(&w, nodes[0], &[nodes[1], nodes[2]], &[]);
    let b = build_node(&w, nodes[1], &[nodes[0], nodes[2]], &[]);
    let c = build_node(&w, nodes[2], &[nodes[0], nodes[1]], &["t"]);
    // Let gossip spread the tables and dial the channels.
    w.sim.run_for(Duration::from_secs(1));
    publish(&a, "t", b"m1");
    w.sim.run_for(Duration::from_millis(500));
    assert_eq!(
        c.app.on_definition(|h| h.deliveries.len()),
        1,
        "direct delivery before the partition"
    );
    // Partition the direct a<->c edge and publish into it.
    cut(&w, &nodes, 0, 2, false);
    publish(&a, "t", b"m2");
    w.sim.run_for(Duration::from_millis(1_500));
    // Still partitioned: m2 must have arrived via b, and no reconnect
    // can have succeeded yet (the direct link is still down).
    let seqs: Vec<u64> = c.app.on_definition(|h| h.deliveries.iter().map(|d| d.seq).collect());
    assert!(
        seqs.contains(&2),
        "m2 must be rerouted around the partition, got seqs {seqs:?}"
    );
    assert_eq!(
        a.net_stats.lock().reconnects,
        0,
        "rerouting must beat supervision's reconnect"
    );
    {
        let st = a.overlay_stats.lock();
        assert!(st.reroutes >= 1, "link death must trigger a reroute");
        assert!(st.resends >= 1, "the recent buffer must be re-sent");
    }
    assert!(
        b.net_stats.lock().forwarded >= 1,
        "the reroute must relay through b"
    );
    // Heal; supervision requeues the frames that died with the channel —
    // the receiver-side dedup window absorbs those duplicates.
    cut(&w, &nodes, 0, 2, true);
    w.sim.run_for(Duration::from_secs(6));
    let seqs: Vec<u64> = c.app.on_definition(|h| h.deliveries.iter().map(|d| d.seq).collect());
    assert_eq!(seqs.len(), 2, "at-most-once per subscriber, got {seqs:?}");
    assert!(seqs.contains(&1) && seqs.contains(&2));
    assert!(
        c.overlay_stats.lock().dup_drops >= 1,
        "the requeue race must be absorbed by dedup, not surface twice"
    );
    // No TTL exhaustion anywhere: routes were loop-free.
    for n in [&a, &b, &c] {
        assert_eq!(n.net_stats.lock().ttl_drops, 0);
    }
    // After the heal the link-state tables converge again.
    let digests: Vec<u64> = [&a, &b, &c]
        .iter()
        .map(|n| n.overlay.on_definition(|o| o.table_digest()))
        .collect();
    assert!(
        digests.windows(2).all(|d| d[0] == d[1]),
        "gossip must reconverge after the heal, got {digests:?}"
    );
    let st = a.overlay_stats.lock();
    assert!(st.link_events >= 2, "down and up must both be observed");
}

/// Subscriptions added at runtime propagate by gossip and start
/// attracting publications; unsubscribing stops them.
#[test]
fn dynamic_subscriptions_propagate_by_gossip() {
    let (w, nodes) = world(3);
    let a = build_node(&w, nodes[0], &[nodes[1], nodes[2]], &[]);
    let b = build_node(&w, nodes[1], &[nodes[0], nodes[2]], &[]);
    let c = build_node(&w, nodes[2], &[nodes[0], nodes[1]], &[]);
    w.sim.run_for(Duration::from_secs(1));
    // Nobody is subscribed: the publish goes nowhere.
    publish(&a, "news", b"x0");
    w.sim.run_for(Duration::from_millis(500));
    assert_eq!(b.app.on_definition(|h| h.deliveries.len()), 0);
    assert_eq!(c.app.on_definition(|h| h.deliveries.len()), 0);
    // b subscribes at runtime; the subscription gossips out.
    b.send.push(OverlayRequest::Subscribe {
        subject: "news".to_string(),
    });
    w.sim.run_for(Duration::from_secs(1));
    publish(&a, "news", b"x1");
    w.sim.run_for(Duration::from_millis(500));
    assert_eq!(
        b.app.on_definition(|h| h.deliveries.len()),
        1,
        "runtime subscription must attract the publish"
    );
    assert_eq!(c.app.on_definition(|h| h.deliveries.len()), 0);
    // Unsubscribe: no further deliveries.
    b.send.push(OverlayRequest::Unsubscribe {
        subject: "news".to_string(),
    });
    w.sim.run_for(Duration::from_secs(1));
    publish(&a, "news", b"x2");
    w.sim.run_for(Duration::from_millis(500));
    assert_eq!(
        b.app.on_definition(|h| h.deliveries.len()),
        1,
        "unsubscribe must stop deliveries"
    );
    assert_eq!(a.overlay_stats.lock().published, 3);
}
