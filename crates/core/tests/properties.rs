//! Property-based tests on the middleware's pure building blocks:
//! compression codec, wire framing, headers, ratio arithmetic and the
//! selection patterns. Sampled by the deterministic [`PropRunner`], so
//! any failing case replays from its seeded stream.

use bytes::Bytes;
use rand::Rng;

use kmsg_core::codec;
use kmsg_core::data::{build_pattern, max_prefix_deviation, PatternKind, Ratio};
use kmsg_core::header::{BasicHeader, NetHeader, RoutingHeader};
use kmsg_core::net::frame::{decode_frame_body, encode_frame, Compression, FrameDecoder};
use kmsg_core::prelude::*;
use kmsg_netsim::packet::NodeId;
use kmsg_netsim::rng::RngStream;
use kmsg_netsim::testutil::PropRunner;

fn gen_payload(rng: &mut RngStream) -> Vec<u8> {
    match rng.gen_range(0u32..3) {
        0 => {
            let n = rng.gen_range(0usize..4096);
            (0..n).map(|_| rng.gen()).collect()
        }
        // Highly repetitive payloads exercise the codec's match paths.
        1 => vec![rng.gen::<u8>(); rng.gen_range(1usize..4096)],
        // Structured: repeated small records.
        _ => {
            let rec: Vec<u8> = (0..rng.gen_range(1usize..32)).map(|_| rng.gen()).collect();
            let n = rng.gen_range(1usize..256);
            rec.iter().copied().cycle().take(rec.len() * n).collect()
        }
    }
}

fn gen_addr(rng: &mut RngStream) -> NetAddress {
    let addr = NetAddress::new(
        NodeId::from_index(rng.gen_range(0u32..64)),
        rng.gen::<u16>(),
    );
    if rng.gen_bool(0.5) {
        addr.with_vnode(VnodeId(rng.gen()))
    } else {
        addr
    }
}

fn gen_transport(rng: &mut RngStream) -> Transport {
    match rng.gen_range(0u32..3) {
        0 => Transport::Udp,
        1 => Transport::Tcp,
        _ => Transport::Udt,
    }
}

fn gen_header(rng: &mut RngStream) -> NetHeader {
    match rng.gen_range(0u32..3) {
        0 => NetHeader::Basic(BasicHeader::new(
            gen_addr(rng),
            gen_addr(rng),
            gen_transport(rng),
        )),
        1 => {
            let basic = BasicHeader::new(gen_addr(rng), gen_addr(rng), gen_transport(rng));
            let hops: Vec<NetAddress> =
                (0..rng.gen_range(0usize..5)).map(|_| gen_addr(rng)).collect();
            NetHeader::Routing(RoutingHeader::with_route(basic, hops))
        }
        _ => NetHeader::Data(kmsg_core::header::DataHeader::new(
            gen_addr(rng),
            gen_addr(rng),
        )),
    }
}

#[test]
fn codec_round_trips() {
    PropRunner::new("codec-round-trip").cases(96).run(gen_payload, |payload| {
        let compressed = codec::compress(payload);
        let restored = codec::decompress(&compressed, payload.len()).expect("decompress");
        assert_eq!(&restored, payload);
    });
}

#[test]
fn codec_rejects_truncation_or_differs() {
    PropRunner::new("codec-truncation-rejected").cases(96).run(
        |rng| {
            // Regenerate until the payload is long enough to truncate
            // meaningfully (still deterministic for the case's stream).
            let payload = loop {
                let p = gen_payload(rng);
                if p.len() > 4 {
                    break p;
                }
            };
            (payload, rng.gen_range(0.0f64..1.0))
        },
        |(payload, cut_frac)| {
            let compressed = codec::compress(payload);
            let cut = ((compressed.len() as f64) * cut_frac) as usize;
            if cut >= compressed.len() {
                return;
            }
            match codec::decompress(&compressed[..cut], payload.len()) {
                Err(_) => {}
                Ok(out) => {
                    assert_ne!(&out, payload, "truncated input must not round-trip");
                }
            }
        },
    );
}

#[test]
fn header_round_trips() {
    PropRunner::new("header-round-trip").cases(96).run(gen_header, |header| {
        let mut buf = bytes::BytesMut::new();
        header.serialise(&mut buf);
        let mut wire = buf.freeze();
        let out = NetHeader::deserialise(&mut wire).expect("header");
        // DATA headers normalise `selected` on the wire; everything else
        // is exact.
        assert_eq!(out.protocol(), header.protocol());
        assert_eq!(out.source(), header.source());
        assert_eq!(out.destination(), header.destination());
        assert_eq!(out.final_destination(), header.final_destination());
    });
}

#[test]
fn frame_round_trips() {
    PropRunner::new("frame-round-trip").cases(96).run(
        |rng| (gen_header(rng), gen_payload(rng), rng.gen_bool(0.5)),
        |(header, payload, compress)| {
            let msg = NetMessage::with_header(header.clone(), Bytes::from(payload.clone()));
            let compression = if *compress {
                Compression::Threshold(64)
            } else {
                Compression::Off
            };
            let frame = encode_frame(&msg, compression).expect("encode");
            let mut dec = FrameDecoder::new();
            dec.feed(&frame);
            let body = dec.next_frame().expect("ok").expect("frame");
            assert_eq!(dec.buffered(), 0);
            let out = decode_frame_body(body).expect("decode");
            let restored: Bytes = out.try_deserialise::<Bytes, Bytes>().expect("payload");
            assert_eq!(restored, Bytes::from(payload.clone()));
        },
    );
}

#[test]
fn frames_survive_arbitrary_stream_chunking() {
    PropRunner::new("frame-stream-chunking").cases(64).run(
        |rng| {
            let n = rng.gen_range(1usize..5);
            let payloads: Vec<Vec<u8>> = (0..n).map(|_| gen_payload(rng)).collect();
            (payloads, rng.gen_range(1usize..97))
        },
        |(payloads, chunk)| {
            let sim = kmsg_netsim::engine::Sim::new(1);
            let net = kmsg_netsim::network::Network::new(&sim);
            let a = NetAddress::new(net.add_node("a"), 1);
            let b = NetAddress::new(net.add_node("b"), 2);
            let mut wire = Vec::new();
            for p in payloads {
                let msg = NetMessage::new(a, b, Transport::Tcp, Bytes::from(p.clone()));
                wire.extend_from_slice(&encode_frame(&msg, Compression::Off).expect("encode"));
            }
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in wire.chunks(*chunk) {
                dec.feed(piece);
                while let Some(body) = dec.next_frame().expect("ok") {
                    let out = decode_frame_body(body).expect("decode");
                    got.push(
                        out.try_deserialise::<Bytes, Bytes>()
                            .expect("payload")
                            .to_vec(),
                    );
                }
            }
            assert_eq!(&got, payloads);
        },
    );
}

#[test]
fn ratio_conversions_are_consistent() {
    PropRunner::new("ratio-conversion-consistency").cases(96).run(
        |rng| rng.gen_range(-1.0f64..=1.0),
        |&signed| {
            let r = Ratio::from_signed(signed);
            assert!((r.prob_udt() - (signed + 1.0) / 2.0).abs() < 1e-12);
            let back = Ratio::from_prob_udt(r.prob_udt());
            assert!((back.signed() - signed).abs() < 1e-12);
            // Fraction approximates the probability within the resolution
            // bound.
            let f = r.fraction(100);
            assert!(
                (f.prob_udt() - r.prob_udt()).abs() <= 0.5 / 100.0 + 1e-9,
                "fraction {:?} too far from prob {}",
                f,
                r.prob_udt()
            );
        },
    );
}

#[test]
fn patterns_hit_ratio_exactly_and_bound_deviation() {
    PropRunner::new("pattern-ratio-exactness").cases(96).run(
        |rng| rng.gen_range(0.0f64..=1.0),
        |&prob| {
            let r = Ratio::from_prob_udt(prob);
            let f = r.fraction(100);
            for kind in [PatternKind::P, PatternKind::PPlusOne, PatternKind::MinimalRest] {
                let pattern = build_pattern(&f, kind);
                assert!(!pattern.is_empty());
                let udt = pattern.iter().filter(|&&t| t == Transport::Udt).count() as f64;
                let frac = udt / pattern.len() as f64;
                assert!(
                    (frac - f.prob_udt()).abs() < 1e-9,
                    "{kind:?}: full pattern must hit the fraction exactly"
                );
                // Prefix deviation is trivially bounded by 1; the pattern
                // must always do at least as well as a solid run of the
                // majority followed by the minority (the worst reasonable
                // layout).
                let dev = max_prefix_deviation(&pattern, f.prob_udt());
                assert!(dev <= 1.0);
            }
        },
    );
}
