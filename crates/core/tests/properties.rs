//! Property-based tests on the middleware's pure building blocks:
//! compression codec, wire framing, headers, ratio arithmetic and the
//! selection patterns.

use bytes::Bytes;
use proptest::prelude::*;

use kmsg_core::codec;
use kmsg_core::data::{build_pattern, max_prefix_deviation, PatternKind, Ratio};
use kmsg_core::header::{BasicHeader, NetHeader, RoutingHeader};
use kmsg_core::net::frame::{decode_frame_body, encode_frame, Compression, FrameDecoder};
use kmsg_core::prelude::*;
use kmsg_netsim::packet::NodeId;

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..4096),
        // Highly repetitive payloads exercise the codec's match paths.
        (any::<u8>(), 1usize..4096).prop_map(|(b, n)| vec![b; n]),
        // Structured: repeated small records.
        (proptest::collection::vec(any::<u8>(), 1..32), 1usize..256)
            .prop_map(|(rec, n)| rec.iter().copied().cycle().take(rec.len() * n).collect()),
    ]
}

fn arb_addr() -> impl Strategy<Value = NetAddress> {
    (0u32..64, any::<u16>(), proptest::option::of(any::<u64>())).prop_map(|(n, p, v)| {
        let addr = NetAddress::new(NodeId::from_index(n), p);
        match v {
            Some(id) => addr.with_vnode(VnodeId(id)),
            None => addr,
        }
    })
}

fn arb_transport() -> impl Strategy<Value = Transport> {
    prop_oneof![
        Just(Transport::Udp),
        Just(Transport::Tcp),
        Just(Transport::Udt),
    ]
}

fn arb_header() -> impl Strategy<Value = NetHeader> {
    let basic = (arb_addr(), arb_addr(), arb_transport())
        .prop_map(|(s, d, t)| NetHeader::Basic(BasicHeader::new(s, d, t)));
    let routing = (
        arb_addr(),
        arb_addr(),
        arb_transport(),
        proptest::collection::vec(arb_addr(), 0..5),
    )
        .prop_map(|(s, d, t, hops)| {
            NetHeader::Routing(RoutingHeader::with_route(BasicHeader::new(s, d, t), hops))
        });
    let data = (arb_addr(), arb_addr()).prop_map(|(s, d)| {
        NetHeader::Data(kmsg_core::header::DataHeader::new(s, d))
    });
    prop_oneof![basic, routing, data]
}

proptest! {
    #[test]
    fn codec_round_trips(payload in arb_payload()) {
        let compressed = codec::compress(&payload);
        let restored = codec::decompress(&compressed, payload.len()).expect("decompress");
        prop_assert_eq!(restored, payload);
    }

    #[test]
    fn codec_rejects_truncation_or_differs(payload in arb_payload(), cut_frac in 0.0f64..1.0) {
        prop_assume!(payload.len() > 4);
        let compressed = codec::compress(&payload);
        let cut = ((compressed.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < compressed.len());
        match codec::decompress(&compressed[..cut], payload.len()) {
            Err(_) => {}
            Ok(out) => prop_assert_ne!(out, payload, "truncated input must not round-trip"),
        }
    }

    #[test]
    fn header_round_trips(header in arb_header()) {
        let mut buf = bytes::BytesMut::new();
        header.serialise(&mut buf);
        let mut wire = buf.freeze();
        let out = NetHeader::deserialise(&mut wire).expect("header");
        // DATA headers normalise `selected` on the wire; everything else is
        // exact.
        prop_assert_eq!(out.protocol(), header.protocol());
        prop_assert_eq!(out.source(), header.source());
        prop_assert_eq!(out.destination(), header.destination());
        prop_assert_eq!(out.final_destination(), header.final_destination());
    }

    #[test]
    fn frame_round_trips(header in arb_header(), payload in arb_payload(),
                         compress in any::<bool>()) {
        let msg = NetMessage::with_header(header, Bytes::from(payload.clone()));
        let compression = if compress {
            Compression::Threshold(64)
        } else {
            Compression::Off
        };
        let frame = encode_frame(&msg, compression).expect("encode");
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        let body = dec.next_frame().expect("ok").expect("frame");
        prop_assert_eq!(dec.buffered(), 0);
        let out = decode_frame_body(body).expect("decode");
        let restored: Bytes = out.try_deserialise::<Bytes, Bytes>().expect("payload");
        prop_assert_eq!(restored, Bytes::from(payload));
    }

    #[test]
    fn frames_survive_arbitrary_stream_chunking(
        payloads in proptest::collection::vec(arb_payload(), 1..5),
        chunk in 1usize..97,
    ) {
        let sim = kmsg_netsim::engine::Sim::new(1);
        let net = kmsg_netsim::network::Network::new(&sim);
        let a = NetAddress::new(net.add_node("a"), 1);
        let b = NetAddress::new(net.add_node("b"), 2);
        let mut wire = Vec::new();
        for p in &payloads {
            let msg = NetMessage::new(a, b, Transport::Tcp, Bytes::from(p.clone()));
            wire.extend_from_slice(&encode_frame(&msg, Compression::Off).expect("encode"));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            dec.feed(piece);
            while let Some(body) = dec.next_frame().expect("ok") {
                let out = decode_frame_body(body).expect("decode");
                got.push(out.try_deserialise::<Bytes, Bytes>().expect("payload").to_vec());
            }
        }
        prop_assert_eq!(got, payloads);
    }

    #[test]
    fn ratio_conversions_are_consistent(signed in -1.0f64..=1.0) {
        let r = Ratio::from_signed(signed);
        prop_assert!((r.prob_udt() - (signed + 1.0) / 2.0).abs() < 1e-12);
        let back = Ratio::from_prob_udt(r.prob_udt());
        prop_assert!((back.signed() - signed).abs() < 1e-12);
        // Fraction approximates the probability within the resolution bound.
        let f = r.fraction(100);
        prop_assert!((f.prob_udt() - r.prob_udt()).abs() <= 0.5 / 100.0 + 1e-9,
            "fraction {:?} too far from prob {}", f, r.prob_udt());
    }

    #[test]
    fn patterns_hit_ratio_exactly_and_bound_deviation(prob in 0.0f64..=1.0) {
        let r = Ratio::from_prob_udt(prob);
        let f = r.fraction(100);
        for kind in [PatternKind::P, PatternKind::PPlusOne, PatternKind::MinimalRest] {
            let pattern = build_pattern(&f, kind);
            prop_assert!(!pattern.is_empty());
            let udt = pattern.iter().filter(|&&t| t == Transport::Udt).count() as f64;
            let frac = udt / pattern.len() as f64;
            prop_assert!((frac - f.prob_udt()).abs() < 1e-9,
                "{kind:?}: full pattern must hit the fraction exactly");
            // Prefix deviation is trivially bounded by 1; the pattern must
            // always do at least as well as a solid run of the majority
            // followed by the minority (the worst reasonable layout).
            let dev = max_prefix_deviation(&pattern, f.prob_udt());
            prop_assert!(dev <= 1.0);
        }
    }

}
