//! Transport protocol selection, per message.

use kmsg_netsim::packet::WireProtocol;

/// The transport protocol a message should travel over — chosen **per
/// message** at runtime, the paper's central mechanism.
///
/// `Data` is the pseudo-protocol of §IV: the
/// [`DataNetwork`](crate::data::DataNetworkComponent) interceptor replaces
/// it transparently with either `Tcp` or `Udt` according to the current
/// protocol selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// User Datagram Protocol: unreliable, unordered, lightweight.
    Udp,
    /// Transmission Control Protocol: reliable, ordered, window-based
    /// congestion control.
    Tcp,
    /// UDP-based Data Transfer protocol: reliable, ordered, rate-based
    /// congestion control (strong on high bandwidth-delay-product paths).
    Udt,
    /// The adaptive meta-protocol: resolved to `Tcp` or `Udt` by the data
    /// interceptor's protocol selection policy.
    Data,
}

impl Transport {
    /// The wire protocol this transport maps to, or `None` for the
    /// unresolved `Data` pseudo-protocol.
    #[must_use]
    pub fn wire_protocol(self) -> Option<WireProtocol> {
        match self {
            Transport::Udp => Some(WireProtocol::Udp),
            Transport::Tcp => Some(WireProtocol::Tcp),
            Transport::Udt => Some(WireProtocol::Udt),
            Transport::Data => None,
        }
    }

    /// Whether this transport gives reliable, ordered (stream) delivery.
    #[must_use]
    pub fn is_reliable(self) -> bool {
        matches!(self, Transport::Tcp | Transport::Udt | Transport::Data)
    }

    /// Stable snake_case label for telemetry output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Transport::Udp => "udp",
            Transport::Tcp => "tcp",
            Transport::Udt => "udt",
            Transport::Data => "data",
        }
    }

    /// Compact wire encoding.
    #[must_use]
    pub fn to_byte(self) -> u8 {
        match self {
            Transport::Udp => 0,
            Transport::Tcp => 1,
            Transport::Udt => 2,
            Transport::Data => 3,
        }
    }

    /// Decodes [`Transport::to_byte`].
    #[must_use]
    pub fn from_byte(b: u8) -> Option<Transport> {
        match b {
            0 => Some(Transport::Udp),
            1 => Some(Transport::Tcp),
            2 => Some(Transport::Udt),
            3 => Some(Transport::Data),
            _ => None,
        }
    }
}

impl std::fmt::Display for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Transport::Udp => "UDP",
            Transport::Tcp => "TCP",
            Transport::Udt => "UDT",
            Transport::Data => "DATA",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_round_trip() {
        for t in [Transport::Udp, Transport::Tcp, Transport::Udt, Transport::Data] {
            assert_eq!(Transport::from_byte(t.to_byte()), Some(t));
        }
        assert_eq!(Transport::from_byte(99), None);
    }

    #[test]
    fn wire_protocol_mapping() {
        assert_eq!(Transport::Udp.wire_protocol(), Some(WireProtocol::Udp));
        assert_eq!(Transport::Tcp.wire_protocol(), Some(WireProtocol::Tcp));
        assert_eq!(Transport::Udt.wire_protocol(), Some(WireProtocol::Udt));
        assert_eq!(Transport::Data.wire_protocol(), None);
    }

    #[test]
    fn reliability_classes() {
        assert!(!Transport::Udp.is_reliable());
        assert!(Transport::Tcp.is_reliable());
        assert!(Transport::Udt.is_reliable());
        assert!(Transport::Data.is_reliable());
    }

    #[test]
    fn display_names() {
        assert_eq!(Transport::Data.to_string(), "DATA");
        assert_eq!(Transport::Tcp.to_string(), "TCP");
    }
}
