//! Self-healing pub/sub routing overlay (ROADMAP item 4).
//!
//! Sits on top of a [`NetworkComponent`](crate::net::NetworkComponent) and
//! turns the middleware's point-to-point channels into a subject-based
//! publish/subscribe mesh in the lattice style:
//!
//! * **Subjects.** Applications publish `(subject, payload)` pairs on the
//!   [`OverlayPort`]; every node subscribed to the subject receives one
//!   [`OverlayDelivery`]. Subscriptions propagate with the gossip digests,
//!   so publishers learn remote interest without a broker.
//! * **Gossip-maintained link state.** Each node owns one versioned row of
//!   the link-state table (its set of live direct neighbours) and one row
//!   of the subscription table. Rows spread by flooding on change plus a
//!   periodic seeded anti-entropy round to one random live neighbour;
//!   higher versions win on merge, so the tables converge without any
//!   coordination.
//! * **Liveness from channel supervision.** The overlay does not probe: it
//!   listens to the supervised channels' [`ConnStatus`] transitions on its
//!   required network port. `ConnectionLost`/`ConnectionDropped` mark the
//!   neighbour link down, `ConnectionRestored` marks it up — the overlay
//!   reuses the transport-level failure detector it already pays for.
//! * **Source-routed forwarding.** Routes are computed per subscriber by a
//!   deterministic breadth-first search over the link-state graph and
//!   expressed as [`RoutingHeader`] relay chains, bounded by
//!   [`OverlayConfig::hop_limit`] (and by the header TTL at the network
//!   layer, so even a stale route cannot loop).
//! * **Reroute before reconnect.** When a direct link dies, the overlay
//!   immediately recomputes routes around the dead edge and re-sends its
//!   bounded buffer of recent publications along the surviving paths —
//!   while channel supervision is still backing off towards a redial. When
//!   the link heals, the shortest path is the direct edge again and
//!   traffic rejoins it. Receiver-side per-subscriber dedup (a bounded
//!   window of seen message ids) keeps delivery at-most-once under the
//!   reroute + supervision-requeue race.
//!
//! Every decision is recorded for the flight recorder (`Overlay` and
//! `Gossip` events, `reroute`/`route_compute` spans), which is what the
//! `OverlayOracle` in `kmsg-oracle` and the `reroute` benchmark consume.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;
use rand::Rng;

use kmsg_component::prelude::*;
use kmsg_netsim::packet::NodeId;
use kmsg_netsim::rng::RngStream;
use kmsg_telemetry::{EventKind, Recorder, SpanKind};

use crate::address::{Address, NetAddress};
use crate::header::{BasicHeader, NetHeader, RoutingHeader};
use crate::msg::{ConnStatus, NetIndication, NetMessage, NetRequest, NetworkPort};
use crate::ser::{
    get_bytes, get_string, put_bytes, put_string, Deserialiser, SerError, SerId, Serialisable,
};
use crate::transport::Transport;

/// Serialiser id of [`OverlayWire`].
pub const OVERLAY_SER_ID: SerId = SerId(110);

/// FNV-1a hash of a subject, used as the event correlation key.
#[must_use]
pub fn subject_hash(subject: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in subject.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Packs a node path into one `u64` for the flight recorder: one node
/// index + 1 per byte, first hop in the low byte. Paths longer than eight
/// nodes (or with indices ≥ 255) encode as `u64::MAX` ("unencodable") —
/// the oracle then skips the loop check for that record.
#[must_use]
pub fn pack_path(path: &[u32]) -> u64 {
    if path.len() > 8 || path.iter().any(|&n| n >= 255) {
        return u64::MAX;
    }
    let mut packed = 0u64;
    for (i, &n) in path.iter().enumerate() {
        packed |= u64::from(n + 1) << (8 * i);
    }
    packed
}

/// Unpacks a [`pack_path`] value back into node indices. Returns `None`
/// for the `u64::MAX` sentinel.
#[must_use]
pub fn unpack_path(packed: u64) -> Option<Vec<u32>> {
    if packed == u64::MAX {
        return None;
    }
    let mut path = Vec::new();
    for i in 0..8 {
        let b = (packed >> (8 * i)) & 0xff;
        if b == 0 {
            break;
        }
        path.push(u32::try_from(b - 1).expect("byte"));
    }
    Some(path)
}

// --- port --------------------------------------------------------------

/// Application requests on the overlay.
#[derive(Debug, Clone)]
pub enum OverlayRequest {
    /// Publish `payload` to every subscriber of `subject`.
    Publish {
        /// The subject name.
        subject: String,
        /// Opaque payload bytes.
        payload: Bytes,
    },
    /// Subscribe this node to `subject` (propagates by gossip).
    Subscribe {
        /// The subject name.
        subject: String,
    },
    /// Drop this node's subscription to `subject`.
    Unsubscribe {
        /// The subject name.
        subject: String,
    },
}

/// One message delivered to a local subscriber.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlayDelivery {
    /// The subject it was published under.
    pub subject: String,
    /// Node index of the publisher.
    pub origin: u32,
    /// The publisher's sequence number (per-origin, starting at 1).
    pub seq: u64,
    /// The published bytes.
    pub payload: Bytes,
}

impl OverlayDelivery {
    /// The overlay message id: `origin << 32 | seq`.
    #[must_use]
    pub fn id(&self) -> u64 {
        (u64::from(self.origin) << 32) | (self.seq & 0xffff_ffff)
    }
}

/// The pub/sub port: applications require it, [`OverlayComponent`]
/// provides it.
#[derive(Debug)]
pub struct OverlayPort;

impl Port for OverlayPort {
    type Request = OverlayRequest;
    type Indication = OverlayDelivery;
}

// --- configuration -----------------------------------------------------

/// Configuration of an [`OverlayComponent`].
#[derive(Debug, Clone)]
pub struct OverlayConfig {
    /// This node's overlay address — must equal the address of the
    /// [`NetworkComponent`](crate::net::NetworkComponent) below it.
    pub addr: NetAddress,
    /// Direct overlay neighbours (the mesh edges of this node). All
    /// neighbours are assumed live until channel supervision says
    /// otherwise.
    pub peers: Vec<NetAddress>,
    /// Transport for overlay traffic (data and gossip).
    pub transport: Transport,
    /// Period of the anti-entropy gossip round (one random live
    /// neighbour per round).
    pub gossip_interval: Duration,
    /// Maximum relay hops of a computed route; also stamped into the
    /// routing header TTL as the network layer's loop backstop.
    pub hop_limit: u8,
    /// Receiver-side dedup window: how many recently seen message ids
    /// each node remembers per-subscriber at-most-once delivery over.
    pub dedup_window: usize,
    /// How many recent publications the node keeps for re-sending along
    /// new routes when a neighbour link dies.
    pub resend_buffer: usize,
    /// Subjects this node subscribes to from the start.
    pub subscriptions: Vec<String>,
}

impl OverlayConfig {
    /// A configuration for `addr` with direct neighbours `peers` and
    /// defaults everywhere else.
    #[must_use]
    pub fn new(addr: NetAddress, peers: Vec<NetAddress>) -> Self {
        OverlayConfig {
            addr,
            peers,
            transport: Transport::Tcp,
            gossip_interval: Duration::from_millis(500),
            hop_limit: 8,
            dedup_window: 1024,
            resend_buffer: 32,
            subscriptions: Vec::new(),
        }
    }
}

// --- wire format -------------------------------------------------------

/// One versioned link-state row on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkEntry {
    /// The node that owns (and solely writes) this row.
    pub owner: u32,
    /// Row version; higher wins on merge.
    pub version: u64,
    /// Neighbours the owner currently considers live.
    pub up: Vec<u32>,
}

/// One versioned subscription row on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubEntry {
    /// The subscribing node.
    pub node: u32,
    /// Row version; higher wins on merge.
    pub version: u64,
    /// Subjects the node is subscribed to.
    pub subjects: Vec<String>,
}

/// Overlay wire messages, carried as payloads of ordinary
/// [`NetMessage`]s.
#[derive(Debug, Clone, PartialEq)]
pub enum OverlayWire {
    /// A publication, source-routed to one subscriber.
    Data {
        /// Publisher node index.
        origin: u32,
        /// Per-origin sequence number.
        seq: u64,
        /// Subject name.
        subject: String,
        /// Published bytes.
        payload: Bytes,
    },
    /// A gossip digest: the sender's full view of both tables.
    Digest {
        /// Sending node index.
        from: u32,
        /// All link-state rows the sender knows.
        links: Vec<LinkEntry>,
        /// All subscription rows the sender knows.
        subs: Vec<SubEntry>,
    },
}

impl Serialisable for OverlayWire {
    fn ser_id(&self) -> SerId {
        OVERLAY_SER_ID
    }

    fn size_hint(&self) -> Option<usize> {
        match self {
            OverlayWire::Data {
                subject, payload, ..
            } => Some(1 + 4 + 8 + 8 + subject.len() + 8 + payload.len()),
            OverlayWire::Digest { links, subs, .. } => Some(
                1 + 4
                    + 8
                    + links.iter().map(|l| 16 + 4 * l.up.len()).sum::<usize>()
                    + 8
                    + subs
                        .iter()
                        .map(|s| 16 + s.subjects.iter().map(|x| 8 + x.len()).sum::<usize>())
                        .sum::<usize>(),
            ),
        }
    }

    fn serialise(&self, buf: &mut BytesMut) -> Result<(), SerError> {
        match self {
            OverlayWire::Data {
                origin,
                seq,
                subject,
                payload,
            } => {
                buf.put_u8(0);
                buf.put_u32(*origin);
                buf.put_u64(*seq);
                put_string(buf, subject);
                put_bytes(buf, payload);
            }
            OverlayWire::Digest { from, links, subs } => {
                buf.put_u8(1);
                buf.put_u32(*from);
                buf.put_u32(u32::try_from(links.len()).expect("links"));
                for l in links {
                    buf.put_u32(l.owner);
                    buf.put_u64(l.version);
                    buf.put_u32(u32::try_from(l.up.len()).expect("up"));
                    for n in &l.up {
                        buf.put_u32(*n);
                    }
                }
                buf.put_u32(u32::try_from(subs.len()).expect("subs"));
                for s in subs {
                    buf.put_u32(s.node);
                    buf.put_u64(s.version);
                    buf.put_u32(u32::try_from(s.subjects.len()).expect("subjects"));
                    for subj in &s.subjects {
                        put_string(buf, subj);
                    }
                }
            }
        }
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl Deserialiser<OverlayWire> for OverlayWire {
    const SER_ID: SerId = OVERLAY_SER_ID;

    fn deserialise(buf: &mut Bytes) -> Result<OverlayWire, SerError> {
        const CTX: &str = "OverlayWire";
        if buf.remaining() < 1 {
            return Err(SerError::Truncated { context: CTX });
        }
        match buf.get_u8() {
            0 => {
                if buf.remaining() < 12 {
                    return Err(SerError::Truncated { context: CTX });
                }
                let origin = buf.get_u32();
                let seq = buf.get_u64();
                let subject = get_string(buf, CTX)?;
                let payload = get_bytes(buf, CTX)?;
                Ok(OverlayWire::Data {
                    origin,
                    seq,
                    subject,
                    payload,
                })
            }
            1 => {
                if buf.remaining() < 8 {
                    return Err(SerError::Truncated { context: CTX });
                }
                let from = buf.get_u32();
                let n_links = buf.get_u32() as usize;
                let mut links = Vec::with_capacity(n_links.min(1024));
                for _ in 0..n_links {
                    if buf.remaining() < 16 {
                        return Err(SerError::Truncated { context: CTX });
                    }
                    let owner = buf.get_u32();
                    let version = buf.get_u64();
                    let n_up = buf.get_u32() as usize;
                    if buf.remaining() < 4 * n_up {
                        return Err(SerError::Truncated { context: CTX });
                    }
                    let up = (0..n_up).map(|_| buf.get_u32()).collect();
                    links.push(LinkEntry { owner, version, up });
                }
                if buf.remaining() < 4 {
                    return Err(SerError::Truncated { context: CTX });
                }
                let n_subs = buf.get_u32() as usize;
                let mut subs = Vec::with_capacity(n_subs.min(1024));
                for _ in 0..n_subs {
                    if buf.remaining() < 16 {
                        return Err(SerError::Truncated { context: CTX });
                    }
                    let node = buf.get_u32();
                    let version = buf.get_u64();
                    let n_subj = buf.get_u32() as usize;
                    let mut subjects = Vec::with_capacity(n_subj.min(1024));
                    for _ in 0..n_subj {
                        subjects.push(get_string(buf, CTX)?);
                    }
                    subs.push(SubEntry {
                        node,
                        version,
                        subjects,
                    });
                }
                Ok(OverlayWire::Digest { from, links, subs })
            }
            _ => Err(SerError::Invalid { context: CTX }),
        }
    }
}

// --- stats -------------------------------------------------------------

/// Counters exposed by the overlay (shared handle, updated inside the
/// component).
#[derive(Debug, Clone, Default)]
pub struct OverlayStats {
    /// Publications issued by the local application.
    pub published: u64,
    /// Messages delivered to the local subscriber.
    pub delivered: u64,
    /// Duplicates absorbed by the receive-side dedup window.
    pub dup_drops: u64,
    /// Data that arrived for a subject this node is not subscribed to
    /// (stale remote subscription table).
    pub stale_drops: u64,
    /// Publications (or re-sends) that found no route to a subscriber.
    pub no_route: u64,
    /// Gossip digests sent (floods + anti-entropy rounds).
    pub gossip_sent: u64,
    /// Route recomputations triggered by a neighbour link going down.
    pub reroutes: u64,
    /// Recent publications re-sent along a rerouted path.
    pub resends: u64,
    /// Neighbour link up/down transitions observed.
    pub link_events: u64,
}

/// Shared handle onto an overlay's [`OverlayStats`].
pub type OverlayStatsHandle = Arc<Mutex<OverlayStats>>;

// --- component ---------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct LinkRow {
    version: u64,
    up: BTreeSet<u32>,
}

#[derive(Debug, Clone, Default)]
struct SubRow {
    version: u64,
    subjects: BTreeSet<String>,
}

#[derive(Debug, Clone)]
struct RecentMsg {
    id: u64,
    subject: String,
    payload: Bytes,
    /// Last route used per subscriber: target node → full node path.
    routes: BTreeMap<u32, Vec<u32>>,
}

/// The overlay component: provides [`OverlayPort`] to the application,
/// requires [`NetworkPort`] from the middleware stack below.
pub struct OverlayComponent {
    /// Application-facing pub/sub port.
    pub app_port: ProvidedPort<OverlayPort>,
    /// Network-facing port.
    pub net_port: RequiredPort<NetworkPort>,
    cfg: OverlayConfig,
    me: u32,
    port: u16,
    peer_nodes: BTreeSet<u32>,
    /// Direct neighbours currently live (local supervision view).
    live: BTreeSet<u32>,
    links: BTreeMap<u32, LinkRow>,
    subs: BTreeMap<u32, SubRow>,
    seq: u64,
    seen: BTreeSet<u64>,
    seen_order: VecDeque<u64>,
    recent: VecDeque<RecentMsg>,
    stats: OverlayStatsHandle,
    rng: RngStream,
    recorder: Recorder,
    gossip_timer: Option<TimeoutId>,
}

impl std::fmt::Debug for OverlayComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverlayComponent")
            .field("me", &self.me)
            .field("live", &self.live)
            .field("links", &self.links.len())
            .field("subs", &self.subs.len())
            .finish()
    }
}

impl OverlayComponent {
    /// Builds the component. `rng` seeds the anti-entropy neighbour
    /// choice (determinism: derive it from the run's
    /// [`SeedSource`](kmsg_netsim::rng::SeedSource)); `recorder` is where
    /// overlay decisions are recorded — pass a clone of
    /// [`Sim::recorder`](kmsg_netsim::engine::Sim::recorder).
    #[must_use]
    pub fn new(cfg: OverlayConfig, rng: RngStream, recorder: Recorder) -> Self {
        let me = cfg.addr.as_socket().node.index();
        let port = cfg.addr.port();
        let peer_nodes: BTreeSet<u32> = cfg
            .peers
            .iter()
            .map(|p| p.as_socket().node.index())
            .collect();
        let mut links = BTreeMap::new();
        links.insert(
            me,
            LinkRow {
                version: 1,
                up: peer_nodes.clone(),
            },
        );
        let mut subs = BTreeMap::new();
        subs.insert(
            me,
            SubRow {
                version: 1,
                subjects: cfg.subscriptions.iter().cloned().collect(),
            },
        );
        OverlayComponent {
            app_port: ProvidedPort::new(),
            net_port: RequiredPort::new(),
            me,
            port,
            live: peer_nodes.clone(),
            peer_nodes,
            links,
            subs,
            seq: 0,
            seen: BTreeSet::new(),
            seen_order: VecDeque::new(),
            recent: VecDeque::new(),
            stats: Arc::new(Mutex::new(OverlayStats::default())),
            rng,
            recorder,
            gossip_timer: None,
            cfg,
        }
    }

    /// The shared stats handle.
    #[must_use]
    pub fn stats(&self) -> OverlayStatsHandle {
        self.stats.clone()
    }

    /// A deterministic digest of both tables. Two nodes whose digests are
    /// equal hold identical link-state and subscription views — the
    /// gossip-convergence check of the `OverlayOracle`.
    #[must_use]
    pub fn table_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (owner, row) in &self.links {
            mix(u64::from(*owner));
            mix(row.version);
            for n in &row.up {
                mix(u64::from(*n));
            }
        }
        for (node, row) in &self.subs {
            mix(u64::from(*node));
            mix(row.version);
            for s in &row.subjects {
                mix(subject_hash(s));
            }
        }
        h
    }

    fn addr_of(&self, node: u32) -> NetAddress {
        NetAddress::new(NodeId::from_index(node), self.port)
    }

    fn record(&self, time_ns: u64, kind: EventKind) {
        if self.recorder.is_enabled() {
            self.recorder.record(time_ns, kind);
        }
    }

    /// Sends `wire` along the node path `path` (`path[0] == me`,
    /// `path.last()` is the destination) as a routing-header relay chain.
    fn send_along(&mut self, path: &[u32], wire: OverlayWire) {
        debug_assert!(path.len() >= 2 && path[0] == self.me);
        let dst = self.addr_of(path[path.len() - 1]);
        let hops: Vec<NetAddress> = path[1..path.len() - 1]
            .iter()
            .map(|&n| self.addr_of(n))
            .collect();
        let mut rh = RoutingHeader::with_route(
            BasicHeader::new(self.cfg.addr, dst, self.cfg.transport),
            hops,
        );
        rh.ttl = self.cfg.hop_limit;
        self.net_port
            .trigger(NetRequest::Msg(NetMessage::with_header(
                NetHeader::Routing(rh),
                wire,
            )));
    }

    fn digest(&self) -> OverlayWire {
        OverlayWire::Digest {
            from: self.me,
            links: self
                .links
                .iter()
                .map(|(owner, row)| LinkEntry {
                    owner: *owner,
                    version: row.version,
                    up: row.up.iter().copied().collect(),
                })
                .collect(),
            subs: self
                .subs
                .iter()
                .map(|(node, row)| SubEntry {
                    node: *node,
                    version: row.version,
                    subjects: row.subjects.iter().cloned().collect(),
                })
                .collect(),
        }
    }

    /// Floods the current digest to every live neighbour except
    /// `exclude` (the neighbour it just came from).
    fn flood_digest(&mut self, time_ns: u64, exclude: Option<u32>) {
        let digest = self.digest();
        let entries = match &digest {
            OverlayWire::Digest { links, subs, .. } => (links.len() + subs.len()) as u64,
            OverlayWire::Data { .. } => unreachable!("digest is a digest"),
        };
        let targets: Vec<u32> = self
            .live
            .iter()
            .copied()
            .filter(|n| Some(*n) != exclude)
            .collect();
        for n in targets {
            self.record(
                time_ns,
                EventKind::Gossip {
                    node: u64::from(self.me),
                    peer: u64::from(n),
                    entries,
                },
            );
            self.stats.lock().gossip_sent += 1;
            self.send_along(&[self.me, n], digest.clone());
        }
    }

    /// Merges a received digest; returns whether anything changed. Rows
    /// we own are never overwritten (only this node bumps them).
    fn merge_digest(&mut self, links: Vec<LinkEntry>, subs: Vec<SubEntry>) -> bool {
        let mut changed = false;
        for l in links {
            if l.owner == self.me {
                continue;
            }
            let row = self.links.entry(l.owner).or_default();
            if l.version > row.version {
                row.version = l.version;
                row.up = l.up.into_iter().collect();
                changed = true;
            }
        }
        for s in subs {
            let row = self.subs.entry(s.node).or_default();
            if s.version > row.version {
                row.version = s.version;
                row.subjects = s.subjects.into_iter().collect();
                changed = true;
            }
        }
        changed
    }

    /// Whether the directed edge `u -> v` is usable for routing: `u`'s
    /// row must claim `v` up, and `v`'s row — if we have one — must agree
    /// on the reverse edge. The symmetric check lets gossiped rows
    /// override a stale local view: a node that never saw a `ConnStatus`
    /// itself (it accepted the channel rather than dialling it) still
    /// routes around a link its neighbour reported dead.
    fn edge_usable(&self, u: u32, v: u32) -> bool {
        let forward = self.links.get(&u).is_some_and(|row| row.up.contains(&v));
        let back = self.links.get(&v).is_none_or(|row| row.up.contains(&u));
        forward && back
    }

    /// Whether every edge of a stored node path is still usable.
    fn path_usable(&self, path: &[u32]) -> bool {
        path.windows(2).all(|w| self.edge_usable(w[0], w[1]))
    }

    /// Deterministic breadth-first search over the link-state graph from
    /// this node to `target`, following [`Self::edge_usable`] edges.
    /// Returns the full node path (including both endpoints), bounded so
    /// the relay chain stays within `hop_limit`.
    fn route_to(&self, target: u32) -> Option<Vec<u32>> {
        if target == self.me {
            return Some(vec![self.me]);
        }
        let mut prev: BTreeMap<u32, u32> = BTreeMap::new();
        let mut queue: VecDeque<(u32, u8)> = VecDeque::new();
        queue.push_back((self.me, 0));
        while let Some((node, depth)) = queue.pop_front() {
            if depth >= self.cfg.hop_limit {
                continue;
            }
            let neighbours: Vec<u32> = self
                .links
                .get(&node)
                .map(|row| row.up.iter().copied().collect())
                .unwrap_or_default();
            for n in neighbours {
                if n == self.me || prev.contains_key(&n) || !self.edge_usable(node, n) {
                    continue;
                }
                prev.insert(n, node);
                if n == target {
                    let mut path = vec![target];
                    let mut cur = target;
                    while cur != self.me {
                        cur = prev[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back((n, depth + 1));
            }
        }
        None
    }

    fn insert_seen(&mut self, id: u64) {
        if self.seen.insert(id) {
            self.seen_order.push_back(id);
            while self.seen_order.len() > self.cfg.dedup_window {
                if let Some(old) = self.seen_order.pop_front() {
                    self.seen.remove(&old);
                }
            }
        }
    }

    fn deliver_local(&mut self, time_ns: u64, delivery: OverlayDelivery) {
        let id = delivery.id();
        self.insert_seen(id);
        self.record(
            time_ns,
            EventKind::Overlay {
                action: "deliver",
                msg: id,
                node: u64::from(self.me),
                aux: subject_hash(&delivery.subject),
            },
        );
        self.stats.lock().delivered += 1;
        self.app_port.trigger(delivery);
    }

    fn my_subjects(&self) -> &BTreeSet<String> {
        &self.subs[&self.me]
            .subjects
    }

    fn handle_publish(&mut self, time_ns: u64, subject: String, payload: Bytes) {
        self.seq += 1;
        let seq = self.seq;
        let id = (u64::from(self.me) << 32) | (seq & 0xffff_ffff);
        self.record(
            time_ns,
            EventKind::Overlay {
                action: "publish",
                msg: id,
                node: u64::from(self.me),
                aux: subject_hash(&subject),
            },
        );
        self.stats.lock().published += 1;
        if self.my_subjects().contains(&subject) {
            self.deliver_local(
                time_ns,
                OverlayDelivery {
                    subject: subject.clone(),
                    origin: self.me,
                    seq,
                    payload: payload.clone(),
                },
            );
        }
        let targets: Vec<u32> = self
            .subs
            .iter()
            .filter(|(n, row)| **n != self.me && row.subjects.contains(&subject))
            .map(|(n, _)| *n)
            .collect();
        let mut routes = BTreeMap::new();
        for target in targets {
            match self.route_to(target) {
                Some(path) => {
                    self.record(
                        time_ns,
                        EventKind::Overlay {
                            action: "route",
                            msg: id,
                            node: u64::from(self.me),
                            aux: pack_path(&path),
                        },
                    );
                    self.send_along(
                        &path,
                        OverlayWire::Data {
                            origin: self.me,
                            seq,
                            subject: subject.clone(),
                            payload: payload.clone(),
                        },
                    );
                    routes.insert(target, path);
                }
                None => {
                    self.record(
                        time_ns,
                        EventKind::Overlay {
                            action: "no_route",
                            msg: id,
                            node: u64::from(self.me),
                            aux: u64::from(target),
                        },
                    );
                    self.stats.lock().no_route += 1;
                }
            }
        }
        self.recent.push_back(RecentMsg {
            id,
            subject,
            payload,
            routes,
        });
        while self.recent.len() > self.cfg.resend_buffer {
            self.recent.pop_front();
        }
    }

    fn bump_local_subs(&mut self, time_ns: u64) {
        let row = self.subs.get_mut(&self.me).expect("own row");
        row.version += 1;
        self.flood_digest(time_ns, None);
    }

    fn on_data(&mut self, time_ns: u64, origin: u32, seq: u64, subject: String, payload: Bytes) {
        let id = (u64::from(origin) << 32) | (seq & 0xffff_ffff);
        if !self.my_subjects().contains(&subject) {
            self.record(
                time_ns,
                EventKind::Overlay {
                    action: "stale_drop",
                    msg: id,
                    node: u64::from(self.me),
                    aux: subject_hash(&subject),
                },
            );
            self.stats.lock().stale_drops += 1;
            return;
        }
        if self.seen.contains(&id) {
            self.record(
                time_ns,
                EventKind::Overlay {
                    action: "dup_drop",
                    msg: id,
                    node: u64::from(self.me),
                    aux: subject_hash(&subject),
                },
            );
            self.stats.lock().dup_drops += 1;
            return;
        }
        self.deliver_local(
            time_ns,
            OverlayDelivery {
                subject,
                origin,
                seq,
                payload,
            },
        );
    }

    /// A direct neighbour link died (channel supervision says so): mark
    /// it down, flood the new row, and immediately re-send the recent
    /// buffer along surviving multi-hop routes — supervision is still
    /// backing off towards its first redial at this point.
    fn on_link_down(&mut self, time_ns: u64, peer: u32) {
        self.stats.lock().link_events += 1;
        self.record(
            time_ns,
            EventKind::Overlay {
                action: "link_down",
                msg: 0,
                node: u64::from(self.me),
                aux: u64::from(peer),
            },
        );
        {
            let row = self.links.get_mut(&self.me).expect("own row");
            row.version += 1;
            row.up.remove(&peer);
        }
        self.flood_digest(time_ns, None);
        self.heal_routes(time_ns, u64::from(peer));
    }

    /// Re-sends every recent publication whose stored route crossed an
    /// edge that is no longer usable, along a freshly computed path.
    /// Called on a local link-down and after a digest merge that changed
    /// the tables (the remote-detection case: a node that only *accepted*
    /// the dead channel learns about it by gossip, not `ConnStatus`).
    /// Receiver dedup absorbs any overlap with supervision's requeue.
    fn heal_routes(&mut self, time_ns: u64, cause: u64) {
        let stale: Vec<(u64, u32)> = self
            .recent
            .iter()
            .flat_map(|m| {
                m.routes
                    .iter()
                    .filter(|(_, path)| !self.path_usable(path))
                    .map(|(target, _)| (m.id, *target))
                    .collect::<Vec<_>>()
            })
            .collect();
        if stale.is_empty() {
            return;
        }
        let tracer = self.recorder.tracer();
        let span = tracer.open_root(time_ns, SpanKind::Reroute, cause);
        for (id, target) in stale {
            let rc = tracer.open(time_ns, SpanKind::RouteCompute, span, span, u64::from(target));
            let new_path = self.route_to(target);
            tracer.close(time_ns, rc);
            self.stats.lock().reroutes += 1;
            let Some(msg) = self.recent.iter().find(|m| m.id == id).cloned() else {
                continue;
            };
            match new_path {
                Some(p) => {
                    self.record(
                        time_ns,
                        EventKind::Overlay {
                            action: "reroute",
                            msg: id,
                            node: u64::from(self.me),
                            aux: pack_path(&p),
                        },
                    );
                    let (origin, seq) =
                        (u32::try_from(id >> 32).expect("origin"), id & 0xffff_ffff);
                    self.send_along(
                        &p,
                        OverlayWire::Data {
                            origin,
                            seq,
                            subject: msg.subject.clone(),
                            payload: msg.payload.clone(),
                        },
                    );
                    self.stats.lock().resends += 1;
                    if let Some(m) = self.recent.iter_mut().find(|m| m.id == id) {
                        m.routes.insert(target, p);
                    }
                }
                None => {
                    self.record(
                        time_ns,
                        EventKind::Overlay {
                            action: "no_route",
                            msg: id,
                            node: u64::from(self.me),
                            aux: u64::from(target),
                        },
                    );
                    self.stats.lock().no_route += 1;
                    if let Some(m) = self.recent.iter_mut().find(|m| m.id == id) {
                        m.routes.remove(&target);
                    }
                }
            }
        }
        tracer.close(time_ns, span);
    }

    fn on_link_up(&mut self, time_ns: u64, peer: u32) {
        self.stats.lock().link_events += 1;
        self.record(
            time_ns,
            EventKind::Overlay {
                action: "link_up",
                msg: 0,
                node: u64::from(self.me),
                aux: u64::from(peer),
            },
        );
        let row = self.links.get_mut(&self.me).expect("own row");
        row.version += 1;
        row.up.insert(peer);
        self.flood_digest(time_ns, None);
    }

    fn handle_net(&mut self, time_ns: u64, ind: NetIndication) {
        match ind {
            NetIndication::Msg(msg) => {
                match msg.try_deserialise::<OverlayWire, OverlayWire>() {
                    Ok(OverlayWire::Data {
                        origin,
                        seq,
                        subject,
                        payload,
                    }) => self.on_data(time_ns, origin, seq, subject, payload),
                    Ok(OverlayWire::Digest { from, links, subs }) => {
                        if self.merge_digest(links, subs) {
                            // Something new: pass it on so floods reach
                            // the whole mesh, not just our neighbours —
                            // and heal any of our routes the new rows
                            // invalidated (remote link death we did not
                            // observe on our own channels).
                            self.flood_digest(time_ns, Some(from));
                            self.heal_routes(time_ns, u64::from(from));
                        }
                    }
                    Err(_) => {}
                }
            }
            NetIndication::Status(status) => {
                let ep = status.peer.as_socket();
                if ep.port != self.port {
                    return;
                }
                let node = ep.node.index();
                if !self.peer_nodes.contains(&node) {
                    return;
                }
                match status.status {
                    ConnStatus::ConnectionLost | ConnStatus::ConnectionDropped => {
                        if self.live.remove(&node) {
                            self.on_link_down(time_ns, node);
                        }
                    }
                    ConnStatus::ConnectionRestored { .. } => {
                        if self.live.insert(node) {
                            self.on_link_up(time_ns, node);
                        }
                    }
                }
            }
            NetIndication::NotifyResp(..) => {}
        }
    }

    fn gossip_round(&mut self, time_ns: u64) {
        if self.live.is_empty() {
            return;
        }
        let live: Vec<u32> = self.live.iter().copied().collect();
        let peer = live[self.rng.gen_range(0..live.len())];
        let digest = self.digest();
        let entries = match &digest {
            OverlayWire::Digest { links, subs, .. } => (links.len() + subs.len()) as u64,
            OverlayWire::Data { .. } => unreachable!("digest is a digest"),
        };
        self.record(
            time_ns,
            EventKind::Gossip {
                node: u64::from(self.me),
                peer: u64::from(peer),
                entries,
            },
        );
        self.stats.lock().gossip_sent += 1;
        self.send_along(&[self.me, peer], digest);
    }
}

impl ComponentDefinition for OverlayComponent {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        execute_ports!(self, ctx, max, [
            provided app_port: OverlayPort,
            required net_port: NetworkPort,
        ])
    }

    fn handle_control(&mut self, ctx: &mut ComponentContext, event: ControlEvent) {
        if event == ControlEvent::Start && self.gossip_timer.is_none() {
            // Announce our rows right away (also dials the neighbour
            // channels, which arms their supervision), then anti-entropy.
            let now = ctx.now().as_nanos();
            self.flood_digest(now, None);
            self.gossip_timer =
                Some(ctx.schedule_periodic(self.cfg.gossip_interval, self.cfg.gossip_interval));
        }
    }

    fn on_timeout(&mut self, ctx: &mut ComponentContext, id: TimeoutId) {
        if Some(id) == self.gossip_timer {
            self.gossip_round(ctx.now().as_nanos());
        }
    }
}

impl Provide<OverlayPort> for OverlayComponent {
    fn handle(&mut self, ctx: &mut ComponentContext, event: OverlayRequest) {
        let now = ctx.now().as_nanos();
        match event {
            OverlayRequest::Publish { subject, payload } => {
                self.handle_publish(now, subject, payload);
            }
            OverlayRequest::Subscribe { subject } => {
                let row = self.subs.get_mut(&self.me).expect("own row");
                if row.subjects.insert(subject) {
                    self.bump_local_subs(now);
                }
            }
            OverlayRequest::Unsubscribe { subject } => {
                let row = self.subs.get_mut(&self.me).expect("own row");
                if row.subjects.remove(&subject) {
                    self.bump_local_subs(now);
                }
            }
        }
    }
}

impl Require<NetworkPort> for OverlayComponent {
    fn handle(&mut self, ctx: &mut ComponentContext, event: NetIndication) {
        self.handle_net(ctx.now().as_nanos(), event);
    }
}

impl ProvideRef<OverlayPort> for OverlayComponent {
    fn provided_port(&mut self) -> &mut ProvidedPort<OverlayPort> {
        &mut self.app_port
    }
}

impl RequireRef<NetworkPort> for OverlayComponent {
    fn required_port(&mut self) -> &mut RequiredPort<NetworkPort> {
        &mut self.net_port
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmsg_netsim::rng::SeedSource;

    fn addr(node: u32) -> NetAddress {
        NetAddress::new(NodeId::from_index(node), 7100)
    }

    fn overlay(me: u32, peers: &[u32]) -> OverlayComponent {
        let cfg = OverlayConfig::new(addr(me), peers.iter().map(|&p| addr(p)).collect());
        OverlayComponent::new(
            cfg,
            SeedSource::new(1).stream("overlay-test"),
            Recorder::new(),
        )
    }

    #[test]
    fn pack_path_round_trips() {
        for path in [vec![0u32], vec![0, 1, 2], vec![5, 3, 9, 200]] {
            assert_eq!(unpack_path(pack_path(&path)).expect("packed"), path);
        }
        assert_eq!(pack_path(&[0; 9]), u64::MAX, "too long");
        assert_eq!(pack_path(&[255]), u64::MAX, "index too large");
        assert_eq!(unpack_path(u64::MAX), None);
    }

    #[test]
    fn wire_round_trips() {
        let msgs = [
            OverlayWire::Data {
                origin: 3,
                seq: 42,
                subject: "metrics.cpu".into(),
                payload: Bytes::from_static(b"payload"),
            },
            OverlayWire::Digest {
                from: 1,
                links: vec![LinkEntry {
                    owner: 1,
                    version: 7,
                    up: vec![0, 2],
                }],
                subs: vec![SubEntry {
                    node: 2,
                    version: 3,
                    subjects: vec!["a".into(), "b".into()],
                }],
            },
        ];
        for m in msgs {
            let mut buf = BytesMut::new();
            m.serialise(&mut buf).expect("serialise");
            let mut bytes = buf.freeze();
            assert_eq!(OverlayWire::deserialise(&mut bytes).expect("deser"), m);
        }
    }

    #[test]
    fn truncated_wire_rejected() {
        let m = OverlayWire::Digest {
            from: 1,
            links: vec![LinkEntry {
                owner: 1,
                version: 7,
                up: vec![0, 2],
            }],
            subs: vec![],
        };
        let mut buf = BytesMut::new();
        m.serialise(&mut buf).expect("serialise");
        let full = buf.freeze();
        for cut in [0, 1, 5, full.len() - 1] {
            let mut short = full.slice(0..cut);
            assert!(OverlayWire::deserialise(&mut short).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bfs_finds_shortest_and_respects_hop_limit() {
        // Diamond: 0 - {1,2} - 3, plus a long chain 0-4-5-6-3.
        let mut o = overlay(0, &[1, 2, 4]);
        let rows = [
            (1u32, vec![0u32, 3]),
            (2, vec![0, 3]),
            (3, vec![1, 2, 6]),
            (4, vec![0, 5]),
            (5, vec![4, 6]),
            (6, vec![5, 3]),
        ];
        for (owner, up) in rows {
            o.merge_digest(
                vec![LinkEntry {
                    owner,
                    version: 2,
                    up,
                }],
                vec![],
            );
        }
        assert_eq!(o.route_to(3).expect("route"), vec![0, 1, 3], "shortest, lowest id");
        // Kill the local links to 1 and 2: forced through the chain.
        let row = o.links.get_mut(&0).expect("own row");
        row.up.remove(&1);
        row.up.remove(&2);
        assert_eq!(o.route_to(3).expect("route"), vec![0, 4, 5, 6, 3]);
        // A hop limit below the chain length finds nothing.
        o.cfg.hop_limit = 2;
        assert_eq!(o.route_to(3), None);
    }

    #[test]
    fn gossiped_row_overrides_stale_local_view() {
        // Node 0 still believes its edge to 1 is up (it accepted the
        // channel, so it saw no ConnStatus), but node 1's gossiped row
        // no longer claims 0: the symmetric check kills the edge.
        let mut o = overlay(0, &[1, 2]);
        o.merge_digest(
            vec![
                LinkEntry {
                    owner: 1,
                    version: 5,
                    up: vec![3],
                },
                LinkEntry {
                    owner: 2,
                    version: 2,
                    up: vec![0, 3],
                },
                LinkEntry {
                    owner: 3,
                    version: 2,
                    up: vec![1, 2],
                },
            ],
            vec![],
        );
        assert!(!o.edge_usable(0, 1), "neighbour's row vetoes the edge");
        assert!(o.edge_usable(0, 2));
        assert_eq!(o.route_to(1).expect("route"), vec![0, 2, 3, 1]);
        assert!(!o.path_usable(&[0, 1, 3]));
        assert!(o.path_usable(&[0, 2, 3]));
    }

    #[test]
    fn merge_is_versioned_and_convergent() {
        let mut a = overlay(0, &[1]);
        let mut b = overlay(1, &[0]);
        let stale = LinkEntry {
            owner: 5,
            version: 1,
            up: vec![0],
        };
        let fresh = LinkEntry {
            owner: 5,
            version: 2,
            up: vec![1],
        };
        assert!(a.merge_digest(vec![fresh.clone()], vec![]));
        assert!(!a.merge_digest(vec![stale.clone()], vec![]), "stale row loses");
        assert!(b.merge_digest(vec![stale], vec![]));
        assert!(b.merge_digest(vec![fresh], vec![]), "fresh row wins");
        assert_eq!(
            a.links[&5].up,
            b.links[&5].up,
            "same rows regardless of arrival order"
        );
    }

    #[test]
    fn dedup_window_is_bounded() {
        let mut o = overlay(0, &[1]);
        o.cfg.dedup_window = 4;
        for id in 0..10u64 {
            o.insert_seen(id);
        }
        assert_eq!(o.seen.len(), 4);
        assert!(!o.seen.contains(&0), "oldest evicted");
        assert!(o.seen.contains(&9));
    }

    #[test]
    fn table_digest_tracks_table_content() {
        let a = overlay(0, &[1, 2]);
        let b = overlay(0, &[1, 2]);
        assert_eq!(a.table_digest(), b.table_digest());
        let mut c = overlay(0, &[1, 2]);
        c.merge_digest(
            vec![LinkEntry {
                owner: 9,
                version: 1,
                up: vec![0],
            }],
            vec![],
        );
        assert_ne!(a.table_digest(), c.table_digest());
    }
}
