//! The serialisation framework.
//!
//! Kompics ships its own serialiser registry rather than a general-purpose
//! format, and so does this reproduction: a message type implements
//! [`Serialisable`] (how to turn a value into bytes plus a numeric
//! [`SerId`]) and [`Deserialiser`] (how to reconstruct it). The receiver
//! picks the deserialiser by the expected type — see
//! [`NetMessage::try_deserialise`](crate::msg::NetMessage::try_deserialise).
//!
//! Built-in serialisers cover [`Bytes`], [`String`] and [`u64`]; user
//! types should use ids at or above [`SerId::USER_START`].

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Numeric identifier of a serialiser, carried on the wire with every
/// message payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SerId(pub u64);

impl SerId {
    /// Ids below this are reserved for built-in serialisers.
    pub const USER_START: SerId = SerId(100);

    const BYTES: SerId = SerId(1);
    const STRING: SerId = SerId(2);
    const U64: SerId = SerId(3);
}

/// Errors produced by (de)serialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerError {
    /// The buffer ended before the value was complete.
    Truncated {
        /// What was being read.
        context: &'static str,
    },
    /// The payload's [`SerId`] does not match the requested deserialiser.
    WrongSerId {
        /// Id found in the message.
        found: SerId,
        /// Id the deserialiser expected.
        expected: SerId,
    },
    /// The bytes were structurally invalid.
    Invalid {
        /// What was being read.
        context: &'static str,
    },
    /// A locally-delivered message held a different type than requested.
    WrongType,
}

impl std::fmt::Display for SerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerError::Truncated { context } => write!(f, "truncated input while reading {context}"),
            SerError::WrongSerId { found, expected } => {
                write!(f, "serialiser id mismatch: found {}, expected {}", found.0, expected.0)
            }
            SerError::Invalid { context } => write!(f, "invalid bytes while reading {context}"),
            SerError::WrongType => write!(f, "locally delivered value has a different type"),
        }
    }
}

impl std::error::Error for SerError {}

/// A value that can be written to the wire.
///
/// Implementations must be cheap to clone *as trait objects* via `Arc`, so
/// the same message can broadcast on several channels; the data itself is
/// only serialised when it actually leaves the host (§III-B: virtual nodes
/// on one host exchange messages without serialisation).
pub trait Serialisable: Send + Sync + std::fmt::Debug + 'static {
    /// The id of the matching [`Deserialiser`].
    fn ser_id(&self) -> SerId;

    /// Expected encoded size, if cheaply known (buffer pre-sizing).
    fn size_hint(&self) -> Option<usize> {
        None
    }

    /// Writes the value.
    ///
    /// # Errors
    ///
    /// Implementations may fail on unrepresentable values.
    fn serialise(&self, buf: &mut BytesMut) -> Result<(), SerError>;

    /// `Any` view for local (no-serialisation) delivery.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Reconstructs a `T` from bytes; `SER_ID` must match the value's
/// [`Serialisable::ser_id`].
pub trait Deserialiser<T> {
    /// The id this deserialiser handles.
    const SER_ID: SerId;

    /// Reads a value.
    ///
    /// # Errors
    ///
    /// Returns [`SerError`] on truncated or invalid input.
    fn deserialise(buf: &mut Bytes) -> Result<T, SerError>;
}

// --- helpers ---------------------------------------------------------

/// Writes a length-prefixed byte slice.
pub fn put_bytes(buf: &mut BytesMut, data: &[u8]) {
    buf.put_u32(u32::try_from(data.len()).expect("chunk too large"));
    buf.put_slice(data);
}

/// Reads a length-prefixed byte slice (zero-copy).
///
/// # Errors
///
/// Returns [`SerError::Truncated`] on short input.
pub fn get_bytes(buf: &mut Bytes, context: &'static str) -> Result<Bytes, SerError> {
    if buf.remaining() < 4 {
        return Err(SerError::Truncated { context });
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(SerError::Truncated { context });
    }
    Ok(buf.split_to(len))
}

/// Writes a length-prefixed UTF-8 string.
pub fn put_string(buf: &mut BytesMut, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string.
///
/// # Errors
///
/// Returns [`SerError`] on short or non-UTF-8 input.
pub fn get_string(buf: &mut Bytes, context: &'static str) -> Result<String, SerError> {
    let raw = get_bytes(buf, context)?;
    String::from_utf8(raw.to_vec()).map_err(|_| SerError::Invalid { context })
}

// --- built-in serialisers ---------------------------------------------

impl Serialisable for Bytes {
    fn ser_id(&self) -> SerId {
        SerId::BYTES
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.len() + 4)
    }

    fn serialise(&self, buf: &mut BytesMut) -> Result<(), SerError> {
        put_bytes(buf, self);
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl Deserialiser<Bytes> for Bytes {
    const SER_ID: SerId = SerId::BYTES;

    fn deserialise(buf: &mut Bytes) -> Result<Bytes, SerError> {
        get_bytes(buf, "Bytes")
    }
}

impl Serialisable for String {
    fn ser_id(&self) -> SerId {
        SerId::STRING
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.len() + 4)
    }

    fn serialise(&self, buf: &mut BytesMut) -> Result<(), SerError> {
        put_string(buf, self);
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl Deserialiser<String> for String {
    const SER_ID: SerId = SerId::STRING;

    fn deserialise(buf: &mut Bytes) -> Result<String, SerError> {
        get_string(buf, "String")
    }
}

impl Serialisable for u64 {
    fn ser_id(&self) -> SerId {
        SerId::U64
    }

    fn size_hint(&self) -> Option<usize> {
        Some(8)
    }

    fn serialise(&self, buf: &mut BytesMut) -> Result<(), SerError> {
        buf.put_u64(*self);
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl Deserialiser<u64> for u64 {
    const SER_ID: SerId = SerId::U64;

    fn deserialise(buf: &mut Bytes) -> Result<u64, SerError> {
        if buf.remaining() < 8 {
            return Err(SerError::Truncated { context: "u64" });
        }
        Ok(buf.get_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T>(value: &T) -> T
    where
        T: Serialisable + Deserialiser<T>,
    {
        let mut buf = BytesMut::new();
        value.serialise(&mut buf).expect("serialise");
        let mut bytes = buf.freeze();
        T::deserialise(&mut bytes).expect("deserialise")
    }

    #[test]
    fn bytes_round_trip() {
        let v = Bytes::from_static(b"hello world");
        assert_eq!(round_trip(&v), v);
        assert_eq!(v.ser_id(), SerId(1));
        assert_eq!(v.size_hint(), Some(15));
    }

    #[test]
    fn string_round_trip() {
        let v = "grüße".to_string();
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn u64_round_trip() {
        assert_eq!(round_trip(&0xdead_beef_u64), 0xdead_beef_u64);
    }

    #[test]
    fn truncation_detected() {
        let mut short = Bytes::from_static(&[0, 0, 0, 10, 1, 2]);
        assert_eq!(
            Bytes::deserialise(&mut short),
            Err(SerError::Truncated { context: "Bytes" })
        );
        let mut tiny = Bytes::from_static(&[1]);
        assert!(u64::deserialise(&mut tiny).is_err());
    }

    #[test]
    fn invalid_utf8_detected() {
        let mut buf = BytesMut::new();
        put_bytes(&mut buf, &[0xff, 0xfe]);
        let mut bytes = buf.freeze();
        assert_eq!(
            String::deserialise(&mut bytes),
            Err(SerError::Invalid { context: "String" })
        );
    }

    #[test]
    fn error_display() {
        let e = SerError::WrongSerId {
            found: SerId(5),
            expected: SerId(7),
        };
        assert!(e.to_string().contains("mismatch"));
        assert!(SerError::WrongType.to_string().contains("different type"));
    }
}

/// A boxed deserialiser stored in the registry.
type RegisteredDeserialiser =
    Box<dyn Fn(&mut Bytes) -> Result<Box<dyn std::any::Any + Send>, SerError> + Send + Sync>;

/// A registry mapping [`SerId`]s to deserialisers, for receivers that
/// handle heterogeneous messages without statically knowing each type
/// (the analog of Kompics' global serialiser registration).
///
/// # Examples
///
/// ```
/// use kmsg_core::ser::{SerRegistry, Deserialiser, SerId};
/// use bytes::{Bytes, BytesMut};
///
/// let mut registry = SerRegistry::new();
/// registry.register::<String, String>();
/// registry.register::<u64, u64>();
///
/// let mut buf = BytesMut::new();
/// use kmsg_core::ser::Serialisable;
/// "hi".to_string().serialise(&mut buf).unwrap();
/// let any = registry
///     .deserialise(SerId(2), &mut buf.freeze())
///     .expect("registered");
/// assert_eq!(any.downcast_ref::<String>().unwrap(), "hi");
/// ```
#[derive(Default)]
pub struct SerRegistry {
    entries: std::collections::HashMap<SerId, RegisteredDeserialiser>,
}

impl std::fmt::Debug for SerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SerRegistry")
            .field("registered", &self.entries.len())
            .finish()
    }
}

impl SerRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        SerRegistry::default()
    }

    /// Registers type `T` under `D::SER_ID`.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered (ids must be unique).
    pub fn register<T, D>(&mut self)
    where
        T: Send + 'static,
        D: Deserialiser<T>,
    {
        let prev = self.entries.insert(
            D::SER_ID,
            Box::new(|buf| D::deserialise(buf).map(|v| Box::new(v) as Box<dyn std::any::Any + Send>)),
        );
        assert!(prev.is_none(), "duplicate serialiser id {:?}", D::SER_ID);
    }

    /// Whether an id is registered.
    #[must_use]
    pub fn contains(&self, id: SerId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Deserialises a payload by id.
    ///
    /// # Errors
    ///
    /// Returns [`SerError::WrongSerId`] for unregistered ids (with the
    /// found id in both fields), or the deserialiser's own error.
    pub fn deserialise(
        &self,
        id: SerId,
        buf: &Bytes,
    ) -> Result<Box<dyn std::any::Any + Send>, SerError> {
        let entry = self.entries.get(&id).ok_or(SerError::WrongSerId {
            found: id,
            expected: id,
        })?;
        let mut cursor = buf.clone();
        entry(&mut cursor)
    }
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn registry_dispatches_by_id() {
        let mut reg = SerRegistry::new();
        reg.register::<String, String>();
        reg.register::<u64, u64>();
        assert!(reg.contains(SerId(2)));
        assert!(reg.contains(SerId(3)));
        assert!(!reg.contains(SerId(99)));

        let mut buf = BytesMut::new();
        7u64.serialise(&mut buf).expect("ser");
        let v = reg.deserialise(SerId(3), &buf.freeze()).expect("deser");
        assert_eq!(*v.downcast_ref::<u64>().expect("u64"), 7);
    }

    #[test]
    fn unregistered_id_errors() {
        let reg = SerRegistry::new();
        let err = reg
            .deserialise(SerId(42), &Bytes::new())
            .expect_err("unregistered");
        assert!(matches!(err, SerError::WrongSerId { .. }));
    }

    #[test]
    #[should_panic(expected = "duplicate serialiser id")]
    fn duplicate_registration_panics() {
        let mut reg = SerRegistry::new();
        reg.register::<String, String>();
        reg.register::<String, String>();
    }
}
