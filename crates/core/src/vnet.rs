//! Virtual networks (§III-B): multiple "addressable" component subtrees
//! (*virtual nodes*, vnodes) sharing one network component.
//!
//! Each vnode is identified by a [`VnodeId`] carried inside its
//! [`NetAddress`](crate::address::NetAddress). The `VirtualNetworkChannel` of the paper is realised
//! with channel selectors: [`connect_vnode`] installs a filtered channel
//! that only delivers (a) messages whose destination names the vnode and
//! (b) notification responses whose token is scoped to it.
//!
//! Messages between vnodes of the *same host* never touch the wire — the
//! network component reflects them locally without serialisation — so a
//! programmer "should never expect to receive copies of network messages"
//! and must treat messages as immutable.

use std::sync::Arc;

use kmsg_component::component::{ComponentDefinition, ProvideRef, RequireRef};
use kmsg_component::system::{ComponentRef, ComponentSystem};

use crate::address::VnodeId;
use crate::msg::{NetIndication, NetworkPort};

/// Connects `client`'s required network port to `provider`'s provided
/// network port through a channel that only delivers indications for the
/// given vnode.
pub fn connect_vnode<P, C>(
    system: &ComponentSystem,
    provider: &ComponentRef<P>,
    client: &ComponentRef<C>,
    vnode: VnodeId,
) where
    P: ComponentDefinition + ProvideRef<NetworkPort>,
    C: ComponentDefinition + RequireRef<NetworkPort>,
{
    system.connect_filtered::<NetworkPort, _, _>(
        provider,
        client,
        None,
        Some(Arc::new(move |ind: &NetIndication| match ind {
            NetIndication::Msg(msg) => msg.header().destination().vnode() == Some(vnode),
            NetIndication::NotifyResp(token, _) => token.vnode == Some(vnode),
            // Channel status concerns the shared physical channel, not any
            // one vnode; the default receiver handles it.
            NetIndication::Status(_) => false,
        })),
    );
}

/// Connects `client` as the *default* receiver: it sees messages without a
/// vnode id and unscoped notification responses.
pub fn connect_default<P, C>(
    system: &ComponentSystem,
    provider: &ComponentRef<P>,
    client: &ComponentRef<C>,
) where
    P: ComponentDefinition + ProvideRef<NetworkPort>,
    C: ComponentDefinition + RequireRef<NetworkPort>,
{
    system.connect_filtered::<NetworkPort, _, _>(
        provider,
        client,
        None,
        Some(Arc::new(|ind: &NetIndication| match ind {
            NetIndication::Msg(msg) => msg.header().destination().vnode().is_none(),
            NetIndication::NotifyResp(token, _) => token.vnode.is_none(),
            NetIndication::Status(_) => true,
        })),
    );
}
