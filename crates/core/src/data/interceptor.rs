//! The `data-network-interceptor` component (§IV-A).
//!
//! Sits between application components and the
//! [`NetworkComponent`](crate::net::NetworkComponent). Messages carrying
//! the pseudo-protocol [`Transport::Data`] are intercepted per destination
//! flow: they are queued and released to the network layer at an adaptive
//! rate — each protocol gets its own outstanding-bytes window sized to its
//! measured bandwidth-delay product plus a small slack, so transport
//! queues stay shallow and control messages interleave well (the effect
//! behind the paper's Figure 8). Each released message is stamped with a
//! concrete protocol (TCP or UDT) by the flow's
//! [`ProtocolSelectionPolicy`]; once per episode the flow's
//! [`ProtocolRatioPolicy`] consumes the observed throughput (and mean
//! notify latency) and prescribes the next target ratio.
//!
//! All other messages pass through unchanged, in both directions.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use kmsg_component::prelude::*;
use kmsg_netsim::packet::Endpoint;
use kmsg_netsim::rng::SeedSource;
use kmsg_netsim::time::SimTime;
use kmsg_telemetry::Recorder;

use crate::address::Address;
use crate::data::psp::{PatternKind, PatternSelection, ProtocolSelectionPolicy, RandomSelection};
use crate::data::prp::{
    EpisodeObservation, ProtocolRatioPolicy, StaticRatio, TdConfig, TdRatioLearner,
};
use crate::data::ratio::Ratio;
use crate::header::NetHeader;
use crate::msg::{NetIndication, NetMessage, NetRequest, NetworkPort, NotifyToken};
use crate::transport::Transport;

/// Notify-token ids at or above this value are reserved for the
/// interceptor's internal bookkeeping; applications must stay below.
pub const INTERNAL_NOTIFY_BASE: u64 = 1 << 63;

/// Which protocol selection policy a flow uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PspKind {
    /// Bernoulli per-message selection (baseline).
    Random,
    /// Deterministic interleaving patterns.
    Pattern(PatternKind),
}

/// Which protocol ratio policy a flow uses.
#[derive(Debug, Clone)]
pub enum PrpKind {
    /// Fixed target ratio.
    Static(Ratio),
    /// The TD(λ) learner.
    Td(TdConfig),
}

/// Configuration of the [`DataNetworkComponent`].
#[derive(Debug, Clone)]
pub struct DataNetworkConfig {
    /// Learning episode length (the paper uses 1 s).
    pub episode: Duration,
    /// Minimum per-protocol window of outstanding bytes per flow.
    pub min_window: usize,
    /// Window slack beyond the bandwidth-delay product, as a time depth:
    /// outstanding ≈ throughput × (2·RTT + this). Keeps transport queues
    /// shallow so control messages interleave well.
    pub window_time: Duration,
    /// Selection policy.
    pub psp: PspKind,
    /// Maximum pattern length (finest representable ratio).
    pub pattern_max: u64,
    /// Ratio policy.
    pub prp: PrpKind,
    /// Episodes to skip before feeding rewards to the ratio policy: the
    /// first episodes of a flow are dominated by transport ramp-up
    /// (slow start, rate probing, window growth) and would poison the
    /// learner's early value estimates.
    pub warmup_episodes: u32,
    /// Seed source for per-flow random streams.
    pub seeds: SeedSource,
    /// Telemetry recorder that learner decisions are reported to — usually
    /// a clone of [`Sim::recorder`](kmsg_netsim::engine::Sim::recorder).
    /// Defaults to a fresh, disabled recorder (telemetry off).
    pub recorder: Recorder,
}

impl Default for DataNetworkConfig {
    fn default() -> Self {
        DataNetworkConfig {
            episode: Duration::from_secs(1),
            min_window: 128 * 1024,
            window_time: Duration::from_millis(40),
            psp: PspKind::Pattern(PatternKind::MinimalRest),
            pattern_max: 100,
            prp: PrpKind::Td(TdConfig::default()),
            warmup_episodes: 2,
            seeds: SeedSource::new(0),
            recorder: Recorder::new(),
        }
    }
}

/// Stable numeric label for a flow destination: node index in the high
/// bits, port in the low 16, so telemetry events can be grouped per flow.
fn flow_label(dst: Endpoint) -> u64 {
    (u64::from(dst.node.index()) << 16) | u64::from(dst.port)
}

impl DataNetworkConfig {
    fn make_psp(&self, dst: Endpoint, initial: Ratio) -> Box<dyn ProtocolSelectionPolicy> {
        match self.psp {
            PspKind::Random => Box::new(RandomSelection::new(
                initial,
                self.seeds.stream(&format!("data-psp-{dst}")),
            )),
            PspKind::Pattern(kind) => {
                Box::new(PatternSelection::new(initial, kind, self.pattern_max))
            }
        }
    }

    fn make_prp(&self, dst: Endpoint) -> Box<dyn ProtocolRatioPolicy> {
        match &self.prp {
            PrpKind::Static(r) => Box::new(StaticRatio(*r)),
            PrpKind::Td(cfg) => {
                let mut learner = TdRatioLearner::new(
                    cfg.clone(),
                    self.seeds.stream(&format!("data-prp-{dst}")),
                );
                learner.attach_recorder(self.recorder.clone(), flow_label(dst));
                Box::new(learner)
            }
        }
    }
}

/// One sample of a flow's per-episode telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowPoint {
    /// Episode end time.
    pub time: SimTime,
    /// Delivered throughput during the episode, bytes/s.
    pub throughput: f64,
    /// The target ratio prescribed *for the next* episode.
    pub target_ratio: f64,
    /// The ratio achieved on the wire during this episode (signed form);
    /// NaN-free: flows without traffic repeat the previous target.
    pub achieved_ratio: f64,
    /// Messages released during the episode.
    pub messages: u64,
}

/// Telemetry of all flows, keyed by destination.
pub type DataStatsHandle = Arc<Mutex<HashMap<Endpoint, Vec<FlowPoint>>>>;

/// Per-protocol flow-control state: each of TCP and UDT gets its own
/// outstanding-bytes window so that a slow protocol's backlog can neither
/// bury control messages under a shared budget (Figure 8) nor stall the
/// fast protocol.
#[derive(Debug, Clone, Copy)]
struct ProtoWindow {
    outstanding: usize,
    window: usize,
    episode_bytes: u64,
    /// Lifetime-minimum notify latency: an RTT estimate free of
    /// self-inflicted queueing. With acked-based notifications the fastest
    /// confirmation ever seen is one round trip plus transmission over an
    /// empty queue (any mean/EWMA estimate would include the window's own
    /// standing queue and blow the window up — bufferbloat feedback).
    rtt_min: Option<f64>,
    throughput_ewma: f64,
}

impl ProtoWindow {
    fn new(min_window: usize) -> Self {
        ProtoWindow {
            outstanding: 0,
            window: min_window,
            episode_bytes: 0,
            rtt_min: None,
            throughput_ewma: 0.0,
        }
    }
}

struct Flow {
    psp: Box<dyn ProtocolSelectionPolicy>,
    prp: Box<dyn ProtocolRatioPolicy>,
    target: Ratio,
    queue: VecDeque<(Option<NotifyToken>, NetMessage)>,
    queued_bytes: usize,
    tcp: ProtoWindow,
    udt: ProtoWindow,
    episode_bytes: u64,
    episode_msgs: u64,
    sent_tcp: u64,
    sent_udt: u64,
    /// Sum and count of notify latencies this episode (mean feeds the
    /// ratio policy's optional latency penalty).
    latency_sum: f64,
    latency_count: u64,
    episodes_seen: u32,
}

impl Flow {
    fn proto_mut(&mut self, proto: Transport) -> &mut ProtoWindow {
        match proto {
            Transport::Udt => &mut self.udt,
            _ => &mut self.tcp,
        }
    }
}

/// The interceptor component. Create with
/// [`create_data_network`](crate::data::create_data_network) or wire
/// manually between an application and a network component.
pub struct DataNetworkComponent {
    /// Application-facing network port.
    pub app_port: ProvidedPort<NetworkPort>,
    /// Network-facing port.
    pub net_port: RequiredPort<NetworkPort>,
    cfg: DataNetworkConfig,
    flows: HashMap<Endpoint, Flow>,
    inflight: HashMap<u64, (Endpoint, usize, Option<NotifyToken>, SimTime, Transport)>,
    next_internal: u64,
    stats: DataStatsHandle,
    episode_timer: Option<TimeoutId>,
}

impl std::fmt::Debug for DataNetworkComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataNetworkComponent")
            .field("flows", &self.flows.len())
            .field("inflight", &self.inflight.len())
            .finish()
    }
}

impl DataNetworkComponent {
    /// Builds the component.
    #[must_use]
    pub fn new(cfg: DataNetworkConfig) -> Self {
        DataNetworkComponent {
            app_port: ProvidedPort::new(),
            net_port: RequiredPort::new(),
            cfg,
            flows: HashMap::new(),
            inflight: HashMap::new(),
            next_internal: INTERNAL_NOTIFY_BASE,
            stats: Arc::new(Mutex::new(HashMap::new())),
            episode_timer: None,
        }
    }

    /// The flow telemetry handle.
    #[must_use]
    pub fn stats(&self) -> DataStatsHandle {
        self.stats.clone()
    }

    /// The current target ratio of the flow to `dst`, if it exists.
    #[must_use]
    pub fn flow_target(&self, dst: Endpoint) -> Option<Ratio> {
        self.flows.get(&dst).map(|f| f.target)
    }

    fn handle_app_request(&mut self, now: SimTime, req: NetRequest) {
        let (token, msg) = match req {
            NetRequest::Msg(m) => (None, m),
            NetRequest::NotifyReq(t, m) => (Some(t), m),
        };
        let is_unresolved_data = matches!(msg.header(), NetHeader::Data(h) if h.selected.is_none());
        if !is_unresolved_data {
            // Not ours: pass straight down (the paper routes such messages
            // around the interceptor with channel selectors; passing
            // through immediately is behaviourally equivalent).
            match token {
                Some(t) => self.net_port.trigger(NetRequest::NotifyReq(t, msg)),
                None => self.net_port.trigger(NetRequest::Msg(msg)),
            }
            return;
        }
        let dst = msg.header().destination().as_socket();
        if !self.flows.contains_key(&dst) {
            let mut prp = self.cfg.make_prp(dst);
            let target = prp.initial_ratio();
            let psp = self.cfg.make_psp(dst, target);
            self.flows.insert(
                dst,
                Flow {
                    psp,
                    prp,
                    target,
                    queue: VecDeque::new(),
                    queued_bytes: 0,
                    tcp: ProtoWindow::new(self.cfg.min_window),
                    udt: ProtoWindow::new(self.cfg.min_window),
                    episode_bytes: 0,
                    episode_msgs: 0,
                    sent_tcp: 0,
                    sent_udt: 0,
                    latency_sum: 0.0,
                    latency_count: 0,
                    episodes_seen: 0,
                },
            );
        }
        let flow = self.flows.get_mut(&dst).expect("flow just ensured");
        flow.queued_bytes += msg.payload_size_estimate();
        flow.queue.push_back((token, msg));
        self.release(now, dst);
    }

    /// Releases queued messages while the next message's protocol window
    /// allows.
    fn release(&mut self, now: SimTime, dst: Endpoint) {
        let Some(flow) = self.flows.get_mut(&dst) else {
            return;
        };
        let mut to_send = Vec::new();
        loop {
            if flow.queue.is_empty() {
                break;
            }
            // Respect the NEXT message's protocol window; stopping here
            // (instead of skipping ahead) preserves the selection order
            // and therefore the target ratio.
            let next_proto = flow.psp.peek();
            let win = flow.proto_mut(next_proto);
            if win.outstanding >= win.window {
                break;
            }
            let (token, mut msg) = flow.queue.pop_front().expect("non-empty queue");
            let len = msg.payload_size_estimate();
            flow.queued_bytes -= len;
            let proto = flow.psp.select();
            debug_assert_eq!(proto, next_proto);
            match proto {
                Transport::Tcp => flow.sent_tcp += 1,
                Transport::Udt => flow.sent_udt += 1,
                _ => {}
            }
            if let NetHeader::Data(h) = msg.header_mut() {
                h.selected = Some(proto);
            }
            flow.proto_mut(proto).outstanding += len;
            flow.episode_msgs += 1;
            let internal = self.next_internal;
            self.next_internal += 1;
            self.inflight.insert(internal, (dst, len, token, now, proto));
            to_send.push((internal, msg));
        }
        for (internal, msg) in to_send {
            self.net_port
                .trigger(NetRequest::NotifyReq(NotifyToken::new(internal), msg));
        }
    }

    fn handle_net_indication(&mut self, now: SimTime, ind: NetIndication) {
        match ind {
            NetIndication::Msg(msg) => self.app_port.trigger(NetIndication::Msg(msg)),
            // Channel supervision status: applications may care (e.g. to
            // pause a transfer), so pass it up unchanged.
            NetIndication::Status(status) => {
                self.app_port.trigger(NetIndication::Status(status));
            }
            NetIndication::NotifyResp(token, status) => {
                if token.vnode.is_none() && token.id >= INTERNAL_NOTIFY_BASE {
                    if let Some((dst, len, orig, released_at, proto)) =
                        self.inflight.remove(&token.id)
                    {
                        if let Some(flow) = self.flows.get_mut(&dst) {
                            let latency = now.duration_since(released_at).as_secs_f64();
                            let win = flow.proto_mut(proto);
                            win.outstanding = win.outstanding.saturating_sub(len);
                            if status.is_success() {
                                win.episode_bytes += len as u64;
                                win.rtt_min =
                                    Some(win.rtt_min.map_or(latency, |m| m.min(latency)));
                                flow.episode_bytes += len as u64;
                                flow.latency_sum += latency;
                                flow.latency_count += 1;
                            }
                        }
                        if let Some(orig) = orig {
                            self.app_port.trigger(NetIndication::NotifyResp(orig, status));
                        }
                        self.release(now, dst);
                        return;
                    }
                }
                // Pass-through notification for a bypassed message.
                self.app_port.trigger(NetIndication::NotifyResp(token, status));
            }
        }
    }

    fn end_episode(&mut self, now: SimTime) {
        let dt = self.cfg.episode.as_secs_f64();
        for (dst, flow) in &mut self.flows {
            let throughput = flow.episode_bytes as f64 / dt;
            let sent = flow.sent_tcp + flow.sent_udt;
            let achieved = if sent == 0 {
                flow.target
            } else {
                Ratio::from_prob_udt(flow.sent_udt as f64 / sent as f64)
            };
            flow.episodes_seen += 1;
            let next = if flow.episodes_seen <= self.cfg.warmup_episodes {
                // Transport ramp-up: keep the initial target, learn nothing.
                flow.target
            } else {
                let mean_latency = if flow.latency_count > 0 {
                    Some(Duration::from_secs_f64(
                        flow.latency_sum / flow.latency_count as f64,
                    ))
                } else {
                    None
                };
                let obs = EpisodeObservation {
                    time: now,
                    throughput,
                    mean_latency,
                    achieved_ratio: achieved,
                };
                flow.prp.episode_update(&obs)
            };
            flow.target = next;
            flow.psp.update_ratio(next);
            // Size each protocol's window to ITS bandwidth-delay product
            // (notifications return one RTT after release) plus a small
            // time-depth of slack; anything deeper only sits in transport
            // queues and delays control messages (Figure 8).
            let slack = self.cfg.window_time.as_secs_f64();
            let min_window = self.cfg.min_window;
            for win in [&mut flow.tcp, &mut flow.udt] {
                let ep_thr = win.episode_bytes as f64 / dt;
                win.throughput_ewma = if win.throughput_ewma == 0.0 {
                    ep_thr
                } else {
                    0.5 * win.throughput_ewma + 0.5 * ep_thr
                };
                let depth = match win.rtt_min {
                    Some(rtt) => (win.throughput_ewma * (2.0 * rtt + slack)) as usize,
                    // No confirmation yet: stay at the floor and let the
                    // first samples set the scale.
                    None => 0,
                };
                win.window = depth.max(min_window);
                win.episode_bytes = 0;
            }
            self.stats.lock().entry(*dst).or_default().push(FlowPoint {
                time: now,
                throughput,
                target_ratio: next.signed(),
                achieved_ratio: achieved.signed(),
                messages: flow.episode_msgs,
            });
            flow.episode_bytes = 0;
            flow.episode_msgs = 0;
            flow.sent_tcp = 0;
            flow.sent_udt = 0;
            flow.latency_sum = 0.0;
            flow.latency_count = 0;
        }
        // Window growth may allow more releases.
        let dsts: Vec<Endpoint> = self.flows.keys().copied().collect();
        for dst in dsts {
            self.release(now, dst);
        }
    }
}

impl ComponentDefinition for DataNetworkComponent {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        execute_ports!(self, ctx, max, [
            provided app_port: NetworkPort,
            required net_port: NetworkPort,
        ])
    }

    fn handle_control(&mut self, ctx: &mut ComponentContext, event: ControlEvent) {
        if event == ControlEvent::Start && self.episode_timer.is_none() {
            self.episode_timer = Some(ctx.schedule_periodic(self.cfg.episode, self.cfg.episode));
        }
    }

    fn on_timeout(&mut self, ctx: &mut ComponentContext, id: TimeoutId) {
        if Some(id) == self.episode_timer {
            self.end_episode(ctx.now());
        }
    }
}

impl Provide<NetworkPort> for DataNetworkComponent {
    fn handle(&mut self, ctx: &mut ComponentContext, event: NetRequest) {
        self.handle_app_request(ctx.now(), event);
    }
}

impl Require<NetworkPort> for DataNetworkComponent {
    fn handle(&mut self, ctx: &mut ComponentContext, event: NetIndication) {
        self.handle_net_indication(ctx.now(), event);
    }
}

impl ProvideRef<NetworkPort> for DataNetworkComponent {
    fn provided_port(&mut self) -> &mut ProvidedPort<NetworkPort> {
        &mut self.app_port
    }
}

impl RequireRef<NetworkPort> for DataNetworkComponent {
    fn required_port(&mut self) -> &mut RequiredPort<NetworkPort> {
        &mut self.net_port
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_papers() {
        let cfg = DataNetworkConfig::default();
        assert_eq!(cfg.episode, Duration::from_secs(1));
        assert!(matches!(cfg.psp, PspKind::Pattern(PatternKind::MinimalRest)));
        assert!(matches!(cfg.prp, PrpKind::Td(_)));
        assert_eq!(cfg.warmup_episodes, 2);
    }

    #[test]
    fn internal_token_namespace_is_high() {
        // Application tokens live below; the split point is the top bit.
        let app_token = 123_456u64;
        assert!(app_token < INTERNAL_NOTIFY_BASE);
        assert_eq!(INTERNAL_NOTIFY_BASE.leading_zeros(), 0);
    }

    #[test]
    fn proto_window_starts_at_minimum() {
        let w = ProtoWindow::new(4096);
        assert_eq!(w.window, 4096);
        assert_eq!(w.outstanding, 0);
        assert!(w.rtt_min.is_none());
    }
}
