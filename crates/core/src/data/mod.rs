//! Adaptive transport selection (§IV): the `DATA` meta-protocol.
//!
//! * [`ratio`] — the target TCP/UDT mix and its representations;
//! * [`psp`] — per-message protocol selection policies (random, pattern);
//! * [`prp`] — per-episode protocol ratio policies (static, TD(λ) learner);
//! * [`stack`] — per-destination congestion-controller selection (the
//!   transports × controllers surface);
//! * [`interceptor`] — the `data-network-interceptor` component wiring the
//!   policies into the message path.

pub mod interceptor;
pub mod prp;
pub mod psp;
pub mod ratio;
pub mod stack;

pub use interceptor::{
    DataNetworkComponent, DataNetworkConfig, DataStatsHandle, FlowPoint, PrpKind, PspKind,
    INTERNAL_NOTIFY_BASE,
};
pub use prp::{
    EpisodeObservation, ProtocolRatioPolicy, StaticRatio, TdConfig, TdRatioLearner, ValueBackend,
};
pub use psp::{
    build_pattern, max_prefix_deviation, p_pattern, p_pattern_rest, p_plus_one_pattern,
    p_plus_one_pattern_rest, PatternKind, PatternSelection, ProtocolSelectionPolicy,
    RandomSelection,
};
pub use ratio::{ProtocolFraction, Ratio};
pub use stack::{controller_space, variant_algorithm, StackPolicy};

use kmsg_component::prelude::*;
use kmsg_netsim::network::{BindError, Network};

use crate::msg::NetworkPort;
use crate::net::{create_network, NetworkComponent, NetworkConfig};

/// The paper's `DataNetwork` wrapper: a network component plus the data
/// interceptor in front of it, pre-wired. Applications connect to
/// [`DataNetwork::interceptor`]'s provided network port.
#[derive(Debug, Clone)]
pub struct DataNetwork {
    /// The interceptor (application-facing).
    pub interceptor: ComponentRef<DataNetworkComponent>,
    /// The underlying network component.
    pub network: ComponentRef<NetworkComponent>,
}

impl DataNetwork {
    /// Starts both components.
    pub fn start(&self, system: &ComponentSystem) {
        system.start(&self.network);
        system.start(&self.interceptor);
    }
}

/// Creates and wires a [`DataNetwork`]: the network component's listeners
/// are bound and the interceptor is connected on top.
///
/// # Errors
///
/// Returns [`BindError`] if the network address is already bound.
pub fn create_data_network(
    system: &ComponentSystem,
    net: &Network,
    net_cfg: NetworkConfig,
    data_cfg: DataNetworkConfig,
) -> Result<DataNetwork, BindError> {
    let network = create_network(system, net, net_cfg)?;
    let interceptor = system.create(|| DataNetworkComponent::new(data_cfg));
    system.connect::<NetworkPort, _, _>(&network, &interceptor);
    Ok(DataNetwork {
        interceptor,
        network,
    })
}
