//! Protocol ratio policies (§IV-C): decide the *target* TCP/UDT mix for a
//! `DATA` stream, once per learning episode.
//!
//! * [`StaticRatio`] — fixed mix, set at startup (testing & baselines);
//! * [`TdRatioLearner`] — the paper's TD(λ)/Sarsa(λ) learner over the
//!   discretised ratio space, with a pluggable value-function backend
//!   ([`ValueBackend`]) reproducing Figures 4–6.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use kmsg_learning::prelude::*;
use kmsg_learning::DecisionRecord;
use kmsg_netsim::rng::RngStream;
use kmsg_netsim::time::SimTime;
use kmsg_telemetry::{EventKind, Recorder};

use crate::data::ratio::Ratio;

/// What a flow observed during one learning episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeObservation {
    /// Simulation time at the end of the episode (timestamps any
    /// telemetry the ratio policy emits).
    pub time: SimTime,
    /// Delivered throughput over the episode, bytes/second.
    pub throughput: f64,
    /// Mean control-message latency observed during the episode, if the
    /// application reported any.
    pub mean_latency: Option<Duration>,
    /// The ratio actually achieved on the wire during the episode.
    pub achieved_ratio: Ratio,
}

/// Chooses the target protocol ratio, episode by episode.
pub trait ProtocolRatioPolicy: Send {
    /// The ratio to start with (also re-initialises internal state).
    fn initial_ratio(&mut self) -> Ratio;

    /// Consumes one episode's observation, returns the next target ratio.
    fn episode_update(&mut self, obs: &EpisodeObservation) -> Ratio;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// A fixed target ratio (§IV-C1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticRatio(pub Ratio);

impl ProtocolRatioPolicy for StaticRatio {
    fn initial_ratio(&mut self) -> Ratio {
        self.0
    }

    fn episode_update(&mut self, _obs: &EpisodeObservation) -> Ratio {
        self.0
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// The value-function backend for [`TdRatioLearner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValueBackend {
    /// Dense `Q(s,a)` matrix (Figure 4: converges too slowly).
    Matrix,
    /// Model-collapsed `V(s)` (Figure 5: ≈20 s).
    Model,
    /// `V(s)` with quadratic approximation (Figure 6: seconds; default).
    #[default]
    Approx,
}

/// Configuration for [`TdRatioLearner`].
#[derive(Debug, Clone)]
pub struct TdConfig {
    /// Value-function backend.
    pub backend: ValueBackend,
    /// Sarsa(λ) hyper-parameters (the paper: α=.5, γ=.5, λ=.85).
    pub sarsa: SarsaConfig,
    /// Discretised ratio space (the paper: κ=1/5, two-step actions).
    pub space: RatioSpace,
    /// Reward = throughput / `reward_scale` (bytes/s): 10 MB/s ⇒ reward 1.
    pub reward_scale: f64,
    /// Additional reward penalty per second of mean control latency.
    pub latency_weight: f64,
    /// The ratio to start exploring from.
    pub initial_ratio: Ratio,
}

impl Default for TdConfig {
    fn default() -> Self {
        TdConfig {
            backend: ValueBackend::Approx,
            sarsa: SarsaConfig::default(),
            space: RatioSpace::default(),
            reward_scale: 10e6,
            latency_weight: 0.0,
            initial_ratio: Ratio::BALANCED,
        }
    }
}

/// The TD(λ) ratio learner (§IV-C2).
pub struct TdRatioLearner {
    cfg: TdConfig,
    sarsa: Sarsa<Box<dyn ActionValue>, RngStream>,
    /// The state currently in effect (the ratio the flow is running at).
    current: StateIdx,
    started: bool,
    /// Episode-end sim time in nanoseconds, stored at `episode_update`
    /// entry so the decision probe (which fires inside the Sarsa step)
    /// can timestamp its events.
    now_ns: Arc<AtomicU64>,
}

impl std::fmt::Debug for TdRatioLearner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TdRatioLearner")
            .field("backend", &self.cfg.backend)
            .field("epsilon", &self.sarsa.epsilon())
            .field("steps", &self.sarsa.steps())
            .finish()
    }
}

impl TdRatioLearner {
    /// Creates the learner with its own deterministic random stream.
    #[must_use]
    pub fn new(cfg: TdConfig, rng: RngStream) -> Self {
        let space = cfg.space;
        let value: Box<dyn ActionValue> = match cfg.backend {
            ValueBackend::Matrix => Box::new(MatrixQ::new(space)),
            ValueBackend::Model => Box::new(ModelV::new(space)),
            ValueBackend::Approx => Box::new(ApproxV::new(space)),
        };
        let current = space.nearest_state(cfg.initial_ratio.signed());
        TdRatioLearner {
            sarsa: Sarsa::new(space, cfg.sarsa, value, rng),
            cfg,
            current,
            started: false,
            now_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Bridges this learner's decisions into a telemetry recorder as
    /// [`EventKind::Decision`] events tagged with `flow`. Timestamps come
    /// from the [`EpisodeObservation::time`] of the episode being consumed,
    /// so two same-seed runs emit identical streams. Each decision also
    /// leaves a root `decide` instant span keyed by the flow, so traces
    /// show when the learner adjusted the split ratio.
    pub fn attach_recorder(&mut self, rec: Recorder, flow: u64) {
        let now_ns = self.now_ns.clone();
        let tracer = rec.tracer();
        self.sarsa.set_probe(Some(Box::new(move |d: DecisionRecord| {
            let t = now_ns.load(Ordering::Relaxed);
            tracer.instant(
                t,
                kmsg_telemetry::SpanKind::Decide,
                kmsg_telemetry::SpanId::NONE,
                kmsg_telemetry::SpanId::NONE,
                flow,
            );
            rec.record(
                t,
                EventKind::Decision {
                    flow,
                    step: d.step,
                    state: d.state as u64,
                    action: d.action as u64,
                    reward: d.reward,
                    epsilon: d.epsilon,
                    greedy: d.greedy,
                },
            );
        })));
    }

    fn reward(&self, obs: &EpisodeObservation) -> f64 {
        let latency_penalty = obs
            .mean_latency
            .map_or(0.0, |l| l.as_secs_f64() * self.cfg.latency_weight);
        obs.throughput / self.cfg.reward_scale - latency_penalty
    }

    /// Current exploration probability (diagnostics).
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.sarsa.epsilon()
    }

    /// Episodes consumed so far.
    #[must_use]
    pub fn episodes(&self) -> u64 {
        self.sarsa.steps()
    }
}

impl ProtocolRatioPolicy for TdRatioLearner {
    fn initial_ratio(&mut self) -> Ratio {
        let space = self.cfg.space;
        self.current = space.nearest_state(self.cfg.initial_ratio.signed());
        let action = self.sarsa.begin(self.current);
        self.current = space.transition(self.current, action);
        self.started = true;
        Ratio::from_signed(space.state_value(self.current))
    }

    fn episode_update(&mut self, obs: &EpisodeObservation) -> Ratio {
        if !self.started {
            return self.initial_ratio();
        }
        self.now_ns.store(obs.time.as_nanos(), Ordering::Relaxed);
        let space = self.cfg.space;
        let reward = self.reward(obs);
        // We are *at* `current` (the result of the last action); feed the
        // reward, get the next action, move.
        let action = self.sarsa.step(reward, self.current);
        self.current = space.transition(self.current, action);
        Ratio::from_signed(space.state_value(self.current))
    }

    fn name(&self) -> &'static str {
        "td-learner"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmsg_netsim::rng::SeedSource;

    fn obs(throughput: f64, achieved: Ratio) -> EpisodeObservation {
        EpisodeObservation {
            time: SimTime::ZERO,
            throughput,
            mean_latency: None,
            achieved_ratio: achieved,
        }
    }

    /// A synthetic environment whose throughput is a quadratic with a peak
    /// at the given signed ratio (the paper's assumed reward shape).
    fn env_throughput(ratio: Ratio, peak: f64) -> f64 {
        let x = ratio.signed();
        let base = 1.0 - (x - peak) * (x - peak) / 4.0;
        base.max(0.05) * 100e6
    }

    fn run_learner(backend: ValueBackend, peak: f64, episodes: usize, seed: u64) -> Vec<f64> {
        let cfg = TdConfig {
            backend,
            ..TdConfig::default()
        };
        let mut learner = TdRatioLearner::new(cfg, SeedSource::new(seed).stream("prp-test"));
        let mut ratio = learner.initial_ratio();
        let mut history = Vec::new();
        for _ in 0..episodes {
            let throughput = env_throughput(ratio, peak);
            ratio = learner.episode_update(&obs(throughput, ratio));
            history.push(ratio.signed());
        }
        history
    }

    #[test]
    fn static_policy_never_moves() {
        let mut p = StaticRatio(Ratio::from_signed(-0.4));
        assert_eq!(p.initial_ratio(), Ratio::from_signed(-0.4));
        assert_eq!(
            p.episode_update(&obs(1e6, Ratio::BALANCED)),
            Ratio::from_signed(-0.4)
        );
        assert_eq!(p.name(), "static");
    }

    #[test]
    fn model_learner_finds_tcp_favoured_peak() {
        // Average the tail over several seeds: the learner must sit on the
        // TCP side when the reward peaks at -1 (fast LAN).
        let mut tail_sum = 0.0;
        let seeds = 6;
        for seed in 0..seeds {
            let h = run_learner(ValueBackend::Model, -1.0, 120, seed);
            let tail = &h[h.len() - 30..];
            tail_sum += tail.iter().sum::<f64>() / tail.len() as f64;
        }
        let mean_tail = tail_sum / f64::from(seeds as u32);
        assert!(
            mean_tail < -0.3,
            "model learner should settle TCP-side, got {mean_tail}"
        );
    }

    #[test]
    fn approx_learner_converges_quickly() {
        // The paper runs the model-based/approximated learners with a
        // lower eps_max = 0.3 (Figures 5 and 6).
        let cfg = TdConfig {
            backend: ValueBackend::Approx,
            sarsa: SarsaConfig {
                exploration: kmsg_learning::EpsilonGreedyConfig {
                    epsilon_max: 0.3,
                    epsilon_min: 0.1,
                    epsilon_decay: 0.01,
                },
                ..SarsaConfig::default()
            },
            ..TdConfig::default()
        };
        let mut tail_sum = 0.0;
        let seeds = 6;
        for seed in 0..seeds {
            let mut learner =
                TdRatioLearner::new(cfg.clone(), SeedSource::new(seed).stream("prp-test"));
            let mut ratio = learner.initial_ratio();
            let mut tail = Vec::new();
            for ep in 0..60 {
                let throughput = env_throughput(ratio, 1.0);
                ratio = learner.episode_update(&obs(throughput, ratio));
                if ep >= 30 {
                    tail.push(ratio.signed());
                }
            }
            tail_sum += tail.iter().sum::<f64>() / tail.len() as f64;
        }
        let mean_tail = tail_sum / f64::from(seeds as u32);
        assert!(
            mean_tail > 0.3,
            "approx learner should be near the UDT peak within 60 episodes, got {mean_tail}"
        );
    }

    #[test]
    fn matrix_learner_explores_slowly() {
        // With the paper's parameters the matrix backend should on average
        // be farther from the peak than the approx backend after the same
        // number of episodes (Figure 4 vs 6).
        let episodes = 60;
        let seeds = 8;
        let mean_dist = |backend| {
            let mut sum = 0.0;
            for seed in 0..seeds {
                let h = run_learner(backend, 1.0, episodes, seed);
                let tail = &h[episodes - 15..];
                let pos = tail.iter().sum::<f64>() / tail.len() as f64;
                sum += (1.0 - pos).abs();
            }
            sum / f64::from(seeds as u32)
        };
        let matrix = mean_dist(ValueBackend::Matrix);
        let approx = mean_dist(ValueBackend::Approx);
        assert!(
            approx <= matrix + 0.05,
            "approx ({approx}) should track the peak at least as well as matrix ({matrix})"
        );
    }

    #[test]
    fn latency_penalty_reduces_reward() {
        let cfg = TdConfig {
            latency_weight: 10.0,
            ..TdConfig::default()
        };
        let learner = TdRatioLearner::new(cfg, SeedSource::new(1).stream("prp"));
        let quiet = learner.reward(&obs(10e6, Ratio::BALANCED));
        let laggy = learner.reward(&EpisodeObservation {
            time: SimTime::ZERO,
            throughput: 10e6,
            mean_latency: Some(Duration::from_millis(100)),
            achieved_ratio: Ratio::BALANCED,
        });
        assert!(laggy < quiet);
        assert!((quiet - 1.0).abs() < 1e-9, "10 MB/s scales to reward 1");
    }

    #[test]
    fn update_before_init_initialises() {
        let mut learner =
            TdRatioLearner::new(TdConfig::default(), SeedSource::new(2).stream("prp"));
        let r = learner.episode_update(&obs(1e6, Ratio::BALANCED));
        assert!((-1.0..=1.0).contains(&r.signed()));
        assert_eq!(learner.name(), "td-learner");
    }

    #[test]
    fn attached_recorder_sees_decisions_with_episode_times() {
        let rec = Recorder::new();
        rec.enable();
        let mut learner =
            TdRatioLearner::new(TdConfig::default(), SeedSource::new(4).stream("prp"));
        learner.attach_recorder(rec.clone(), 7);
        let mut ratio = learner.initial_ratio();
        for ep in 1..=5u64 {
            let mut o = obs(env_throughput(ratio, 1.0), ratio);
            o.time = SimTime::from_nanos(ep * 1_000_000_000);
            ratio = learner.episode_update(&o);
        }
        let events = rec.events();
        // Each episode records one Decision plus a zero-duration `decide`
        // span (open + close instants) on the same timestamp.
        assert_eq!(events.len(), 15, "three events per episode");
        let mut spans = 0usize;
        let mut decisions = Vec::new();
        for e in &events {
            match e.kind {
                EventKind::Decision { flow, step, .. } => {
                    assert_eq!(flow, 7);
                    decisions.push((e.time_ns, step));
                }
                EventKind::SpanOpen { kind, key, .. } => {
                    assert_eq!(kind, "decide");
                    assert_eq!(key, 7);
                    spans += 1;
                }
                EventKind::SpanClose { .. } => {}
                ref other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(spans, 5, "one decide span per episode");
        assert_eq!(decisions.len(), 5);
        for (i, (t, step)) in decisions.iter().enumerate() {
            assert_eq!(*t, (i as u64 + 1) * 1_000_000_000);
            assert_eq!(*step, i as u64);
        }
    }

    #[test]
    fn ratio_moves_in_discrete_steps() {
        let mut learner =
            TdRatioLearner::new(TdConfig::default(), SeedSource::new(3).stream("prp"));
        let mut prev = learner.initial_ratio().signed();
        for _ in 0..50 {
            let next = learner
                .episode_update(&obs(50e6, Ratio::from_signed(prev)))
                .signed();
            let step = (next - prev).abs();
            assert!(
                step < 0.4001,
                "actions move at most two kappa steps, got {step}"
            );
            prev = next;
        }
    }
}
