//! The protocol ratio `r` and its three representations (§IV-B).
//!
//! The paper uses `r` interchangeably as:
//!
//! * a **signed** value in `[-1, 1]` (−1 ≙ 100% TCP, +1 ≙ 100% UDT) —
//!   convenient for analysis and for the learner's state space;
//! * a **probability** in `[0, 1]` of picking UDT — convenient for the
//!   probabilistic selector; and
//! * a **rational** `p/q` — "p Ps for every q Qs", where the mapping of
//!   the minority symbol `P` and majority symbol `Q` onto TCP/UDT is
//!   defined by the sign — convenient for pattern selection.
//!
//! [`Ratio`] stores the signed form and converts on demand.

use crate::transport::Transport;

/// A target mix between TCP and UDT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ratio(f64);

impl Ratio {
    /// 100% TCP.
    pub const TCP_ONLY: Ratio = Ratio(-1.0);
    /// 100% UDT.
    pub const UDT_ONLY: Ratio = Ratio(1.0);
    /// A 50-50 mix.
    pub const BALANCED: Ratio = Ratio(0.0);

    /// From the signed form in `[-1, 1]` (clamped).
    #[must_use]
    pub fn from_signed(r: f64) -> Self {
        assert!(r.is_finite(), "ratio must be finite");
        Ratio(r.clamp(-1.0, 1.0))
    }

    /// From the probability-of-UDT form in `[0, 1]` (clamped).
    #[must_use]
    pub fn from_prob_udt(p: f64) -> Self {
        assert!(p.is_finite(), "ratio must be finite");
        Ratio((2.0 * p.clamp(0.0, 1.0)) - 1.0)
    }

    /// The signed form in `[-1, 1]`.
    #[must_use]
    pub fn signed(self) -> f64 {
        self.0
    }

    /// The probability-of-UDT form in `[0, 1]`.
    #[must_use]
    pub fn prob_udt(self) -> f64 {
        (self.0 + 1.0) / 2.0
    }

    /// The majority protocol at this ratio (ties go to TCP).
    #[must_use]
    pub fn majority(self) -> Transport {
        if self.0 > 0.0 {
            Transport::Udt
        } else {
            Transport::Tcp
        }
    }

    /// The minority protocol at this ratio.
    #[must_use]
    pub fn minority(self) -> Transport {
        match self.majority() {
            Transport::Udt => Transport::Tcp,
            _ => Transport::Udt,
        }
    }

    /// The rational form: `p` minority messages for every `q` majority
    /// messages, with `p + q ≤ max_total` and `p ≤ q`, chosen as the best
    /// rational approximation (Stern–Brocot search).
    #[must_use]
    pub fn fraction(self, max_total: u64) -> ProtocolFraction {
        let minority_frac = self.prob_udt().min(1.0 - self.prob_udt());
        let (p, total) = best_fraction(minority_frac, max_total.max(2));
        ProtocolFraction {
            minority: self.minority(),
            majority: self.majority(),
            p,
            q: total - p,
        }
    }
}

impl std::fmt::Display for Ratio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:+.3}", self.0)
    }
}

/// The rational representation of a [`Ratio`]: `p` messages of the
/// minority protocol for every `q` messages of the majority protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolFraction {
    /// The protocol occurring `p` times per pattern.
    pub minority: Transport,
    /// The protocol occurring `q` times per pattern.
    pub majority: Transport,
    /// Minority count per pattern.
    pub p: u64,
    /// Majority count per pattern.
    pub q: u64,
}

impl ProtocolFraction {
    /// The minority fraction `p / (p + q)`.
    #[must_use]
    pub fn minority_fraction(&self) -> f64 {
        if self.p + self.q == 0 {
            0.0
        } else {
            self.p as f64 / (self.p + self.q) as f64
        }
    }

    /// The equivalent probability of picking UDT.
    #[must_use]
    pub fn prob_udt(&self) -> f64 {
        match self.minority {
            Transport::Udt => self.minority_fraction(),
            _ => 1.0 - self.minority_fraction(),
        }
    }
}

/// Best rational approximation `n/d` of `x ∈ [0, 0.5]` with `d ≤ max_den`,
/// via Stern–Brocot mediant search. Returns `(n, d)`.
fn best_fraction(x: f64, max_den: u64) -> (u64, u64) {
    debug_assert!((0.0..=0.5).contains(&x));
    // Walk the Stern-Brocot tree between 0/1 and 1/1.
    let (mut lo_n, mut lo_d) = (0u64, 1u64);
    let (mut hi_n, mut hi_d) = (1u64, 1u64);
    let (mut best_n, mut best_d) = (0u64, 1u64);
    let mut best_err = x;
    loop {
        let med_n = lo_n + hi_n;
        let med_d = lo_d + hi_d;
        if med_d > max_den {
            break;
        }
        let med = med_n as f64 / med_d as f64;
        let err = (med - x).abs();
        if err < best_err {
            best_err = err;
            best_n = med_n;
            best_d = med_d;
        }
        if med < x {
            lo_n = med_n;
            lo_d = med_d;
        } else if med > x {
            hi_n = med_n;
            hi_d = med_d;
        } else {
            break;
        }
    }
    (best_n, best_d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_prob_round_trip() {
        for r in [-1.0, -0.5, 0.0, 0.25, 1.0] {
            let ratio = Ratio::from_signed(r);
            let back = Ratio::from_prob_udt(ratio.prob_udt());
            assert!((back.signed() - r).abs() < 1e-12);
        }
    }

    #[test]
    fn clamping() {
        assert_eq!(Ratio::from_signed(3.0).signed(), 1.0);
        assert_eq!(Ratio::from_signed(-3.0).signed(), -1.0);
        assert_eq!(Ratio::from_prob_udt(2.0).signed(), 1.0);
    }

    #[test]
    fn majority_minority_by_sign() {
        assert_eq!(Ratio::from_signed(-0.4).majority(), Transport::Tcp);
        assert_eq!(Ratio::from_signed(-0.4).minority(), Transport::Udt);
        assert_eq!(Ratio::from_signed(0.4).majority(), Transport::Udt);
        assert_eq!(Ratio::BALANCED.majority(), Transport::Tcp);
    }

    #[test]
    fn fraction_of_half_is_one_to_one() {
        let f = Ratio::BALANCED.fraction(100);
        assert_eq!((f.p, f.q), (1, 1));
        assert!((f.prob_udt() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fraction_of_pure_protocols() {
        let tcp = Ratio::TCP_ONLY.fraction(100);
        assert_eq!(tcp.p, 0);
        assert!((tcp.prob_udt() - 0.0).abs() < 1e-12);
        let udt = Ratio::UDT_ONLY.fraction(100);
        assert_eq!(udt.p, 0);
        assert!((udt.prob_udt() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_of_paper_targets() {
        // prob(UDT) = 1/3: minority UDT, 1 per 2 TCP.
        let f = Ratio::from_prob_udt(1.0 / 3.0).fraction(100);
        assert_eq!(f.minority, Transport::Udt);
        assert_eq!((f.p, f.q), (1, 2));
        // prob(UDT) = 4/5: minority TCP, 1 per 4 UDT.
        let f = Ratio::from_prob_udt(0.8).fraction(100);
        assert_eq!(f.minority, Transport::Tcp);
        assert_eq!((f.p, f.q), (1, 4));
        // prob(UDT) = 3/100.
        let f = Ratio::from_prob_udt(0.03).fraction(100);
        assert_eq!(f.minority, Transport::Udt);
        assert_eq!((f.p, f.q), (3, 97));
    }

    #[test]
    fn fraction_respects_max_total() {
        let f = Ratio::from_prob_udt(0.123_456).fraction(16);
        assert!(f.p + f.q <= 16);
        assert!((f.minority_fraction() - 0.123_456).abs() < 0.05);
    }

    #[test]
    fn display_signed() {
        assert_eq!(Ratio::from_signed(0.5).to_string(), "+0.500");
    }
}
