//! Per-destination congestion-controller stack policy — the DATA surface
//! for the transports × controllers action space.
//!
//! The paper's `DATA` meta-protocol picks a *transport* per message; this
//! module widens the choice to the transport **stack**: which congestion
//! controller the TCP side of the mix runs, per destination. A
//! [`StackPolicy`] is a shared directory of per-peer controller
//! overrides consulted by the network component every time it dials (or
//! redials) a TCP channel, and
//! [`NetworkComponent::swap_controller`](crate::net::NetworkComponent::swap_controller)
//! applies a change at runtime by recycling the live channel.
//!
//! The learner side of the surface lives in `kmsg-learning`:
//! [`StackSpace`] crosses the ratio dimension with one variant per
//! [`CcAlgorithm`]; [`controller_space`] and [`variant_algorithm`] are
//! the bridge between variant indices and concrete controllers.

use std::collections::HashMap;

use parking_lot::Mutex;

use kmsg_learning::{RatioSpace, StackSpace};
use kmsg_netsim::cc::CcAlgorithm;
use kmsg_netsim::packet::Endpoint;

/// Shared per-destination congestion-controller directory.
///
/// Cloning the [`std::sync::Arc`] it is typically wrapped in gives every
/// holder (the network component, the experiment driver, a learner) the
/// same view; an entry applies from the next dial to that peer onwards.
#[derive(Debug, Default)]
pub struct StackPolicy {
    overrides: Mutex<HashMap<Endpoint, CcAlgorithm>>,
}

impl StackPolicy {
    /// An empty policy: every peer uses the configured `TcpConfig::cc`.
    #[must_use]
    pub fn new() -> Self {
        StackPolicy::default()
    }

    /// The controller override for `remote`, if any.
    #[must_use]
    pub fn lookup(&self, remote: Endpoint) -> Option<CcAlgorithm> {
        self.overrides.lock().get(&remote).copied()
    }

    /// Sets the controller for `remote`; returns `true` if this changed
    /// the effective selection.
    pub fn set(&self, remote: Endpoint, algo: CcAlgorithm) -> bool {
        self.overrides.lock().insert(remote, algo) != Some(algo)
    }

    /// Removes the override for `remote`, restoring the configured
    /// default; returns the removed controller.
    pub fn clear(&self, remote: Endpoint) -> Option<CcAlgorithm> {
        self.overrides.lock().remove(&remote)
    }

    /// Number of peers with an override.
    #[must_use]
    pub fn len(&self) -> usize {
        self.overrides.lock().len()
    }

    /// Whether no peer has an override.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.overrides.lock().is_empty()
    }
}

/// The learner space matching the available controller variants: the
/// paper's ratio space × one variant per [`CcAlgorithm`] (Reno, CUBIC,
/// BBR) — the action space grown from {TCP, UDT} to transports ×
/// controllers.
#[must_use]
pub fn controller_space() -> StackSpace {
    StackSpace::new(RatioSpace::default(), CcAlgorithm::all().len())
}

/// Maps a [`StackSpace`] variant index to its concrete controller.
///
/// # Panics
///
/// Panics if `variant` is out of range for [`CcAlgorithm::all`].
#[must_use]
pub fn variant_algorithm(variant: usize) -> CcAlgorithm {
    CcAlgorithm::all()[variant]
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmsg_learning::Space;
    use kmsg_netsim::packet::NodeId;

    fn ep(port: u16) -> Endpoint {
        Endpoint::new(NodeId::from_index(1), port)
    }

    #[test]
    fn empty_policy_has_no_overrides() {
        let p = StackPolicy::new();
        assert!(p.is_empty());
        assert_eq!(p.lookup(ep(80)), None);
    }

    #[test]
    fn set_reports_effective_changes_only() {
        let p = StackPolicy::new();
        assert!(p.set(ep(80), CcAlgorithm::Cubic));
        assert!(!p.set(ep(80), CcAlgorithm::Cubic), "same algo is a no-op");
        assert!(p.set(ep(80), CcAlgorithm::Bbr));
        assert_eq!(p.lookup(ep(80)), Some(CcAlgorithm::Bbr));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn clear_restores_the_default() {
        let p = StackPolicy::new();
        p.set(ep(80), CcAlgorithm::Bbr);
        assert_eq!(p.clear(ep(80)), Some(CcAlgorithm::Bbr));
        assert_eq!(p.lookup(ep(80)), None);
        assert_eq!(p.clear(ep(80)), None);
    }

    #[test]
    fn overrides_are_per_peer() {
        let p = StackPolicy::new();
        p.set(ep(80), CcAlgorithm::Cubic);
        p.set(ep(81), CcAlgorithm::Bbr);
        assert_eq!(p.lookup(ep(80)), Some(CcAlgorithm::Cubic));
        assert_eq!(p.lookup(ep(81)), Some(CcAlgorithm::Bbr));
        assert_eq!(p.lookup(ep(82)), None);
    }

    #[test]
    fn controller_space_matches_the_algorithm_set() {
        let space = controller_space();
        assert_eq!(space.num_variants(), CcAlgorithm::all().len());
        assert_eq!(space.num_states(), 11 * 3);
        for (i, algo) in CcAlgorithm::all().into_iter().enumerate() {
            assert_eq!(variant_algorithm(i), algo);
        }
    }
}
