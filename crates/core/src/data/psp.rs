//! Protocol selection policies (§IV-B): assign a concrete transport (TCP
//! or UDT) to each individual `DATA` message so that a stream follows the
//! target protocol ratio — ideally without straying far from it even over
//! short windows ("messages on the wire").
//!
//! * [`RandomSelection`] — the baseline: a Bernoulli draw per message. The
//!   law of large numbers guarantees the long-run ratio, but short windows
//!   can be badly skewed, distorting the learner's rewards (Figure 1).
//! * [`PatternSelection`] — deterministic interleaving patterns
//!   (`p`-pattern and `p+1`-pattern, §IV-B4) that bound the deviation at
//!   every prefix and hit the ratio exactly over a full pattern.

use rand::Rng;

use kmsg_netsim::rng::RngStream;

use crate::data::ratio::{ProtocolFraction, Ratio};
use crate::transport::Transport;

/// Assigns a transport to each message of a `DATA` stream.
pub trait ProtocolSelectionPolicy: Send {
    /// Picks the transport for the next message.
    fn select(&mut self) -> Transport;

    /// The transport [`select`](Self::select) will return next, without
    /// consuming it (lets the interceptor stop releasing when that
    /// protocol's window is full, preserving the selection order).
    fn peek(&mut self) -> Transport;

    /// Installs a new target ratio (from the protocol ratio policy).
    fn update_ratio(&mut self, ratio: Ratio);

    /// The current target ratio.
    fn ratio(&self) -> Ratio;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Bernoulli selection: UDT with probability `prob_udt(r)`.
#[derive(Debug)]
pub struct RandomSelection {
    ratio: Ratio,
    rng: RngStream,
    pending: Option<Transport>,
}

impl RandomSelection {
    /// Creates the policy with an initial ratio.
    #[must_use]
    pub fn new(ratio: Ratio, rng: RngStream) -> Self {
        RandomSelection {
            ratio,
            rng,
            pending: None,
        }
    }

    fn draw(&mut self) -> Transport {
        if self.rng.gen::<f64>() < self.ratio.prob_udt() {
            Transport::Udt
        } else {
            Transport::Tcp
        }
    }
}

impl ProtocolSelectionPolicy for RandomSelection {
    fn select(&mut self) -> Transport {
        match self.pending.take() {
            Some(t) => t,
            None => self.draw(),
        }
    }

    fn peek(&mut self) -> Transport {
        if self.pending.is_none() {
            let t = self.draw();
            self.pending = Some(t);
        }
        self.pending.expect("just filled")
    }

    fn update_ratio(&mut self, ratio: Ratio) {
        self.ratio = ratio;
        // A pre-drawn choice from the old ratio is discarded.
        self.pending = None;
    }

    fn ratio(&self) -> Ratio {
        self.ratio
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Which of the two pattern constructions to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// `(Qᵇ P)ᵖ Q꜀` with `b = ⌊q/p⌋`, `c = q − p·b`.
    P,
    /// `(Qᵇ P)ᵖ Qᵇ Q꜀` with `b = ⌊q/(p+1)⌋`, `c = q − (p+1)·b`.
    PPlusOne,
    /// Whichever of the two leaves the smaller rest `c`
    /// (the paper's recommendation).
    MinimalRest,
}

/// Builds the `p`-pattern for a fraction.
#[must_use]
pub fn p_pattern(f: &ProtocolFraction) -> Vec<Transport> {
    if f.p == 0 {
        return vec![f.majority; usize::try_from(f.q.max(1)).expect("pattern fits")];
    }
    let b = f.q / f.p;
    let c = f.q - f.p * b;
    let mut out = Vec::with_capacity(usize::try_from(f.p + f.q).expect("pattern fits"));
    for _ in 0..f.p {
        out.extend(std::iter::repeat_n(f.majority, usize::try_from(b).expect("fits")));
        out.push(f.minority);
    }
    out.extend(std::iter::repeat_n(f.majority, usize::try_from(c).expect("fits")));
    out
}

/// Builds the `p+1`-pattern for a fraction.
#[must_use]
pub fn p_plus_one_pattern(f: &ProtocolFraction) -> Vec<Transport> {
    if f.p == 0 {
        return vec![f.majority; usize::try_from(f.q.max(1)).expect("pattern fits")];
    }
    let b = f.q / (f.p + 1);
    let c = f.q - (f.p + 1) * b;
    let mut out = Vec::with_capacity(usize::try_from(f.p + f.q).expect("pattern fits"));
    for _ in 0..f.p {
        out.extend(std::iter::repeat_n(f.majority, usize::try_from(b).expect("fits")));
        out.push(f.minority);
    }
    out.extend(std::iter::repeat_n(f.majority, usize::try_from(b + c).expect("fits")));
    out
}

/// The rest `c` of the `p`-pattern.
#[must_use]
pub fn p_pattern_rest(f: &ProtocolFraction) -> u64 {
    if f.p == 0 {
        0
    } else {
        f.q - f.p * (f.q / f.p)
    }
}

/// The rest `c` of the `p+1`-pattern.
#[must_use]
pub fn p_plus_one_pattern_rest(f: &ProtocolFraction) -> u64 {
    if f.p == 0 {
        0
    } else {
        f.q - (f.p + 1) * (f.q / (f.p + 1))
    }
}

/// Builds the pattern of the requested kind.
#[must_use]
pub fn build_pattern(f: &ProtocolFraction, kind: PatternKind) -> Vec<Transport> {
    match kind {
        PatternKind::P => p_pattern(f),
        PatternKind::PPlusOne => p_plus_one_pattern(f),
        PatternKind::MinimalRest => {
            // "In general it is best to select the pattern with the
            // smallest value for the rest c."
            if p_plus_one_pattern_rest(f) < p_pattern_rest(f) {
                p_plus_one_pattern(f)
            } else {
                p_pattern(f)
            }
        }
    }
}

/// The maximum deviation of any prefix's UDT fraction from the target
/// (the paper's criterion (a) for a good pattern).
#[must_use]
pub fn max_prefix_deviation(pattern: &[Transport], target_prob_udt: f64) -> f64 {
    let mut udt = 0usize;
    let mut worst: f64 = 0.0;
    for (i, t) in pattern.iter().enumerate() {
        if *t == Transport::Udt {
            udt += 1;
        }
        let frac = udt as f64 / (i + 1) as f64;
        worst = worst.max((frac - target_prob_udt).abs());
    }
    worst
}

/// Deterministic interleaving selection (§IV-B3/4).
#[derive(Debug)]
pub struct PatternSelection {
    ratio: Ratio,
    kind: PatternKind,
    max_total: u64,
    pattern: Vec<Transport>,
    pos: usize,
}

impl PatternSelection {
    /// Creates the policy; `max_total` bounds the pattern length (and so
    /// the finest representable ratio).
    #[must_use]
    pub fn new(ratio: Ratio, kind: PatternKind, max_total: u64) -> Self {
        let pattern = build_pattern(&ratio.fraction(max_total), kind);
        PatternSelection {
            ratio,
            kind,
            max_total,
            pattern,
            pos: 0,
        }
    }

    /// The active pattern (diagnostics).
    #[must_use]
    pub fn pattern(&self) -> &[Transport] {
        &self.pattern
    }
}

impl ProtocolSelectionPolicy for PatternSelection {
    fn select(&mut self) -> Transport {
        let t = self.pattern[self.pos];
        self.pos = (self.pos + 1) % self.pattern.len();
        t
    }

    fn peek(&mut self) -> Transport {
        self.pattern[self.pos]
    }

    fn update_ratio(&mut self, ratio: Ratio) {
        if (ratio.signed() - self.ratio.signed()).abs() > f64::EPSILON {
            self.ratio = ratio;
            self.pattern = build_pattern(&ratio.fraction(self.max_total), self.kind);
            self.pos = 0;
        }
    }

    fn ratio(&self) -> Ratio {
        self.ratio
    }

    fn name(&self) -> &'static str {
        "pattern"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmsg_netsim::rng::SeedSource;

    fn frac(prob_udt: f64) -> ProtocolFraction {
        Ratio::from_prob_udt(prob_udt).fraction(100)
    }

    fn count(pattern: &[Transport], t: Transport) -> usize {
        pattern.iter().filter(|&&x| x == t).count()
    }

    #[test]
    fn p_pattern_exact_counts() {
        let f = frac(1.0 / 3.0); // p=1 UDT per q=2 TCP
        let pat = p_pattern(&f);
        assert_eq!(pat.len(), 3);
        assert_eq!(count(&pat, Transport::Udt), 1);
        assert_eq!(count(&pat, Transport::Tcp), 2);
    }

    #[test]
    fn half_gives_alternation() {
        let f = frac(0.5);
        let pat = p_pattern(&f);
        // (QP)* for p=q=1: alternating as in the paper's (up)* example.
        assert_eq!(pat.len(), 2);
        assert_ne!(pat[0], pat[1]);
    }

    #[test]
    fn patterns_have_exact_ratio_over_full_run() {
        for prob in [0.03, 0.2, 1.0 / 3.0, 0.5, 0.8, 0.97] {
            let f = frac(prob);
            for kind in [PatternKind::P, PatternKind::PPlusOne, PatternKind::MinimalRest] {
                let pat = build_pattern(&f, kind);
                let udt = count(&pat, Transport::Udt) as f64;
                let total = pat.len() as f64;
                assert!(
                    (udt / total - f.prob_udt()).abs() < 1e-9,
                    "kind {kind:?} prob {prob}: {udt}/{total}"
                );
            }
        }
    }

    #[test]
    fn pure_ratios_produce_single_protocol() {
        let pat = build_pattern(&frac(0.0), PatternKind::MinimalRest);
        assert_eq!(count(&pat, Transport::Udt), 0);
        let pat = build_pattern(&frac(1.0), PatternKind::MinimalRest);
        assert_eq!(count(&pat, Transport::Tcp), 0);
    }

    #[test]
    fn minimal_rest_picks_smaller_c() {
        for prob in [0.05, 0.1, 0.15, 0.22, 0.3, 0.42] {
            let f = frac(prob);
            let chosen = build_pattern(&f, PatternKind::MinimalRest);
            if p_plus_one_pattern_rest(&f) < p_pattern_rest(&f) {
                assert_eq!(chosen, p_plus_one_pattern(&f), "prob {prob}");
            } else {
                assert_eq!(chosen, p_pattern(&f), "prob {prob}");
            }
        }
    }

    #[test]
    fn pattern_prefix_deviation_beats_random() {
        use kmsg_netsim::rng::SeedSource;
        let target = 1.0 / 3.0;
        let f = frac(target);
        let pat = build_pattern(&f, PatternKind::MinimalRest);
        let pat_dev = max_prefix_deviation(&pat, target);

        // One random draw of the same length, measured the same way.
        let mut random = RandomSelection::new(
            Ratio::from_prob_udt(target),
            SeedSource::new(5).stream("psp-test"),
        );
        let rand_run: Vec<Transport> = (0..pat.len() * 50).map(|_| random.select()).collect();
        let rand_dev = max_prefix_deviation(&rand_run, target);
        assert!(
            pat_dev <= rand_dev,
            "pattern deviation {pat_dev} must not exceed random {rand_dev}"
        );
        // After the first element any policy is off; the pattern must still
        // be tight by the end of one period.
        assert!(pat_dev < 0.7);
    }

    #[test]
    fn pattern_selection_cycles() {
        let mut psp = PatternSelection::new(
            Ratio::from_prob_udt(0.5),
            PatternKind::MinimalRest,
            100,
        );
        let first: Vec<Transport> = (0..4).map(|_| psp.select()).collect();
        assert_eq!(first[0], first[2]);
        assert_eq!(first[1], first[3]);
        assert_ne!(first[0], first[1]);
        assert_eq!(psp.name(), "pattern");
    }

    #[test]
    fn peek_matches_select_for_both_policies() {
        let mut pat = PatternSelection::new(
            Ratio::from_prob_udt(0.3),
            PatternKind::MinimalRest,
            100,
        );
        for _ in 0..50 {
            let peeked = pat.peek();
            assert_eq!(pat.select(), peeked);
        }
        let mut rnd = RandomSelection::new(
            Ratio::from_prob_udt(0.3),
            SeedSource::new(4).stream("peek"),
        );
        for _ in 0..50 {
            let peeked = rnd.peek();
            assert_eq!(rnd.select(), peeked);
        }
    }

    #[test]
    fn update_ratio_rebuilds_pattern() {
        let mut psp =
            PatternSelection::new(Ratio::TCP_ONLY, PatternKind::MinimalRest, 100);
        assert_eq!(psp.select(), Transport::Tcp);
        psp.update_ratio(Ratio::UDT_ONLY);
        assert_eq!(psp.ratio(), Ratio::UDT_ONLY);
        assert_eq!(psp.select(), Transport::Udt);
    }

    #[test]
    fn random_selection_long_run_ratio() {
        let mut psp = RandomSelection::new(
            Ratio::from_prob_udt(0.25),
            SeedSource::new(9).stream("psp-random"),
        );
        let n = 40_000;
        let udt = (0..n).filter(|_| psp.select() == Transport::Udt).count();
        let frac = udt as f64 / f64::from(n);
        assert!((frac - 0.25).abs() < 0.01, "law of large numbers: {frac}");
        assert_eq!(psp.name(), "random");
    }

    #[test]
    fn paper_example_3_100_has_long_majority_runs() {
        // At r = 3/100 the pattern "mainly consists of long sequences of Qs
        // with the occasional P" — longer than 16 messages on the wire.
        let f = frac(0.03);
        let pat = build_pattern(&f, PatternKind::MinimalRest);
        let mut longest_run = 0;
        let mut run = 0;
        for t in &pat {
            if *t == Transport::Tcp {
                run += 1;
                longest_run = longest_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(longest_run > 16, "longest TCP run {longest_run}");
    }
}
