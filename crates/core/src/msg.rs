//! Network messages and the network port.
//!
//! [`NetMessage`] is the envelope travelling through the
//! [`NetworkPort`]: a [`NetHeader`] plus a payload that is either still
//! *typed* (created locally, never serialised — the virtual-node
//! reflection case of §III-B) or raw *bytes* with a [`SerId`] (arrived
//! from the wire). [`NetMessage::try_deserialise`] recovers the value in
//! both cases, so receiving components are agnostic to whether a message
//! crossed the network.
//!
//! Delivery notifications mirror the paper's `MessageNotify.Req/Resp`
//! (listing 1): a request wraps the message with a token; the network
//! component answers with the token and a [`DeliveryStatus`]. Without a
//! notification request, messages are fire-and-forget with **at-most-once**
//! semantics.

use std::sync::Arc;

use bytes::Bytes;

use kmsg_component::port::Port;

use crate::address::{NetAddress, VnodeId};
use crate::header::{BasicHeader, NetHeader};
use crate::ser::{Deserialiser, SerError, SerId, Serialisable};
use crate::transport::Transport;

/// Anything with a header (the paper's `Msg` interface, listing 2).
pub trait Msg {
    /// The header type.
    type H;
    /// Read access to the header.
    fn header(&self) -> &Self::H;
}

#[derive(Debug, Clone)]
enum MsgData {
    /// Created locally; serialised only if it actually leaves the host.
    Typed(Arc<dyn Serialisable>),
    /// Arrived from the wire.
    Ser(SerId, Bytes),
}

/// The message envelope carried by the [`NetworkPort`].
#[derive(Debug, Clone)]
pub struct NetMessage {
    header: NetHeader,
    data: MsgData,
}

impl Msg for NetMessage {
    type H = NetHeader;

    fn header(&self) -> &NetHeader {
        &self.header
    }
}

impl NetMessage {
    /// Wraps a typed value with a basic header.
    #[must_use]
    pub fn new(
        src: NetAddress,
        dst: NetAddress,
        proto: Transport,
        value: impl Serialisable,
    ) -> Self {
        NetMessage {
            header: NetHeader::Basic(BasicHeader::new(src, dst, proto)),
            data: MsgData::Typed(Arc::new(value)),
        }
    }

    /// Wraps a typed value with an arbitrary header.
    #[must_use]
    pub fn with_header(header: NetHeader, value: impl Serialisable) -> Self {
        NetMessage {
            header,
            data: MsgData::Typed(Arc::new(value)),
        }
    }

    /// Rebuilds a message from wire bytes (network layer use).
    #[must_use]
    pub fn from_wire(header: NetHeader, ser_id: SerId, payload: Bytes) -> Self {
        NetMessage {
            header,
            data: MsgData::Ser(ser_id, payload),
        }
    }

    /// The header.
    #[must_use]
    pub fn header(&self) -> &NetHeader {
        &self.header
    }

    /// Mutable header access (interceptors rewrite the protocol; routers
    /// advance the route).
    pub fn header_mut(&mut self) -> &mut NetHeader {
        &mut self.header
    }

    /// The payload's serialiser id.
    #[must_use]
    pub fn ser_id(&self) -> SerId {
        match &self.data {
            MsgData::Typed(v) => v.ser_id(),
            MsgData::Ser(id, _) => *id,
        }
    }

    /// Whether the payload crossed the wire (false ⇒ locally reflected).
    #[must_use]
    pub fn is_from_wire(&self) -> bool {
        matches!(self.data, MsgData::Ser(..))
    }

    /// Recovers the payload value.
    ///
    /// For locally-delivered messages this is a cheap downcast (no bytes
    /// were ever produced); for wire messages the registered deserialiser
    /// runs.
    ///
    /// # Errors
    ///
    /// [`SerError::WrongType`] / [`SerError::WrongSerId`] if the payload is
    /// of a different type, or any deserialisation error.
    pub fn try_deserialise<T, D>(&self) -> Result<T, SerError>
    where
        T: Clone + 'static,
        D: Deserialiser<T>,
    {
        match &self.data {
            MsgData::Typed(v) => v
                .as_any()
                .downcast_ref::<T>()
                .cloned()
                .ok_or(SerError::WrongType),
            MsgData::Ser(id, bytes) => {
                if *id != D::SER_ID {
                    return Err(SerError::WrongSerId {
                        found: *id,
                        expected: D::SER_ID,
                    });
                }
                let mut cursor = bytes.clone();
                D::deserialise(&mut cursor)
            }
        }
    }

    /// Serialises the payload for the wire (network layer use).
    ///
    /// # Errors
    ///
    /// Propagates the payload serialiser's failure.
    pub fn payload_to_bytes(&self) -> Result<(SerId, Bytes), SerError> {
        match &self.data {
            MsgData::Typed(v) => {
                let mut buf = bytes::BytesMut::with_capacity(v.size_hint().unwrap_or(64));
                v.serialise(&mut buf)?;
                Ok((v.ser_id(), buf.freeze()))
            }
            MsgData::Ser(id, bytes) => Ok((*id, bytes.clone())),
        }
    }

    /// Approximate payload size in bytes (for queue accounting before
    /// serialisation happens).
    #[must_use]
    pub fn payload_size_estimate(&self) -> usize {
        match &self.data {
            MsgData::Typed(v) => v.size_hint().unwrap_or(64),
            MsgData::Ser(_, bytes) => bytes.len(),
        }
    }
}

/// Correlates a `MessageNotify` request with its response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NotifyToken {
    /// The requesting virtual node, if any (lets vnode channels route the
    /// response back to the right subtree).
    pub vnode: Option<VnodeId>,
    /// Caller-chosen correlation id.
    pub id: u64,
}

impl NotifyToken {
    /// A token without vnode scoping.
    #[must_use]
    pub fn new(id: u64) -> Self {
        NotifyToken { vnode: None, id }
    }

    /// A token scoped to a virtual node.
    #[must_use]
    pub fn for_vnode(vnode: VnodeId, id: u64) -> Self {
        NotifyToken {
            vnode: Some(vnode),
            id,
        }
    }
}

/// Why a send failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The message exceeds UDP's datagram limit.
    TooLargeForUdp,
    /// The connection died before the message was written.
    ChannelClosed,
    /// No route/listener reachable (connect failed).
    Unreachable,
    /// The payload failed to serialise.
    Serialisation,
    /// `Transport::Data` reached the network component without an
    /// interceptor having resolved it.
    UnresolvedDataProtocol,
    /// Channel supervision exhausted its reconnect budget with this
    /// message still queued or unacknowledged.
    RetryBudgetExhausted,
}

impl SendError {
    /// Number of variants (sizes per-kind counter arrays).
    pub const COUNT: usize = 6;

    /// Stable snake_case label for stats/telemetry output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SendError::TooLargeForUdp => "too_large_for_udp",
            SendError::ChannelClosed => "channel_closed",
            SendError::Unreachable => "unreachable",
            SendError::Serialisation => "serialisation",
            SendError::UnresolvedDataProtocol => "unresolved_data_protocol",
            SendError::RetryBudgetExhausted => "retry_budget_exhausted",
        }
    }

    /// Stable index into per-kind counter arrays (declaration order).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            SendError::TooLargeForUdp => 0,
            SendError::ChannelClosed => 1,
            SendError::Unreachable => 2,
            SendError::Serialisation => 3,
            SendError::UnresolvedDataProtocol => 4,
            SendError::RetryBudgetExhausted => 5,
        }
    }

    /// All variants, in index order.
    pub const ALL: [SendError; SendError::COUNT] = [
        SendError::TooLargeForUdp,
        SendError::ChannelClosed,
        SendError::Unreachable,
        SendError::Serialisation,
        SendError::UnresolvedDataProtocol,
        SendError::RetryBudgetExhausted,
    ];
}

/// Outcome reported for a notification request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryStatus {
    /// Fully handed to the transport; a reliable transport will deliver it
    /// unless the connection dies.
    Sent,
    /// Delivered locally without serialisation (same-host reflection).
    DeliveredLocally,
    /// The send failed.
    Failed(SendError),
}

impl DeliveryStatus {
    /// Whether the message was sent or delivered.
    #[must_use]
    pub fn is_success(&self) -> bool {
        !matches!(self, DeliveryStatus::Failed(_))
    }
}

/// Requests travelling *to* the network component.
#[derive(Debug, Clone)]
pub enum NetRequest {
    /// Fire-and-forget send.
    Msg(NetMessage),
    /// Send with delivery notification (the paper's `MessageNotify.Req`).
    NotifyReq(NotifyToken, NetMessage),
}

impl NetRequest {
    /// The message inside the request.
    #[must_use]
    pub fn message(&self) -> &NetMessage {
        match self {
            NetRequest::Msg(m) | NetRequest::NotifyReq(_, m) => m,
        }
    }
}

/// Channel status transitions reported by the network component's
/// supervisor, so components above can observe outages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnStatus {
    /// The channel closed unexpectedly; the supervisor is redialling.
    ConnectionLost,
    /// A redial succeeded after `attempts` tries; queued frames are being
    /// re-sent (at-least-once — the session layer deduplicates).
    ConnectionRestored {
        /// Reconnect attempts it took to restore the channel.
        attempts: u32,
    },
    /// The reconnect budget is exhausted; queued frames were failed. The
    /// supervisor keeps probing and reports `ConnectionRestored` on
    /// recovery.
    ConnectionDropped,
}

impl ConnStatus {
    /// Stable snake_case label for telemetry output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ConnStatus::ConnectionLost => "lost",
            ConnStatus::ConnectionRestored { .. } => "restored",
            ConnStatus::ConnectionDropped => "dropped",
        }
    }
}

/// A [`ConnStatus`] transition together with the channel it happened on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelStatus {
    /// The remote peer of the supervised channel.
    pub peer: NetAddress,
    /// The channel's transport.
    pub transport: Transport,
    /// What happened.
    pub status: ConnStatus,
}

/// Indications travelling *from* the network component.
#[derive(Debug, Clone)]
pub enum NetIndication {
    /// An inbound message.
    Msg(NetMessage),
    /// Answer to a notification request (the paper's
    /// `MessageNotify.Resp`).
    NotifyResp(NotifyToken, DeliveryStatus),
    /// A supervised channel changed status (outage observed, reconnect
    /// succeeded, or the supervisor gave up).
    Status(ChannelStatus),
}

/// Kompics' network port (listing 1): messages travel in both directions;
/// notification requests travel up, responses travel down.
#[derive(Debug, Clone, Copy)]
pub struct NetworkPort;

impl Port for NetworkPort {
    type Request = NetRequest;
    type Indication = NetIndication;
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmsg_netsim::engine::Sim;
    use kmsg_netsim::network::Network;
    use kmsg_netsim::packet::NodeId;

    fn nodes() -> (NodeId, NodeId) {
        let sim = Sim::new(1);
        let net = Network::new(&sim);
        (net.add_node("a"), net.add_node("b"))
    }

    fn msg(proto: Transport) -> NetMessage {
        let (a, b) = nodes();
        NetMessage::new(
            NetAddress::new(a, 1),
            NetAddress::new(b, 2),
            proto,
            "payload".to_string(),
        )
    }

    #[test]
    fn typed_message_downcasts_without_serialisation() {
        let m = msg(Transport::Tcp);
        assert!(!m.is_from_wire());
        let s: String = m.try_deserialise::<String, String>().expect("downcast");
        assert_eq!(s, "payload");
        // Wrong type is an error, not a panic.
        assert_eq!(
            m.try_deserialise::<u64, u64>(),
            Err(SerError::WrongType)
        );
    }

    #[test]
    fn wire_round_trip() {
        let m = msg(Transport::Udt);
        let (id, bytes) = m.payload_to_bytes().expect("serialise");
        let wire = NetMessage::from_wire(m.header().clone(), id, bytes);
        assert!(wire.is_from_wire());
        let s: String = wire.try_deserialise::<String, String>().expect("deser");
        assert_eq!(s, "payload");
        assert_eq!(
            wire.try_deserialise::<u64, u64>(),
            Err(SerError::WrongSerId {
                found: SerId(2),
                expected: SerId(3)
            })
        );
    }

    #[test]
    fn notify_token_builders() {
        assert_eq!(NotifyToken::new(5).vnode, None);
        assert_eq!(
            NotifyToken::for_vnode(VnodeId(2), 5).vnode,
            Some(VnodeId(2))
        );
    }

    #[test]
    fn delivery_status_success() {
        assert!(DeliveryStatus::Sent.is_success());
        assert!(DeliveryStatus::DeliveredLocally.is_success());
        assert!(!DeliveryStatus::Failed(SendError::ChannelClosed).is_success());
    }

    #[test]
    fn request_exposes_message() {
        let m = msg(Transport::Tcp);
        let r = NetRequest::NotifyReq(NotifyToken::new(1), m.clone());
        assert_eq!(r.message().ser_id(), m.ser_id());
    }

    #[test]
    fn msg_trait_view() {
        let m = msg(Transport::Tcp);
        let h: &NetHeader = Msg::header(&m);
        assert_eq!(h.protocol(), Transport::Tcp);
    }
}
