//! Message headers.
//!
//! Mirrors the paper's `Header` interface (listing 3) and its two notable
//! implementations: the plain [`BasicHeader`] and the multi-hop
//! [`RoutingHeader`] (listing 5), which overrides source/destination while
//! a [`Route`] is present. [`DataHeader`] marks messages for the adaptive
//! `DATA` interceptor (§IV-A).

use std::collections::VecDeque;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::address::{Address, NetAddress, VnodeId};
use crate::ser::SerError;
use crate::transport::Transport;

/// The minimum features the network layer requires of a header
/// (the paper's `Header` interface).
pub trait Header<A: Address> {
    /// Originator of the message.
    fn source(&self) -> &A;
    /// Where the message should go next (may be an intermediate hop).
    fn destination(&self) -> &A;
    /// The transport protocol requested for this message.
    fn protocol(&self) -> Transport;
}

/// Source, destination and protocol — nothing more.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicHeader {
    /// Originator.
    pub src: NetAddress,
    /// Final destination.
    pub dst: NetAddress,
    /// Requested transport.
    pub proto: Transport,
}

impl BasicHeader {
    /// Creates a header.
    #[must_use]
    pub fn new(src: NetAddress, dst: NetAddress, proto: Transport) -> Self {
        BasicHeader { src, dst, proto }
    }
}

impl Header<NetAddress> for BasicHeader {
    fn source(&self) -> &NetAddress {
        &self.src
    }

    fn destination(&self) -> &NetAddress {
        &self.dst
    }

    fn protocol(&self) -> Transport {
        self.proto
    }
}

/// A multi-hop forwarding route: the remaining intermediate hops plus the
/// address to present as `source` while the route is active (the paper's
/// "Forwardable Trait").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Source presented while forwarding (e.g. the original sender, so the
    /// final receiver can reply directly).
    pub source: NetAddress,
    /// Remaining intermediate hops, in order.
    pub hops: VecDeque<NetAddress>,
}

impl Route {
    /// A route through the given hops, presenting `source`.
    #[must_use]
    pub fn new(source: NetAddress, hops: impl IntoIterator<Item = NetAddress>) -> Self {
        Route {
            source,
            hops: hops.into_iter().collect(),
        }
    }

    /// Whether an intermediate hop remains.
    #[must_use]
    pub fn has_next(&self) -> bool {
        !self.hops.is_empty()
    }
}

/// A header that forwards through intermediate hosts before reaching the
/// base destination (paper listing 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingHeader {
    /// The underlying header (final destination, reply source).
    pub base: BasicHeader,
    /// The active route, if any.
    pub route: Option<Route>,
    /// Remaining forwarding budget. Decremented by every host that forwards
    /// the message; a host that would forward at `0` drops it instead
    /// (counted in `MiddlewareStats::ttl_drops`), so a malformed or stale
    /// route can never loop forever.
    pub ttl: u8,
}

/// Default forwarding budget for new routes — generous against any sane
/// overlay diameter, small enough to kill a loop quickly.
pub const DEFAULT_TTL: u8 = 32;

impl RoutingHeader {
    /// Wraps `base` with a route through `hops` at [`DEFAULT_TTL`].
    #[must_use]
    pub fn with_route(base: BasicHeader, hops: impl IntoIterator<Item = NetAddress>) -> Self {
        let source = base.src;
        RoutingHeader {
            base,
            route: Some(Route::new(source, hops)),
            ttl: DEFAULT_TTL,
        }
    }

    /// Consumes the next hop; returns whether a hop was consumed. Called by
    /// the forwarding host after receiving the message.
    pub fn advance(&mut self) -> bool {
        match self.route.as_mut() {
            Some(route) => route.hops.pop_front().is_some(),
            None => false,
        }
    }
}

impl Header<NetAddress> for RoutingHeader {
    fn source(&self) -> &NetAddress {
        match &self.route {
            Some(route) => &route.source,
            None => &self.base.src,
        }
    }

    fn destination(&self) -> &NetAddress {
        match &self.route {
            Some(route) if route.has_next() => &route.hops[0],
            _ => &self.base.dst,
        }
    }

    fn protocol(&self) -> Transport {
        self.base.proto
    }
}

/// Marks a message as belonging to a `DATA` stream: the interceptor
/// rewrites [`DataHeader::selected`] to TCP or UDT per its policy; the
/// requested protocol reads as [`Transport::Data`] until then.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataHeader {
    /// Source and final destination.
    pub base: BasicHeader,
    /// The concrete protocol chosen by the protocol selection policy.
    pub selected: Option<Transport>,
}

impl DataHeader {
    /// Creates a `DATA` header between `src` and `dst`.
    #[must_use]
    pub fn new(src: NetAddress, dst: NetAddress) -> Self {
        DataHeader {
            base: BasicHeader::new(src, dst, Transport::Data),
            selected: None,
        }
    }
}

impl Header<NetAddress> for DataHeader {
    fn source(&self) -> &NetAddress {
        &self.base.src
    }

    fn destination(&self) -> &NetAddress {
        &self.base.dst
    }

    fn protocol(&self) -> Transport {
        self.selected.unwrap_or(Transport::Data)
    }
}

/// The concrete header carried by [`NetMessage`](crate::msg::NetMessage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetHeader {
    /// Plain point-to-point header.
    Basic(BasicHeader),
    /// Multi-hop forwarding header.
    Routing(RoutingHeader),
    /// Adaptive `DATA`-stream header.
    Data(DataHeader),
}

impl NetHeader {
    /// The final destination (ignoring intermediate hops).
    #[must_use]
    pub fn final_destination(&self) -> &NetAddress {
        match self {
            NetHeader::Basic(h) => &h.dst,
            NetHeader::Routing(h) => &h.base.dst,
            NetHeader::Data(h) => &h.base.dst,
        }
    }

    /// The effective transport (next-hop view).
    #[must_use]
    pub fn protocol(&self) -> Transport {
        match self {
            NetHeader::Basic(h) => h.protocol(),
            NetHeader::Routing(h) => h.protocol(),
            NetHeader::Data(h) => h.protocol(),
        }
    }

    /// The source address (route-aware).
    #[must_use]
    pub fn source(&self) -> &NetAddress {
        match self {
            NetHeader::Basic(h) => h.source(),
            NetHeader::Routing(h) => h.source(),
            NetHeader::Data(h) => h.source(),
        }
    }

    /// The next-hop destination (route-aware).
    #[must_use]
    pub fn destination(&self) -> &NetAddress {
        match self {
            NetHeader::Basic(h) => h.destination(),
            NetHeader::Routing(h) => h.destination(),
            NetHeader::Data(h) => h.destination(),
        }
    }

    /// Serialised size upper bound.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        let addr = 15; // node(4) + port(2) + vnode flag(1) + vnode(8)
        match self {
            NetHeader::Basic(_) | NetHeader::Data(_) => 2 + 2 * addr,
            NetHeader::Routing(h) => {
                let hops = h.route.as_ref().map_or(0, |r| r.hops.len());
                3 + (3 + hops) * addr + 4
            }
        }
    }
}

// --- wire encoding -----------------------------------------------------

fn put_addr(buf: &mut BytesMut, addr: &NetAddress) {
    buf.put_u32(addr.node().index());
    buf.put_u16(addr.port());
    match addr.vnode() {
        Some(VnodeId(id)) => {
            buf.put_u8(1);
            buf.put_u64(id);
        }
        None => buf.put_u8(0),
    }
}

fn get_addr(buf: &mut Bytes) -> Result<NetAddress, SerError> {
    const CTX: &str = "NetAddress";
    if buf.remaining() < 7 {
        return Err(SerError::Truncated { context: CTX });
    }
    let node = buf.get_u32();
    let port = buf.get_u16();
    let has_vnode = buf.get_u8();
    let addr = NetAddress::from_socket(kmsg_netsim::packet::Endpoint::new(
        node_id_from_index(node),
        port,
    ));
    if has_vnode == 1 {
        if buf.remaining() < 8 {
            return Err(SerError::Truncated { context: CTX });
        }
        Ok(addr.with_vnode(VnodeId(buf.get_u64())))
    } else {
        Ok(addr)
    }
}

fn node_id_from_index(index: u32) -> kmsg_netsim::packet::NodeId {
    kmsg_netsim::packet::NodeId::from_index(index)
}

impl NetHeader {
    /// Writes the header.
    pub fn serialise(&self, buf: &mut BytesMut) {
        match self {
            NetHeader::Basic(h) => {
                buf.put_u8(0);
                put_addr(buf, &h.src);
                put_addr(buf, &h.dst);
                buf.put_u8(h.proto.to_byte());
            }
            NetHeader::Routing(h) => {
                buf.put_u8(1);
                put_addr(buf, &h.base.src);
                put_addr(buf, &h.base.dst);
                buf.put_u8(h.base.proto.to_byte());
                buf.put_u8(h.ttl);
                match &h.route {
                    Some(route) => {
                        buf.put_u8(1);
                        put_addr(buf, &route.source);
                        buf.put_u32(u32::try_from(route.hops.len()).expect("route too long"));
                        for hop in &route.hops {
                            put_addr(buf, hop);
                        }
                    }
                    None => buf.put_u8(0),
                }
            }
            NetHeader::Data(h) => {
                buf.put_u8(2);
                put_addr(buf, &h.base.src);
                put_addr(buf, &h.base.dst);
                buf.put_u8(h.selected.unwrap_or(Transport::Data).to_byte());
            }
        }
    }

    /// Reads a header.
    ///
    /// # Errors
    ///
    /// Returns [`SerError`] on truncated or invalid input.
    pub fn deserialise(buf: &mut Bytes) -> Result<NetHeader, SerError> {
        const CTX: &str = "NetHeader";
        if buf.remaining() < 1 {
            return Err(SerError::Truncated { context: CTX });
        }
        let kind = buf.get_u8();
        let src = get_addr(buf)?;
        let dst = get_addr(buf)?;
        if buf.remaining() < 1 {
            return Err(SerError::Truncated { context: CTX });
        }
        let proto =
            Transport::from_byte(buf.get_u8()).ok_or(SerError::Invalid { context: CTX })?;
        match kind {
            0 => Ok(NetHeader::Basic(BasicHeader::new(src, dst, proto))),
            1 => {
                if buf.remaining() < 2 {
                    return Err(SerError::Truncated { context: CTX });
                }
                let ttl = buf.get_u8();
                let has_route = buf.get_u8() == 1;
                let route = if has_route {
                    let source = get_addr(buf)?;
                    if buf.remaining() < 4 {
                        return Err(SerError::Truncated { context: CTX });
                    }
                    let n = buf.get_u32() as usize;
                    let mut hops = VecDeque::with_capacity(n.min(1024));
                    for _ in 0..n {
                        hops.push_back(get_addr(buf)?);
                    }
                    Some(Route { source, hops })
                } else {
                    None
                };
                Ok(NetHeader::Routing(RoutingHeader {
                    base: BasicHeader::new(src, dst, proto),
                    route,
                    ttl,
                }))
            }
            2 => Ok(NetHeader::Data(DataHeader {
                base: BasicHeader::new(src, dst, Transport::Data),
                selected: if proto == Transport::Data {
                    None
                } else {
                    Some(proto)
                },
            })),
            _ => Err(SerError::Invalid { context: CTX }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmsg_netsim::engine::Sim;
    use kmsg_netsim::network::Network;
    use kmsg_netsim::packet::NodeId;

    fn nodes() -> (NodeId, NodeId, NodeId) {
        let sim = Sim::new(1);
        let net = Network::new(&sim);
        (net.add_node("a"), net.add_node("b"), net.add_node("c"))
    }

    fn round_trip(h: &NetHeader) -> NetHeader {
        let mut buf = BytesMut::new();
        h.serialise(&mut buf);
        let mut bytes = buf.freeze();
        NetHeader::deserialise(&mut bytes).expect("header round trip")
    }

    #[test]
    fn basic_header_round_trip() {
        let (a, b, _) = nodes();
        let h = NetHeader::Basic(BasicHeader::new(
            NetAddress::new(a, 1000),
            NetAddress::new(b, 2000).with_vnode(VnodeId(7)),
            Transport::Udt,
        ));
        assert_eq!(round_trip(&h), h);
        assert_eq!(h.protocol(), Transport::Udt);
    }

    #[test]
    fn data_header_round_trip_preserves_selection() {
        let (a, b, _) = nodes();
        let mut h = DataHeader::new(NetAddress::new(a, 1), NetAddress::new(b, 2));
        assert_eq!(h.protocol(), Transport::Data);
        h.selected = Some(Transport::Tcp);
        assert_eq!(h.protocol(), Transport::Tcp);
        let wire = round_trip(&NetHeader::Data(h.clone()));
        assert_eq!(wire.protocol(), Transport::Tcp);
    }

    #[test]
    fn routing_header_presents_next_hop() {
        let (a, b, c) = nodes();
        let src = NetAddress::new(a, 1);
        let dst = NetAddress::new(c, 3);
        let mid = NetAddress::new(b, 2);
        let mut h = RoutingHeader::with_route(
            BasicHeader::new(src, dst, Transport::Tcp),
            vec![mid],
        );
        assert_eq!(*h.destination(), mid, "route active: next hop");
        assert_eq!(*h.source(), src);
        assert!(h.advance());
        assert_eq!(*h.destination(), dst, "route exhausted: final dst");
        assert!(!h.advance());
    }

    #[test]
    fn routing_header_round_trip() {
        let (a, b, c) = nodes();
        let h = NetHeader::Routing(RoutingHeader::with_route(
            BasicHeader::new(NetAddress::new(a, 1), NetAddress::new(c, 3), Transport::Udp),
            vec![NetAddress::new(b, 2), NetAddress::new(b, 4)],
        ));
        assert_eq!(round_trip(&h), h);
    }

    #[test]
    fn routing_header_ttl_defaults_and_round_trips() {
        let (a, b, c) = nodes();
        let mut h = RoutingHeader::with_route(
            BasicHeader::new(NetAddress::new(a, 1), NetAddress::new(c, 3), Transport::Tcp),
            vec![NetAddress::new(b, 2)],
        );
        assert_eq!(h.ttl, DEFAULT_TTL);
        h.ttl = 3;
        let wire = round_trip(&NetHeader::Routing(h.clone()));
        match wire {
            NetHeader::Routing(r) => assert_eq!(r.ttl, 3),
            other => panic!("expected routing header, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_rejected() {
        let (a, b, _) = nodes();
        let h = NetHeader::Basic(BasicHeader::new(
            NetAddress::new(a, 1),
            NetAddress::new(b, 2),
            Transport::Tcp,
        ));
        let mut buf = BytesMut::new();
        h.serialise(&mut buf);
        let full = buf.freeze();
        for cut in [0, 1, 5, full.len() - 1] {
            let mut short = full.slice(0..cut);
            assert!(NetHeader::deserialise(&mut short).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn encoded_len_is_an_upper_bound() {
        let (a, b, c) = nodes();
        for h in [
            NetHeader::Basic(BasicHeader::new(
                NetAddress::new(a, 1).with_vnode(VnodeId(1)),
                NetAddress::new(b, 2).with_vnode(VnodeId(2)),
                Transport::Tcp,
            )),
            NetHeader::Routing(RoutingHeader::with_route(
                BasicHeader::new(NetAddress::new(a, 1), NetAddress::new(c, 3), Transport::Udp),
                vec![NetAddress::new(b, 2)],
            )),
        ] {
            let mut buf = BytesMut::new();
            h.serialise(&mut buf);
            assert!(buf.len() <= h.encoded_len(), "{h:?}");
        }
    }
}
