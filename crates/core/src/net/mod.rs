//! The network component — the reproduction's analog of the paper's
//! `NettyNetwork` (§III).
//!
//! One [`NetworkComponent`] instance provides Kompics' network port
//! ([`NetworkPort`]) and manages all transport
//! channels of one listen address:
//!
//! * per-message protocol dispatch: each [`NetMessage`]'s header names the
//!   transport it should travel over (UDP, TCP, UDT — or `DATA`, resolved
//!   upstream by the interceptor);
//! * lazy channel establishment: the first message to a `(peer, protocol)`
//!   pair opens the channel and is queued until it is up;
//! * conservative channel teardown: channels stay open unless an idle
//!   timeout is explicitly configured ("channel establishment might be
//!   expensive … generally channels will be kept open as long as
//!   possible");
//! * same-host reflection: messages whose destination shares this
//!   component's socket (virtual nodes) are delivered back up the port
//!   without ever being serialised;
//! * multi-hop forwarding for [`RoutingHeader`](crate::header::RoutingHeader)
//!   messages;
//! * delivery notifications (`MessageNotify`).

pub mod frame;

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use kmsg_component::prelude::*;
use kmsg_netsim::iface::{CloseReason, Connection, ConnectionId, StreamAccept, StreamEvents};
use kmsg_netsim::network::{BindError, Network};
use kmsg_netsim::packet::Endpoint;
use kmsg_netsim::tcp::{TcpConfig, TcpConn, TcpListener};
use kmsg_netsim::udp::{UdpEvents, UdpSocket, MAX_DATAGRAM};
use kmsg_netsim::udt::{UdtConfig, UdtConn, UdtListener};

use kmsg_netsim::rng::RngStream;
use kmsg_telemetry::{EventKind, SpanId, SpanKind, Tracer};
use rand::Rng;

use crate::address::{Address, NetAddress};
use crate::header::{Header, NetHeader};
use crate::msg::{
    ChannelStatus, ConnStatus, DeliveryStatus, NetIndication, NetMessage, NetRequest,
    NetworkPort, NotifyToken, SendError,
};
use crate::transport::Transport;
use frame::{decode_frame_body, encode_frame, Compression, FrameDecoder};

/// Channel supervision tuning: reconnect with exponential backoff and
/// deterministic jitter, within a bounded retry budget (DESIGN.md §9).
#[derive(Debug, Clone, PartialEq)]
pub struct ReconnectConfig {
    /// Redial attempts before the supervisor gives up and fails the
    /// channel's queued frames.
    pub max_retries: u32,
    /// Backoff before the first redial; doubles per attempt.
    pub base_backoff: std::time::Duration,
    /// Backoff ceiling.
    pub max_backoff: std::time::Duration,
    /// After the budget is exhausted, keep probing the peer at this
    /// interval so the channel can recover; `None` leaves the channel
    /// dropped until the component restarts.
    pub probe_interval: Option<std::time::Duration>,
}

impl Default for ReconnectConfig {
    fn default() -> Self {
        ReconnectConfig {
            max_retries: 8,
            base_backoff: std::time::Duration::from_millis(200),
            max_backoff: std::time::Duration::from_secs(10),
            probe_interval: Some(std::time::Duration::from_secs(5)),
        }
    }
}

impl ReconnectConfig {
    /// The deterministic backoff before redial `attempt` (1-based):
    /// `min(base · 2^(attempt-1), max) · u`, with `u` drawn uniformly from
    /// `[0.75, 1.25)` out of the component's seeded jitter stream.
    fn backoff(&self, attempt: u32, rng: &mut RngStream) -> std::time::Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let raw = self
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        let jitter: f64 = 0.75 + 0.5 * rng.gen::<f64>();
        std::time::Duration::from_secs_f64(raw.as_secs_f64() * jitter)
    }
}

/// Configuration of a [`NetworkComponent`].
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// The listen address; the same port number is bound for TCP, UDP and
    /// UDT (they live in separate port spaces).
    pub addr: NetAddress,
    /// TCP tuning.
    pub tcp: TcpConfig,
    /// UDT tuning (the paper raises the protocol buffers to 100 MB).
    pub udt: UdtConfig,
    /// Outbound payload compression (Snappy stand-in).
    pub compression: Compression,
    /// What to do when a message still marked [`Transport::Data`] reaches
    /// the network layer (i.e. no interceptor resolved it): fall back to
    /// this transport, or fail the send if `None`.
    pub data_fallback: Option<Transport>,
    /// Close channels idle for this long; `None` (default) keeps channels
    /// open for the lifetime of the component.
    pub idle_timeout: Option<std::time::Duration>,
    /// Channel supervision: on an unexpected close, keep the channel entry,
    /// requeue unacknowledged frames and redial with backoff. `None`
    /// restores the legacy at-most-once behaviour (queued and unacked
    /// frames fail immediately with [`SendError::ChannelClosed`]).
    pub reconnect: Option<ReconnectConfig>,
    /// Per-destination congestion-controller overrides, consulted on
    /// every TCP dial (and redial). Shared: the experiment driver or a
    /// learner holds the same [`StackPolicy`] and steers controllers at
    /// runtime via [`NetworkComponent::swap_controller`].
    pub stack: Arc<crate::data::stack::StackPolicy>,
}

impl NetworkConfig {
    /// A configuration listening on `addr` with default transports.
    #[must_use]
    pub fn new(addr: NetAddress) -> Self {
        NetworkConfig {
            addr,
            tcp: TcpConfig::default(),
            udt: UdtConfig::default(),
            compression: Compression::default(),
            data_fallback: Some(Transport::Tcp),
            idle_timeout: None,
            reconnect: Some(ReconnectConfig::default()),
            stack: Arc::new(crate::data::stack::StackPolicy::new()),
        }
    }
}

/// Counters exposed by the network component (shared handle, updated
/// inside the component).
#[derive(Debug, Clone, Default)]
pub struct MiddlewareStats {
    /// Messages sent per transport (indexed by `Transport::to_byte`).
    pub sent: [u64; 4],
    /// Messages received from the wire per transport.
    pub received: [u64; 4],
    /// Messages delivered locally without serialisation (vnode reflection).
    pub local_reflections: u64,
    /// Multi-hop messages forwarded through this host.
    pub forwarded: u64,
    /// Multi-hop messages dropped because their routing TTL hit zero
    /// (malformed or stale route — e.g. a cycle).
    pub ttl_drops: u64,
    /// Bytes written to transports (after framing/compression).
    pub bytes_out: u64,
    /// Bytes received from transports (before decompression).
    pub bytes_in: u64,
    /// Failed sends (all kinds; see `send_failures_by` for the breakdown).
    pub send_failures: u64,
    /// Failed sends broken out by [`SendError`] kind (indexed by
    /// [`SendError::index`]).
    pub send_failures_by: [u64; SendError::COUNT],
    /// Frames that failed to decode.
    pub decode_failures: u64,
    /// Messages that reached the network layer with an unresolved `DATA`
    /// protocol.
    pub unresolved_data: u64,
    /// Channels opened (outbound connects + inbound accepts).
    pub channels_opened: u64,
    /// Channels closed.
    pub channels_closed: u64,
    /// Redial attempts made by channel supervision.
    pub reconnect_attempts: u64,
    /// Channels successfully re-established by supervision.
    pub reconnects: u64,
    /// Channels whose reconnect budget was exhausted.
    pub channels_dropped: u64,
    /// `DATA` messages rerouted to the surviving transport because the
    /// selected transport's channel was dropped.
    pub failovers: u64,
    /// Live TCP channels recycled onto a different congestion controller
    /// by [`NetworkComponent::swap_controller`].
    pub controller_swaps: u64,
}

impl MiddlewareStats {
    /// Total messages sent over any transport.
    #[must_use]
    pub fn total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Total messages received from the wire.
    #[must_use]
    pub fn total_received(&self) -> u64 {
        self.received.iter().sum()
    }

    /// The failure counter for one [`SendError`] kind.
    #[must_use]
    pub fn send_failures_of(&self, kind: SendError) -> u64 {
        self.send_failures_by[kind.index()]
    }

    /// The supervision counters bundled for invariant oracles (see
    /// `kmsg-oracle`): how often channels were re-established, how many
    /// redials that took, how many channels exhausted their budget, and
    /// how many `DATA` frames failed over.
    #[must_use]
    pub fn supervision(&self) -> SupervisionSummary {
        SupervisionSummary {
            reconnect_attempts: self.reconnect_attempts,
            reconnects: self.reconnects,
            channels_dropped: self.channels_dropped,
            failovers: self.failovers,
            controller_swaps: self.controller_swaps,
        }
    }
}

/// Supervision counters extracted from [`MiddlewareStats`].
///
/// `episodes()` is the number of at-least-once redelivery opportunities —
/// the bound the delivery oracle multiplies by its per-episode duplicate
/// window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisionSummary {
    /// Redial attempts made by channel supervision.
    pub reconnect_attempts: u64,
    /// Channels successfully re-established.
    pub reconnects: u64,
    /// Channels whose reconnect budget was exhausted.
    pub channels_dropped: u64,
    /// `DATA` messages rerouted to the surviving transport.
    pub failovers: u64,
    /// Live channels recycled onto a different congestion controller.
    pub controller_swaps: u64,
}

impl SupervisionSummary {
    /// Supervision episodes that may each re-deliver in-flight frames.
    #[must_use]
    pub fn episodes(&self) -> u64 {
        self.reconnects + self.channels_dropped + self.failovers + self.controller_swaps
    }

    /// Whether the run saw any supervision activity at all.
    #[must_use]
    pub fn calm(&self) -> bool {
        self.episodes() == 0 && self.reconnect_attempts == 0
    }
}

/// A cloneable handle to a component's live statistics.
pub type StatsHandle = Arc<Mutex<MiddlewareStats>>;

/// Events flowing from the transport callbacks into the component.
#[derive(Debug, Clone)]
pub enum NetEvent {
    /// An outbound connection finished its handshake.
    Connected(ConnectionId),
    /// An inbound connection was accepted.
    Accepted(Connection),
    /// Stream bytes arrived.
    Data(ConnectionId, Bytes),
    /// Send-buffer space became available.
    Writable(ConnectionId),
    /// A connection ended.
    Closed(ConnectionId, CloseReason),
    /// A UDP datagram arrived.
    Datagram(Endpoint, Bytes),
}

/// Forwards transport callbacks into the component's self-port.
struct ConnForwarder {
    events: SelfRef<NetEvent>,
}

impl StreamEvents for ConnForwarder {
    fn on_connected(&self, conn: &Connection) {
        self.events.push(NetEvent::Connected(conn.id()));
    }

    fn on_data(&self, conn: &Connection, data: Bytes) {
        self.events.push(NetEvent::Data(conn.id(), data));
    }

    fn on_writable(&self, conn: &Connection) {
        self.events.push(NetEvent::Writable(conn.id()));
    }

    fn on_closed(&self, conn: &Connection, reason: CloseReason) {
        self.events.push(NetEvent::Closed(conn.id(), reason));
    }
}

struct AcceptForwarder {
    events: SelfRef<NetEvent>,
}

impl StreamAccept for AcceptForwarder {
    fn on_accept(&self, conn: &Connection) -> Arc<dyn StreamEvents> {
        self.events.push(NetEvent::Accepted(conn.clone()));
        Arc::new(ConnForwarder {
            events: self.events.clone(),
        })
    }
}

struct UdpForwarder {
    events: SelfRef<NetEvent>,
}

impl UdpEvents for UdpForwarder {
    fn on_datagram(&self, _socket: &UdpSocket, src: Endpoint, data: Bytes) {
        self.events.push(NetEvent::Datagram(src, data));
    }
}

/// Key of a transport channel: remote socket plus stream transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ChannelKey {
    remote: Endpoint,
    transport: Transport,
}

/// Span close key: the covered work completed normally.
const SPAN_OK: u64 = 0;
/// Span close key: the covered work failed (send error, channel death,
/// retry budget exhausted).
const SPAN_FAILED: u64 = 1;

/// Packs an endpoint into a span correlation key — the same
/// `node_index << 16 | port` encoding `ConnStatus` events use for `peer`.
fn peer_key(ep: Endpoint) -> u64 {
    (u64::from(ep.node.index()) << 16) | u64::from(ep.port)
}

/// Span key of one supervised channel: transport byte above the peer key.
fn channel_span_key(key: ChannelKey) -> u64 {
    (u64::from(key.transport.to_byte()) << 48) | peer_key(key.remote)
}

struct OutFrame {
    bytes: Bytes,
    written: usize,
    notify: Option<NotifyToken>,
    /// Raw id of the message's `msg` root span (0 when tracing is off).
    msg_span: u64,
    /// Raw id of the open `enqueue` span covering this frame's wait in the
    /// pending queue.
    enq_span: u64,
}

/// A fully written frame waiting for the transport to acknowledge its last
/// byte. The frame bytes are retained so supervision can requeue unacked
/// frames onto a fresh connection (at-least-once within the retry budget).
struct AckFrame {
    /// `written_total` at the frame's end.
    end: u64,
    bytes: Bytes,
    notify: Option<NotifyToken>,
    /// Raw id of the message's `msg` root span (0 when tracing is off).
    msg_span: u64,
    /// Raw id of the open `xmit` span: first byte written → last byte
    /// acknowledged by the transport.
    xmit_span: u64,
}

/// Lifecycle of a supervised channel (DESIGN.md §9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Initial dial in progress.
    Connecting,
    /// Handshake complete; frames flow.
    Established,
    /// Unexpected close observed; `attempts` redials made so far.
    Reconnecting {
        /// Redial attempts made so far (1-based once the first is due).
        attempts: u32,
    },
    /// Retry budget exhausted; queued frames were failed. Probe redials
    /// may still restore the channel.
    Dropped,
}

struct ChannelState {
    conn: Option<Connection>,
    phase: Phase,
    /// Whether this side dialled the channel. Only originated channels are
    /// supervised — for accepted channels the peer's supervisor redials.
    originated: bool,
    pending: VecDeque<OutFrame>,
    /// Payload bytes fully handed to the transport so far.
    written_total: u64,
    /// Fully written frames whose final byte the transport has not yet
    /// acknowledged, oldest first.
    awaiting_ack: VecDeque<AckFrame>,
    decoder: FrameDecoder,
    last_activity: kmsg_netsim::time::SimTime,
    /// Raw id of the open `outage` supervision span (0 while healthy).
    /// Opened at the `ConnectionLost` transition, closed at
    /// `ConnectionRestored` (key 0) or `ConnectionDropped` (key 1) — the
    /// same code points and timestamps as the status events, so the span
    /// window equals the observed recovery latency exactly.
    outage_span: u64,
    /// Raw id of the open `backoff` span (retry timer armed → fired).
    backoff_span: u64,
    /// Raw id of the open `redial` span (connect issued → Connected or the
    /// attempt's Closed event).
    redial_span: u64,
}

impl ChannelState {
    fn new() -> Self {
        ChannelState {
            conn: None,
            phase: Phase::Connecting,
            originated: true,
            pending: VecDeque::new(),
            written_total: 0,
            awaiting_ack: VecDeque::new(),
            decoder: FrameDecoder::new(),
            last_activity: kmsg_netsim::time::SimTime::ZERO,
            outage_span: 0,
            backoff_span: 0,
            redial_span: 0,
        }
    }

    fn established(&self) -> bool {
        self.phase == Phase::Established
    }
}

/// The network component. Create with [`create_network`].
pub struct NetworkComponent {
    /// Kompics' network port.
    pub port: ProvidedPort<NetworkPort>,
    /// Transport callback events.
    pub events: SelfPort<NetEvent>,
    net: Network,
    cfg: NetworkConfig,
    self_events: Option<SelfRef<NetEvent>>,
    channels: HashMap<ChannelKey, ChannelState>,
    conn_index: HashMap<ConnectionId, ChannelKey>,
    udp: Option<UdpSocket>,
    listeners: Vec<Box<dyn std::any::Any + Send>>,
    stats: StatsHandle,
    /// Pending supervision redial timers, mapped back to their channel.
    retry_timers: HashMap<TimeoutId, ChannelKey>,
    /// The periodic idle-sweep timer, if idle teardown is configured.
    idle_timer: Option<TimeoutId>,
    /// Seeded stream for deterministic backoff jitter.
    jitter_rng: RngStream,
}

impl std::fmt::Debug for NetworkComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkComponent")
            .field("addr", &self.cfg.addr)
            .field("channels", &self.channels.len())
            .finish()
    }
}

impl NetworkComponent {
    /// Builds the component state; prefer [`create_network`], which also
    /// binds the listeners.
    #[must_use]
    pub fn new(net: Network, cfg: NetworkConfig) -> Self {
        let jitter_rng = net
            .sim()
            .rng(&format!("net-supervisor-{}", cfg.addr.as_socket()));
        NetworkComponent {
            port: ProvidedPort::new(),
            events: SelfPort::new(),
            net,
            cfg,
            self_events: None,
            channels: HashMap::new(),
            conn_index: HashMap::new(),
            udp: None,
            listeners: Vec::new(),
            stats: Arc::new(Mutex::new(MiddlewareStats::default())),
            retry_timers: HashMap::new(),
            idle_timer: None,
            jitter_rng,
        }
    }

    /// The live statistics handle.
    #[must_use]
    pub fn stats(&self) -> StatsHandle {
        self.stats.clone()
    }

    /// The listen address.
    #[must_use]
    pub fn address(&self) -> NetAddress {
        self.cfg.addr
    }

    fn notify(&self, token: Option<NotifyToken>, status: DeliveryStatus) {
        if let Some(token) = token {
            self.port.trigger(NetIndication::NotifyResp(token, status));
        }
    }

    fn fail(&self, token: Option<NotifyToken>, error: SendError) {
        {
            let mut stats = self.stats.lock();
            stats.send_failures += 1;
            stats.send_failures_by[error.index()] += 1;
        }
        self.notify(token, DeliveryStatus::Failed(error));
    }

    /// Surfaces a channel status transition on the network port and in the
    /// flight recorder (the latter is how the learner's telemetry stream
    /// observes outages alongside its `Decision` events).
    fn emit_status(&self, key: ChannelKey, status: ConnStatus) {
        let sim = self.net.sim();
        let rec = sim.recorder();
        if rec.is_enabled() {
            let attempts = match status {
                ConnStatus::ConnectionRestored { attempts } => u64::from(attempts),
                _ => 0,
            };
            rec.record(
                sim.now().as_nanos(),
                EventKind::ConnStatus {
                    peer: (u64::from(key.remote.node.index()) << 16)
                        | u64::from(key.remote.port),
                    transport: key.transport.label(),
                    status: status.label(),
                    attempts,
                },
            );
        }
        self.port.trigger(NetIndication::Status(ChannelStatus {
            peer: NetAddress::new(key.remote.node, key.remote.port),
            transport: key.transport,
            status,
        }));
    }

    /// The component's span tracer. Owned (it clones the recorder handle),
    /// so holding one never extends a borrow of the component; every call
    /// on it early-outs on one relaxed load while tracing is off.
    fn tracer(&self) -> Tracer {
        self.net.sim().recorder().tracer()
    }

    /// Current virtual time in nanoseconds.
    fn now_ns(&self) -> u64 {
        self.net.sim().now().as_nanos()
    }

    // --- outbound -------------------------------------------------------

    fn handle_send(&mut self, token: Option<NotifyToken>, mut msg: NetMessage) {
        let dst = *msg.header().destination();
        // Every message gets a `msg` root span at the send edge; its id
        // doubles as the trace id for all downstream spans (enqueue, xmit,
        // channel pick). Forwarded multi-hop messages re-enter here and get
        // a fresh per-relay root, so each middleware hop is attributable.
        let tr = self.tracer();
        let now_ns = self.now_ns();
        let msg_span = tr.open_root(now_ns, SpanKind::Msg, peer_key(dst.as_socket()));
        // Same-socket delivery: virtual nodes (or self-sends) are reflected
        // without serialisation (§III-B).
        if dst.as_socket() == self.cfg.addr.as_socket() {
            self.stats.lock().local_reflections += 1;
            tr.instant(
                now_ns,
                SpanKind::Deliver,
                msg_span,
                msg_span,
                peer_key(dst.as_socket()),
            );
            tr.close(now_ns, msg_span);
            self.port.trigger(NetIndication::Msg(msg));
            self.notify(token, DeliveryStatus::DeliveredLocally);
            return;
        }
        let mut proto = msg.header().protocol();
        if proto == Transport::Data {
            self.stats.lock().unresolved_data += 1;
            match self.cfg.data_fallback {
                Some(fallback) => {
                    proto = fallback;
                    if let NetHeader::Data(h) = msg.header_mut() {
                        h.selected = Some(fallback);
                    }
                }
                None => {
                    tr.close_with(now_ns, msg_span, SPAN_FAILED);
                    self.fail(token, SendError::UnresolvedDataProtocol);
                    return;
                }
            }
        }
        // Graceful degradation: DATA-addressed traffic whose selected
        // stream transport has exhausted its reconnect budget fails over to
        // the surviving stream transport, and recovers automatically once
        // the preferred channel is restored (its phase leaves `Dropped`).
        if matches!(msg.header(), NetHeader::Data(_))
            && matches!(proto, Transport::Tcp | Transport::Udt)
        {
            let alt = if proto == Transport::Tcp {
                Transport::Udt
            } else {
                Transport::Tcp
            };
            let socket = dst.as_socket();
            let dropped = |t: Transport| {
                self.channels
                    .get(&ChannelKey {
                        remote: socket,
                        transport: t,
                    })
                    .is_some_and(|c| c.phase == Phase::Dropped)
            };
            if dropped(proto) && !dropped(alt) {
                proto = alt;
                if let NetHeader::Data(h) = msg.header_mut() {
                    h.selected = Some(alt);
                }
                self.stats.lock().failovers += 1;
                tr.instant(
                    now_ns,
                    SpanKind::Failover,
                    msg_span,
                    msg_span,
                    u64::from(alt.to_byte()),
                );
            }
        }
        // The transport the message will actually travel over, after DATA
        // fallback and failover resolution.
        tr.instant(
            now_ns,
            SpanKind::ChannelPick,
            msg_span,
            msg_span,
            u64::from(proto.to_byte()),
        );
        let encoded = match encode_frame(&msg, self.cfg.compression) {
            Ok(f) => f,
            Err(_) => {
                tr.close_with(now_ns, msg_span, SPAN_FAILED);
                self.fail(token, SendError::Serialisation);
                return;
            }
        };
        match proto {
            Transport::Udp => self.send_udp(token, dst, encoded, msg_span),
            Transport::Tcp | Transport::Udt => {
                self.send_stream(token, proto, dst, encoded, msg_span);
            }
            Transport::Data => unreachable!("resolved above"),
        }
    }

    fn send_udp(
        &mut self,
        token: Option<NotifyToken>,
        dst: NetAddress,
        frame: Bytes,
        msg_span: SpanId,
    ) {
        let tr = self.tracer();
        let now_ns = self.now_ns();
        if frame.len() > MAX_DATAGRAM {
            tr.close_with(now_ns, msg_span, SPAN_FAILED);
            self.fail(token, SendError::TooLargeForUdp);
            return;
        }
        let Some(udp) = &self.udp else {
            tr.close_with(now_ns, msg_span, SPAN_FAILED);
            self.fail(token, SendError::Unreachable);
            return;
        };
        let len = frame.len() as u64;
        match udp.send_to(dst.as_socket(), frame) {
            Ok(()) => {
                let mut stats = self.stats.lock();
                stats.sent[Transport::Udp.to_byte() as usize] += 1;
                stats.bytes_out += len;
                drop(stats);
                // Fire-and-forget: the datagram is on the wire, which is
                // as far as the middleware can attribute UDP.
                tr.close(now_ns, msg_span);
                self.notify(token, DeliveryStatus::Sent);
            }
            Err(_) => {
                tr.close_with(now_ns, msg_span, SPAN_FAILED);
                self.fail(token, SendError::TooLargeForUdp);
            }
        }
    }

    fn send_stream(
        &mut self,
        token: Option<NotifyToken>,
        proto: Transport,
        dst: NetAddress,
        frame: Bytes,
        msg_span: SpanId,
    ) {
        let tr = self.tracer();
        let now_ns = self.now_ns();
        let key = ChannelKey {
            remote: dst.as_socket(),
            transport: proto,
        };
        if let Some(channel) = self.channels.get(&key) {
            // The supervisor gave up on this channel; don't queue behind a
            // dead connection. (DATA traffic fails over before reaching
            // here; explicit sends fail fast until a probe restores it.)
            if channel.phase == Phase::Dropped {
                tr.close_with(now_ns, msg_span, SPAN_FAILED);
                self.fail(token, SendError::RetryBudgetExhausted);
                return;
            }
        } else if let Err(e) = self.open_channel(key) {
            let _ = e;
            tr.close_with(now_ns, msg_span, SPAN_FAILED);
            self.fail(token, SendError::Unreachable);
            return;
        }
        let now = self.net.sim().now();
        let channel = self.channels.get_mut(&key).expect("channel just ensured");
        channel.pending.push_back(OutFrame {
            bytes: frame,
            written: 0,
            notify: token,
            msg_span: msg_span.raw(),
            // `enqueue` covers the frame's wait in the pending queue: from
            // here until its last byte is handed to the transport.
            enq_span: tr
                .open(
                    now_ns,
                    SpanKind::Enqueue,
                    msg_span,
                    msg_span,
                    channel_span_key(key),
                )
                .raw(),
        });
        channel.last_activity = now;
        if channel.established() {
            self.drain_channel(key);
        }
    }

    /// The TCP configuration a dial to `remote` should use: the base
    /// config with the stack policy's per-destination controller override
    /// applied. Consulted at dial time, so a swap takes effect on the
    /// next (re)connect even without an explicit recycle.
    fn tcp_config_for(&self, remote: Endpoint) -> TcpConfig {
        let mut cfg = self.cfg.tcp.clone();
        if let Some(algo) = self.cfg.stack.lookup(remote) {
            cfg.cc.algorithm = algo;
        }
        cfg
    }

    fn open_channel(&mut self, key: ChannelKey) -> Result<(), BindError> {
        let events = self
            .self_events
            .clone()
            .expect("NetworkComponent used before create_network() wiring");
        let handler = Arc::new(ConnForwarder { events });
        let node = self.cfg.addr.node();
        let conn = match key.transport {
            Transport::Tcp => Connection::Tcp(TcpConn::connect(
                &self.net,
                node,
                key.remote,
                self.tcp_config_for(key.remote),
                handler,
            )?),
            Transport::Udt => Connection::Udt(UdtConn::connect(
                &self.net,
                node,
                key.remote,
                self.cfg.udt.clone(),
                handler,
            )?),
            _ => unreachable!("stream channels are TCP or UDT"),
        };
        let mut state = ChannelState::new();
        state.last_activity = self.net.sim().now();
        self.conn_index.insert(conn.id(), key);
        state.conn = Some(conn);
        self.channels.insert(key, state);
        self.stats.lock().channels_opened += 1;
        Ok(())
    }

    fn drain_channel(&mut self, key: ChannelKey) {
        let now = self.net.sim().now();
        let tr = self.tracer();
        let now_ns = now.as_nanos();
        let Some(channel) = self.channels.get_mut(&key) else {
            return;
        };
        let Some(conn) = channel.conn.clone() else {
            return;
        };
        let mut bytes_out = 0u64;
        let mut msgs_out = 0u64;
        while let Some(front) = channel.pending.front_mut() {
            let remaining = front.bytes.slice(front.written..);
            let accepted = conn.send(remaining);
            front.written += accepted;
            channel.written_total += accepted as u64;
            bytes_out += accepted as u64;
            if front.written == front.bytes.len() {
                let done = channel.pending.pop_front().expect("front exists");
                msgs_out += 1;
                // Queue wait over; the frame is now the transport's
                // problem — `xmit` covers it until its last byte is acked.
                tr.close(now_ns, SpanId::from_raw(done.enq_span));
                let msg_span = SpanId::from_raw(done.msg_span);
                let xmit = tr.open(
                    now_ns,
                    SpanKind::Xmit,
                    msg_span,
                    msg_span,
                    channel.written_total,
                );
                // Retained until the transport acknowledges the frame's
                // last byte: notifications fire then, and supervision can
                // requeue the frame if the connection dies first.
                channel.awaiting_ack.push_back(AckFrame {
                    end: channel.written_total,
                    bytes: done.bytes,
                    notify: done.notify,
                    msg_span: done.msg_span,
                    xmit_span: xmit.raw(),
                });
            } else {
                break; // transport buffer full; resume on Writable
            }
        }
        channel.last_activity = now;
        {
            let mut stats = self.stats.lock();
            stats.bytes_out += bytes_out;
            stats.sent[key.transport.to_byte() as usize] += msgs_out;
        }
        self.flush_acked(key);
    }

    /// Completes notification requests whose bytes the transport has
    /// acknowledged.
    fn flush_acked(&mut self, key: ChannelKey) {
        let Some(channel) = self.channels.get_mut(&key) else {
            return;
        };
        let Some(conn) = channel.conn.clone() else {
            return;
        };
        let delivered = conn.acked_bytes();
        let mut done = Vec::new();
        while let Some(front) = channel.awaiting_ack.front() {
            if front.end <= delivered {
                let frame = channel.awaiting_ack.pop_front().expect("front exists");
                done.push((frame.notify, frame.xmit_span, frame.msg_span));
            } else {
                break;
            }
        }
        let tr = self.tracer();
        let now_ns = self.now_ns();
        for (notify, xmit_span, msg_span) in done {
            // The transport acked the frame's last byte: transmission and
            // the whole message lifecycle complete here.
            tr.close(now_ns, SpanId::from_raw(xmit_span));
            tr.close(now_ns, SpanId::from_raw(msg_span));
            if let Some(t) = notify {
                self.notify(Some(t), DeliveryStatus::Sent);
            }
        }
    }

    // --- inbound --------------------------------------------------------

    fn handle_event(&mut self, ctx: &mut ComponentContext, event: NetEvent) {
        match event {
            NetEvent::Connected(id) => {
                if let Some(&key) = self.conn_index.get(&id) {
                    let tr = self.tracer();
                    let now_ns = self.now_ns();
                    if let Some(channel) = self.channels.get_mut(&key) {
                        let prev = channel.phase;
                        channel.phase = Phase::Established;
                        // The redial that produced this handshake — and the
                        // outage it belongs to — end here, at the same
                        // instant the `restored` status is stamped.
                        let redial = std::mem::take(&mut channel.redial_span);
                        let outage = std::mem::take(&mut channel.outage_span);
                        match prev {
                            Phase::Reconnecting { attempts } => {
                                tr.close(now_ns, SpanId::from_raw(redial));
                                tr.close(now_ns, SpanId::from_raw(outage));
                                self.stats.lock().reconnects += 1;
                                self.emit_status(
                                    key,
                                    ConnStatus::ConnectionRestored { attempts },
                                );
                            }
                            Phase::Dropped => {
                                // A post-budget probe got through (the
                                // outage span already closed at the drop).
                                tr.close(now_ns, SpanId::from_raw(redial));
                                tr.close(now_ns, SpanId::from_raw(outage));
                                self.stats.lock().reconnects += 1;
                                self.emit_status(
                                    key,
                                    ConnStatus::ConnectionRestored { attempts: 0 },
                                );
                            }
                            Phase::Connecting | Phase::Established => {}
                        }
                    }
                    self.drain_channel(key);
                }
            }
            NetEvent::Accepted(conn) => {
                // Key the inbound channel by the peer's socket for now; it
                // is re-keyed to the peer's listen address when the first
                // message reveals it, so replies reuse this channel.
                let key = ChannelKey {
                    remote: conn.peer(),
                    transport: match conn {
                        Connection::Tcp(_) => Transport::Tcp,
                        Connection::Udt(_) => Transport::Udt,
                    },
                };
                let mut state = ChannelState::new();
                state.phase = Phase::Established;
                // The dialling side supervises; if this channel dies we
                // fall back to failing its queued replies.
                state.originated = false;
                state.last_activity = self.net.sim().now();
                self.conn_index.insert(conn.id(), key);
                state.conn = Some(conn);
                self.channels.insert(key, state);
                self.stats.lock().channels_opened += 1;
            }
            NetEvent::Data(id, data) => {
                self.stats.lock().bytes_in += data.len() as u64;
                let Some(&key) = self.conn_index.get(&id) else {
                    return;
                };
                let mut frames = Vec::new();
                {
                    let Some(channel) = self.channels.get_mut(&key) else {
                        return;
                    };
                    channel.decoder.feed(&data);
                    channel.last_activity = self.net.sim().now();
                    loop {
                        match channel.decoder.next_frame() {
                            Ok(Some(frame)) => frames.push(frame),
                            Ok(None) => break,
                            Err(_) => {
                                self.stats.lock().decode_failures += 1;
                                break;
                            }
                        }
                    }
                }
                for body in frames {
                    self.handle_frame(body, Some((id, key)));
                }
            }
            NetEvent::Writable(id) => {
                if let Some(&key) = self.conn_index.get(&id) {
                    self.drain_channel(key);
                }
            }
            NetEvent::Closed(id, _reason) => {
                if let Some(key) = self.conn_index.remove(&id) {
                    if self.channels.contains_key(&key) {
                        self.stats.lock().channels_closed += 1;
                        self.on_channel_down(ctx, key);
                    }
                }
            }
            NetEvent::Datagram(_src, data) => {
                self.stats.lock().bytes_in += data.len() as u64;
                // Datagrams carry exactly one frame (with length prefix).
                let mut dec = FrameDecoder::new();
                dec.feed(&data);
                match dec.next_frame() {
                    Ok(Some(body)) => self.handle_frame(body, None),
                    Ok(None) | Err(_) => {
                        self.stats.lock().decode_failures += 1;
                    }
                }
            }
        }
    }

    fn handle_frame(&mut self, body: Bytes, via: Option<(ConnectionId, ChannelKey)>) {
        let mut msg = match decode_frame_body(body) {
            Ok(m) => m,
            Err(_) => {
                self.stats.lock().decode_failures += 1;
                return;
            }
        };
        // Re-key inbound channels by the peer's listen address so that
        // replies reuse the existing connection.
        if let Some((conn_id, old_key)) = via {
            let src_socket = msg.header().source().as_socket();
            if old_key.remote != src_socket && src_socket.node == old_key.remote.node {
                let new_key = ChannelKey {
                    remote: src_socket,
                    transport: old_key.transport,
                };
                if !self.channels.contains_key(&new_key) {
                    if let Some(state) = self.channels.remove(&old_key) {
                        self.channels.insert(new_key, state);
                        self.conn_index.insert(conn_id, new_key);
                    }
                }
            }
        }
        let my_socket = self.cfg.addr.as_socket();
        if msg.header().destination().as_socket() == my_socket {
            // Multi-hop: if a route names us as the next hop, advance it
            // and forward unless we are the final destination.
            if let NetHeader::Routing(rh) = msg.header_mut() {
                if rh.route.as_ref().is_some_and(super::header::Route::has_next) {
                    rh.advance();
                    if msg.header().destination().as_socket() != my_socket {
                        self.forward_or_drop(msg);
                        return;
                    }
                }
            }
            let proto = msg.header().protocol();
            {
                let mut stats = self.stats.lock();
                let idx = proto.to_byte() as usize;
                stats.received[idx.min(3)] += 1;
            }
            // Receiver-side delivery edge. Trace ids never cross the wire
            // (that would perturb frame sizes and thus all timings), so
            // this is a root instant; offline analysis joins it to the
            // sender's `msg` span by source key and time window.
            let tr = self.tracer();
            tr.instant(
                self.now_ns(),
                SpanKind::Deliver,
                SpanId::NONE,
                SpanId::NONE,
                peer_key(msg.header().source().as_socket()),
            );
            self.port.trigger(NetIndication::Msg(msg));
        } else {
            // Addressed elsewhere (e.g. source routing without an explicit
            // hop entry for us): forward along.
            self.forward_or_drop(msg);
        }
    }

    /// Forwards a transiting message, charging one unit of routing TTL.
    /// A routed message whose budget is exhausted is dropped with a
    /// recorded reason instead — the backstop that keeps a malformed or
    /// stale (e.g. cyclic) route from circulating forever.
    fn forward_or_drop(&mut self, mut msg: NetMessage) {
        if let NetHeader::Routing(rh) = msg.header_mut() {
            if rh.ttl == 0 {
                let dst_node =
                    u64::from(Header::destination(&*rh).as_socket().node.index());
                self.stats.lock().ttl_drops += 1;
                let sim = self.net.sim();
                let rec = sim.recorder();
                if rec.is_enabled() {
                    rec.record(
                        sim.now().as_nanos(),
                        EventKind::Overlay {
                            action: "ttl_drop",
                            msg: 0,
                            node: u64::from(self.cfg.addr.as_socket().node.index()),
                            aux: dst_node,
                        },
                    );
                }
                return;
            }
            rh.ttl -= 1;
        }
        self.stats.lock().forwarded += 1;
        self.handle_send(None, msg);
    }

    // --- supervision ----------------------------------------------------

    /// Reacts to an unexpected connection loss on a known channel: either
    /// supervises (requeue + backoff redial) or, when supervision is off or
    /// the channel was accepted rather than dialled, fails everything
    /// (legacy at-most-once behaviour).
    fn on_channel_down(&mut self, ctx: &mut ComponentContext, key: ChannelKey) {
        let supervised = self.cfg.reconnect.is_some()
            && self.channels.get(&key).is_some_and(|c| c.originated);
        let tr = self.tracer();
        let now_ns = self.now_ns();
        if !supervised {
            if let Some(mut channel) = self.channels.remove(&key) {
                // At-most-once: queued and unacknowledged messages are
                // lost; notify requesters.
                for frame in channel.pending.drain(..) {
                    tr.close_with(now_ns, SpanId::from_raw(frame.enq_span), SPAN_FAILED);
                    tr.close_with(now_ns, SpanId::from_raw(frame.msg_span), SPAN_FAILED);
                    if let Some(t) = frame.notify {
                        self.fail(Some(t), SendError::ChannelClosed);
                    }
                }
                for frame in channel.awaiting_ack.drain(..) {
                    tr.close_with(now_ns, SpanId::from_raw(frame.xmit_span), SPAN_FAILED);
                    tr.close_with(now_ns, SpanId::from_raw(frame.msg_span), SPAN_FAILED);
                    if let Some(t) = frame.notify {
                        self.fail(Some(t), SendError::ChannelClosed);
                    }
                }
            }
            return;
        }
        let rc = self.cfg.reconnect.clone().expect("supervised implies config");
        let channel = self.channels.get_mut(&key).expect("supervised implies entry");
        channel.conn = None;
        // A redial attempt that ends in another Closed event failed.
        let failed_redial = std::mem::take(&mut channel.redial_span);
        tr.close_with(now_ns, SpanId::from_raw(failed_redial), SPAN_FAILED);
        // First loss on a healthy channel opens the `outage` span, at the
        // same instant the `ConnectionLost` status below is stamped — the
        // span's window therefore equals the reported recovery latency,
        // and its children (requeue, backoff, redial) partition it.
        if matches!(channel.phase, Phase::Connecting | Phase::Established)
            && channel.outage_span == 0
        {
            channel.outage_span = tr
                .open_root(now_ns, SpanKind::Outage, channel_span_key(key))
                .raw();
        }
        let outage = SpanId::from_raw(channel.outage_span);
        // At-least-once: requeue unacknowledged frames *ahead* of pending
        // ones (they are older), rewinding write progress for the fresh
        // connection. Exactly-once stays at the session layer.
        for frame in channel.pending.iter_mut() {
            frame.written = 0;
        }
        let requeued = channel.awaiting_ack.len() as u64;
        while let Some(acked) = channel.awaiting_ack.pop_back() {
            // The interrupted transmission is over; the frame re-enters
            // the queue under a fresh `enqueue` span on the same trace.
            tr.close_with(now_ns, SpanId::from_raw(acked.xmit_span), SPAN_FAILED);
            let msg_span = SpanId::from_raw(acked.msg_span);
            channel.pending.push_front(OutFrame {
                bytes: acked.bytes,
                written: 0,
                notify: acked.notify,
                msg_span: acked.msg_span,
                enq_span: tr
                    .open(
                        now_ns,
                        SpanKind::Enqueue,
                        msg_span,
                        msg_span,
                        channel_span_key(key),
                    )
                    .raw(),
            });
        }
        if requeued > 0 {
            tr.instant(now_ns, SpanKind::Requeue, outage, outage, requeued);
        }
        channel.written_total = 0;
        match channel.phase {
            Phase::Dropped => {
                // A probe redial failed; keep probing.
                self.schedule_probe(ctx, key, &rc);
            }
            Phase::Reconnecting { attempts } if attempts >= rc.max_retries => {
                // Budget exhausted: fail queued frames, report, keep the
                // entry so failover sees the dropped state and probes can
                // restore it.
                channel.phase = Phase::Dropped;
                let ended_outage = std::mem::take(&mut channel.outage_span);
                let failed: Vec<(Option<NotifyToken>, u64, u64)> = channel
                    .pending
                    .drain(..)
                    .map(|f| (f.notify, f.enq_span, f.msg_span))
                    .collect();
                tr.close_with(now_ns, SpanId::from_raw(ended_outage), SPAN_FAILED);
                for (notify, enq_span, msg_span) in failed {
                    tr.close_with(now_ns, SpanId::from_raw(enq_span), SPAN_FAILED);
                    tr.close_with(now_ns, SpanId::from_raw(msg_span), SPAN_FAILED);
                    if let Some(t) = notify {
                        self.fail(Some(t), SendError::RetryBudgetExhausted);
                    }
                }
                self.stats.lock().channels_dropped += 1;
                self.emit_status(key, ConnStatus::ConnectionDropped);
                self.schedule_probe(ctx, key, &rc);
            }
            phase => {
                let attempts = match phase {
                    Phase::Reconnecting { attempts } => attempts + 1,
                    _ => 1,
                };
                if matches!(phase, Phase::Connecting | Phase::Established) {
                    self.emit_status(key, ConnStatus::ConnectionLost);
                }
                if let Some(channel) = self.channels.get_mut(&key) {
                    channel.phase = Phase::Reconnecting { attempts };
                }
                let delay = rc.backoff(attempts, &mut self.jitter_rng);
                let timer = ctx.schedule_once(delay);
                self.retry_timers.insert(timer, key);
                // `backoff` covers timer armed → fired (closed in
                // `redial`); one per attempt, keyed by the attempt number.
                if let Some(channel) = self.channels.get_mut(&key) {
                    channel.backoff_span = tr
                        .open(now_ns, SpanKind::Backoff, outage, outage, u64::from(attempts))
                        .raw();
                }
            }
        }
    }

    fn schedule_probe(&mut self, ctx: &mut ComponentContext, key: ChannelKey, rc: &ReconnectConfig) {
        if let Some(interval) = rc.probe_interval {
            let timer = ctx.schedule_once(interval);
            self.retry_timers.insert(timer, key);
        }
    }

    /// Dials the channel again (retry-timer and probe-timer handler).
    fn redial(&mut self, ctx: &mut ComponentContext, key: ChannelKey) {
        match self.channels.get(&key) {
            // Channel torn down, or a concurrent path already restored it.
            Some(c) if c.conn.is_none() => {}
            _ => return,
        }
        let tr = self.tracer();
        let now_ns = self.now_ns();
        let outage = if let Some(channel) = self.channels.get_mut(&key) {
            // The backoff wait is over the moment the timer fires.
            let backoff = std::mem::take(&mut channel.backoff_span);
            tr.close(now_ns, SpanId::from_raw(backoff));
            SpanId::from_raw(channel.outage_span)
        } else {
            SpanId::NONE
        };
        let events = self
            .self_events
            .clone()
            .expect("NetworkComponent used before create_network() wiring");
        let handler = Arc::new(ConnForwarder { events });
        let node = self.cfg.addr.node();
        self.stats.lock().reconnect_attempts += 1;
        let conn = match key.transport {
            Transport::Tcp => TcpConn::connect(
                &self.net,
                node,
                key.remote,
                self.tcp_config_for(key.remote),
                handler,
            )
            .map(Connection::Tcp),
            Transport::Udt => UdtConn::connect(
                &self.net,
                node,
                key.remote,
                self.cfg.udt.clone(),
                handler,
            )
            .map(Connection::Udt),
            _ => unreachable!("stream channels are TCP or UDT"),
        };
        match conn {
            Ok(conn) => {
                self.conn_index.insert(conn.id(), key);
                if let Some(channel) = self.channels.get_mut(&key) {
                    channel.conn = Some(conn);
                    // `redial` spans the dial attempt: closed on the
                    // Connected event (success) or the next Closed event
                    // (failure, SPAN_FAILED).
                    channel.redial_span = tr
                        .open(
                            now_ns,
                            SpanKind::Redial,
                            outage,
                            outage,
                            channel_span_key(key),
                        )
                        .raw();
                }
                // Establishment (or the next failure) arrives as a
                // Connected/Closed event.
            }
            Err(_) => {
                // Local dial failure (port space exhausted): treat it like
                // a failed attempt so the backoff/budget machinery applies.
                self.on_channel_down(ctx, key);
            }
        }
    }

    fn sweep_idle_channels(&mut self, now: kmsg_netsim::time::SimTime) {
        let Some(idle) = self.cfg.idle_timeout else {
            return;
        };
        // Idle eligibility requires a fully drained channel: nothing
        // pending *and* nothing awaiting transport acknowledgement —
        // tearing down a channel with unacked frames would lose them. Only
        // established channels are swept; reconnecting ones own retry
        // timers that must stay valid.
        let expired: Vec<ChannelKey> = self
            .channels
            .iter()
            .filter(|(_, c)| {
                c.phase == Phase::Established
                    && c.pending.is_empty()
                    && c.awaiting_ack.is_empty()
                    && now.duration_since(c.last_activity) >= idle
            })
            .map(|(k, _)| *k)
            .collect();
        for key in expired {
            if let Some(channel) = self.channels.remove(&key) {
                if let Some(conn) = channel.conn {
                    self.conn_index.remove(&conn.id());
                    conn.close();
                }
                self.stats.lock().channels_closed += 1;
            }
        }
    }

    // --- controller stack policy ----------------------------------------

    /// Re-selects the congestion controller for TCP traffic to `remote`
    /// (the DATA stack-policy surface): records the decision in the
    /// shared [`StackPolicy`](crate::data::stack::StackPolicy) — so every
    /// future dial and redial picks it up — and, when a live TCP channel
    /// to the peer exists, recycles it onto the new controller
    /// immediately. Returns `true` if the effective selection changed.
    ///
    /// Recycling is at-least-once, like supervision: frames the old
    /// transport had not acknowledged are requeued ahead of pending ones
    /// on the fresh connection, and the swap counts as a supervision
    /// episode ([`MiddlewareStats::controller_swaps`]) for the delivery
    /// oracle's duplicate budget.
    pub fn swap_controller(
        &mut self,
        remote: Endpoint,
        algo: kmsg_netsim::cc::CcAlgorithm,
    ) -> bool {
        let changed = self.cfg.stack.set(remote, algo);
        let key = ChannelKey {
            remote,
            transport: Transport::Tcp,
        };
        let recycled = changed
            && self
                .channels
                .get(&key)
                .is_some_and(|c| c.conn.is_some());
        let sim = self.net.sim();
        let rec = sim.recorder();
        if rec.is_enabled() && changed {
            rec.record(
                sim.now().as_nanos(),
                EventKind::CcSwap {
                    peer: peer_key(remote),
                    controller: algo.label(),
                    recycled,
                },
            );
        }
        if recycled {
            self.recycle_channel(key);
        }
        changed
    }

    /// Tears down a live channel's connection and dials a replacement
    /// with the current (post-swap) transport configuration, carrying the
    /// send queue over. The old connection is closed gracefully and
    /// unlinked first, so its Closed event is not mistaken for an outage.
    fn recycle_channel(&mut self, key: ChannelKey) {
        let old_conn = match self.channels.get_mut(&key) {
            Some(c) => match c.conn.take() {
                Some(conn) => conn,
                None => return,
            },
            None => return,
        };
        self.conn_index.remove(&old_conn.id());
        old_conn.close();
        let tr = self.tracer();
        let now_ns = self.now_ns();
        let channel = self.channels.get_mut(&key).expect("checked above");
        channel.phase = Phase::Connecting;
        // We dial the replacement, so this side supervises it from now on.
        channel.originated = true;
        // At-least-once carry-over, exactly like supervision: rewind
        // write progress and requeue unacknowledged frames ahead of
        // pending ones (they are older).
        for frame in channel.pending.iter_mut() {
            frame.written = 0;
        }
        while let Some(acked) = channel.awaiting_ack.pop_back() {
            tr.close_with(now_ns, SpanId::from_raw(acked.xmit_span), SPAN_FAILED);
            let msg_span = SpanId::from_raw(acked.msg_span);
            channel.pending.push_front(OutFrame {
                bytes: acked.bytes,
                written: 0,
                notify: acked.notify,
                msg_span: acked.msg_span,
                enq_span: tr
                    .open(
                        now_ns,
                        SpanKind::Enqueue,
                        msg_span,
                        msg_span,
                        channel_span_key(key),
                    )
                    .raw(),
            });
        }
        channel.written_total = 0;
        {
            let mut stats = self.stats.lock();
            stats.controller_swaps += 1;
            stats.channels_closed += 1;
        }
        let events = self
            .self_events
            .clone()
            .expect("NetworkComponent used before create_network() wiring");
        let handler = Arc::new(ConnForwarder { events });
        let node = self.cfg.addr.node();
        match TcpConn::connect(
            &self.net,
            node,
            key.remote,
            self.tcp_config_for(key.remote),
            handler,
        ) {
            Ok(conn) => {
                let conn = Connection::Tcp(conn);
                self.conn_index.insert(conn.id(), key);
                if let Some(channel) = self.channels.get_mut(&key) {
                    channel.conn = Some(conn);
                }
                self.stats.lock().channels_opened += 1;
                // The handshake's Connected event drains the queue.
            }
            Err(_) => {
                // Local dial failure (port space exhausted): fail queued
                // frames, the at-most-once fallback.
                if let Some(mut channel) = self.channels.remove(&key) {
                    for frame in channel.pending.drain(..) {
                        tr.close_with(now_ns, SpanId::from_raw(frame.enq_span), SPAN_FAILED);
                        tr.close_with(now_ns, SpanId::from_raw(frame.msg_span), SPAN_FAILED);
                        if let Some(t) = frame.notify {
                            self.fail(Some(t), SendError::ChannelClosed);
                        }
                    }
                }
            }
        }
    }
}

impl ComponentDefinition for NetworkComponent {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        execute_ports!(self, ctx, max, [
            provided port: NetworkPort,
            selfport events: NetEvent,
        ])
    }

    fn handle_control(&mut self, ctx: &mut ComponentContext, event: ControlEvent) {
        if event == ControlEvent::Start && self.cfg.idle_timeout.is_some() {
            self.idle_timer = Some(ctx.schedule_periodic(
                std::time::Duration::from_secs(1),
                std::time::Duration::from_secs(1),
            ));
        }
    }

    fn on_timeout(&mut self, ctx: &mut ComponentContext, id: TimeoutId) {
        if let Some(key) = self.retry_timers.remove(&id) {
            self.redial(ctx, key);
        } else if self.idle_timer == Some(id) {
            self.sweep_idle_channels(ctx.now());
        }
    }
}

impl Provide<NetworkPort> for NetworkComponent {
    fn handle(&mut self, _ctx: &mut ComponentContext, event: NetRequest) {
        match event {
            NetRequest::Msg(msg) => self.handle_send(None, msg),
            NetRequest::NotifyReq(token, msg) => self.handle_send(Some(token), msg),
        }
    }
}

impl HandleSelf<NetEvent> for NetworkComponent {
    fn handle_self(&mut self, ctx: &mut ComponentContext, event: NetEvent) {
        self.handle_event(ctx, event);
    }
}

impl ProvideRef<NetworkPort> for NetworkComponent {
    fn provided_port(&mut self) -> &mut ProvidedPort<NetworkPort> {
        &mut self.port
    }
}

/// Creates a [`NetworkComponent`], wires its transport callbacks, and
/// binds its TCP/UDT listeners and UDP socket on the configured address.
///
/// The component still needs to be started via
/// [`ComponentSystem::start`].
///
/// # Errors
///
/// Returns [`BindError`] if any of the three ports is already bound.
pub fn create_network(
    system: &ComponentSystem,
    net: &Network,
    cfg: NetworkConfig,
) -> Result<ComponentRef<NetworkComponent>, BindError> {
    let addr = cfg.addr;
    let tcp_cfg = cfg.tcp.clone();
    let udt_cfg = cfg.udt.clone();
    let comp = system.create(|| NetworkComponent::new(net.clone(), cfg));
    let events = comp.self_ref(|c| &mut c.events);

    let tcp_listener = TcpListener::bind(
        net,
        addr.node(),
        addr.port(),
        tcp_cfg,
        Arc::new(AcceptForwarder {
            events: events.clone(),
        }),
    )?;
    let udt_listener = UdtListener::bind(
        net,
        addr.node(),
        addr.port(),
        udt_cfg,
        Arc::new(AcceptForwarder {
            events: events.clone(),
        }),
    )?;
    let udp_socket = UdpSocket::bind(
        net,
        addr.node(),
        addr.port(),
        Arc::new(UdpForwarder {
            events: events.clone(),
        }),
    )?;

    comp.on_definition(|c| {
        c.self_events = Some(events.clone());
        c.udp = Some(udp_socket);
        c.listeners.push(Box::new(tcp_listener));
        c.listeners.push(Box::new(udt_listener));
    });
    Ok(comp)
}
