//! The network component — the reproduction's analog of the paper's
//! `NettyNetwork` (§III).
//!
//! One [`NetworkComponent`] instance provides Kompics' network port
//! ([`NetworkPort`]) and manages all transport
//! channels of one listen address:
//!
//! * per-message protocol dispatch: each [`NetMessage`]'s header names the
//!   transport it should travel over (UDP, TCP, UDT — or `DATA`, resolved
//!   upstream by the interceptor);
//! * lazy channel establishment: the first message to a `(peer, protocol)`
//!   pair opens the channel and is queued until it is up;
//! * conservative channel teardown: channels stay open unless an idle
//!   timeout is explicitly configured ("channel establishment might be
//!   expensive … generally channels will be kept open as long as
//!   possible");
//! * same-host reflection: messages whose destination shares this
//!   component's socket (virtual nodes) are delivered back up the port
//!   without ever being serialised;
//! * multi-hop forwarding for [`RoutingHeader`](crate::header::RoutingHeader)
//!   messages;
//! * delivery notifications (`MessageNotify`).

pub mod frame;

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use kmsg_component::prelude::*;
use kmsg_netsim::iface::{CloseReason, Connection, ConnectionId, StreamAccept, StreamEvents};
use kmsg_netsim::network::{BindError, Network};
use kmsg_netsim::packet::Endpoint;
use kmsg_netsim::tcp::{TcpConfig, TcpConn, TcpListener};
use kmsg_netsim::udp::{UdpEvents, UdpSocket, MAX_DATAGRAM};
use kmsg_netsim::udt::{UdtConfig, UdtConn, UdtListener};

use crate::address::{Address, NetAddress};
use crate::header::NetHeader;
use crate::msg::{
    DeliveryStatus, NetIndication, NetMessage, NetRequest, NetworkPort, NotifyToken, SendError,
};
use crate::transport::Transport;
use frame::{decode_frame_body, encode_frame, Compression, FrameDecoder};

/// Configuration of a [`NetworkComponent`].
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// The listen address; the same port number is bound for TCP, UDP and
    /// UDT (they live in separate port spaces).
    pub addr: NetAddress,
    /// TCP tuning.
    pub tcp: TcpConfig,
    /// UDT tuning (the paper raises the protocol buffers to 100 MB).
    pub udt: UdtConfig,
    /// Outbound payload compression (Snappy stand-in).
    pub compression: Compression,
    /// What to do when a message still marked [`Transport::Data`] reaches
    /// the network layer (i.e. no interceptor resolved it): fall back to
    /// this transport, or fail the send if `None`.
    pub data_fallback: Option<Transport>,
    /// Close channels idle for this long; `None` (default) keeps channels
    /// open for the lifetime of the component.
    pub idle_timeout: Option<std::time::Duration>,
}

impl NetworkConfig {
    /// A configuration listening on `addr` with default transports.
    #[must_use]
    pub fn new(addr: NetAddress) -> Self {
        NetworkConfig {
            addr,
            tcp: TcpConfig::default(),
            udt: UdtConfig::default(),
            compression: Compression::default(),
            data_fallback: Some(Transport::Tcp),
            idle_timeout: None,
        }
    }
}

/// Counters exposed by the network component (shared handle, updated
/// inside the component).
#[derive(Debug, Clone, Default)]
pub struct MiddlewareStats {
    /// Messages sent per transport (indexed by `Transport::to_byte`).
    pub sent: [u64; 4],
    /// Messages received from the wire per transport.
    pub received: [u64; 4],
    /// Messages delivered locally without serialisation (vnode reflection).
    pub local_reflections: u64,
    /// Multi-hop messages forwarded through this host.
    pub forwarded: u64,
    /// Bytes written to transports (after framing/compression).
    pub bytes_out: u64,
    /// Bytes received from transports (before decompression).
    pub bytes_in: u64,
    /// Failed sends.
    pub send_failures: u64,
    /// Frames that failed to decode.
    pub decode_failures: u64,
    /// Messages that reached the network layer with an unresolved `DATA`
    /// protocol.
    pub unresolved_data: u64,
    /// Channels opened (outbound connects + inbound accepts).
    pub channels_opened: u64,
    /// Channels closed.
    pub channels_closed: u64,
}

impl MiddlewareStats {
    /// Total messages sent over any transport.
    #[must_use]
    pub fn total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Total messages received from the wire.
    #[must_use]
    pub fn total_received(&self) -> u64 {
        self.received.iter().sum()
    }
}

/// A cloneable handle to a component's live statistics.
pub type StatsHandle = Arc<Mutex<MiddlewareStats>>;

/// Events flowing from the transport callbacks into the component.
#[derive(Debug, Clone)]
pub enum NetEvent {
    /// An outbound connection finished its handshake.
    Connected(ConnectionId),
    /// An inbound connection was accepted.
    Accepted(Connection),
    /// Stream bytes arrived.
    Data(ConnectionId, Bytes),
    /// Send-buffer space became available.
    Writable(ConnectionId),
    /// A connection ended.
    Closed(ConnectionId, CloseReason),
    /// A UDP datagram arrived.
    Datagram(Endpoint, Bytes),
}

/// Forwards transport callbacks into the component's self-port.
struct ConnForwarder {
    events: SelfRef<NetEvent>,
}

impl StreamEvents for ConnForwarder {
    fn on_connected(&self, conn: &Connection) {
        self.events.push(NetEvent::Connected(conn.id()));
    }

    fn on_data(&self, conn: &Connection, data: Bytes) {
        self.events.push(NetEvent::Data(conn.id(), data));
    }

    fn on_writable(&self, conn: &Connection) {
        self.events.push(NetEvent::Writable(conn.id()));
    }

    fn on_closed(&self, conn: &Connection, reason: CloseReason) {
        self.events.push(NetEvent::Closed(conn.id(), reason));
    }
}

struct AcceptForwarder {
    events: SelfRef<NetEvent>,
}

impl StreamAccept for AcceptForwarder {
    fn on_accept(&self, conn: &Connection) -> Arc<dyn StreamEvents> {
        self.events.push(NetEvent::Accepted(conn.clone()));
        Arc::new(ConnForwarder {
            events: self.events.clone(),
        })
    }
}

struct UdpForwarder {
    events: SelfRef<NetEvent>,
}

impl UdpEvents for UdpForwarder {
    fn on_datagram(&self, _socket: &UdpSocket, src: Endpoint, data: Bytes) {
        self.events.push(NetEvent::Datagram(src, data));
    }
}

/// Key of a transport channel: remote socket plus stream transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ChannelKey {
    remote: Endpoint,
    transport: Transport,
}

struct OutFrame {
    bytes: Bytes,
    written: usize,
    notify: Option<NotifyToken>,
}

struct ChannelState {
    conn: Option<Connection>,
    established: bool,
    pending: VecDeque<OutFrame>,
    /// Payload bytes fully handed to the transport so far.
    written_total: u64,
    /// Notification tokens waiting for the transport to acknowledge the
    /// frame's final byte: `(written_total at frame end, token)`.
    awaiting_ack: VecDeque<(u64, NotifyToken)>,
    decoder: FrameDecoder,
    last_activity: kmsg_netsim::time::SimTime,
}

impl ChannelState {
    fn new() -> Self {
        ChannelState {
            conn: None,
            established: false,
            pending: VecDeque::new(),
            written_total: 0,
            awaiting_ack: VecDeque::new(),
            decoder: FrameDecoder::new(),
            last_activity: kmsg_netsim::time::SimTime::ZERO,
        }
    }
}

/// The network component. Create with [`create_network`].
pub struct NetworkComponent {
    /// Kompics' network port.
    pub port: ProvidedPort<NetworkPort>,
    /// Transport callback events.
    pub events: SelfPort<NetEvent>,
    net: Network,
    cfg: NetworkConfig,
    self_events: Option<SelfRef<NetEvent>>,
    channels: HashMap<ChannelKey, ChannelState>,
    conn_index: HashMap<ConnectionId, ChannelKey>,
    udp: Option<UdpSocket>,
    listeners: Vec<Box<dyn std::any::Any + Send>>,
    stats: StatsHandle,
}

impl std::fmt::Debug for NetworkComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkComponent")
            .field("addr", &self.cfg.addr)
            .field("channels", &self.channels.len())
            .finish()
    }
}

impl NetworkComponent {
    /// Builds the component state; prefer [`create_network`], which also
    /// binds the listeners.
    #[must_use]
    pub fn new(net: Network, cfg: NetworkConfig) -> Self {
        NetworkComponent {
            port: ProvidedPort::new(),
            events: SelfPort::new(),
            net,
            cfg,
            self_events: None,
            channels: HashMap::new(),
            conn_index: HashMap::new(),
            udp: None,
            listeners: Vec::new(),
            stats: Arc::new(Mutex::new(MiddlewareStats::default())),
        }
    }

    /// The live statistics handle.
    #[must_use]
    pub fn stats(&self) -> StatsHandle {
        self.stats.clone()
    }

    /// The listen address.
    #[must_use]
    pub fn address(&self) -> NetAddress {
        self.cfg.addr
    }

    fn notify(&self, token: Option<NotifyToken>, status: DeliveryStatus) {
        if let Some(token) = token {
            self.port.trigger(NetIndication::NotifyResp(token, status));
        }
    }

    fn fail(&self, token: Option<NotifyToken>, error: SendError) {
        self.stats.lock().send_failures += 1;
        self.notify(token, DeliveryStatus::Failed(error));
    }

    // --- outbound -------------------------------------------------------

    fn handle_send(&mut self, token: Option<NotifyToken>, mut msg: NetMessage) {
        let dst = *msg.header().destination();
        // Same-socket delivery: virtual nodes (or self-sends) are reflected
        // without serialisation (§III-B).
        if dst.as_socket() == self.cfg.addr.as_socket() {
            self.stats.lock().local_reflections += 1;
            self.port.trigger(NetIndication::Msg(msg));
            self.notify(token, DeliveryStatus::DeliveredLocally);
            return;
        }
        let mut proto = msg.header().protocol();
        if proto == Transport::Data {
            self.stats.lock().unresolved_data += 1;
            match self.cfg.data_fallback {
                Some(fallback) => {
                    proto = fallback;
                    if let NetHeader::Data(h) = msg.header_mut() {
                        h.selected = Some(fallback);
                    }
                }
                None => {
                    self.fail(token, SendError::UnresolvedDataProtocol);
                    return;
                }
            }
        }
        let encoded = match encode_frame(&msg, self.cfg.compression) {
            Ok(f) => f,
            Err(_) => {
                self.fail(token, SendError::Serialisation);
                return;
            }
        };
        match proto {
            Transport::Udp => self.send_udp(token, dst, encoded),
            Transport::Tcp | Transport::Udt => self.send_stream(token, proto, dst, encoded),
            Transport::Data => unreachable!("resolved above"),
        }
    }

    fn send_udp(&mut self, token: Option<NotifyToken>, dst: NetAddress, frame: Bytes) {
        if frame.len() > MAX_DATAGRAM {
            self.fail(token, SendError::TooLargeForUdp);
            return;
        }
        let Some(udp) = &self.udp else {
            self.fail(token, SendError::Unreachable);
            return;
        };
        let len = frame.len() as u64;
        match udp.send_to(dst.as_socket(), frame) {
            Ok(()) => {
                let mut stats = self.stats.lock();
                stats.sent[Transport::Udp.to_byte() as usize] += 1;
                stats.bytes_out += len;
                drop(stats);
                self.notify(token, DeliveryStatus::Sent);
            }
            Err(_) => self.fail(token, SendError::TooLargeForUdp),
        }
    }

    fn send_stream(
        &mut self,
        token: Option<NotifyToken>,
        proto: Transport,
        dst: NetAddress,
        frame: Bytes,
    ) {
        let key = ChannelKey {
            remote: dst.as_socket(),
            transport: proto,
        };
        if !self.channels.contains_key(&key) {
            if let Err(e) = self.open_channel(key) {
                let _ = e;
                self.fail(token, SendError::Unreachable);
                return;
            }
        }
        let now = self.net.sim().now();
        let channel = self.channels.get_mut(&key).expect("channel just ensured");
        channel.pending.push_back(OutFrame {
            bytes: frame,
            written: 0,
            notify: token,
        });
        channel.last_activity = now;
        if channel.established {
            self.drain_channel(key);
        }
    }

    fn open_channel(&mut self, key: ChannelKey) -> Result<(), BindError> {
        let events = self
            .self_events
            .clone()
            .expect("NetworkComponent used before create_network() wiring");
        let handler = Arc::new(ConnForwarder { events });
        let node = self.cfg.addr.node();
        let conn = match key.transport {
            Transport::Tcp => Connection::Tcp(TcpConn::connect(
                &self.net,
                node,
                key.remote,
                self.cfg.tcp.clone(),
                handler,
            )?),
            Transport::Udt => Connection::Udt(UdtConn::connect(
                &self.net,
                node,
                key.remote,
                self.cfg.udt.clone(),
                handler,
            )?),
            _ => unreachable!("stream channels are TCP or UDT"),
        };
        let mut state = ChannelState::new();
        state.last_activity = self.net.sim().now();
        self.conn_index.insert(conn.id(), key);
        state.conn = Some(conn);
        self.channels.insert(key, state);
        self.stats.lock().channels_opened += 1;
        Ok(())
    }

    fn drain_channel(&mut self, key: ChannelKey) {
        let now = self.net.sim().now();
        let Some(channel) = self.channels.get_mut(&key) else {
            return;
        };
        let Some(conn) = channel.conn.clone() else {
            return;
        };
        let mut bytes_out = 0u64;
        let mut msgs_out = 0u64;
        while let Some(front) = channel.pending.front_mut() {
            let remaining = front.bytes.slice(front.written..);
            let accepted = conn.send(remaining);
            front.written += accepted;
            channel.written_total += accepted as u64;
            bytes_out += accepted as u64;
            if front.written == front.bytes.len() {
                let done = channel.pending.pop_front().expect("front exists");
                msgs_out += 1;
                if let Some(t) = done.notify {
                    // Notified once the transport acknowledges delivery
                    // of the frame's last byte.
                    channel.awaiting_ack.push_back((channel.written_total, t));
                }
            } else {
                break; // transport buffer full; resume on Writable
            }
        }
        channel.last_activity = now;
        {
            let mut stats = self.stats.lock();
            stats.bytes_out += bytes_out;
            stats.sent[key.transport.to_byte() as usize] += msgs_out;
        }
        self.flush_acked(key);
    }

    /// Completes notification requests whose bytes the transport has
    /// acknowledged.
    fn flush_acked(&mut self, key: ChannelKey) {
        let Some(channel) = self.channels.get_mut(&key) else {
            return;
        };
        let Some(conn) = channel.conn.clone() else {
            return;
        };
        let delivered = conn.acked_bytes();
        let mut done = Vec::new();
        while let Some(&(end, token)) = channel.awaiting_ack.front() {
            if end <= delivered {
                channel.awaiting_ack.pop_front();
                done.push(token);
            } else {
                break;
            }
        }
        for t in done {
            self.notify(Some(t), DeliveryStatus::Sent);
        }
    }

    // --- inbound --------------------------------------------------------

    fn handle_event(&mut self, event: NetEvent) {
        match event {
            NetEvent::Connected(id) => {
                if let Some(&key) = self.conn_index.get(&id) {
                    if let Some(channel) = self.channels.get_mut(&key) {
                        channel.established = true;
                    }
                    self.drain_channel(key);
                }
            }
            NetEvent::Accepted(conn) => {
                // Key the inbound channel by the peer's socket for now; it
                // is re-keyed to the peer's listen address when the first
                // message reveals it, so replies reuse this channel.
                let key = ChannelKey {
                    remote: conn.peer(),
                    transport: match conn {
                        Connection::Tcp(_) => Transport::Tcp,
                        Connection::Udt(_) => Transport::Udt,
                    },
                };
                let mut state = ChannelState::new();
                state.established = true;
                state.last_activity = self.net.sim().now();
                self.conn_index.insert(conn.id(), key);
                state.conn = Some(conn);
                self.channels.insert(key, state);
                self.stats.lock().channels_opened += 1;
            }
            NetEvent::Data(id, data) => {
                self.stats.lock().bytes_in += data.len() as u64;
                let Some(&key) = self.conn_index.get(&id) else {
                    return;
                };
                let mut frames = Vec::new();
                {
                    let Some(channel) = self.channels.get_mut(&key) else {
                        return;
                    };
                    channel.decoder.feed(&data);
                    channel.last_activity = self.net.sim().now();
                    loop {
                        match channel.decoder.next_frame() {
                            Ok(Some(frame)) => frames.push(frame),
                            Ok(None) => break,
                            Err(_) => {
                                self.stats.lock().decode_failures += 1;
                                break;
                            }
                        }
                    }
                }
                for body in frames {
                    self.handle_frame(body, Some((id, key)));
                }
            }
            NetEvent::Writable(id) => {
                if let Some(&key) = self.conn_index.get(&id) {
                    self.drain_channel(key);
                }
            }
            NetEvent::Closed(id, _reason) => {
                if let Some(key) = self.conn_index.remove(&id) {
                    if let Some(mut channel) = self.channels.remove(&key) {
                        // At-most-once: queued and unacknowledged messages
                        // are lost; notify requesters.
                        for frame in channel.pending.drain(..) {
                            if let Some(t) = frame.notify {
                                self.fail(Some(t), SendError::ChannelClosed);
                            }
                        }
                        for (_, t) in channel.awaiting_ack.drain(..) {
                            self.fail(Some(t), SendError::ChannelClosed);
                        }
                        self.stats.lock().channels_closed += 1;
                    }
                }
            }
            NetEvent::Datagram(_src, data) => {
                self.stats.lock().bytes_in += data.len() as u64;
                // Datagrams carry exactly one frame (with length prefix).
                let mut dec = FrameDecoder::new();
                dec.feed(&data);
                match dec.next_frame() {
                    Ok(Some(body)) => self.handle_frame(body, None),
                    Ok(None) | Err(_) => {
                        self.stats.lock().decode_failures += 1;
                    }
                }
            }
        }
    }

    fn handle_frame(&mut self, body: Bytes, via: Option<(ConnectionId, ChannelKey)>) {
        let mut msg = match decode_frame_body(body) {
            Ok(m) => m,
            Err(_) => {
                self.stats.lock().decode_failures += 1;
                return;
            }
        };
        // Re-key inbound channels by the peer's listen address so that
        // replies reuse the existing connection.
        if let Some((conn_id, old_key)) = via {
            let src_socket = msg.header().source().as_socket();
            if old_key.remote != src_socket && src_socket.node == old_key.remote.node {
                let new_key = ChannelKey {
                    remote: src_socket,
                    transport: old_key.transport,
                };
                if !self.channels.contains_key(&new_key) {
                    if let Some(state) = self.channels.remove(&old_key) {
                        self.channels.insert(new_key, state);
                        self.conn_index.insert(conn_id, new_key);
                    }
                }
            }
        }
        let my_socket = self.cfg.addr.as_socket();
        if msg.header().destination().as_socket() == my_socket {
            // Multi-hop: if a route names us as the next hop, advance it
            // and forward unless we are the final destination.
            if let NetHeader::Routing(rh) = msg.header_mut() {
                if rh.route.as_ref().is_some_and(super::header::Route::has_next) {
                    rh.advance();
                    if msg.header().destination().as_socket() != my_socket {
                        self.stats.lock().forwarded += 1;
                        self.handle_send(None, msg);
                        return;
                    }
                }
            }
            let proto = msg.header().protocol();
            {
                let mut stats = self.stats.lock();
                let idx = proto.to_byte() as usize;
                stats.received[idx.min(3)] += 1;
            }
            self.port.trigger(NetIndication::Msg(msg));
        } else {
            // Addressed elsewhere (e.g. source routing without an explicit
            // hop entry for us): forward along.
            self.stats.lock().forwarded += 1;
            self.handle_send(None, msg);
        }
    }

    fn sweep_idle_channels(&mut self, now: kmsg_netsim::time::SimTime) {
        let Some(idle) = self.cfg.idle_timeout else {
            return;
        };
        let expired: Vec<ChannelKey> = self
            .channels
            .iter()
            .filter(|(_, c)| {
                c.pending.is_empty() && now.duration_since(c.last_activity) >= idle
            })
            .map(|(k, _)| *k)
            .collect();
        for key in expired {
            if let Some(channel) = self.channels.remove(&key) {
                if let Some(conn) = channel.conn {
                    self.conn_index.remove(&conn.id());
                    conn.close();
                }
                self.stats.lock().channels_closed += 1;
            }
        }
    }
}

impl ComponentDefinition for NetworkComponent {
    fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
        execute_ports!(self, ctx, max, [
            provided port: NetworkPort,
            selfport events: NetEvent,
        ])
    }

    fn handle_control(&mut self, ctx: &mut ComponentContext, event: ControlEvent) {
        if event == ControlEvent::Start && self.cfg.idle_timeout.is_some() {
            ctx.schedule_periodic(
                std::time::Duration::from_secs(1),
                std::time::Duration::from_secs(1),
            );
        }
    }

    fn on_timeout(&mut self, ctx: &mut ComponentContext, _id: TimeoutId) {
        self.sweep_idle_channels(ctx.now());
    }
}

impl Provide<NetworkPort> for NetworkComponent {
    fn handle(&mut self, _ctx: &mut ComponentContext, event: NetRequest) {
        match event {
            NetRequest::Msg(msg) => self.handle_send(None, msg),
            NetRequest::NotifyReq(token, msg) => self.handle_send(Some(token), msg),
        }
    }
}

impl HandleSelf<NetEvent> for NetworkComponent {
    fn handle_self(&mut self, _ctx: &mut ComponentContext, event: NetEvent) {
        self.handle_event(event);
    }
}

impl ProvideRef<NetworkPort> for NetworkComponent {
    fn provided_port(&mut self) -> &mut ProvidedPort<NetworkPort> {
        &mut self.port
    }
}

/// Creates a [`NetworkComponent`], wires its transport callbacks, and
/// binds its TCP/UDT listeners and UDP socket on the configured address.
///
/// The component still needs to be started via
/// [`ComponentSystem::start`].
///
/// # Errors
///
/// Returns [`BindError`] if any of the three ports is already bound.
pub fn create_network(
    system: &ComponentSystem,
    net: &Network,
    cfg: NetworkConfig,
) -> Result<ComponentRef<NetworkComponent>, BindError> {
    let addr = cfg.addr;
    let tcp_cfg = cfg.tcp.clone();
    let udt_cfg = cfg.udt.clone();
    let comp = system.create(|| NetworkComponent::new(net.clone(), cfg));
    let events = comp.self_ref(|c| &mut c.events);

    let tcp_listener = TcpListener::bind(
        net,
        addr.node(),
        addr.port(),
        tcp_cfg,
        Arc::new(AcceptForwarder {
            events: events.clone(),
        }),
    )?;
    let udt_listener = UdtListener::bind(
        net,
        addr.node(),
        addr.port(),
        udt_cfg,
        Arc::new(AcceptForwarder {
            events: events.clone(),
        }),
    )?;
    let udp_socket = UdpSocket::bind(
        net,
        addr.node(),
        addr.port(),
        Arc::new(UdpForwarder {
            events: events.clone(),
        }),
    )?;

    comp.on_definition(|c| {
        c.self_events = Some(events.clone());
        c.udp = Some(udp_socket);
        c.listeners.push(Box::new(tcp_listener));
        c.listeners.push(Box::new(udt_listener));
    });
    Ok(comp)
}
