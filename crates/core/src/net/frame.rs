//! Wire framing: `[len][flags][header][ser_id][payload]`.
//!
//! Frames are length-prefixed for stream transports (TCP/UDT) and sent
//! whole as datagrams for UDP. The payload may be compressed with the
//! [`crate::codec`] (the Snappy stand-in); compression is only kept
//! when it actually shrinks the payload, so incompressible data pays one
//! flag byte and nothing else.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::codec;
use crate::header::NetHeader;
use crate::msg::NetMessage;
use crate::ser::{SerError, SerId};

/// Compression policy for outbound frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compression {
    /// Never compress.
    Off,
    /// Compress payloads of at least this many bytes (keep only if
    /// smaller).
    Threshold(usize),
}

impl Default for Compression {
    /// Compress payloads ≥ 512 B — mirroring the paper's default Snappy
    /// handler in the channel pipeline.
    fn default() -> Self {
        Compression::Threshold(512)
    }
}

const FLAG_COMPRESSED: u8 = 0b0000_0001;

/// Maximum frame size accepted by the decoder (defensive bound).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Encodes a message into one length-prefixed frame.
///
/// # Errors
///
/// Propagates payload serialiser failures.
pub fn encode_frame(msg: &NetMessage, compression: Compression) -> Result<Bytes, SerError> {
    let (ser_id, payload) = msg.payload_to_bytes()?;
    let (flags, body): (u8, Bytes) = match compression {
        Compression::Threshold(min) if payload.len() >= min => {
            let compressed = codec::compress(&payload);
            if compressed.len() < payload.len() {
                let mut b = BytesMut::with_capacity(compressed.len() + 4);
                b.put_u32(u32::try_from(payload.len()).expect("payload too large"));
                b.put_slice(&compressed);
                (FLAG_COMPRESSED, b.freeze())
            } else {
                (0, payload)
            }
        }
        _ => (0, payload),
    };

    let mut frame = BytesMut::with_capacity(4 + 1 + msg.header().encoded_len() + 8 + body.len());
    frame.put_u32(0); // length placeholder
    frame.put_u8(flags);
    msg.header().serialise(&mut frame);
    frame.put_u64(ser_id.0);
    frame.put_slice(&body);
    let len = frame.len() - 4;
    assert!(len <= MAX_FRAME, "frame exceeds MAX_FRAME");
    frame[0..4].copy_from_slice(&u32::try_from(len).expect("frame length").to_be_bytes());
    Ok(frame.freeze())
}

/// Decodes the body of one frame (everything *after* the length prefix).
///
/// # Errors
///
/// Returns [`SerError`] on malformed frames.
pub fn decode_frame_body(mut body: Bytes) -> Result<NetMessage, SerError> {
    const CTX: &str = "frame";
    if body.remaining() < 1 {
        return Err(SerError::Truncated { context: CTX });
    }
    let flags = body.get_u8();
    let header = NetHeader::deserialise(&mut body)?;
    if body.remaining() < 8 {
        return Err(SerError::Truncated { context: CTX });
    }
    let ser_id = SerId(body.get_u64());
    let payload = if flags & FLAG_COMPRESSED != 0 {
        if body.remaining() < 4 {
            return Err(SerError::Truncated { context: CTX });
        }
        let raw_len = body.get_u32() as usize;
        if raw_len > MAX_FRAME {
            return Err(SerError::Invalid { context: CTX });
        }
        let raw = codec::decompress(&body, raw_len)
            .map_err(|_| SerError::Invalid { context: "compressed payload" })?;
        Bytes::from(raw)
    } else {
        body
    };
    Ok(NetMessage::from_wire(header, ser_id, payload))
}

/// Incremental frame extractor for stream transports.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    #[must_use]
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends stream bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Extracts the next complete frame body, if available.
    ///
    /// # Errors
    ///
    /// Returns [`SerError::Invalid`] if the stream announces an oversized
    /// frame (stream corruption).
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, SerError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME {
            return Err(SerError::Invalid { context: "frame length" });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        Ok(Some(self.buf.split_to(len).freeze()))
    }

    /// Bytes buffered but not yet framed.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::NetAddress;
    use crate::transport::Transport;
    use kmsg_netsim::engine::Sim;
    use kmsg_netsim::network::Network;
    use kmsg_netsim::packet::NodeId;

    fn nodes() -> (NodeId, NodeId) {
        let sim = Sim::new(1);
        let net = Network::new(&sim);
        (net.add_node("a"), net.add_node("b"))
    }

    fn sample_msg(payload: impl crate::ser::Serialisable) -> NetMessage {
        let (a, b) = nodes();
        NetMessage::new(
            NetAddress::new(a, 1),
            NetAddress::new(b, 2),
            Transport::Tcp,
            payload,
        )
    }

    #[test]
    fn frame_round_trip_uncompressed() {
        let msg = sample_msg("hello".to_string());
        let frame = encode_frame(&msg, Compression::Off).expect("encode");
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        let body = dec.next_frame().expect("ok").expect("one frame");
        let out = decode_frame_body(body).expect("decode");
        assert_eq!(
            out.try_deserialise::<String, String>().expect("payload"),
            "hello"
        );
        assert_eq!(out.header(), msg.header());
    }

    #[test]
    fn compressible_payload_shrinks_frame() {
        let repetitive = Bytes::from(vec![42u8; 60_000]);
        let msg = sample_msg(repetitive.clone());
        let plain = encode_frame(&msg, Compression::Off).expect("encode");
        let squeezed = encode_frame(&msg, Compression::Threshold(512)).expect("encode");
        assert!(
            squeezed.len() < plain.len() / 10,
            "constant payload should collapse: {} vs {}",
            squeezed.len(),
            plain.len()
        );
        let mut dec = FrameDecoder::new();
        dec.feed(&squeezed);
        let out = decode_frame_body(dec.next_frame().expect("ok").expect("frame")).expect("decode");
        assert_eq!(
            out.try_deserialise::<Bytes, Bytes>().expect("payload"),
            repetitive
        );
    }

    #[test]
    fn incompressible_payload_not_compressed() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(2);
        let random = Bytes::from((0..10_000).map(|_| rng.gen()).collect::<Vec<u8>>());
        let msg = sample_msg(random.clone());
        let framed = encode_frame(&msg, Compression::Threshold(512)).expect("encode");
        // flags byte must say uncompressed (offset 4 after the length).
        assert_eq!(framed[4] & FLAG_COMPRESSED, 0);
        let mut dec = FrameDecoder::new();
        dec.feed(&framed);
        let out = decode_frame_body(dec.next_frame().expect("ok").expect("frame")).expect("decode");
        assert_eq!(out.try_deserialise::<Bytes, Bytes>().expect("p"), random);
    }

    #[test]
    fn decoder_handles_partial_and_multiple_frames() {
        let m1 = sample_msg("first".to_string());
        let m2 = sample_msg("second".to_string());
        let f1 = encode_frame(&m1, Compression::Off).expect("encode");
        let f2 = encode_frame(&m2, Compression::Off).expect("encode");
        let mut all = Vec::new();
        all.extend_from_slice(&f1);
        all.extend_from_slice(&f2);

        let mut dec = FrameDecoder::new();
        // Feed byte by byte; frames must pop exactly when complete.
        let mut frames = Vec::new();
        for &b in &all {
            dec.feed(&[b]);
            while let Some(frame) = dec.next_frame().expect("ok") {
                frames.push(frame);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(dec.buffered(), 0);
        let out1 = decode_frame_body(frames[0].clone()).expect("decode");
        let out2 = decode_frame_body(frames[1].clone()).expect("decode");
        assert_eq!(out1.try_deserialise::<String, String>().expect("p"), "first");
        assert_eq!(out2.try_deserialise::<String, String>().expect("p"), "second");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut dec = FrameDecoder::new();
        dec.feed(&u32::try_from(MAX_FRAME + 1).expect("fits").to_be_bytes());
        dec.feed(&[0u8; 16]);
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn truncated_body_detected() {
        let msg = sample_msg("x".to_string());
        let frame = encode_frame(&msg, Compression::Off).expect("encode");
        // Cut inside the header: framing itself fails.
        let header_cut = Bytes::copy_from_slice(&frame[4..10]);
        assert!(decode_frame_body(header_cut).is_err());
        // Cut inside the payload: the frame is structurally valid (payload
        // length is implied by the frame length) but the payload fails to
        // deserialise.
        let payload_cut = Bytes::copy_from_slice(&frame[4..frame.len() - 1]);
        let out = decode_frame_body(payload_cut).expect("frame decodes");
        assert!(out.try_deserialise::<String, String>().is_err());
    }
}
