//! A fast LZ77-style block codec — the reproduction's stand-in for the
//! Snappy handler the paper notes sits in its Netty channel pipeline by
//! default ("the exact results might differ if the experiments are
//! repeated with data that can easily be compressed").
//!
//! Format (byte-oriented, no entropy coding, 64 KiB window):
//!
//! ```text
//! sequence := lit_len:varint  literals:lit_len bytes  offset:u16le
//!             [ match_extra:varint ]        -- present iff offset != 0
//! block    := sequence*                     -- ends at offset == 0
//! ```
//!
//! A match covers `4 + match_extra` bytes copied from `offset` bytes back.
//! The final sequence carries `offset == 0` and no match.

/// Errors from [`decompress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended mid-sequence.
    Truncated,
    /// A back-reference pointed before the start of the output.
    BadOffset,
    /// Output would exceed the caller's size limit.
    TooLarge,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            CodecError::Truncated => "truncated compressed block",
            CodecError::BadOffset => "back-reference before start of output",
            CodecError::TooLarge => "decompressed output exceeds the size limit",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for CodecError {}

const MIN_MATCH: usize = 4;
const WINDOW: usize = 65_535;
const HASH_BITS: u32 = 14;

fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

fn put_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(data: &[u8], pos: &mut usize) -> Result<u32, CodecError> {
    let mut v: u32 = 0;
    let mut shift = 0;
    loop {
        let b = *data.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        v |= u32::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 28 {
            return Err(CodecError::Truncated);
        }
    }
}

/// Compresses `input`. The output is self-terminating; decompress with
/// [`decompress`]. Worst case the output is slightly larger than the input
/// (incompressible data) — callers should keep the raw form when that
/// happens.
#[must_use]
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut pos = 0;
    let mut literal_start = 0;

    while pos + MIN_MATCH <= input.len() {
        let h = hash4(&input[pos..]);
        let candidate = table[h];
        table[h] = pos;
        let is_match = candidate != usize::MAX
            && pos - candidate <= WINDOW
            && input[candidate..candidate + MIN_MATCH] == input[pos..pos + MIN_MATCH];
        if is_match {
            // Extend the match.
            let mut len = MIN_MATCH;
            while pos + len < input.len()
                && input[candidate + len] == input[pos + len]
            {
                len += 1;
            }
            // Emit: literals since literal_start, then the match.
            let lits = &input[literal_start..pos];
            put_varint(&mut out, u32::try_from(lits.len()).expect("literal run too long"));
            out.extend_from_slice(lits);
            let offset = u16::try_from(pos - candidate).expect("offset fits window");
            out.extend_from_slice(&offset.to_le_bytes());
            put_varint(&mut out, u32::try_from(len - MIN_MATCH).expect("match too long"));
            // Index a few positions inside the match to keep finding
            // repeats (cheap approximation of full indexing).
            let end = pos + len;
            let mut p = pos + 1;
            while p + MIN_MATCH <= end.min(input.len()) && p < pos + 8 {
                table[hash4(&input[p..])] = p;
                p += 1;
            }
            pos = end;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    // Final literal-only sequence (offset 0 terminator).
    let lits = &input[literal_start..];
    put_varint(&mut out, u32::try_from(lits.len()).expect("literal run too long"));
    out.extend_from_slice(lits);
    out.extend_from_slice(&0u16.to_le_bytes());
    out
}

/// Decompresses a block produced by [`compress`].
///
/// # Errors
///
/// Returns [`CodecError`] on malformed input or if the output would exceed
/// `max_len`.
pub fn decompress(data: &[u8], max_len: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    let mut pos = 0;
    loop {
        let lit_len = get_varint(data, &mut pos)? as usize;
        if pos + lit_len > data.len() {
            return Err(CodecError::Truncated);
        }
        if out.len() + lit_len > max_len {
            return Err(CodecError::TooLarge);
        }
        out.extend_from_slice(&data[pos..pos + lit_len]);
        pos += lit_len;
        if pos + 2 > data.len() {
            return Err(CodecError::Truncated);
        }
        let offset = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2;
        if offset == 0 {
            return Ok(out);
        }
        let extra = get_varint(data, &mut pos)? as usize;
        let match_len = MIN_MATCH + extra;
        if offset > out.len() {
            return Err(CodecError::BadOffset);
        }
        if out.len() + match_len > max_len {
            return Err(CodecError::TooLarge);
        }
        // Byte-wise copy: correctly handles overlapping references.
        let start = out.len() - offset;
        for i in 0..match_len {
            let b = out[start + i];
            out.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c, data.len()).expect("decompress");
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_tiny() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
    }

    #[test]
    fn repetitive_data_shrinks() {
        let data: Vec<u8> = b"climate-sample-0012;".repeat(500);
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 4,
            "repetitive data should compress 4x+: {} -> {}",
            data.len(),
            c.len()
        );
        round_trip(&data);
    }

    #[test]
    fn overlapping_match_rle() {
        let data = vec![7u8; 10_000];
        let c = compress(&data);
        assert!(c.len() < 100, "RLE-like data must collapse, got {}", c.len());
        round_trip(&data);
    }

    #[test]
    fn random_data_survives() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
        let data: Vec<u8> = (0..65_000).map(|_| rng.gen()).collect();
        round_trip(&data);
        // Incompressible data may grow slightly but not much.
        let c = compress(&data);
        assert!(c.len() < data.len() + data.len() / 16 + 64);
    }

    #[test]
    fn structured_mixed_data() {
        let mut data = Vec::new();
        for i in 0..2000u32 {
            data.extend_from_slice(&i.to_le_bytes());
            data.extend_from_slice(b"station");
            data.extend_from_slice(&(f64::from(i) * 0.25).to_le_bytes());
        }
        let c = compress(&data);
        assert!(c.len() < data.len());
        round_trip(&data);
    }

    #[test]
    fn truncated_input_errors() {
        let data: Vec<u8> = b"hello world hello world hello world".to_vec();
        let c = compress(&data);
        for cut in [0, 1, c.len() / 2, c.len() - 1] {
            let r = decompress(&c[..cut], data.len());
            assert!(r.is_err() || r.expect("ok") != data);
        }
    }

    #[test]
    fn size_limit_enforced() {
        let data = vec![7u8; 1000];
        let c = compress(&data);
        assert_eq!(decompress(&c, 999), Err(CodecError::TooLarge));
    }

    #[test]
    fn bad_offset_detected() {
        // lit_len=0, offset=5 with empty output so far.
        let bad = [0u8, 5, 0, 0];
        assert_eq!(decompress(&bad, 100), Err(CodecError::BadOffset));
    }

    #[test]
    fn error_display() {
        assert!(CodecError::Truncated.to_string().contains("truncated"));
    }
}
