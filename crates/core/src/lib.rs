//! # kmsg-core — KompicsMessaging in Rust
//!
//! A reproduction of the messaging middleware from *Fast and Flexible
//! Networking for Message-oriented Middleware* (Kroll, Ormenisan,
//! Dowling — ICDCS 2017): a message-oriented middleware for the Kompics
//! component model that offers **per-message transport protocol
//! selection** among UDP, TCP and UDT, plus an adaptive `DATA`
//! meta-protocol that shifts traffic between TCP and UDT with an online
//! reinforcement learner.
//!
//! ## Architecture
//!
//! ```text
//!  application components
//!        │  NetworkPort (Msg / MessageNotify)
//!        ▼
//!  DataNetworkComponent        -- §IV: queues DATA streams, adaptive
//!        │                        release, PSP (random/pattern) picks
//!        │                        TCP/UDT per message, PRP (static/TD(λ))
//!        │                        picks the target ratio per episode
//!        ▼
//!  NetworkComponent            -- §III: per-message dispatch, lazy
//!        │                        channels, same-host reflection,
//!        │                        multi-hop routing, MessageNotify
//!        ▼
//!  kmsg-netsim transports      -- packet-level TCP / UDP / UDT
//! ```
//!
//! Messages carry a [`header::NetHeader`] naming source, destination and
//! the requested [`transport::Transport`]; the network component ensures
//! the needed channels exist, queues messages until they do, and keeps
//! them open ("conservative teardown"). Messages between virtual nodes of
//! the same host are *reflected* without serialisation ([`vnet`]).
//!
//! # Example: a message envelope, end to end through the wire format
//!
//! ```
//! use kmsg_core::prelude::*;
//! use kmsg_core::net::frame::{encode_frame, decode_frame_body, Compression, FrameDecoder};
//! use kmsg_netsim::{engine::Sim, network::Network};
//!
//! // Addresses name simulated hosts.
//! let sim = Sim::new(1);
//! let net = Network::new(&sim);
//! let alice = NetAddress::new(net.add_node("alice"), 7000);
//! let bob = NetAddress::new(net.add_node("bob"), 7000).with_vnode(VnodeId(3));
//!
//! // A typed message: the payload is NOT serialised until it must cross
//! // the wire (same-host vnode traffic never is).
//! let msg = NetMessage::new(alice, bob, Transport::Udt, "hello".to_string());
//! assert!(!msg.is_from_wire());
//!
//! // The network component would frame it like this:
//! let frame = encode_frame(&msg, Compression::default())?;
//! let mut decoder = FrameDecoder::new();
//! decoder.feed(&frame);
//! let body = decoder.next_frame()?.expect("one frame");
//! let received = decode_frame_body(body)?;
//! assert!(received.is_from_wire());
//! assert_eq!(received.header().protocol(), Transport::Udt);
//! assert_eq!(received.header().destination().vnode(), Some(VnodeId(3)));
//! assert_eq!(received.try_deserialise::<String, String>()?, "hello");
//! # Ok::<(), kmsg_core::SerError>(())
//! ```
//!
//! See the crate-level tests and the repository's `examples/` for
//! runnable end-to-end scenarios.

#![warn(missing_docs)]

pub mod address;
pub mod codec;
pub mod data;
pub mod header;
pub mod msg;
pub mod net;
pub mod overlay;
pub mod ser;
pub mod transport;
pub mod vnet;

pub use address::{Address, NetAddress, VnodeId};
pub use data::{DataNetwork, DataNetworkComponent, DataNetworkConfig, Ratio};
pub use header::{BasicHeader, DataHeader, Header, NetHeader, Route, RoutingHeader, DEFAULT_TTL};
pub use msg::{
    ChannelStatus, ConnStatus, DeliveryStatus, Msg, NetIndication, NetMessage, NetRequest,
    NetworkPort, NotifyToken, SendError,
};
pub use net::{
    create_network, MiddlewareStats, NetworkComponent, NetworkConfig, ReconnectConfig,
    StatsHandle, SupervisionSummary,
};
pub use overlay::{
    OverlayComponent, OverlayConfig, OverlayDelivery, OverlayPort, OverlayRequest, OverlayStats,
    OverlayStatsHandle, OverlayWire,
};
pub use ser::{Deserialiser, SerError, SerId, SerRegistry, Serialisable};
pub use transport::Transport;

/// Common imports for middleware users.
pub mod prelude {
    pub use crate::address::{Address, NetAddress, VnodeId};
    pub use crate::data::{
        create_data_network, DataNetwork, DataNetworkComponent, DataNetworkConfig, PatternKind,
        PrpKind, PspKind, Ratio, TdConfig, ValueBackend,
    };
    pub use crate::header::{BasicHeader, DataHeader, Header, NetHeader, Route, RoutingHeader, DEFAULT_TTL};
    pub use crate::msg::{
        ChannelStatus, ConnStatus, DeliveryStatus, Msg, NetIndication, NetMessage, NetRequest,
        NetworkPort, NotifyToken, SendError,
    };
    pub use crate::net::{
        create_network, MiddlewareStats, NetworkComponent, NetworkConfig, ReconnectConfig,
        StatsHandle, SupervisionSummary,
    };
    pub use crate::overlay::{
        OverlayComponent, OverlayConfig, OverlayDelivery, OverlayPort, OverlayRequest,
        OverlayStats, OverlayStatsHandle, OverlayWire,
    };
    pub use crate::ser::{Deserialiser, SerError, SerId, SerRegistry, Serialisable};
    pub use crate::transport::Transport;
    pub use crate::vnet::{connect_default, connect_vnode};
}
