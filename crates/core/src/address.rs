//! Addresses: where messages come from and go to.
//!
//! Mirrors the paper's `Address` interface (listing 4): an address exposes
//! its socket (here a simulated [`Endpoint`]) and a `same_host_as` check —
//! the hook that lets the network component *reflect* messages between
//! virtual nodes on the same host without serialising them (§III-B).
//!
//! [`NetAddress`] is the default implementation, extended — exactly as the
//! paper suggests — with an optional *virtual node* id that disambiguates
//! component subtrees sharing one network interface.

use kmsg_netsim::packet::{Endpoint, NodeId};

/// The minimum features the network layer requires of an address
/// (the paper's `Address` interface).
pub trait Address: Clone + std::fmt::Debug + Send + 'static {
    /// The host (the simulated analog of the IP address).
    fn node(&self) -> NodeId;
    /// The port.
    fn port(&self) -> u16;
    /// The address as a socket endpoint.
    fn as_socket(&self) -> Endpoint;
    /// Whether two addresses live on the same host (enables local
    /// reflection of messages without serialisation).
    fn same_host_as(&self, other: &Self) -> bool {
        self.node() == other.node()
    }
}

/// Identifies a virtual node (a component subtree sharing a host's network
/// interface, §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VnodeId(pub u64);

/// The default address: a socket endpoint plus an optional virtual-node id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetAddress {
    socket: Endpoint,
    vnode: Option<VnodeId>,
}

impl NetAddress {
    /// An address for a plain (non-virtual) endpoint.
    #[must_use]
    pub fn new(node: NodeId, port: u16) -> Self {
        NetAddress {
            socket: Endpoint::new(node, port),
            vnode: None,
        }
    }

    /// Builds an address from an existing socket endpoint.
    #[must_use]
    pub fn from_socket(socket: Endpoint) -> Self {
        NetAddress { socket, vnode: None }
    }

    /// A copy of this address scoped to the given virtual node.
    #[must_use]
    pub fn with_vnode(self, id: VnodeId) -> Self {
        NetAddress {
            socket: self.socket,
            vnode: Some(id),
        }
    }

    /// A copy of this address with the virtual-node id cleared.
    #[must_use]
    pub fn without_vnode(self) -> Self {
        NetAddress {
            socket: self.socket,
            vnode: None,
        }
    }

    /// The virtual-node id, if any.
    #[must_use]
    pub fn vnode(&self) -> Option<VnodeId> {
        self.vnode
    }
}

impl Address for NetAddress {
    fn node(&self) -> NodeId {
        self.socket.node
    }

    fn port(&self) -> u16 {
        self.socket.port
    }

    fn as_socket(&self) -> Endpoint {
        self.socket
    }
}

impl std::fmt::Display for NetAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.vnode {
            Some(VnodeId(id)) => write!(f, "{}#{}", self.socket, id),
            None => write!(f, "{}", self.socket),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmsg_netsim::engine::Sim;
    use kmsg_netsim::network::Network;

    fn nodes() -> (NodeId, NodeId) {
        let sim = Sim::new(1);
        let net = Network::new(&sim);
        (net.add_node("a"), net.add_node("b"))
    }

    #[test]
    fn same_host_ignores_port_and_vnode() {
        let (a, _b) = nodes();
        let x = NetAddress::new(a, 100);
        let y = NetAddress::new(a, 200).with_vnode(VnodeId(5));
        assert!(x.same_host_as(&y));
    }

    #[test]
    fn different_hosts_differ() {
        let (a, b) = nodes();
        assert!(!NetAddress::new(a, 1).same_host_as(&NetAddress::new(b, 1)));
    }

    #[test]
    fn vnode_round_trip() {
        let (a, _) = nodes();
        let addr = NetAddress::new(a, 8080).with_vnode(VnodeId(9));
        assert_eq!(addr.vnode(), Some(VnodeId(9)));
        assert_eq!(addr.without_vnode().vnode(), None);
        assert_eq!(addr.port(), 8080);
        assert_eq!(addr.as_socket(), Endpoint::new(a, 8080));
    }

    #[test]
    fn display_formats() {
        let (a, _) = nodes();
        let addr = NetAddress::new(a, 8080);
        assert_eq!(addr.to_string(), "n0:8080");
        assert_eq!(addr.with_vnode(VnodeId(3)).to_string(), "n0:8080#3");
    }
}
