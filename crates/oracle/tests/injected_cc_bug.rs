//! Acceptance tests for the controller legality oracles: a deliberately
//! injected CUBIC or BBR bug is caught end-to-end by the matching
//! oracle, shrunk to a minimal scenario, and replayed from its artifact.
//!
//! Two injected faults, one per controller:
//!
//! * `CcConfig::buggy_no_fast_convergence` — CUBIC keeps `W_max` at the
//!   lost window even when the loss struck *below* the previous maximum,
//!   where RFC 8312 fast convergence demands `W_max = cwnd·(2−β)/2`.
//!   [`kmsg_oracle::CubicOracle`]'s `fast_convergence` rule forbids it.
//! * `CcConfig::buggy_skip_drain` — BBR jumps from startup straight to
//!   probe-bw without draining the startup queue.
//!   [`kmsg_oracle::BbrOracle`]'s `phase_sequence` rule forbids the
//!   two-rank jump.

use std::sync::Arc;
use std::time::Duration;

use kmsg_netsim::cc::{CcAlgorithm, CcConfig};
use kmsg_netsim::engine::Sim;
use kmsg_netsim::iface::{Connection, StreamAccept, StreamEvents};
use kmsg_netsim::link::LinkConfig;
use kmsg_netsim::network::Network;
use kmsg_netsim::packet::Endpoint;
use kmsg_netsim::tcp::{TcpConfig, TcpConn, TcpListener};
use kmsg_netsim::testutil::{PatternSender, Recorder};
use kmsg_oracle::{
    check_all, minimize, render_verdict, Json, OracleConfig, RunFacts, Shrinkable, Violation,
};

struct AcceptRecorder(Arc<Recorder>);
impl StreamAccept for AcceptRecorder {
    fn on_accept(&self, _conn: &Connection) -> Arc<dyn StreamEvents> {
        self.0.clone()
    }
}

/// A minimal controller fuzz scenario: one lossy duplex link, one
/// transfer, a chosen congestion controller, an optional injected bug.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CcScenario {
    seed: u64,
    total: usize,
    loss_ppm: u64,
    delay_ms: u64,
    cc: CcAlgorithm,
    buggy: bool,
}

impl CcScenario {
    fn baseline(cc: CcAlgorithm) -> CcScenario {
        CcScenario {
            seed: 7,
            // BBR's injected bug sits at the startup exit, reached only
            // after a couple of megabytes of delivery on this link; the
            // loss-driven CUBIC bug trips almost immediately.
            total: if cc == CcAlgorithm::Bbr { 4_000_000 } else { 400_000 },
            loss_ppm: 20_000,
            delay_ms: 5,
            cc,
            buggy: false,
        }
    }

    fn run(&self) -> (Vec<kmsg_telemetry::Event>, RunFacts) {
        let sim = Sim::new(self.seed);
        sim.recorder().enable();
        let net = Network::new(&sim);
        let a = net.add_node("a");
        let b = net.add_node("b");
        let link = LinkConfig::new(10e6, Duration::from_millis(self.delay_ms))
            .random_loss(self.loss_ppm as f64 / 1e6);
        net.connect_duplex(a, b, link);
        let server = Arc::new(Recorder::default());
        let mut cc = CcConfig::for_algorithm(self.cc);
        cc.buggy_no_fast_convergence = self.buggy && self.cc == CcAlgorithm::Cubic;
        cc.buggy_skip_drain = self.buggy && self.cc == CcAlgorithm::Bbr;
        let cfg = TcpConfig {
            cc,
            ..TcpConfig::default()
        };
        let _listener = TcpListener::bind(
            &net,
            b,
            80,
            cfg.clone(),
            Arc::new(AcceptRecorder(server.clone())),
        )
        .expect("bind");
        let pump = PatternSender::new(&sim, self.total);
        let _conn =
            TcpConn::connect(&net, a, Endpoint::new(b, 80), cfg, pump).expect("connect");
        sim.run_for(Duration::from_secs(600));
        let completed = server.data_len() == self.total;
        let facts = RunFacts {
            completed,
            verified: completed && server.in_order(),
            fifo_expected: true,
            evicted_events: sim.recorder().evicted(),
            ..RunFacts::default()
        };
        (sim.recorder().events(), facts)
    }

    fn violations(&self) -> Vec<Violation> {
        let (events, facts) = self.run();
        let cfg = OracleConfig {
            expect_completion: true,
            ..OracleConfig::default()
        };
        check_all(&events, &facts, &cfg)
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", Json::Num(self.seed as f64)),
            ("total", Json::Num(self.total as f64)),
            ("loss_ppm", Json::Num(self.loss_ppm as f64)),
            ("delay_ms", Json::Num(self.delay_ms as f64)),
            ("cc", Json::Str(self.cc.label().to_string())),
            ("buggy", Json::Bool(self.buggy)),
        ])
    }

    fn from_json(doc: &Json) -> Option<CcScenario> {
        Some(CcScenario {
            seed: doc.get("seed")?.as_u64()?,
            total: usize::try_from(doc.get("total")?.as_u64()?).ok()?,
            loss_ppm: doc.get("loss_ppm")?.as_u64()?,
            delay_ms: doc.get("delay_ms")?.as_u64()?,
            cc: CcAlgorithm::from_label(doc.get("cc")?.as_str()?)?,
            buggy: doc.get("buggy")?.as_bool()?,
        })
    }
}

impl Shrinkable for CcScenario {
    fn candidates(&self) -> Vec<CcScenario> {
        let mut out = Vec::new();
        if self.total > 50_000 {
            let mut s = self.clone();
            s.total = (self.total / 2).max(50_000);
            out.push(s);
        }
        if self.loss_ppm > 5_000 {
            let mut s = self.clone();
            s.loss_ppm = 5_000;
            out.push(s);
        }
        if self.delay_ms > 1 {
            let mut s = self.clone();
            s.delay_ms = 1;
            out.push(s);
        }
        out
    }

    fn complexity(&self) -> u64 {
        self.total as u64 + self.loss_ppm + self.delay_ms
    }
}

fn trips(s: &CcScenario, oracle: &str, rule: &str) -> bool {
    s.violations()
        .iter()
        .any(|v| v.oracle == oracle && v.rule == rule)
}

/// Runs the four-stage acceptance sequence for one injected bug:
/// caught → minimized → replayed from the artifact → clean when fixed.
fn assert_caught_minimized_replayable(cc: CcAlgorithm, oracle: &str, rule: &str) {
    // 1. The injected bug is caught by the matching legality oracle.
    let buggy = CcScenario {
        buggy: true,
        ..CcScenario::baseline(cc)
    };
    assert!(
        trips(&buggy, oracle, rule),
        "the injected {} bug must trip [{oracle}/{rule}]:\n{}",
        cc.label(),
        render_verdict(&buggy.violations())
    );

    // 2. The failing scenario shrinks while still tripping the same rule.
    let (minimized, tested) = minimize(buggy.clone(), |s| trips(s, oracle, rule));
    assert!(tested > 0, "minimization must try candidates");
    assert!(
        minimized.complexity() < buggy.complexity(),
        "the baseline scenario is not already minimal"
    );
    assert!(trips(&minimized, oracle, rule));

    // 3. The minimized scenario round-trips through the artifact format
    //    and still reproduces the violation when replayed from it.
    let text = minimized.to_json().render();
    let replayed =
        CcScenario::from_json(&Json::parse(&text).expect("artifact parses")).expect("decodes");
    assert_eq!(replayed, minimized);
    assert!(
        trips(&replayed, oracle, rule),
        "replaying the artifact must reproduce the violation"
    );

    // 4. The same scenario without the injected bug is clean: the oracle
    //    fires on the fault, not on the workload.
    let fixed = CcScenario {
        buggy: false,
        ..minimized
    };
    assert!(
        fixed.violations().is_empty(),
        "the minimized scenario must be clean without the injected bug:\n{}",
        render_verdict(&fixed.violations())
    );
}

#[test]
fn clean_runs_pass_every_oracle_for_all_controllers() {
    for cc in CcAlgorithm::all() {
        let violations = CcScenario::baseline(cc).violations();
        assert!(
            violations.is_empty(),
            "a correct {} run must be oracle-clean:\n{}",
            cc.label(),
            render_verdict(&violations)
        );
    }
}

#[test]
fn injected_cubic_bug_is_caught_minimized_and_replayable() {
    assert_caught_minimized_replayable(CcAlgorithm::Cubic, "cubic", "fast_convergence");
}

#[test]
fn injected_bbr_bug_is_caught_minimized_and_replayable() {
    assert_caught_minimized_replayable(CcAlgorithm::Bbr, "bbr", "phase_sequence");
}
