//! Same-seed fuzz runs must be byte-identical end to end: the recorded
//! trace, the rendered oracle verdict *and* the minimized failing-scenario
//! artifact. This is what makes a `failing_seed.json` attached to a CI
//! failure trustworthy — replaying it reproduces the exact run.

use std::sync::Arc;
use std::time::Duration;

use kmsg_netsim::engine::Sim;
use kmsg_netsim::iface::{Connection, StreamAccept, StreamEvents};
use kmsg_netsim::link::LinkConfig;
use kmsg_netsim::network::Network;
use kmsg_netsim::packet::Endpoint;
use kmsg_netsim::tcp::{TcpConfig, TcpConn, TcpListener};
use kmsg_netsim::testutil::{PatternSender, Recorder};
use kmsg_oracle::{check_all, minimize, render_verdict, OracleConfig, RunFacts, Shrinkable};

struct AcceptRecorder(Arc<Recorder>);
impl StreamAccept for AcceptRecorder {
    fn on_accept(&self, _conn: &Connection) -> Arc<dyn StreamEvents> {
        self.0.clone()
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Scenario {
    seed: u64,
    total: usize,
    buggy: bool,
}

impl Scenario {
    /// Runs the scenario; returns `(flight-recorder JSONL, verdict)`.
    fn run(&self) -> (String, String) {
        let sim = Sim::new(self.seed);
        sim.recorder().enable();
        let net = Network::new(&sim);
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.connect_duplex(
            a,
            b,
            LinkConfig::new(10e6, Duration::from_millis(5)).random_loss(0.02),
        );
        let server = Arc::new(Recorder::default());
        let cfg = TcpConfig {
            buggy_no_fast_recovery: self.buggy,
            ..TcpConfig::default()
        };
        let _listener = TcpListener::bind(
            &net,
            b,
            80,
            cfg.clone(),
            Arc::new(AcceptRecorder(server.clone())),
        )
        .expect("bind");
        let pump = PatternSender::new(&sim, self.total);
        let _conn =
            TcpConn::connect(&net, a, Endpoint::new(b, 80), cfg, pump).expect("connect");
        sim.run_for(Duration::from_secs(600));
        let completed = server.data_len() == self.total;
        let facts = RunFacts {
            completed,
            verified: completed && server.in_order(),
            fifo_expected: true,
            evicted_events: sim.recorder().evicted(),
            ..RunFacts::default()
        };
        let violations = check_all(
            &sim.recorder().events(),
            &facts,
            &OracleConfig {
                expect_completion: true,
                ..OracleConfig::default()
            },
        );
        (sim.recorder().to_jsonl(), render_verdict(&violations))
    }

    fn fails(&self) -> bool {
        !self.run().1.starts_with("ok")
    }
}

impl Shrinkable for Scenario {
    fn candidates(&self) -> Vec<Scenario> {
        if self.total > 50_000 {
            vec![Scenario {
                total: (self.total / 2).max(50_000),
                ..self.clone()
            }]
        } else {
            Vec::new()
        }
    }

    fn complexity(&self) -> u64 {
        self.total as u64
    }
}

#[test]
fn clean_runs_are_byte_identical_per_seed() {
    let scenario = Scenario {
        seed: 11,
        total: 300_000,
        buggy: false,
    };
    let (jsonl_a, verdict_a) = scenario.run();
    let (jsonl_b, verdict_b) = scenario.run();
    assert!(!jsonl_a.is_empty(), "telemetry must capture events");
    assert!(jsonl_a == jsonl_b, "same-seed traces diverged");
    assert_eq!(verdict_a, "ok\n");
    assert_eq!(verdict_a, verdict_b);
}

#[test]
fn failing_runs_minimize_to_identical_artifacts() {
    let scenario = Scenario {
        seed: 11,
        total: 300_000,
        buggy: true,
    };
    assert!(scenario.fails(), "the injected bug must fire");
    let pipeline = || {
        let (jsonl, verdict) = scenario.run();
        let (minimized, tested) = minimize(scenario.clone(), Scenario::fails);
        (jsonl, verdict, minimized, tested)
    };
    let (jsonl_a, verdict_a, min_a, tested_a) = pipeline();
    let (jsonl_b, verdict_b, min_b, tested_b) = pipeline();
    assert!(jsonl_a == jsonl_b, "same-seed traces diverged");
    assert_eq!(verdict_a, verdict_b, "same-seed verdicts diverged");
    assert_eq!(min_a, min_b, "same-seed minimized scenarios diverged");
    assert_eq!(tested_a, tested_b, "minimization paths diverged");
    // The minimized scenario's own trace is reproducible too.
    let (min_jsonl_a, min_verdict_a) = min_a.run();
    let (min_jsonl_b, min_verdict_b) = min_b.run();
    assert!(min_jsonl_a == min_jsonl_b);
    assert_eq!(min_verdict_a, min_verdict_b);
    assert!(!min_verdict_a.starts_with("ok"));
}
