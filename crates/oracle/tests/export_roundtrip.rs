//! Round-trips the telemetry exporters through the oracle crate's JSON
//! parser: every line of flight-recorder JSONL, the metrics snapshot and
//! the Chrome trace-event export must be valid interchange JSON with the
//! recorded values intact — including metric names and string fields that
//! need escaping.
//!
//! The [`kmsg_oracle::Json`] value is `f64`-backed, so numbers above 2^53
//! (real span ids carry the kind tag in the top byte) parse with precision
//! loss. The exact-fixed-point assertions therefore use hand-built events
//! with small ids; the recorder-driven test asserts validity and field
//! round-trips on values the parser represents exactly.

use kmsg_oracle::Json;
use kmsg_telemetry::{Event, EventKind, Recorder, SpanKind};

/// A recorder exercised across event kinds, spans, and metrics whose
/// names need escaping.
fn sample_recorder() -> Recorder {
    let rec = Recorder::new();
    rec.enable();

    rec.record(
        10,
        EventKind::TcpCwnd {
            conn: 7,
            cwnd: 2920.0,
            ssthresh: 64000.5,
            cause: "rto",
        },
    );
    rec.record(
        20,
        EventKind::Packet {
            src: "host\"0\"".to_string(),
            dst: "peer\\1".to_string(),
            proto: "tcp",
            wire_size: 1500,
            outcome: "line1\nline2".to_string(),
        },
    );
    rec.record(
        30,
        EventKind::Decision {
            flow: 3,
            step: 1,
            state: 12,
            action: 2,
            reward: -0.25,
            epsilon: 0.1,
            greedy: false,
        },
    );
    rec.record(
        40,
        EventKind::ConnStatus {
            peer: 1,
            transport: "data",
            status: "lost",
            attempts: 0,
        },
    );

    let tr = rec.tracer();
    let msg = tr.open_root(50, SpanKind::Msg, 4242);
    let enq = tr.open(50, SpanKind::Enqueue, msg, msg, 4242);
    tr.close(60, enq);
    tr.close(70, msg);
    tr.instant(70, SpanKind::Requeue, msg, msg, 1);
    // Left open deliberately: the chrome exporter must keep it visible.
    let _outage = tr.open_root(80, SpanKind::Outage, 9);

    rec.counter("runs/total").add(3);
    rec.counter("with \"quotes\" and \\slash").inc();
    rec.gauge("chaos/recovery/backoff_ms").set(101.5);
    rec.gauge("tab\there\nnewline\u{1}ctl").set(-0.5);
    rec.histogram("rtt_us").record(250);
    rec.histogram("rtt_us").record(750);
    rec
}

#[test]
fn jsonl_lines_parse_with_values_intact() {
    let rec = sample_recorder();
    let jsonl = rec.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(lines.len() >= 10, "spans + events recorded: {}", lines.len());

    for line in &lines {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        assert!(v.get("t").and_then(Json::as_f64).is_some(), "{line}");
        assert!(v.get("kind").and_then(Json::as_str).is_some(), "{line}");
    }

    // Escaped string fields decode back to the original text.
    let packet = lines
        .iter()
        .map(|l| Json::parse(l).expect("parsed above"))
        .find(|v| v.get("kind").and_then(Json::as_str) == Some("packet"))
        .expect("packet line present");
    assert_eq!(packet.get("src").and_then(Json::as_str), Some("host\"0\""));
    assert_eq!(packet.get("dst").and_then(Json::as_str), Some("peer\\1"));
    assert_eq!(
        packet.get("outcome").and_then(Json::as_str),
        Some("line1\nline2")
    );

    // Numeric fields (within f64-exact range) survive the trip.
    let cwnd = Json::parse(lines[0]).expect("parsed above");
    assert_eq!(cwnd.get("t").and_then(Json::as_u64), Some(10));
    assert_eq!(cwnd.get("cwnd").and_then(Json::as_f64), Some(2920.0));
    assert_eq!(cwnd.get("ssthresh").and_then(Json::as_f64), Some(64000.5));
    let decision = Json::parse(lines[2]).expect("parsed above");
    assert_eq!(decision.get("reward").and_then(Json::as_f64), Some(-0.25));
    assert_eq!(decision.get("greedy").and_then(Json::as_bool), Some(false));
}

#[test]
fn jsonl_lines_without_big_ints_rerender_byte_identical() {
    // Hand-built events with small span ids: parse → render must be the
    // exact bytes the exporter emitted, for every event shape.
    let events = vec![
        Event {
            time_ns: 1,
            kind: EventKind::SpanOpen {
                span: 11,
                parent: 0,
                trace: 11,
                kind: "msg",
                key: 4242,
            },
        },
        Event {
            time_ns: 2,
            kind: EventKind::LinkDrop {
                link: 3,
                reason: "partition \"both\"",
                wire_size: 1500,
            },
        },
        Event {
            time_ns: 3,
            kind: EventKind::UdtRate {
                conn: 1,
                period_us: 10.5,
                rate_pps: 95238.0,
                cause: "nak",
            },
        },
        Event {
            time_ns: 4,
            kind: EventKind::SpanClose { span: 11, key: 0 },
        },
    ];
    let mut jsonl = String::new();
    for ev in &events {
        kmsg_telemetry::export::push_event_json(&mut jsonl, ev);
        jsonl.push('\n');
    }
    for line in jsonl.lines() {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        assert_eq!(v.render(), line, "parse→render is the identity");
    }
}

#[test]
fn snapshot_json_parses_with_escaped_metric_names() {
    let rec = sample_recorder();
    let snap = rec.snapshot_json();
    let v = Json::parse(&snap).unwrap_or_else(|e| panic!("bad snapshot: {e}\n{snap}"));

    let events = v.get("events").expect("events section");
    let recorded = events.get("recorded").and_then(Json::as_u64).expect("recorded");
    let retained = events.get("retained").and_then(Json::as_u64).expect("retained");
    assert_eq!(recorded, retained, "nothing evicted in this small run");
    assert_eq!(events.get("evicted").and_then(Json::as_u64), Some(0));
    let by_kind = events.get("by_kind").expect("by_kind map");
    assert_eq!(by_kind.get("packet").and_then(Json::as_u64), Some(1));
    // 3 opens + 1 instant open.
    assert_eq!(by_kind.get("span_open").and_then(Json::as_u64), Some(4));
    assert_eq!(by_kind.get("span_close").and_then(Json::as_u64), Some(3));

    let counters = v.get("counters").expect("counters section");
    assert_eq!(counters.get("runs/total").and_then(Json::as_u64), Some(3));
    assert_eq!(
        counters
            .get("with \"quotes\" and \\slash")
            .and_then(Json::as_u64),
        Some(1),
        "escaped counter name must decode back to the raw registration name"
    );

    let gauges = v.get("gauges").expect("gauges section");
    assert_eq!(
        gauges
            .get("chaos/recovery/backoff_ms")
            .and_then(Json::as_f64),
        Some(101.5)
    );
    assert_eq!(
        gauges.get("tab\there\nnewline\u{1}ctl").and_then(Json::as_f64),
        Some(-0.5),
        "control characters in metric names must round-trip"
    );

    let hist = v.get("histograms").and_then(|h| h.get("rtt_us")).expect("histogram");
    assert_eq!(hist.get("count").and_then(Json::as_u64), Some(2));
    assert_eq!(hist.get("sum").and_then(Json::as_u64), Some(1000));
}

#[test]
fn chrome_trace_parses_and_pairs_spans() {
    let events = vec![
        Event {
            time_ns: 1_000,
            kind: EventKind::SpanOpen {
                span: 11,
                parent: 0,
                trace: 11,
                kind: "msg",
                key: 7,
            },
        },
        Event {
            time_ns: 2_000,
            kind: EventKind::Mark { id: 1, value: 2 },
        },
        Event {
            time_ns: 3_500,
            kind: EventKind::SpanClose { span: 11, key: 0 },
        },
        Event {
            time_ns: 4_000,
            kind: EventKind::SpanOpen {
                span: 12,
                parent: 11,
                trace: 11,
                kind: "outage",
                key: 9,
            },
        },
    ];
    let text = kmsg_telemetry::export::to_chrome_trace(&events);
    assert_eq!(text, kmsg_telemetry::export::to_chrome_trace(&events));
    let v = Json::parse(&text).unwrap_or_else(|e| panic!("bad chrome trace: {e}\n{text}"));

    let entries = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert_eq!(entries.len(), 3, "closed span + instant + unclosed span");

    let closed = entries
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("msg"))
        .expect("closed msg span entry");
    assert_eq!(closed.get("ph").and_then(Json::as_str), Some("X"));
    assert_eq!(closed.get("ts").and_then(Json::as_f64), Some(1.0), "µs");
    assert_eq!(closed.get("dur").and_then(Json::as_f64), Some(2.5), "µs");
    let args = closed.get("args").expect("args");
    assert_eq!(args.get("span").and_then(Json::as_u64), Some(11));
    assert_eq!(args.get("trace").and_then(Json::as_u64), Some(11));
    assert_eq!(args.get("close_key").and_then(Json::as_u64), Some(0));

    let instant = entries
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("mark"))
        .expect("instant entry");
    assert_eq!(instant.get("ph").and_then(Json::as_str), Some("i"));

    let unclosed = entries
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("outage"))
        .expect("unclosed span entry");
    assert_eq!(unclosed.get("dur").and_then(Json::as_f64), Some(0.0));
    assert_eq!(
        unclosed
            .get("args")
            .and_then(|a| a.get("unclosed"))
            .and_then(Json::as_u64),
        Some(1)
    );

    // Every entry's tid resolves through the metadata track map to its
    // own label.
    let meta = v.get("metadata").expect("metadata");
    for e in entries {
        let tid = e.get("tid").and_then(Json::as_u64).expect("tid");
        let label = meta
            .get(&format!("track_{tid}"))
            .and_then(Json::as_str)
            .expect("track label");
        let name = e.get("name").and_then(Json::as_str).expect("name");
        let ph = e.get("ph").and_then(Json::as_str).expect("ph");
        if ph == "X" {
            assert_eq!(label, name);
        } else {
            assert_eq!(label, format!("ev:{name}"));
        }
    }
}

#[test]
fn recorder_chrome_trace_is_valid_json() {
    let rec = sample_recorder();
    let text = kmsg_telemetry::export::to_chrome_trace(&rec.events());
    let v = Json::parse(&text).unwrap_or_else(|e| panic!("bad chrome trace: {e}"));
    let entries = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    // 4 plain events as instants, 3 closed spans, 1 unclosed span.
    assert_eq!(entries.len(), 8);
}
