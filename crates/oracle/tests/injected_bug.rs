//! Acceptance test for the fuzz loop's core promise: a deliberately
//! injected protocol bug is caught by an oracle and shrunk to a minimal,
//! replayable artifact.
//!
//! The injected bug is `TcpConfig::buggy_no_fast_recovery`: the TCP model
//! still fast-retransmits receiver-reported holes but skips the Reno
//! multiplicative decrease (and its `fast_recovery` telemetry event). The
//! resulting trace shows `TcpRetransmit { fast: true }` with no recorded
//! loss signal — exactly what [`kmsg_oracle::TcpOracle`]'s
//! `fast_rexmit_cause` rule forbids.

use std::sync::Arc;
use std::time::Duration;

use kmsg_netsim::engine::Sim;
use kmsg_netsim::iface::{Connection, StreamAccept, StreamEvents};
use kmsg_netsim::link::LinkConfig;
use kmsg_netsim::network::Network;
use kmsg_netsim::packet::Endpoint;
use kmsg_netsim::tcp::{TcpConfig, TcpConn, TcpListener};
use kmsg_netsim::testutil::{PatternSender, Recorder};
use kmsg_oracle::{
    check_all, minimize, render_verdict, Json, OracleConfig, RunFacts, Shrinkable, Violation,
};

struct AcceptRecorder(Arc<Recorder>);
impl StreamAccept for AcceptRecorder {
    fn on_accept(&self, _conn: &Connection) -> Arc<dyn StreamEvents> {
        self.0.clone()
    }
}

/// A minimal TCP fuzz scenario: one lossy duplex link, one transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TcpScenario {
    seed: u64,
    total: usize,
    loss_ppm: u64,
    delay_ms: u64,
    buggy: bool,
}

impl TcpScenario {
    fn baseline() -> TcpScenario {
        TcpScenario {
            seed: 7,
            total: 400_000,
            loss_ppm: 20_000,
            delay_ms: 5,
            buggy: false,
        }
    }

    /// Runs the scenario and returns the recorded trace, the end-of-run
    /// facts and the flight-recorder JSONL (for byte-identity checks).
    fn run(&self) -> (Vec<kmsg_telemetry::Event>, RunFacts, String) {
        let sim = Sim::new(self.seed);
        sim.recorder().enable();
        let net = Network::new(&sim);
        let a = net.add_node("a");
        let b = net.add_node("b");
        let link = LinkConfig::new(10e6, Duration::from_millis(self.delay_ms))
            .random_loss(self.loss_ppm as f64 / 1e6);
        net.connect_duplex(a, b, link);
        let server = Arc::new(Recorder::default());
        let cfg = TcpConfig {
            buggy_no_fast_recovery: self.buggy,
            ..TcpConfig::default()
        };
        let _listener = TcpListener::bind(
            &net,
            b,
            80,
            cfg.clone(),
            Arc::new(AcceptRecorder(server.clone())),
        )
        .expect("bind");
        let pump = PatternSender::new(&sim, self.total);
        let _conn =
            TcpConn::connect(&net, a, Endpoint::new(b, 80), cfg, pump).expect("connect");
        sim.run_for(Duration::from_secs(600));
        let completed = server.data_len() == self.total;
        let facts = RunFacts {
            completed,
            verified: completed && server.in_order(),
            fifo_expected: true,
            evicted_events: sim.recorder().evicted(),
            ..RunFacts::default()
        };
        (sim.recorder().events(), facts, sim.recorder().to_jsonl())
    }

    fn violations(&self) -> Vec<Violation> {
        let (events, facts, _) = self.run();
        let cfg = OracleConfig {
            expect_completion: true,
            ..OracleConfig::default()
        };
        check_all(&events, &facts, &cfg)
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", Json::Num(self.seed as f64)),
            ("total", Json::Num(self.total as f64)),
            ("loss_ppm", Json::Num(self.loss_ppm as f64)),
            ("delay_ms", Json::Num(self.delay_ms as f64)),
            ("buggy", Json::Bool(self.buggy)),
        ])
    }

    fn from_json(doc: &Json) -> Option<TcpScenario> {
        Some(TcpScenario {
            seed: doc.get("seed")?.as_u64()?,
            total: usize::try_from(doc.get("total")?.as_u64()?).ok()?,
            loss_ppm: doc.get("loss_ppm")?.as_u64()?,
            delay_ms: doc.get("delay_ms")?.as_u64()?,
            buggy: doc.get("buggy")?.as_bool()?,
        })
    }
}

impl Shrinkable for TcpScenario {
    fn candidates(&self) -> Vec<TcpScenario> {
        let mut out = Vec::new();
        if self.total > 50_000 {
            let mut s = self.clone();
            s.total = (self.total / 2).max(50_000);
            out.push(s);
        }
        if self.loss_ppm > 5_000 {
            let mut s = self.clone();
            s.loss_ppm = 5_000;
            out.push(s);
        }
        if self.delay_ms > 1 {
            let mut s = self.clone();
            s.delay_ms = 1;
            out.push(s);
        }
        out
    }

    fn complexity(&self) -> u64 {
        self.total as u64 + self.loss_ppm + self.delay_ms
    }
}

/// The rule the injected bug must trip.
fn trips_fast_rexmit_cause(s: &TcpScenario) -> bool {
    s.violations()
        .iter()
        .any(|v| v.oracle == "tcp" && v.rule == "fast_rexmit_cause")
}

#[test]
fn clean_run_passes_every_oracle() {
    let violations = TcpScenario::baseline().violations();
    assert!(
        violations.is_empty(),
        "a correct TCP run must be oracle-clean:\n{}",
        render_verdict(&violations)
    );
}

#[test]
fn injected_bug_is_caught_minimized_and_replayable() {
    // 1. The injected bug is caught.
    let buggy = TcpScenario {
        buggy: true,
        ..TcpScenario::baseline()
    };
    assert!(
        trips_fast_rexmit_cause(&buggy),
        "disabling fast recovery must trip [tcp/fast_rexmit_cause]:\n{}",
        render_verdict(&buggy.violations())
    );

    // 2. The failing scenario shrinks while still tripping the same rule.
    let (minimized, tested) = minimize(buggy.clone(), trips_fast_rexmit_cause);
    assert!(tested > 0, "minimization must try candidates");
    assert!(
        minimized.complexity() < buggy.complexity(),
        "the baseline scenario is not already minimal"
    );
    assert!(trips_fast_rexmit_cause(&minimized));

    // 3. The minimized scenario round-trips through the artifact format
    //    and still reproduces the violation when replayed from it.
    let text = minimized.to_json().render();
    let replayed =
        TcpScenario::from_json(&Json::parse(&text).expect("artifact parses")).expect("decodes");
    assert_eq!(replayed, minimized);
    assert!(
        trips_fast_rexmit_cause(&replayed),
        "replaying the artifact must reproduce the violation"
    );

    // 4. The same scenario with the bug disabled is clean: the oracle
    //    fires on the injected fault, not on the workload.
    let fixed = TcpScenario {
        buggy: false,
        ..minimized
    };
    assert!(
        fixed.violations().is_empty(),
        "the minimized scenario must be clean without the injected bug"
    );
}
