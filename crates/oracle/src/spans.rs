//! Causal-span lifecycle oracle.
//!
//! The tracing layer (`kmsg-telemetry::trace`) records every span as a
//! [`EventKind::SpanOpen`] / [`EventKind::SpanClose`] pair. This oracle
//! replays the stream and asserts the lifecycle invariants every legal
//! trace must satisfy:
//!
//! * **Balance** — no span opens twice, closes twice, or closes without
//!   an open; a close is never stamped before its open.
//! * **Nesting** — a child opens while its parent is open, closes no
//!   later than its parent, references a parent that exists, and carries
//!   its parent's trace id. Equal timestamps are legal (instants and
//!   cascaded closes share a tick).
//! * **Instants** — zero-duration kinds (`channel_pick`, `requeue`,
//!   `failover`, `deliver`, `dedup`, `decide`) always close, at their
//!   open time. Long-lived kinds may legitimately still be open when the
//!   horizon cuts the run (an unhealed outage, an unacked tail segment),
//!   so *those* are not violations.
//! * **Retransmit attribution** — a `TcpRetransmit { conn, seq }` event
//!   whose segment has a recorded `seg` span must fall inside that span's
//!   window (the span opened at the segment's *first* send covers every
//!   resend), and a `seg` span closed with the retransmitted outcome key
//!   must contain at least one matching retransmit event.
//!
//! Truncated traces (ring eviction) skip the balance and attribution
//! rules — the missing prefix would make both false-fail — but still
//! check ordering and nesting among the spans that survive.

use std::collections::BTreeMap;

use kmsg_telemetry::{Event, EventKind};

use crate::{trace_truncated, Oracle, OracleConfig, RunFacts, Violation};

/// `seg` spans closed with this outcome key were retransmitted at least
/// once (mirrors `SEG_REXMIT` in `kmsg-netsim`'s TCP model).
const SEG_REXMIT_KEY: u64 = 1;

/// Span kinds recorded as zero-duration instants: their close is part of
/// the same logical record, so an unclosed one is an instrumentation bug
/// even in a horizon-cut run.
const INSTANT_KINDS: [&str; 6] = [
    "channel_pick",
    "requeue",
    "failover",
    "deliver",
    "dedup",
    "decide",
];

/// See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanOracle;

struct SpanInfo {
    open_ns: u64,
    close_ns: Option<u64>,
    close_key: u64,
    parent: u64,
    trace: u64,
    kind: &'static str,
    key: u64,
}

impl Oracle for SpanOracle {
    fn name(&self) -> &'static str {
        "spans"
    }

    fn check(&self, events: &[Event], facts: &RunFacts, _cfg: &OracleConfig) -> Vec<Violation> {
        let mut out = Vec::new();
        let truncated = trace_truncated(events, facts);
        let mut spans: BTreeMap<u64, SpanInfo> = BTreeMap::new();
        let mut retransmits: Vec<(u64, u64, u64)> = Vec::new(); // (time, conn, seq)
        for ev in events {
            match ev.kind {
                EventKind::SpanOpen {
                    span,
                    parent,
                    trace,
                    kind,
                    key,
                } => {
                    if spans
                        .insert(
                            span,
                            SpanInfo {
                                open_ns: ev.time_ns,
                                close_ns: None,
                                close_key: 0,
                                parent,
                                trace,
                                kind,
                                key,
                            },
                        )
                        .is_some()
                    {
                        out.push(Violation {
                            oracle: "spans",
                            rule: "double_open",
                            time_ns: ev.time_ns,
                            detail: format!("span {span:#x} ({kind}) opened twice"),
                        });
                    }
                }
                EventKind::SpanClose { span, key } => match spans.get_mut(&span) {
                    Some(info) if info.close_ns.is_some() => out.push(Violation {
                        oracle: "spans",
                        rule: "double_close",
                        time_ns: ev.time_ns,
                        detail: format!("span {span:#x} ({}) closed twice", info.kind),
                    }),
                    Some(info) => {
                        if ev.time_ns < info.open_ns {
                            out.push(Violation {
                                oracle: "spans",
                                rule: "close_before_open",
                                time_ns: ev.time_ns,
                                detail: format!(
                                    "span {span:#x} ({}) closed at {} before its open at {}",
                                    info.kind, ev.time_ns, info.open_ns
                                ),
                            });
                        }
                        info.close_ns = Some(ev.time_ns);
                        info.close_key = key;
                    }
                    None if truncated => {} // open evicted from the ring
                    None => out.push(Violation {
                        oracle: "spans",
                        rule: "close_unopened",
                        time_ns: ev.time_ns,
                        detail: format!("span {span:#x} closed but never opened"),
                    }),
                },
                EventKind::TcpRetransmit { conn, seq, .. } => {
                    retransmits.push((ev.time_ns, conn, seq));
                }
                _ => {}
            }
        }

        // Nesting: children live inside their parents, on the same trace.
        for (id, info) in &spans {
            if info.parent == 0 {
                continue;
            }
            let Some(parent) = spans.get(&info.parent) else {
                if !truncated {
                    out.push(Violation {
                        oracle: "spans",
                        rule: "unknown_parent",
                        time_ns: info.open_ns,
                        detail: format!(
                            "span {id:#x} ({}) references unopened parent {:#x}",
                            info.kind, info.parent
                        ),
                    });
                }
                continue;
            };
            if info.open_ns < parent.open_ns {
                out.push(Violation {
                    oracle: "spans",
                    rule: "child_before_parent",
                    time_ns: info.open_ns,
                    detail: format!(
                        "span {id:#x} ({}) opened at {} before parent {} span at {}",
                        info.kind, info.open_ns, parent.kind, parent.open_ns
                    ),
                });
            }
            if let Some(parent_close) = parent.close_ns {
                let child_end = info.close_ns.unwrap_or(info.open_ns);
                if info.open_ns > parent_close || child_end > parent_close {
                    out.push(Violation {
                        oracle: "spans",
                        rule: "child_outlives_parent",
                        time_ns: child_end.max(info.open_ns),
                        detail: format!(
                            "span {id:#x} ({}) extends past its parent {} close at {parent_close}",
                            info.kind, parent.kind
                        ),
                    });
                }
            }
            if info.trace != parent.trace {
                out.push(Violation {
                    oracle: "spans",
                    rule: "trace_mismatch",
                    time_ns: info.open_ns,
                    detail: format!(
                        "span {id:#x} ({}) carries trace {:#x} but its parent has {:#x}",
                        info.kind, info.trace, parent.trace
                    ),
                });
            }
        }

        // Instants always close, at their own timestamp; everything else
        // may be cut open by the horizon.
        for (id, info) in &spans {
            if !INSTANT_KINDS.contains(&info.kind) {
                continue;
            }
            match info.close_ns {
                None => out.push(Violation {
                    oracle: "spans",
                    rule: "instant_unclosed",
                    time_ns: info.open_ns,
                    detail: format!("instant span {id:#x} ({}) never closed", info.kind),
                }),
                Some(close) if close != info.open_ns => out.push(Violation {
                    oracle: "spans",
                    rule: "instant_with_duration",
                    time_ns: close,
                    detail: format!(
                        "instant span {id:#x} ({}) closed at {close}, opened at {}",
                        info.kind, info.open_ns
                    ),
                }),
                Some(_) => {}
            }
        }

        if truncated {
            return out;
        }

        // Retransmit attribution both ways: seg spans and TcpRetransmit
        // events join on `conn << 32 | seq & 0xffff_ffff`.
        let seg_spans: Vec<(&u64, &SpanInfo)> = spans
            .iter()
            .filter(|(_, info)| info.kind == "seg")
            .collect();
        for &(time_ns, conn, seq) in &retransmits {
            let key = (conn << 32) | (seq & 0xffff_ffff);
            let covering: Vec<_> = seg_spans.iter().filter(|(_, s)| s.key == key).collect();
            if covering.is_empty() {
                // Control segments (SYN/FIN) retransmit without a span.
                continue;
            }
            let inside = covering.iter().any(|(_, s)| {
                time_ns >= s.open_ns && s.close_ns.map_or(true, |c| time_ns <= c)
            });
            if !inside {
                out.push(Violation {
                    oracle: "spans",
                    rule: "rexmit_outside_span",
                    time_ns,
                    detail: format!(
                        "retransmit of conn {conn} seq {seq} at {time_ns} falls outside \
                         every recorded seg span for that segment"
                    ),
                });
            }
        }
        for (id, info) in &seg_spans {
            if info.close_key != SEG_REXMIT_KEY {
                continue;
            }
            let close = info.close_ns.unwrap_or(u64::MAX);
            let witnessed = retransmits.iter().any(|&(t, conn, seq)| {
                (conn << 32) | (seq & 0xffff_ffff) == info.key
                    && t >= info.open_ns
                    && t <= close
            });
            if !witnessed {
                out.push(Violation {
                    oracle: "spans",
                    rule: "rexmit_key_unwitnessed",
                    time_ns: info.open_ns,
                    detail: format!(
                        "seg span {id:#x} closed as retransmitted but no TcpRetransmit \
                         event for key {:#x} lies in its window",
                        info.key
                    ),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(t: u64, span: u64, parent: u64, trace: u64, kind: &'static str, key: u64) -> Event {
        Event {
            time_ns: t,
            kind: EventKind::SpanOpen {
                span,
                parent,
                trace,
                kind,
                key,
            },
        }
    }

    fn close(t: u64, span: u64, key: u64) -> Event {
        Event {
            time_ns: t,
            kind: EventKind::SpanClose { span, key },
        }
    }

    fn check(events: &[Event]) -> Vec<Violation> {
        SpanOracle.check(events, &RunFacts::default(), &OracleConfig::default())
    }

    #[test]
    fn balanced_nested_trace_is_clean() {
        let events = vec![
            open(10, 0x1, 0, 0x1, "msg", 7),
            open(10, 0x2, 0x1, 0x1, "enqueue", 3),
            close(20, 0x2, 0),
            open(20, 0x3, 0x1, 0x1, "xmit", 9),
            close(50, 0x3, 0),
            close(50, 0x1, 0),
        ];
        let v = check(&events);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn open_long_spans_at_trace_end_are_legal() {
        let events = vec![
            open(10, 0x1, 0, 0x1, "outage", 0),
            open(20, 0x2, 0x1, 0x1, "backoff", 1),
        ];
        let v = check(&events);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unclosed_instants_fire() {
        let v = check(&[open(10, 0x1, 0, 0x1, "deliver", 0)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "instant_unclosed");
        let v = check(&[open(10, 0x1, 0, 0x1, "decide", 0), close(30, 0x1, 0)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "instant_with_duration");
    }

    #[test]
    fn balance_violations_fire() {
        let v = check(&[close(5, 0x9, 0)]);
        assert_eq!(v[0].rule, "close_unopened");
        let v = check(&[
            open(10, 0x1, 0, 0x1, "msg", 0),
            close(20, 0x1, 0),
            close(21, 0x1, 0),
        ]);
        assert_eq!(v[0].rule, "double_close");
        let v = check(&[open(30, 0x1, 0, 0x1, "msg", 0), close(20, 0x1, 0)]);
        assert_eq!(v[0].rule, "close_before_open");
        let v = check(&[
            open(10, 0x1, 0, 0x1, "msg", 0),
            open(11, 0x1, 0, 0x1, "msg", 0),
        ]);
        assert_eq!(v[0].rule, "double_open");
    }

    #[test]
    fn nesting_violations_fire() {
        // Child closes after its parent.
        let v = check(&[
            open(10, 0x1, 0, 0x1, "msg", 0),
            open(20, 0x2, 0x1, 0x1, "xmit", 0),
            close(30, 0x1, 0),
            close(40, 0x2, 0),
        ]);
        assert!(v.iter().any(|v| v.rule == "child_outlives_parent"), "{v:?}");
        // Unknown parent.
        let v = check(&[open(10, 0x2, 0x1, 0x1, "xmit", 0), close(11, 0x2, 0)]);
        assert!(v.iter().any(|v| v.rule == "unknown_parent"), "{v:?}");
        // Trace id disagrees with the parent's.
        let v = check(&[
            open(10, 0x1, 0, 0x1, "msg", 0),
            open(12, 0x2, 0x1, 0x7, "xmit", 0),
            close(13, 0x2, 0),
            close(14, 0x1, 0),
        ]);
        assert!(v.iter().any(|v| v.rule == "trace_mismatch"), "{v:?}");
    }

    #[test]
    fn truncated_traces_skip_balance_but_keep_ordering() {
        let facts = RunFacts {
            evicted_events: 5,
            ..RunFacts::default()
        };
        // A close whose open was evicted is forgiven...
        let events = vec![close(5, 0x9, 0)];
        let v = SpanOracle.check(&events, &facts, &OracleConfig::default());
        assert!(v.is_empty(), "{v:?}");
        // ...but a surviving close-before-open still fires.
        let events = vec![open(30, 0x1, 0, 0x1, "msg", 0), close(20, 0x1, 0)];
        let v = SpanOracle.check(&events, &facts, &OracleConfig::default());
        assert_eq!(v[0].rule, "close_before_open");
    }

    #[test]
    fn retransmit_attribution_joins_seg_spans() {
        let key = (3u64 << 32) | 1448;
        let rexmit = |t| Event {
            time_ns: t,
            kind: EventKind::TcpRetransmit {
                conn: 3,
                seq: 1448,
                fast: false,
            },
        };
        // In-window retransmit + SEG_REXMIT close: clean.
        let events = vec![
            open(10, 0x1, 0, 0, "seg", key),
            rexmit(20),
            close(30, 0x1, SEG_REXMIT_KEY),
        ];
        let v = check(&events);
        assert!(v.is_empty(), "{v:?}");
        // Retransmit outside the covering span's window.
        let events = vec![open(10, 0x1, 0, 0, "seg", key), close(15, 0x1, 0), rexmit(20)];
        let v = check(&events);
        assert!(v.iter().any(|v| v.rule == "rexmit_outside_span"), "{v:?}");
        // SEG_REXMIT close with no witnessing retransmit event.
        let events = vec![open(10, 0x1, 0, 0, "seg", key), close(30, 0x1, SEG_REXMIT_KEY)];
        let v = check(&events);
        assert!(v.iter().any(|v| v.rule == "rexmit_key_unwitnessed"), "{v:?}");
        // A SYN retransmit with no recorded span is legal.
        let v = check(&[rexmit(20)]);
        assert!(v.is_empty(), "{v:?}");
    }
}
