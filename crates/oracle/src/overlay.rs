//! Pub/sub overlay routing oracle.
//!
//! The overlay layer promises four things that the raw channel machinery
//! does not: routes are **loop-free** (no relay chain revisits a node and
//! nothing ever dies by TTL), delivery is **at-most-once per subscriber**
//! even while a reroute races channel supervision's requeue, deliveries
//! are **causal** (nothing is delivered that was never published), and
//! after every partition heals the gossiped link-state tables
//! **reconverge**. The first three are checked directly against the
//! recorded [`EventKind::Overlay`] stream; liveness and convergence come
//! from the end-of-run [`OverlayFacts`] that the scenario runner captures
//! after its settle window (the trace alone cannot show what *should*
//! have been delivered).

use std::collections::{BTreeMap, BTreeSet};

use kmsg_telemetry::{Event, EventKind};

use crate::{trace_truncated, Oracle, OracleConfig, RunFacts, Violation};

/// See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct OverlayOracle;

/// Mirror of the overlay's packed-path encoding: one node index + 1 per
/// byte, low byte first; `u64::MAX` marks a path too long or too wide to
/// encode (the loop rule then has nothing to check).
fn unpack_path(packed: u64) -> Option<Vec<u64>> {
    if packed == u64::MAX {
        return None;
    }
    let mut out = Vec::new();
    let mut v = packed;
    while v != 0 {
        let byte = v & 0xff;
        if byte == 0 {
            // Interior zero byte: not a value the packer produces.
            return None;
        }
        out.push(byte - 1);
        v >>= 8;
    }
    Some(out)
}

impl Oracle for OverlayOracle {
    fn name(&self) -> &'static str {
        "overlay"
    }

    fn check(&self, events: &[Event], facts: &RunFacts, cfg: &OracleConfig) -> Vec<Violation> {
        let mut out = Vec::new();
        let truncated = trace_truncated(events, facts);
        let mut published: BTreeSet<u64> = BTreeSet::new();
        let mut delivered: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for ev in events {
            let EventKind::Overlay {
                action,
                msg,
                node,
                aux,
            } = ev.kind
            else {
                continue;
            };
            match action {
                // A TTL expiry is positive evidence of a routing loop (or
                // a route longer than the hop limit) no matter how much of
                // the trace survived eviction.
                "ttl_drop" => out.push(Violation {
                    oracle: "overlay",
                    rule: "ttl_drop",
                    time_ns: ev.time_ns,
                    detail: format!(
                        "node {node} dropped a frame for node {aux} on TTL expiry; \
                         overlay routes must stay within the hop limit"
                    ),
                }),
                "route" | "reroute" => {
                    if let Some(path) = unpack_path(aux) {
                        let distinct: BTreeSet<u64> = path.iter().copied().collect();
                        if distinct.len() != path.len() {
                            out.push(Violation {
                                oracle: "overlay",
                                rule: "route_loop",
                                time_ns: ev.time_ns,
                                detail: format!(
                                    "node {node} selected a relay path revisiting a node \
                                     for msg {msg}: {path:?}"
                                ),
                            });
                        }
                    }
                }
                "publish" => {
                    published.insert(msg);
                }
                "deliver" => {
                    let n = delivered.entry((msg, node)).or_insert(0);
                    *n += 1;
                    // A second deliver of the same message at the same
                    // subscriber is positive evidence that the dedup
                    // window failed — truncation cannot excuse it.
                    if *n == 2 {
                        out.push(Violation {
                            oracle: "overlay",
                            rule: "duplicate_delivery",
                            time_ns: ev.time_ns,
                            detail: format!(
                                "msg {msg} delivered more than once at node {node}; \
                                 reroute + supervision requeue must be absorbed by dedup"
                            ),
                        });
                    }
                    // Causality is a stream-shape rule: the publish may
                    // simply have been evicted from a truncated ring.
                    if !truncated && !published.contains(&msg) {
                        out.push(Violation {
                            oracle: "overlay",
                            rule: "unpublished_delivery",
                            time_ns: ev.time_ns,
                            detail: format!(
                                "msg {msg} delivered at node {node} but never published"
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
        let Some(of) = &facts.overlay else {
            return out;
        };
        if of.delivered > of.expected_deliveries {
            out.push(Violation {
                oracle: "overlay",
                rule: "over_delivery",
                time_ns: 0,
                detail: format!(
                    "{} deliveries recorded but only {} subscriptions matched the \
                     published messages",
                    of.delivered, of.expected_deliveries
                ),
            });
        }
        if cfg.expect_completion && of.delivered < of.expected_deliveries {
            out.push(Violation {
                oracle: "overlay",
                rule: "lost_delivery",
                time_ns: 0,
                detail: format!(
                    "only {} of {} expected deliveries arrived although every \
                     partition healed inside the horizon",
                    of.delivered, of.expected_deliveries
                ),
            });
        }
        if !of.converged {
            out.push(Violation {
                oracle: "overlay",
                rule: "diverged",
                time_ns: 0,
                detail: format!(
                    "link-state tables of the {} nodes still differ after the \
                     settle window",
                    of.nodes
                ),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OverlayFacts;

    fn ov(time_ns: u64, action: &'static str, msg: u64, node: u64, aux: u64) -> Event {
        Event {
            time_ns,
            kind: EventKind::Overlay {
                action,
                msg,
                node,
                aux,
            },
        }
    }

    /// Packs indices the way the overlay does (idx + 1 per byte).
    fn pack(path: &[u64]) -> u64 {
        path.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &n)| acc | ((n + 1) << (8 * i)))
    }

    fn check(events: &[Event], facts: &RunFacts, cfg: &OracleConfig) -> Vec<Violation> {
        OverlayOracle.check(events, facts, cfg)
    }

    #[test]
    fn clean_pubsub_trace_passes() {
        let events = vec![
            ov(10, "publish", 1 << 32, 1, 77),
            ov(11, "route", 1 << 32, 1, pack(&[1, 0, 2])),
            ov(20, "deliver", 1 << 32, 2, 77),
            ov(30, "reroute", 1 << 32, 1, pack(&[1, 3, 2])),
            ov(40, "dup_drop", 1 << 32, 2, 0),
        ];
        let v = check(&events, &RunFacts::default(), &OracleConfig::default());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn ttl_drop_is_always_a_violation() {
        let events = vec![ov(5, "ttl_drop", 0, 3, 1)];
        let v = check(&events, &RunFacts::default(), &OracleConfig::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "ttl_drop");
        // Even on a truncated trace: the drop itself is the evidence.
        let facts = RunFacts {
            evicted_events: 9,
            ..RunFacts::default()
        };
        assert_eq!(check(&events, &facts, &OracleConfig::default()).len(), 1);
    }

    #[test]
    fn revisiting_relay_path_fires_route_loop() {
        let events = vec![
            ov(1, "publish", 7, 0, 0),
            ov(2, "reroute", 7, 0, pack(&[0, 1, 0, 2])),
        ];
        let v = check(&events, &RunFacts::default(), &OracleConfig::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "route_loop");
        // The unencodable sentinel carries no path and cannot fire.
        let v = check(
            &[ov(2, "route", 7, 0, u64::MAX)],
            &RunFacts::default(),
            &OracleConfig::default(),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn double_delivery_fires_once_per_extra_copy() {
        let events = vec![
            ov(1, "publish", 9, 0, 0),
            ov(2, "deliver", 9, 2, 0),
            ov(3, "deliver", 9, 2, 0),
            ov(4, "deliver", 9, 1, 0), // different subscriber: fine
        ];
        let v = check(&events, &RunFacts::default(), &OracleConfig::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "duplicate_delivery");
        assert_eq!(v[0].time_ns, 3);
    }

    #[test]
    fn unpublished_delivery_skips_on_truncation() {
        let events = vec![ov(2, "deliver", 11, 2, 0)];
        let v = check(&events, &RunFacts::default(), &OracleConfig::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unpublished_delivery");
        let truncated = RunFacts {
            evicted_events: 1,
            ..RunFacts::default()
        };
        assert!(check(&events, &truncated, &OracleConfig::default()).is_empty());
    }

    #[test]
    fn fact_rules_cover_liveness_and_convergence() {
        let facts = RunFacts {
            overlay: Some(OverlayFacts {
                nodes: 4,
                published: 10,
                expected_deliveries: 10,
                delivered: 8,
                duplicates: 1,
                no_route: 0,
                converged: false,
            }),
            ..RunFacts::default()
        };
        // Without expect_completion only divergence fires.
        let v = check(&[], &facts, &OracleConfig::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "diverged");
        // With it, the missing deliveries fire too.
        let cfg = OracleConfig {
            expect_completion: true,
            ..OracleConfig::default()
        };
        let v = check(&[], &facts, &cfg);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.rule == "lost_delivery"));
        // Over-delivery fires regardless of completion expectations.
        let over = RunFacts {
            overlay: Some(OverlayFacts {
                delivered: 12,
                expected_deliveries: 10,
                converged: true,
                ..OverlayFacts::default()
            }),
            ..RunFacts::default()
        };
        let v = check(&[], &over, &OracleConfig::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "over_delivery");
    }

    #[test]
    fn absent_overlay_facts_disable_fact_rules() {
        let v = check(&[], &RunFacts::default(), &OracleConfig::default());
        assert!(v.is_empty());
    }
}
