//! Replayable failing-scenario artifacts.
//!
//! The workspace deliberately carries no JSON dependency (see
//! `kmsg-telemetry::export`), so the fuzz artifacts — `failing_seed.json`
//! and friends — are built on a tiny order-preserving [`Json`] value with
//! a hand-rolled parser and renderer. Rendering is deterministic: object
//! keys keep insertion order, numbers use Rust's shortest round-trip
//! `Display` (integers render without a fraction), so the same scenario
//! always serializes to the same bytes — the property the byte-identity
//! tests assert. The parser accepts exactly what the renderer emits plus
//! ordinary interchange JSON (whitespace, escapes, nested values).

/// An order-preserving JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integral values render without `.`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved (insertion order).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object field list.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is an integral non-negative number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact deterministic JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => push_num(out, *v),
            Json::Str(s) => kmsg_telemetry::export::push_json_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    kmsg_telemetry::export::push_json_str(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (a single value; trailing whitespace
    /// allowed).
    ///
    /// # Errors
    ///
    /// Returns a description with the byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() <= 2f64.powi(53) {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected '{lit}' at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("malformed number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multibyte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_scenario_shape() {
        let doc = Json::obj(vec![
            ("seed", Json::Num(42.0)),
            ("transport", Json::Str("tcp".to_string())),
            ("loss_ppm", Json::Num(12_500.0)),
            (
                "faults",
                Json::Arr(vec![Json::obj(vec![
                    ("kind", Json::Str("down".to_string())),
                    ("from_ms", Json::Num(1000.0)),
                    ("to_ms", Json::Num(2000.0)),
                ])]),
            ),
            ("quick", Json::Bool(true)),
            ("note", Json::Null),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, doc);
        assert_eq!(back.render(), text, "render is a fixed point");
        assert_eq!(back.get("seed").and_then(Json::as_u64), Some(42));
        assert_eq!(
            back.get("faults").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(1000.0).render(), "1000");
        assert_eq!(Json::Num(-3.0).render(), "-3");
        assert_eq!(Json::Num(0.5).render(), "0.5");
    }

    #[test]
    fn parses_interchange_json() {
        let text = r#" { "a" : [ 1 , 2.5 , -3e2 ] , "b" : "x\nyA" } "#;
        let v = Json::parse(text).expect("parse");
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x\nyA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = Json::parse(r#"{"z":1,"a":2}"#).expect("parse");
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }
}
