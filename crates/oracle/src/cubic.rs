//! CUBIC congestion-controller legality oracle.
//!
//! Checks every connection's `CcWindow { controller: "cubic" }` event
//! stream against the rules the simulator's CUBIC model (RFC 8312 shape,
//! pure cubic region) must obey:
//!
//! * **β on loss** — a `"loss"` transition sets
//!   `cwnd == ssthresh == max(β·prev_cwnd, 2·MSS)`; an `"rto"` transition
//!   additionally collapses `cwnd` to one MSS.
//! * **Fast convergence** — when a loss strikes below the previous
//!   `W_max`, the new `W_max` must be `prev_cwnd·(2−β)/2`; at or above
//!   it, `W_max = prev_cwnd`. The injected
//!   `buggy_no_fast_convergence` fault violates exactly this rule.
//! * **Epoch growth** — every congestion-avoidance epoch opens with an
//!   `"epoch"` anchor; subsequent `"growth"` checkpoints are monotone
//!   non-decreasing and never exceed the cubic curve
//!   `W(t) = W_max + C·MSS·(t−K)³` (with `K = ∛((W_max−W_epoch)/(C·MSS))`
//!   recomputed from the anchor), up to one MSS of slack.
//!
//! Parameters (`C`, `β`) come from [`OracleConfig::cubic_c`] /
//! [`OracleConfig::cubic_beta`] and must match the run's `CcConfig`.

use kmsg_telemetry::{Event, EventKind};

use crate::{trace_truncated, Oracle, OracleConfig, RunFacts, Violation};

/// See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct CubicOracle;

#[derive(Default)]
struct ConnState {
    /// `W_max` carried by the connection's most recent cubic event.
    last_w_max: Option<f64>,
    /// Open epoch anchor: (time_ns, epoch cwnd, epoch `W_max`).
    epoch: Option<(u64, f64, f64)>,
    /// cwnd at the last growth checkpoint inside the open epoch.
    last_growth: f64,
}

fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

fn approx_le(a: f64, b: f64, tol: f64) -> bool {
    a <= b + tol * a.abs().max(b.abs()).max(1.0)
}

impl Oracle for CubicOracle {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn check(&self, events: &[Event], facts: &RunFacts, cfg: &OracleConfig) -> Vec<Violation> {
        let mut out = Vec::new();
        if trace_truncated(events, facts) {
            // The epoch anchor or the prior W_max may have been evicted.
            return out;
        }
        let mss = cfg.mss as f64;
        let c = cfg.cubic_c;
        let beta = cfg.cubic_beta;
        let tol = cfg.rel_tol;
        let mut conns: std::collections::BTreeMap<u64, ConnState> =
            std::collections::BTreeMap::new();
        for ev in events {
            let &EventKind::CcWindow {
                conn,
                controller: "cubic",
                cause,
                prev_cwnd,
                cwnd,
                ssthresh,
                w_max,
            } = &ev.kind
            else {
                continue;
            };
            let st = conns.entry(conn).or_default();
            match cause {
                "epoch" => {
                    // The curve anchor can only sit at or above the window
                    // it anchors (W_max is bumped to cwnd when the window
                    // already grew past the old maximum).
                    if !approx_le(cwnd, w_max, tol) {
                        out.push(Violation {
                            oracle: "cubic",
                            rule: "epoch_anchor",
                            time_ns: ev.time_ns,
                            detail: format!(
                                "conn {conn}: epoch opened with W_max {w_max} below \
                                 its own window {cwnd}"
                            ),
                        });
                    }
                    st.epoch = Some((ev.time_ns, cwnd, w_max));
                    st.last_growth = cwnd;
                    st.last_w_max = Some(w_max);
                }
                "growth" => {
                    let Some((t0, w_epoch, epoch_w_max)) = st.epoch else {
                        out.push(Violation {
                            oracle: "cubic",
                            rule: "growth_outside_epoch",
                            time_ns: ev.time_ns,
                            detail: format!(
                                "conn {conn}: growth checkpoint with no open \
                                 congestion-avoidance epoch"
                            ),
                        });
                        continue;
                    };
                    if !approx_le(st.last_growth, cwnd, tol) {
                        out.push(Violation {
                            oracle: "cubic",
                            rule: "growth_monotone",
                            time_ns: ev.time_ns,
                            detail: format!(
                                "conn {conn}: window shrank within an epoch \
                                 ({} -> {cwnd})",
                                st.last_growth
                            ),
                        });
                    }
                    // Recompute the curve from the anchor and bound the
                    // checkpoint by it (one MSS of slack: the controller
                    // clamps each step at the target, but the checkpoint
                    // fires after the step).
                    let k = ((epoch_w_max - w_epoch) / (c * mss)).cbrt();
                    let t = (ev.time_ns - t0) as f64 / 1e9;
                    let target = epoch_w_max + c * mss * (t - k).powi(3);
                    let bound = target.max(w_epoch) + mss;
                    if !approx_le(cwnd, bound, tol) {
                        out.push(Violation {
                            oracle: "cubic",
                            rule: "growth_bound",
                            time_ns: ev.time_ns,
                            detail: format!(
                                "conn {conn}: window {cwnd} above the cubic curve \
                                 ({bound} at t={t:.3}s since epoch)"
                            ),
                        });
                    }
                    st.last_growth = cwnd;
                }
                "loss" | "rto" => {
                    let expect_ssthresh = (beta * prev_cwnd).max(2.0 * mss);
                    if !approx_eq(ssthresh, expect_ssthresh, tol) {
                        out.push(Violation {
                            oracle: "cubic",
                            rule: "beta_on_loss",
                            time_ns: ev.time_ns,
                            detail: format!(
                                "conn {conn}: {cause} from cwnd {prev_cwnd} must set \
                                 ssthresh to max(β·cwnd, 2·MSS) = {expect_ssthresh}, \
                                 got {ssthresh}"
                            ),
                        });
                    }
                    let expect_cwnd = if cause == "rto" { mss } else { expect_ssthresh };
                    if !approx_eq(cwnd, expect_cwnd, tol) {
                        out.push(Violation {
                            oracle: "cubic",
                            rule: if cause == "rto" {
                                "rto_collapse"
                            } else {
                                "beta_on_loss"
                            },
                            time_ns: ev.time_ns,
                            detail: format!(
                                "conn {conn}: {cause} must set cwnd to {expect_cwnd}, \
                                 got {cwnd}"
                            ),
                        });
                    }
                    // Fast-convergence W_max accounting. Near the boundary
                    // (prev_cwnd ≈ W_max) the controller's strict float
                    // compare could go either way, so accept both values
                    // inside a narrow band.
                    let fast = prev_cwnd * (2.0 - beta) / 2.0;
                    let expected_ok = match st.last_w_max {
                        Some(prev_max) if prev_cwnd < prev_max * (1.0 - 1e-9) => {
                            approx_eq(w_max, fast, tol)
                        }
                        Some(prev_max) if prev_cwnd > prev_max * (1.0 + 1e-9) => {
                            approx_eq(w_max, prev_cwnd, tol)
                        }
                        Some(_) => {
                            approx_eq(w_max, fast, tol) || approx_eq(w_max, prev_cwnd, tol)
                        }
                        // First reduction ever: W_max starts at the lost
                        // window.
                        None => approx_eq(w_max, prev_cwnd, tol),
                    };
                    if !expected_ok {
                        out.push(Violation {
                            oracle: "cubic",
                            rule: "fast_convergence",
                            time_ns: ev.time_ns,
                            detail: format!(
                                "conn {conn}: {cause} from cwnd {prev_cwnd} (previous \
                                 W_max {:?}) recorded W_max {w_max}; expected \
                                 {fast} below the old maximum, else {prev_cwnd}",
                                st.last_w_max
                            ),
                        });
                    }
                    st.epoch = None;
                    st.last_w_max = Some(w_max);
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time_ns: u64, kind: EventKind) -> Event {
        Event { time_ns, kind }
    }

    fn cc(
        time_ns: u64,
        cause: &'static str,
        prev_cwnd: f64,
        cwnd: f64,
        ssthresh: f64,
        w_max: f64,
    ) -> Event {
        ev(
            time_ns,
            EventKind::CcWindow {
                conn: 1,
                controller: "cubic",
                cause,
                prev_cwnd,
                cwnd,
                ssthresh,
                w_max,
            },
        )
    }

    fn check(events: &[Event]) -> Vec<Violation> {
        CubicOracle.check(events, &RunFacts::default(), &OracleConfig::default())
    }

    const MSS: f64 = 1448.0;

    #[test]
    fn legal_loss_epoch_growth_sequence_is_clean() {
        let w = 100.0 * MSS;
        let after = (0.7 * w).max(2.0 * MSS);
        let events = vec![
            cc(1_000, "loss", w, after, after, w),
            // Epoch anchored at the reduced window.
            cc(2_000, "epoch", after, after, after, w),
            // A modest growth step well under the curve.
            cc(500_000_000, "growth", after, after + MSS, after, w),
        ];
        assert!(check(&events).is_empty(), "{:?}", check(&events));
    }

    #[test]
    fn wrong_beta_fires() {
        let w = 100.0 * MSS;
        let events = vec![cc(1_000, "loss", w, 0.5 * w, 0.5 * w, w)];
        let v = check(&events);
        assert!(
            v.iter().any(|v| v.rule == "beta_on_loss"),
            "halving instead of β=0.7 must fire: {v:?}"
        );
    }

    #[test]
    fn skipped_fast_convergence_fires() {
        let w = 100.0 * MSS;
        let after = 0.7 * w;
        let second = 0.8 * w; // lost again below the first W_max
        let events = vec![
            cc(1_000, "loss", w, after, after, w),
            // Legal: W_max should shrink to 0.8·w·(2−β)/2 = 0.52·w.
            cc(2_000, "loss", second, 0.7 * second, 0.7 * second, second),
        ];
        let v = check(&events);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "fast_convergence");
    }

    #[test]
    fn growth_above_curve_fires() {
        let w = 100.0 * MSS;
        let after = 0.7 * w;
        let events = vec![
            cc(1_000, "loss", w, after, after, w),
            cc(2_000, "epoch", after, after, after, w),
            // 1 ms into the epoch the curve is far below 2·W_max.
            cc(3_000_000, "growth", after, 2.0 * w, after, w),
        ];
        let v = check(&events);
        assert!(v.iter().any(|v| v.rule == "growth_bound"), "{v:?}");
    }

    #[test]
    fn growth_without_epoch_fires() {
        let events = vec![cc(1_000, "growth", 10.0 * MSS, 11.0 * MSS, 5.0 * MSS, 20.0 * MSS)];
        let v = check(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "growth_outside_epoch");
    }

    #[test]
    fn rto_collapse_checked() {
        let w = 50.0 * MSS;
        let events = vec![cc(1_000, "rto", w, w, 0.7 * w, w)];
        let v = check(&events);
        assert!(v.iter().any(|v| v.rule == "rto_collapse"), "{v:?}");
    }

    #[test]
    fn truncated_trace_is_skipped() {
        let events = vec![
            ev(0, EventKind::Overflow { evicted: 5 }),
            cc(1_000, "growth", 10.0 * MSS, 11.0 * MSS, 5.0 * MSS, 20.0 * MSS),
        ];
        assert!(check(&events).is_empty());
    }
}
