//! Channel supervision and delivery oracle.
//!
//! Two ingredient streams: the end-of-run [`RunFacts`] (payload
//! verification and the middleware's supervision counters) and the
//! `ConnStatus` events the supervision layer stamps on every channel
//! transition. The rules:
//!
//! * **Integrity** — a transfer that completed must verify byte-for-byte.
//! * **Exactly-once on calm channels** — with no supervision episode
//!   (no reconnect, failover or channel drop) the at-least-once machinery
//!   never re-sends, so the receiver must observe zero duplicates; on a
//!   single FIFO channel it must also observe zero out-of-order arrivals.
//! * **Bounded duplicates** — each supervision episode may re-deliver at
//!   most the frames that were in flight when the channel died
//!   ([`crate::OracleConfig::dedup_window`]); duplicates beyond
//!   `episodes * window` indicate a redelivery loop.
//! * **Liveness** — when the scenario promises completion
//!   ([`crate::OracleConfig::expect_completion`]) and no channel died, a
//!   non-completed run is a stall.
//! * **Status legality** — per channel, `"lost"` opens every outage,
//!   `"restored"`/`"dropped"` only follow `"lost"` (or a post-drop
//!   probe), and no state repeats.

use std::collections::BTreeMap;

use kmsg_telemetry::{Event, EventKind};

use crate::{trace_truncated, Oracle, OracleConfig, RunFacts, Violation};

/// See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeliveryOracle;

impl Oracle for DeliveryOracle {
    fn name(&self) -> &'static str {
        "delivery"
    }

    fn check(&self, events: &[Event], facts: &RunFacts, cfg: &OracleConfig) -> Vec<Violation> {
        let mut out = Vec::new();

        if facts.completed && !facts.verified {
            out.push(Violation {
                oracle: "delivery",
                rule: "corruption",
                time_ns: 0,
                detail: "transfer completed but the delivered payload failed \
                         verification"
                    .to_string(),
            });
        }

        let episodes =
            facts.reconnects + facts.failovers + facts.channels_dropped + facts.controller_swaps;
        if episodes == 0 {
            if facts.duplicates > 0 {
                out.push(Violation {
                    oracle: "delivery",
                    rule: "unexplained_duplicates",
                    time_ns: 0,
                    detail: format!(
                        "{} duplicate chunks with no reconnect, failover or channel \
                         drop to explain redelivery",
                        facts.duplicates
                    ),
                });
            }
            if facts.fifo_expected && facts.out_of_order > 0 {
                out.push(Violation {
                    oracle: "delivery",
                    rule: "fifo_order",
                    time_ns: 0,
                    detail: format!(
                        "{} out-of-order chunks on a single FIFO channel with no \
                         supervision episode",
                        facts.out_of_order
                    ),
                });
            }
        } else if facts.duplicates > episodes * cfg.dedup_window {
            out.push(Violation {
                oracle: "delivery",
                rule: "duplicate_bound",
                time_ns: 0,
                detail: format!(
                    "{} duplicates exceed the redelivery budget of {} episodes x \
                     {} frames",
                    facts.duplicates, episodes, cfg.dedup_window
                ),
            });
        }

        if cfg.expect_completion && !facts.completed && facts.channels_dropped == 0 {
            out.push(Violation {
                oracle: "delivery",
                rule: "stall",
                time_ns: 0,
                detail: "workload did not complete inside the horizon although no \
                         channel was dropped"
                    .to_string(),
            });
        }

        if !trace_truncated(events, facts) {
            // Per-channel status machine: None -> lost; lost ->
            // restored|dropped; restored -> lost; dropped -> restored|lost
            // (a fresh channel to the same peer can be lost after a drop).
            let mut last: BTreeMap<(u64, &'static str), &'static str> = BTreeMap::new();
            for ev in events {
                let EventKind::ConnStatus {
                    peer,
                    transport,
                    status,
                    ..
                } = &ev.kind
                else {
                    continue;
                };
                let key = (*peer, *transport);
                let prev = last.get(&key).copied();
                let legal = match (*status, prev) {
                    ("lost", None | Some("restored") | Some("dropped")) => true,
                    ("restored", Some("lost") | Some("dropped")) => true,
                    ("dropped", Some("lost")) => true,
                    _ => false,
                };
                if !legal {
                    out.push(Violation {
                        oracle: "delivery",
                        rule: "status_sequence",
                        time_ns: ev.time_ns,
                        detail: format!(
                            "channel peer={peer} transport={transport}: illegal status \
                             transition {:?} -> {status:?}",
                            prev.unwrap_or("<start>")
                        ),
                    });
                }
                last.insert(key, status);
            }
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(time_ns: u64, status: &'static str) -> Event {
        Event {
            time_ns,
            kind: EventKind::ConnStatus {
                peer: 7,
                transport: "tcp",
                status,
                attempts: 1,
            },
        }
    }

    fn check(events: &[Event], facts: &RunFacts) -> Vec<Violation> {
        DeliveryOracle.check(events, facts, &OracleConfig::default())
    }

    #[test]
    fn calm_verified_run_is_clean() {
        let facts = RunFacts {
            completed: true,
            verified: true,
            fifo_expected: true,
            ..RunFacts::default()
        };
        assert!(check(&[], &facts).is_empty());
    }

    #[test]
    fn corruption_fires() {
        let facts = RunFacts {
            completed: true,
            verified: false,
            ..RunFacts::default()
        };
        let v = check(&[], &facts);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "corruption");
    }

    #[test]
    fn duplicates_without_episode_fire() {
        let facts = RunFacts {
            completed: true,
            verified: true,
            duplicates: 3,
            ..RunFacts::default()
        };
        let v = check(&[], &facts);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unexplained_duplicates");
    }

    #[test]
    fn bounded_duplicates_after_reconnect_are_clean() {
        let facts = RunFacts {
            completed: true,
            verified: true,
            duplicates: 40,
            reconnects: 1,
            reconnect_attempts: 3,
            ..RunFacts::default()
        };
        assert!(check(&[], &facts).is_empty());
    }

    #[test]
    fn out_of_order_on_fifo_channel_fires() {
        let facts = RunFacts {
            completed: true,
            verified: true,
            out_of_order: 2,
            fifo_expected: true,
            ..RunFacts::default()
        };
        let v = check(&[], &facts);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "fifo_order");
    }

    #[test]
    fn stall_fires_only_when_expected() {
        let facts = RunFacts::default();
        let cfg = OracleConfig {
            expect_completion: true,
            ..OracleConfig::default()
        };
        let v = DeliveryOracle.check(&[], &facts, &cfg);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "stall");
        // Dropped channels excuse the stall.
        let excused = RunFacts {
            channels_dropped: 1,
            ..RunFacts::default()
        };
        assert!(DeliveryOracle.check(&[], &excused, &cfg).is_empty());
    }

    #[test]
    fn legal_status_sequences_are_clean() {
        let events = vec![
            status(10, "lost"),
            status(20, "restored"),
            status(30, "lost"),
            status(40, "dropped"),
            status(50, "restored"),
        ];
        assert!(check(&events, &RunFacts::default()).is_empty());
    }

    #[test]
    fn illegal_status_sequence_fires() {
        let events = vec![status(10, "restored")];
        let v = check(&events, &RunFacts::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "status_sequence");

        let double_lost = vec![status(10, "lost"), status(20, "lost")];
        let v = check(&double_lost, &RunFacts::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "status_sequence");
    }
}
