//! UDT DAIMD rate-control oracle.
//!
//! The simulator's UDT sender mutates its inter-packet period in exactly
//! two places, both recorded as `UdtRate` events: the per-SYN additive
//! increase (which can only shrink the period, clamped to the 1 µs floor)
//! and the NAK-driven decrease (which multiplies it by exactly 1.125, once
//! per loss epoch). The oracle replays the per-connection event stream and
//! checks:
//!
//! * the period never drops below the 1 µs floor;
//! * the reported rate is consistent with the period (`rate = 1e6 /
//!   period`);
//! * `"syn_increase"` never grows the period;
//! * `"nak_decrease"` multiplies the previous period by 1.125.
//!
//! The first event of a connection has no recorded predecessor (the
//! initial period comes from `UdtConfig::initial_rate_pps`), so relational
//! checks start from the second event.

use kmsg_telemetry::{Event, EventKind};

use crate::{trace_truncated, Oracle, OracleConfig, RunFacts, Violation};

/// See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct UdtOracle;

/// NAK-driven multiplicative decrease factor (UDT's 1/0.8888... ≈ 1.125).
pub const NAK_DECREASE_FACTOR: f64 = 1.125;

/// Lower bound on the inter-packet sending period, microseconds.
pub const PERIOD_FLOOR_US: f64 = 1.0;

impl Oracle for UdtOracle {
    fn name(&self) -> &'static str {
        "udt"
    }

    fn check(&self, events: &[Event], facts: &RunFacts, cfg: &OracleConfig) -> Vec<Violation> {
        let mut out = Vec::new();
        if trace_truncated(events, facts) {
            return out;
        }
        let tol = cfg.rel_tol;
        let mut last_period: std::collections::BTreeMap<u64, f64> =
            std::collections::BTreeMap::new();
        for ev in events {
            let EventKind::UdtRate {
                conn,
                period_us,
                rate_pps,
                cause,
            } = &ev.kind
            else {
                continue;
            };
            if *period_us < PERIOD_FLOOR_US * (1.0 - tol) {
                out.push(Violation {
                    oracle: "udt",
                    rule: "period_floor",
                    time_ns: ev.time_ns,
                    detail: format!(
                        "conn {conn}: sending period {period_us}us below the \
                         {PERIOD_FLOOR_US}us floor"
                    ),
                });
            }
            let implied = 1e6 / period_us;
            if (rate_pps - implied).abs() > implied.abs().max(1.0) * 1e-9 {
                out.push(Violation {
                    oracle: "udt",
                    rule: "rate_period_consistency",
                    time_ns: ev.time_ns,
                    detail: format!(
                        "conn {conn}: rate {rate_pps}pps inconsistent with period \
                         {period_us}us (implies {implied}pps)"
                    ),
                });
            }
            if let Some(prev) = last_period.get(conn) {
                match *cause {
                    "syn_increase" => {
                        if *period_us > prev * (1.0 + tol) {
                            out.push(Violation {
                                oracle: "udt",
                                rule: "increase_monotone",
                                time_ns: ev.time_ns,
                                detail: format!(
                                    "conn {conn}: SYN increase grew the period \
                                     {prev}us -> {period_us}us"
                                ),
                            });
                        }
                    }
                    "nak_decrease" => {
                        let expect = prev * NAK_DECREASE_FACTOR;
                        if (period_us - expect).abs() > expect.abs() * 1e-9 {
                            out.push(Violation {
                                oracle: "udt",
                                rule: "nak_decrease_factor",
                                time_ns: ev.time_ns,
                                detail: format!(
                                    "conn {conn}: NAK decrease moved the period \
                                     {prev}us -> {period_us}us, expected x{NAK_DECREASE_FACTOR} \
                                     = {expect}us"
                                ),
                            });
                        }
                    }
                    _ => {}
                }
            }
            last_period.insert(*conn, *period_us);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate(time_ns: u64, conn: u64, period_us: f64, cause: &'static str) -> Event {
        Event {
            time_ns,
            kind: EventKind::UdtRate {
                conn,
                period_us,
                rate_pps: 1e6 / period_us,
                cause,
            },
        }
    }

    fn check(events: &[Event]) -> Vec<Violation> {
        UdtOracle.check(events, &RunFacts::default(), &OracleConfig::default())
    }

    #[test]
    fn legal_daimd_stream_is_clean() {
        let events = vec![
            rate(100, 1, 100.0, "syn_increase"),
            rate(200, 1, 80.0, "syn_increase"),
            rate(300, 1, 80.0 * NAK_DECREASE_FACTOR, "nak_decrease"),
            rate(400, 1, 85.0, "syn_increase"),
        ];
        assert!(check(&events).is_empty(), "{:?}", check(&events));
    }

    #[test]
    fn period_floor_violation_fires() {
        let events = vec![rate(100, 1, 0.5, "syn_increase")];
        let v = check(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "period_floor");
    }

    #[test]
    fn growing_increase_fires() {
        let events = vec![
            rate(100, 1, 100.0, "syn_increase"),
            rate(200, 1, 120.0, "syn_increase"),
        ];
        let v = check(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "increase_monotone");
    }

    #[test]
    fn wrong_decrease_factor_fires() {
        let events = vec![
            rate(100, 1, 100.0, "syn_increase"),
            rate(200, 1, 150.0, "nak_decrease"), // x1.5 instead of x1.125
        ];
        let v = check(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "nak_decrease_factor");
    }

    #[test]
    fn inconsistent_rate_fires() {
        let events = vec![Event {
            time_ns: 10,
            kind: EventKind::UdtRate {
                conn: 1,
                period_us: 100.0,
                rate_pps: 5000.0, // should be 10_000
                cause: "syn_increase",
            },
        }];
        let v = check(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "rate_period_consistency");
    }

    #[test]
    fn connections_are_independent() {
        // conn 2's first event must not be compared against conn 1's.
        let events = vec![
            rate(100, 1, 50.0, "syn_increase"),
            rate(200, 2, 200.0, "syn_increase"),
        ];
        assert!(check(&events).is_empty());
    }
}
