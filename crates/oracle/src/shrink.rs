//! Failing-scenario minimization (delta-debugging style).
//!
//! When an oracle fires, the raw scenario is rarely the story: a
//! 400 KB transfer over three relays with four fault windows usually
//! shrinks to one window and a few kilobytes that still trip the same
//! invariant. [`minimize`] walks a [`Shrinkable`]'s candidate moves
//! greedily — take the first strictly-simpler candidate that still fails,
//! repeat until no candidate fails — which is deterministic (the candidate
//! order is fixed by the implementation) and terminates (complexity is a
//! strictly decreasing `u64`).

/// A scenario that knows how to propose strictly simpler variants of
/// itself.
pub trait Shrinkable: Sized + Clone {
    /// Candidate simplifications, most aggressive first (dropping a whole
    /// fault window before narrowing it, halving before decrementing).
    /// Every candidate should have a strictly smaller
    /// [`Shrinkable::complexity`]; candidates that do not are ignored.
    fn candidates(&self) -> Vec<Self>;

    /// Scalar complexity measure; [`minimize`] only accepts moves that
    /// strictly decrease it, which guarantees termination.
    fn complexity(&self) -> u64;
}

/// Greedy shrink loop: repeatedly replaces the scenario with its first
/// strictly-simpler candidate for which `still_fails` returns `true`.
/// Returns the minimized scenario and how many candidates were tested.
pub fn minimize<S, F>(start: S, mut still_fails: F) -> (S, u64)
where
    S: Shrinkable,
    F: FnMut(&S) -> bool,
{
    let mut current = start;
    let mut tested = 0u64;
    loop {
        let mut advanced = false;
        for cand in current.candidates() {
            if cand.complexity() >= current.complexity() {
                continue;
            }
            tested += 1;
            if still_fails(&cand) {
                current = cand;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return (current, tested);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy scenario: a set of integers; the "violation" reproduces while
    /// the set still contains a multiple of 7.
    #[derive(Debug, Clone, PartialEq)]
    struct Nums(Vec<u64>);

    impl Shrinkable for Nums {
        fn candidates(&self) -> Vec<Self> {
            let mut out = Vec::new();
            for i in 0..self.0.len() {
                let mut v = self.0.clone();
                v.remove(i);
                out.push(Nums(v));
            }
            out
        }

        fn complexity(&self) -> u64 {
            self.0.len() as u64
        }
    }

    #[test]
    fn shrinks_to_single_culprit() {
        let start = Nums(vec![3, 14, 9, 21, 5]);
        let (min, tested) = minimize(start, |s| s.0.iter().any(|n| n % 7 == 0));
        // Greedy order removes earlier elements first (each removal is
        // retried from index 0), so the last multiple of 7 survives.
        assert_eq!(min, Nums(vec![21]));
        assert!(tested > 0);
    }

    #[test]
    fn already_minimal_is_untouched() {
        let start = Nums(vec![7]);
        let (min, _) = minimize(start.clone(), |s| s.0.iter().any(|n| n % 7 == 0));
        assert_eq!(min, start);
    }

    #[test]
    fn deterministic() {
        let start = Nums(vec![8, 7, 49, 2, 70, 1]);
        let run = || minimize(start.clone(), |s| s.0.iter().any(|n| n % 7 == 0));
        assert_eq!(run(), run());
    }
}
