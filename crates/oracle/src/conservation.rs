//! Link conservation oracle: no packet vanishes.
//!
//! The packet tracer stamps every packet's lifecycle into the trace: one
//! `"sent"` record at injection, then exactly one terminal record —
//! `"delivered"`, `"dropped:<reason>"`, `"no_route"` or `"no_sink"`. The
//! oracle folds the `Packet` events per flow (`src`, `dst`, `proto`) and
//! checks:
//!
//! * terminals never exceed sends (a packet cannot terminate twice);
//! * every send is matched by a terminal, except for packets still
//!   plausibly in flight: the unmatched sends must all sit within
//!   [`crate::OracleConfig::drain_grace_ns`] of the end of the trace
//!   (queue drain + propagation + scripted latency spikes);
//! * when the runner sampled [`crate::RunFacts::pool_live_at_end`], the
//!   fabric's in-flight packet pool holds exactly as many live slots as
//!   the trace shows unmatched sends — a surplus is a leaked pool slot,
//!   a deficit a double free.
//!
//! Truncated traces (ring eviction) are skipped: an evicted `"sent"`
//! leaves its terminal looking orphaned and vice versa.

use std::collections::BTreeMap;

use kmsg_telemetry::{Event, EventKind};

use crate::{trace_truncated, Oracle, OracleConfig, RunFacts, Violation};

/// See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct ConservationOracle;

#[derive(Default)]
struct FlowLedger {
    /// Timestamps of `"sent"` records, in trace order.
    sent_at: Vec<u64>,
    terminals: u64,
}

impl Oracle for ConservationOracle {
    fn name(&self) -> &'static str {
        "conservation"
    }

    fn check(&self, events: &[Event], facts: &RunFacts, cfg: &OracleConfig) -> Vec<Violation> {
        let mut out = Vec::new();
        if trace_truncated(events, facts) {
            return out;
        }
        let mut flows: BTreeMap<(String, String, &'static str), FlowLedger> = BTreeMap::new();
        let mut end_ns = 0u64;
        for ev in events {
            end_ns = end_ns.max(ev.time_ns);
            let EventKind::Packet {
                src,
                dst,
                proto,
                outcome,
                ..
            } = &ev.kind
            else {
                continue;
            };
            let ledger = flows
                .entry((src.clone(), dst.clone(), proto))
                .or_default();
            if outcome == "sent" {
                ledger.sent_at.push(ev.time_ns);
            } else {
                ledger.terminals += 1;
            }
        }
        let mut in_flight_traced = 0u64;
        for ((src, dst, proto), ledger) in &flows {
            let sent = ledger.sent_at.len() as u64;
            if ledger.terminals > sent {
                out.push(Violation {
                    oracle: "conservation",
                    rule: "double_terminal",
                    time_ns: end_ns,
                    detail: format!(
                        "flow {src}->{dst}/{proto}: {} terminal records for only \
                         {sent} sent packets",
                        ledger.terminals
                    ),
                });
                continue;
            }
            let unmatched = (sent - ledger.terminals) as usize;
            in_flight_traced += unmatched as u64;
            if unmatched == 0 {
                continue;
            }
            // The unmatched packets are the most recent sends (the link
            // layer terminates packets in bounded time, so older sends
            // resolve first). All of them must still be within the drain
            // grace of the trace end to count as in flight.
            let oldest_unmatched = ledger.sent_at[ledger.sent_at.len() - unmatched];
            if oldest_unmatched.saturating_add(cfg.drain_grace_ns) < end_ns {
                out.push(Violation {
                    oracle: "conservation",
                    rule: "vanished_packet",
                    time_ns: oldest_unmatched,
                    detail: format!(
                        "flow {src}->{dst}/{proto}: {unmatched} packets sent but never \
                         delivered or dropped; oldest sent at {oldest_unmatched}ns, \
                         {}ns before the trace end — beyond the {}ns drain grace",
                        end_ns - oldest_unmatched,
                        cfg.drain_grace_ns
                    ),
                });
            }
        }
        if let Some(live) = facts.pool_live_at_end {
            if live != in_flight_traced {
                out.push(Violation {
                    oracle: "conservation",
                    rule: "pool_leak",
                    time_ns: end_ns,
                    detail: format!(
                        "packet pool holds {live} live slots at the sample point but \
                         the trace shows {in_flight_traced} packets in flight — \
                         leaked slots if over, double frees if under"
                    ),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(time_ns: u64, outcome: &str) -> Event {
        Event {
            time_ns,
            kind: EventKind::Packet {
                src: "a:1".to_string(),
                dst: "b:2".to_string(),
                proto: "tcp",
                wire_size: 100,
                outcome: outcome.to_string(),
            },
        }
    }

    fn check(events: &[Event]) -> Vec<Violation> {
        ConservationOracle.check(events, &RunFacts::default(), &OracleConfig::default())
    }

    #[test]
    fn matched_lifecycles_are_clean() {
        let events = vec![
            pkt(10, "sent"),
            pkt(20, "sent"),
            pkt(30, "delivered"),
            pkt(40, "dropped:random_loss"),
        ];
        assert!(check(&events).is_empty());
    }

    #[test]
    fn in_flight_at_trace_end_is_tolerated() {
        let grace = OracleConfig::default().drain_grace_ns;
        let events = vec![
            pkt(0, "sent"),
            pkt(10, "delivered"),
            pkt(grace, "sent"), // still in flight when the trace ends
            Event {
                time_ns: grace + 100,
                kind: EventKind::Mark { id: 0, value: 0 },
            },
        ];
        assert!(check(&events).is_empty());
    }

    #[test]
    fn vanished_packet_fires() {
        let grace = OracleConfig::default().drain_grace_ns;
        let events = vec![
            pkt(0, "sent"),
            Event {
                time_ns: grace + 1_000,
                kind: EventKind::Mark { id: 0, value: 0 },
            },
        ];
        let v = check(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "vanished_packet");
    }

    #[test]
    fn double_terminal_fires() {
        let events = vec![pkt(0, "sent"), pkt(10, "delivered"), pkt(20, "delivered")];
        let v = check(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "double_terminal");
    }

    #[test]
    fn pool_leak_fires_on_surplus_slot() {
        let events = vec![pkt(10, "sent"), pkt(30, "delivered")];
        let facts = RunFacts {
            pool_live_at_end: Some(1),
            ..RunFacts::default()
        };
        let v = ConservationOracle.check(&events, &facts, &OracleConfig::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "pool_leak");
    }

    #[test]
    fn pool_matching_in_flight_is_clean() {
        let grace = OracleConfig::default().drain_grace_ns;
        let events = vec![
            pkt(0, "sent"),
            pkt(10, "delivered"),
            pkt(grace, "sent"), // still in flight — and still pooled
        ];
        let facts = RunFacts {
            pool_live_at_end: Some(1),
            ..RunFacts::default()
        };
        assert!(ConservationOracle
            .check(&events, &facts, &OracleConfig::default())
            .is_empty());
        let drained = RunFacts {
            pool_live_at_end: Some(0),
            ..RunFacts::default()
        };
        let v = ConservationOracle.check(&events, &drained, &OracleConfig::default());
        assert_eq!(v.len(), 1, "a deficit (double free) must fire too");
        assert_eq!(v[0].rule, "pool_leak");
    }

    #[test]
    fn truncated_trace_is_skipped() {
        let grace = OracleConfig::default().drain_grace_ns;
        let events = vec![
            Event {
                time_ns: 0,
                kind: EventKind::Overflow { evicted: 5 },
            },
            pkt(0, "sent"),
            Event {
                time_ns: grace + 1_000,
                kind: EventKind::Mark { id: 0, value: 0 },
            },
        ];
        assert!(check(&events).is_empty());
    }
}
