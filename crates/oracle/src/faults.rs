//! Fault-plan pairing oracle.
//!
//! Fuzz scenarios script every fault with its heal inside the horizon:
//! `sever`/`link_down` pair with `link_up`, `burst_on` with `burst_off`,
//! `latency_spike` with `latency_clear`. With
//! [`crate::OracleConfig::faults_must_heal`] set, any link still degraded
//! when the trace ends means the fault controller lost an action — or the
//! generator emitted an unpaired plan, which would silently bias every
//! liveness check downstream. Off by default because hand-written plans
//! (and deliberately unhealed outage experiments) are legal.

use std::collections::BTreeMap;

use kmsg_telemetry::{Event, EventKind};

use crate::{trace_truncated, Oracle, OracleConfig, RunFacts, Violation};

/// See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultOracle;

#[derive(Default)]
struct LinkFaults {
    down: bool,
    burst: bool,
    spiked: bool,
    last_ns: u64,
}

impl Oracle for FaultOracle {
    fn name(&self) -> &'static str {
        "faults"
    }

    fn check(&self, events: &[Event], facts: &RunFacts, cfg: &OracleConfig) -> Vec<Violation> {
        let mut out = Vec::new();
        if !cfg.faults_must_heal || trace_truncated(events, facts) {
            return out;
        }
        let mut links: BTreeMap<u64, LinkFaults> = BTreeMap::new();
        for ev in events {
            let EventKind::Fault { action, link } = &ev.kind else {
                continue;
            };
            let st = links.entry(*link).or_default();
            st.last_ns = ev.time_ns;
            match *action {
                "sever" | "link_down" => st.down = true,
                "link_up" => st.down = false,
                "burst_on" => st.burst = true,
                "burst_off" => st.burst = false,
                "latency_spike" => st.spiked = true,
                "latency_clear" => st.spiked = false,
                _ => {}
            }
        }
        for (link, st) in &links {
            let mut open = Vec::new();
            if st.down {
                open.push("down");
            }
            if st.burst {
                open.push("burst loss");
            }
            if st.spiked {
                open.push("latency spike");
            }
            if !open.is_empty() {
                out.push(Violation {
                    oracle: "faults",
                    rule: "unhealed",
                    time_ns: st.last_ns,
                    detail: format!(
                        "link {link} still degraded at trace end ({}) although the \
                         plan promised paired heals",
                        open.join(", ")
                    ),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(time_ns: u64, action: &'static str, link: u64) -> Event {
        Event {
            time_ns,
            kind: EventKind::Fault { action, link },
        }
    }

    fn cfg() -> OracleConfig {
        OracleConfig {
            faults_must_heal: true,
            ..OracleConfig::default()
        }
    }

    #[test]
    fn paired_faults_are_clean() {
        let events = vec![
            fault(10, "sever", 0),
            fault(10, "sever", 1),
            fault(20, "link_up", 0),
            fault(20, "link_up", 1),
            fault(30, "burst_on", 0),
            fault(40, "burst_off", 0),
            fault(50, "latency_spike", 1),
            fault(60, "latency_clear", 1),
        ];
        let v = FaultOracle.check(&events, &RunFacts::default(), &cfg());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unhealed_sever_fires() {
        let events = vec![fault(10, "sever", 3)];
        let v = FaultOracle.check(&events, &RunFacts::default(), &cfg());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unhealed");
        assert!(v[0].detail.contains("link 3"));
    }

    #[test]
    fn disabled_by_default() {
        let events = vec![fault(10, "sever", 3)];
        let v = FaultOracle.check(&events, &RunFacts::default(), &OracleConfig::default());
        assert!(v.is_empty());
    }
}
