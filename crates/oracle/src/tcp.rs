//! TCP Reno state-machine legality oracle.
//!
//! Checks the `TcpCwnd` / `TcpRto` / `TcpRetransmit` event stream of every
//! connection against the congestion-control rules the simulator's NewReno
//! model must obey:
//!
//! * **Transition shapes** — an `"rto"` transition collapses the window to
//!   one MSS and keeps `ssthresh >= 2*MSS`; a `"fast_recovery"` transition
//!   halves into `cwnd == ssthresh >= 2*MSS`; a `"recovery_exit"` deflates
//!   to at most `max(ssthresh, 2*MSS)`.
//! * **Causality** — no retransmission without a recorded loss signal: an
//!   RTO-driven resend (`fast: false`) of a data segment must coincide
//!   with its `TcpRto` event, and a fast retransmit (`fast: true`) needs a
//!   prior timeout or fast-recovery entry on the same connection. (SYN and
//!   SYN-ACK resends, `seq == 0`, are exempt: duplicate-SYN replies are
//!   legal without a timer.)
//! * **Backoff** — consecutive timeouts number `1, 2, 3, ...` and each
//!   doubles the armed RTO, capped at `max_rto`.

use kmsg_telemetry::{Event, EventKind};

use crate::{trace_truncated, Oracle, OracleConfig, RunFacts, Violation};

/// See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpOracle;

#[derive(Default)]
struct ConnState {
    /// Last recorded `TcpRto` (rto_us, consecutive, time_ns).
    last_rto: Option<(u64, u64, u64)>,
    /// The connection has a recorded loss signal (timeout or recovery
    /// entry) at or before the current event.
    loss_signal_seen: bool,
}

fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

fn approx_le(a: f64, b: f64, tol: f64) -> bool {
    a <= b + tol * a.abs().max(b.abs()).max(1.0)
}

impl Oracle for TcpOracle {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn check(&self, events: &[Event], facts: &RunFacts, cfg: &OracleConfig) -> Vec<Violation> {
        let mut out = Vec::new();
        if trace_truncated(events, facts) {
            // Evicted events may hold the loss signal a later retransmit
            // relies on; checking a torn stream would false-fail.
            return out;
        }
        let mut conns: std::collections::BTreeMap<u64, ConnState> = std::collections::BTreeMap::new();
        let mss = cfg.mss as f64;
        let tol = cfg.rel_tol;
        for ev in events {
            match &ev.kind {
                EventKind::TcpCwnd {
                    conn,
                    cwnd,
                    ssthresh,
                    cause,
                } => {
                    let st = conns.entry(*conn).or_default();
                    match *cause {
                        "rto" => {
                            st.loss_signal_seen = true;
                            if !approx_eq(*cwnd, mss, tol) {
                                out.push(Violation {
                                    oracle: "tcp",
                                    rule: "cwnd_rto_collapse",
                                    time_ns: ev.time_ns,
                                    detail: format!(
                                        "conn {conn}: RTO must collapse cwnd to one MSS \
                                         ({mss}), got {cwnd}"
                                    ),
                                });
                            }
                            if !approx_le(2.0 * mss, *ssthresh, tol) {
                                out.push(Violation {
                                    oracle: "tcp",
                                    rule: "ssthresh_floor",
                                    time_ns: ev.time_ns,
                                    detail: format!(
                                        "conn {conn}: ssthresh {ssthresh} below the \
                                         2*MSS floor ({})",
                                        2.0 * mss
                                    ),
                                });
                            }
                        }
                        "fast_recovery" => {
                            st.loss_signal_seen = true;
                            if !approx_eq(*cwnd, *ssthresh, tol) {
                                out.push(Violation {
                                    oracle: "tcp",
                                    rule: "cwnd_halving",
                                    time_ns: ev.time_ns,
                                    detail: format!(
                                        "conn {conn}: fast recovery must set cwnd to \
                                         ssthresh ({ssthresh}), got {cwnd}"
                                    ),
                                });
                            }
                            if !approx_le(2.0 * mss, *ssthresh, tol) {
                                out.push(Violation {
                                    oracle: "tcp",
                                    rule: "ssthresh_floor",
                                    time_ns: ev.time_ns,
                                    detail: format!(
                                        "conn {conn}: ssthresh {ssthresh} below the \
                                         2*MSS floor ({})",
                                        2.0 * mss
                                    ),
                                });
                            }
                        }
                        "recovery_exit" => {
                            let cap = ssthresh.max(2.0 * mss);
                            if !approx_le(*cwnd, cap, tol) {
                                out.push(Violation {
                                    oracle: "tcp",
                                    rule: "recovery_exit_deflate",
                                    time_ns: ev.time_ns,
                                    detail: format!(
                                        "conn {conn}: recovery exit must deflate cwnd \
                                         to <= max(ssthresh, 2*MSS) = {cap}, got {cwnd}"
                                    ),
                                });
                            }
                        }
                        _ => {}
                    }
                }
                EventKind::TcpRto {
                    conn,
                    rto_us,
                    consecutive,
                } => {
                    let st = conns.entry(*conn).or_default();
                    st.loss_signal_seen = true;
                    if *rto_us as f64 > cfg.max_rto_us as f64 * (1.0 + tol) {
                        out.push(Violation {
                            oracle: "tcp",
                            rule: "rto_cap",
                            time_ns: ev.time_ns,
                            detail: format!(
                                "conn {conn}: armed RTO {rto_us}us above the cap \
                                 {}us",
                                cfg.max_rto_us
                            ),
                        });
                    }
                    match st.last_rto {
                        Some((prev_rto, prev_consec, _)) if *consecutive == prev_consec + 1 => {
                            // No ACK progress between the two timeouts, so
                            // nothing recomputed the RTO: it must be the
                            // previous value doubled, capped at max_rto.
                            let expect =
                                (2.0 * prev_rto as f64).min(cfg.max_rto_us as f64);
                            // The model doubles the RTO in nanoseconds but
                            // the event records truncated microseconds, so
                            // doubling the truncated value can undershoot
                            // the recorded one by 1us: allow that slack on
                            // top of the relative tolerance.
                            if (*rto_us as f64 - expect).abs() > 1.0
                                && !approx_eq(*rto_us as f64, expect, tol)
                            {
                                out.push(Violation {
                                    oracle: "tcp",
                                    rule: "rto_backoff",
                                    time_ns: ev.time_ns,
                                    detail: format!(
                                        "conn {conn}: timeout #{consecutive} armed \
                                         {rto_us}us, expected doubling of {prev_rto}us \
                                         to {expect}us"
                                    ),
                                });
                            }
                        }
                        _ if *consecutive != 1 => {
                            // A streak either continues (handled above) or
                            // restarts at 1 after ACK progress reset it.
                            out.push(Violation {
                                oracle: "tcp",
                                rule: "rto_sequence",
                                time_ns: ev.time_ns,
                                detail: format!(
                                    "conn {conn}: timeout streak jumped to \
                                     #{consecutive} without #{} before it",
                                    consecutive.saturating_sub(1)
                                ),
                            });
                        }
                        _ => {}
                    }
                    st.last_rto = Some((*rto_us, *consecutive, ev.time_ns));
                }
                EventKind::CcWindow { conn, cause, .. } => {
                    // Non-Reno controllers (CUBIC/BBR) signal loss episodes
                    // through `CcWindow` instead of `TcpCwnd`; their
                    // retransmits are just as caused.
                    if matches!(*cause, "loss" | "rto") {
                        conns.entry(*conn).or_default().loss_signal_seen = true;
                    }
                }
                EventKind::TcpRetransmit { conn, seq, fast } => {
                    let st = conns.entry(*conn).or_default();
                    if *fast {
                        if !st.loss_signal_seen {
                            out.push(Violation {
                                oracle: "tcp",
                                rule: "fast_rexmit_cause",
                                time_ns: ev.time_ns,
                                detail: format!(
                                    "conn {conn}: fast retransmit of seq {seq} with no \
                                     prior timeout or fast-recovery entry on this \
                                     connection"
                                ),
                            });
                        }
                    } else if *seq > 0 {
                        // Data resent outside the fast path must ride an
                        // RTO that fired at this very instant. (seq 0 is
                        // the SYN/SYN-ACK, which may also be resent in
                        // reply to a duplicate SYN.)
                        let fired_now =
                            matches!(st.last_rto, Some((_, _, t)) if t == ev.time_ns);
                        if !fired_now {
                            out.push(Violation {
                                oracle: "tcp",
                                rule: "rto_rexmit_cause",
                                time_ns: ev.time_ns,
                                detail: format!(
                                    "conn {conn}: timeout-style retransmit of seq \
                                     {seq} without a TcpRto at the same instant"
                                ),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time_ns: u64, kind: EventKind) -> Event {
        Event { time_ns, kind }
    }

    fn check(events: &[Event]) -> Vec<Violation> {
        TcpOracle.check(events, &RunFacts::default(), &OracleConfig::default())
    }

    #[test]
    fn legal_rto_sequence_is_clean() {
        let events = vec![
            ev(
                100,
                EventKind::TcpRto {
                    conn: 1,
                    rto_us: 200_000,
                    consecutive: 1,
                },
            ),
            ev(
                100,
                EventKind::TcpCwnd {
                    conn: 1,
                    cwnd: 1448.0,
                    ssthresh: 2896.0,
                    cause: "rto",
                },
            ),
            ev(
                100,
                EventKind::TcpRetransmit {
                    conn: 1,
                    seq: 1,
                    fast: false,
                },
            ),
            ev(
                300_100,
                EventKind::TcpRto {
                    conn: 1,
                    rto_us: 400_000,
                    consecutive: 2,
                },
            ),
            ev(
                300_200,
                EventKind::TcpRetransmit {
                    conn: 1,
                    seq: 1,
                    fast: true,
                },
            ),
        ];
        assert!(check(&events).is_empty(), "{:?}", check(&events));
    }

    #[test]
    fn fast_retransmit_without_cause_fires() {
        let events = vec![ev(
            50,
            EventKind::TcpRetransmit {
                conn: 3,
                seq: 1449,
                fast: true,
            },
        )];
        let v = check(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "fast_rexmit_cause");
    }

    #[test]
    fn syn_resend_is_exempt() {
        // A duplicate-SYN reply resends seq 0 without any timer.
        let events = vec![ev(
            10,
            EventKind::TcpRetransmit {
                conn: 2,
                seq: 0,
                fast: false,
            },
        )];
        assert!(check(&events).is_empty());
    }

    #[test]
    fn broken_backoff_fires() {
        let events = vec![
            ev(
                100,
                EventKind::TcpRto {
                    conn: 1,
                    rto_us: 200_000,
                    consecutive: 1,
                },
            ),
            ev(
                500,
                EventKind::TcpRto {
                    conn: 1,
                    rto_us: 200_000, // should have doubled
                    consecutive: 2,
                },
            ),
        ];
        let v = check(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "rto_backoff");
    }

    #[test]
    fn backoff_caps_at_max_rto() {
        let cap = OracleConfig::default().max_rto_us;
        let events = vec![
            ev(
                100,
                EventKind::TcpRto {
                    conn: 1,
                    rto_us: cap,
                    consecutive: 1,
                },
            ),
            ev(
                200,
                EventKind::TcpRto {
                    conn: 1,
                    rto_us: cap,
                    consecutive: 2,
                },
            ),
        ];
        assert!(check(&events).is_empty());
    }

    #[test]
    fn missing_cwnd_collapse_fires() {
        let events = vec![
            ev(
                100,
                EventKind::TcpRto {
                    conn: 1,
                    rto_us: 200_000,
                    consecutive: 1,
                },
            ),
            ev(
                100,
                EventKind::TcpCwnd {
                    conn: 1,
                    cwnd: 14_480.0, // kept its window: illegal
                    ssthresh: 7240.0,
                    cause: "rto",
                },
            ),
        ];
        let v = check(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "cwnd_rto_collapse");
    }

    #[test]
    fn truncated_trace_is_skipped() {
        let events = vec![
            ev(0, EventKind::Overflow { evicted: 10 }),
            ev(
                50,
                EventKind::TcpRetransmit {
                    conn: 3,
                    seq: 1449,
                    fast: true,
                },
            ),
        ];
        assert!(check(&events).is_empty());
    }
}
