//! BBR congestion-controller legality oracle.
//!
//! Checks every connection's `BbrState` checkpoints (and the `CcWindow
//! { controller: "bbr" }` loss/RTO records) against the rules the
//! simulator's BBR model must obey:
//!
//! * **Phase sequence** — the phase machine starts in `"startup"` and may
//!   only move `startup → drain → probe_bw`; once probing it never goes
//!   back. Jumping `startup → probe_bw` — the injected `buggy_skip_drain`
//!   fault — leaves the startup queue undrained and is illegal.
//! * **Pacing-gain bound** — the recorded pacing rate never exceeds the
//!   phase's maximum gain times the recorded bottleneck-bandwidth
//!   estimate: `startup_gain` in startup, 1 in drain (the drain gain is
//!   its inverse), and the 1.25 probe gain in probe-bandwidth.
//! * **cwnd/BDP bound** — the recorded window never exceeds the phase's
//!   inflight-cap gain times the estimated BDP (bandwidth × min RTT),
//!   with the controller's 4-MSS floor as slack.
//! * **RTO collapse** — an `"rto"` `CcWindow` record collapses the window
//!   to one MSS (the estimators survive, the window does not).
//!
//! Gains come from [`OracleConfig::bbr_startup_gain`] /
//! [`OracleConfig::bbr_cwnd_gain`] and must match the run's `CcConfig`.

use kmsg_telemetry::{Event, EventKind};

use crate::{trace_truncated, Oracle, OracleConfig, RunFacts, Violation};

/// See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct BbrOracle;

/// The highest pacing gain BBR's probe-bandwidth cycle uses.
const PROBE_BW_MAX_GAIN: f64 = 1.25;

fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

fn approx_le(a: f64, b: f64, tol: f64) -> bool {
    a <= b + tol * a.abs().max(b.abs()).max(1.0)
}

/// Phase ordinal for the legality check: a connection may only move
/// forward (or stay) in `startup(0) → drain(1) → probe_bw(2)`.
fn phase_rank(phase: &str) -> Option<u8> {
    match phase {
        "startup" => Some(0),
        "drain" => Some(1),
        "probe_bw" => Some(2),
        _ => None,
    }
}

impl Oracle for BbrOracle {
    fn name(&self) -> &'static str {
        "bbr"
    }

    fn check(&self, events: &[Event], facts: &RunFacts, cfg: &OracleConfig) -> Vec<Violation> {
        let mut out = Vec::new();
        if trace_truncated(events, facts) {
            // The first (startup) checkpoint may have been evicted.
            return out;
        }
        let mss = cfg.mss as f64;
        let tol = cfg.rel_tol;
        let mut phases: std::collections::BTreeMap<u64, &'static str> =
            std::collections::BTreeMap::new();
        for ev in events {
            match &ev.kind {
                &EventKind::BbrState {
                    conn,
                    phase,
                    pacing_rate_bps,
                    btl_bw_bps,
                    min_rtt_us,
                    cwnd,
                } => {
                    let Some(rank) = phase_rank(phase) else {
                        out.push(Violation {
                            oracle: "bbr",
                            rule: "phase_sequence",
                            time_ns: ev.time_ns,
                            detail: format!("conn {conn}: unknown BBR phase {phase:?}"),
                        });
                        continue;
                    };
                    match phases.get(&conn) {
                        None if rank != 0 => {
                            out.push(Violation {
                                oracle: "bbr",
                                rule: "phase_sequence",
                                time_ns: ev.time_ns,
                                detail: format!(
                                    "conn {conn}: first recorded phase is {phase:?}, \
                                     must be \"startup\""
                                ),
                            });
                        }
                        Some(prev) => {
                            let prev_rank =
                                phase_rank(prev).expect("stored phases are known");
                            // Forward by at most one step, or stay put.
                            if rank != prev_rank && rank != prev_rank + 1 {
                                out.push(Violation {
                                    oracle: "bbr",
                                    rule: "phase_sequence",
                                    time_ns: ev.time_ns,
                                    detail: format!(
                                        "conn {conn}: illegal phase transition \
                                         {prev:?} -> {phase:?}"
                                    ),
                                });
                            }
                        }
                        None => {}
                    }
                    phases.insert(conn, phase);
                    if btl_bw_bps > 0.0 {
                        let max_gain = match phase {
                            "startup" => cfg.bbr_startup_gain,
                            "drain" => 1.0,
                            _ => PROBE_BW_MAX_GAIN,
                        };
                        if !approx_le(pacing_rate_bps, max_gain * btl_bw_bps, tol) {
                            out.push(Violation {
                                oracle: "bbr",
                                rule: "pacing_gain_bound",
                                time_ns: ev.time_ns,
                                detail: format!(
                                    "conn {conn}: pacing rate {pacing_rate_bps} B/s \
                                     above {max_gain} x btl_bw ({btl_bw_bps} B/s) in \
                                     phase {phase:?}"
                                ),
                            });
                        }
                        if min_rtt_us > 0 {
                            // `min_rtt_us` is the truncated (floored)
                            // microsecond reading; the controller computed
                            // its window from the untruncated value, so
                            // bound against the ceiling.
                            let bdp = btl_bw_bps * ((min_rtt_us + 1) as f64 / 1e6);
                            let cwnd_gain = if phase == "startup" {
                                cfg.bbr_startup_gain
                            } else {
                                cfg.bbr_cwnd_gain
                            };
                            let bound = (cwnd_gain * bdp).max(4.0 * mss);
                            if !approx_le(cwnd, bound, tol) {
                                out.push(Violation {
                                    oracle: "bbr",
                                    rule: "cwnd_bdp_bound",
                                    time_ns: ev.time_ns,
                                    detail: format!(
                                        "conn {conn}: cwnd {cwnd} above \
                                         {cwnd_gain} x BDP ({bdp} bytes) in phase \
                                         {phase:?}"
                                    ),
                                });
                            }
                        }
                    }
                }
                &EventKind::CcWindow {
                    conn,
                    controller: "bbr",
                    cause: "rto",
                    cwnd,
                    ..
                } => {
                    if !approx_eq(cwnd, mss, tol) {
                        out.push(Violation {
                            oracle: "bbr",
                            rule: "rto_collapse",
                            time_ns: ev.time_ns,
                            detail: format!(
                                "conn {conn}: RTO must collapse cwnd to one MSS \
                                 ({mss}), got {cwnd}"
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(
        time_ns: u64,
        phase: &'static str,
        pacing_rate_bps: f64,
        btl_bw_bps: f64,
        min_rtt_us: u64,
        cwnd: f64,
    ) -> Event {
        Event {
            time_ns,
            kind: EventKind::BbrState {
                conn: 1,
                phase,
                pacing_rate_bps,
                btl_bw_bps,
                min_rtt_us,
                cwnd,
            },
        }
    }

    fn check(events: &[Event]) -> Vec<Violation> {
        BbrOracle.check(events, &RunFacts::default(), &OracleConfig::default())
    }

    #[test]
    fn legal_phase_walk_is_clean() {
        let bw = 1e7;
        let rtt = 50_000; // 50 ms -> BDP = 500 kB
        let events = vec![
            state(0, "startup", 0.0, 0.0, 0, 14_480.0),
            state(1_000, "startup", 2.885 * bw, bw, rtt, 2.885 * 5e5),
            state(2_000, "drain", bw / 2.885, bw, rtt, 2.0 * 5e5),
            state(3_000, "probe_bw", 1.25 * bw, bw, rtt, 2.0 * 5e5),
            state(4_000, "probe_bw", 0.75 * bw, bw, rtt, 2.0 * 5e5),
        ];
        assert!(check(&events).is_empty(), "{:?}", check(&events));
    }

    #[test]
    fn skipping_drain_fires() {
        let bw = 1e7;
        let events = vec![
            state(0, "startup", 0.0, 0.0, 0, 14_480.0),
            state(1_000, "probe_bw", 1.25 * bw, bw, 50_000, 1e6),
        ];
        let v = check(&events);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "phase_sequence");
    }

    #[test]
    fn starting_outside_startup_fires() {
        let v = check(&[state(0, "drain", 0.0, 0.0, 0, 14_480.0)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "phase_sequence");
    }

    #[test]
    fn pacing_above_gain_fires() {
        let bw = 1e7;
        let events = vec![
            state(0, "startup", 0.0, 0.0, 0, 14_480.0),
            state(1_000, "startup", 4.0 * bw, bw, 0, 14_480.0),
        ];
        let v = check(&events);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "pacing_gain_bound");
    }

    #[test]
    fn cwnd_above_bdp_gain_fires() {
        let bw = 1e7;
        let rtt = 50_000; // BDP 500 kB, steady-state cap 1 MB
        let events = vec![
            state(0, "startup", 0.0, 0.0, 0, 14_480.0),
            state(1_000, "drain", bw / 2.885, bw, rtt, 4e6),
        ];
        let v = check(&events);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "cwnd_bdp_bound");
    }

    #[test]
    fn rto_must_collapse_window() {
        let events = vec![Event {
            time_ns: 10,
            kind: EventKind::CcWindow {
                conn: 1,
                controller: "bbr",
                cause: "rto",
                prev_cwnd: 1e6,
                cwnd: 1e6,
                ssthresh: f64::INFINITY,
                w_max: 0.0,
            },
        }];
        let v = check(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "rto_collapse");
    }

    #[test]
    fn truncated_trace_is_skipped() {
        let events = vec![
            Event {
                time_ns: 0,
                kind: EventKind::Overflow { evicted: 2 },
            },
            state(1_000, "probe_bw", 0.0, 0.0, 0, 14_480.0),
        ];
        assert!(check(&events).is_empty());
    }
}
