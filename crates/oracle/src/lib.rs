//! # kmsg-oracle — protocol invariant oracles for the simulation fuzzer
//!
//! The deterministic simulator (kmsg-netsim) stamps every interesting
//! protocol transition into the flight recorder (kmsg-telemetry). This
//! crate closes the loop, FoundationDB-style: after a run, the **oracles**
//! here replay the recorded event stream and assert protocol invariants
//! that must hold on *every* legal execution — regardless of topology,
//! loss pattern or fault schedule. A fuzz driver (`kmsg-bench`'s `fuzz`
//! binary) generates seeded scenarios, runs them, applies the oracles and,
//! on violation, shrinks the scenario to a minimal replayable artifact.
//!
//! The oracles:
//!
//! * [`TcpOracle`] — Reno state-machine legality: cwnd/ssthresh
//!   transitions, no retransmit without a recorded timeout or dup-ACK
//!   cause, RTO backoff doubles monotonically up to the cap.
//! * [`UdtOracle`] — DAIMD rate bounds: the sending period never drops
//!   below the 1 µs floor, increases only shrink it, each NAK-driven
//!   decrease multiplies it by exactly 1.125.
//! * [`ConservationOracle`] — link conservation: every packet the tracer
//!   saw sent is eventually delivered, dropped with a reason, or still
//!   plausibly in flight at the end of the trace — none vanish.
//! * [`DeliveryOracle`] — channel supervision: completed transfers verify,
//!   duplicates stay bounded by the at-least-once redelivery budget, FIFO
//!   order holds per channel, and `ConnStatus` transitions are legal.
//! * [`FaultOracle`] — scripted fault plans that promise to heal actually
//!   do: every `sever`/`link_down`/`burst_on`/`latency_spike` is paired
//!   with its heal on the same link (opt-in via
//!   [`OracleConfig::faults_must_heal`]).
//! * [`SpanOracle`] — causal-span lifecycle legality: opens and closes
//!   balance, children nest inside their parents on the same trace,
//!   instants close at their open time, and TCP retransmits join back to
//!   the `seg` span of the segment's first transmission.
//! * [`OverlayOracle`] — pub/sub overlay routing: relay paths are
//!   loop-free (no `ttl_drop`, no revisited node in a packed path),
//!   delivery is at-most-once per subscriber under reroute/requeue races,
//!   nothing is delivered that was never published, and the gossiped
//!   link-state tables reconverge after every heal
//!   ([`OverlayFacts`]).
//! * [`CubicOracle`] — CUBIC controller legality over `CcWindow` events:
//!   β-bounded multiplicative decrease, fast-convergence `W_max`
//!   accounting, and epoch growth that stays monotone on or under the
//!   cubic curve `C·(t−K)³ + W_max`.
//! * [`BbrOracle`] — BBR controller legality over `BbrState`/`CcWindow`
//!   events: the startup → drain → probe-bandwidth phase machine never
//!   skips drain, pacing rate stays within the phase gain × estimated
//!   bottleneck bandwidth, and cwnd within the inflight-cap gain × BDP.
//!
//! Oracles consume the **typed** event stream
//! ([`kmsg_telemetry::Recorder::events`] /
//! [`kmsg_telemetry::Recorder::for_each_event`]) plus a small set of
//! end-of-run [`RunFacts`] that the trace alone cannot show (delivery
//! verification, dedup counters). Traces truncated by ring eviction carry
//! an [`EventKind::Overflow`] marker; stream-shape oracles skip those
//! instead of false-failing.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod artifact;
pub mod bbr;
pub mod conservation;
pub mod cubic;
pub mod delivery;
pub mod faults;
pub mod overlay;
pub mod shrink;
pub mod spans;
pub mod tcp;
pub mod udt;

pub use artifact::Json;
pub use bbr::BbrOracle;
pub use conservation::ConservationOracle;
pub use cubic::CubicOracle;
pub use delivery::DeliveryOracle;
pub use faults::FaultOracle;
pub use overlay::OverlayOracle;
pub use shrink::{minimize, Shrinkable};
pub use spans::SpanOracle;
pub use tcp::TcpOracle;
pub use udt::UdtOracle;

use kmsg_telemetry::{Event, EventKind};

/// One invariant violation found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the oracle that fired (stable label).
    pub oracle: &'static str,
    /// Stable rule identifier within the oracle.
    pub rule: &'static str,
    /// Virtual time of the offending event (ns), 0 for end-of-run facts.
    pub time_ns: u64,
    /// Human-readable description with the offending values.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}/{}] t={}ns {}",
            self.oracle, self.rule, self.time_ns, self.detail
        )
    }
}

/// Static knowledge an oracle needs about the run's configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleConfig {
    /// TCP maximum segment size in bytes (`TcpConfig::mss`).
    pub mss: u64,
    /// TCP RTO upper bound in microseconds (`TcpConfig::max_rto`).
    pub max_rto_us: u64,
    /// Relative tolerance for floating-point comparisons.
    pub rel_tol: f64,
    /// How long after its `sent` trace a packet may legitimately still be
    /// in flight when the trace ends (queue drain + propagation + spikes).
    pub drain_grace_ns: u64,
    /// Upper bound on receiver-observed duplicates per supervision episode
    /// (reconnect, failover or channel drop) — the at-least-once
    /// redelivery window.
    pub dedup_window: u64,
    /// The workload is expected to finish inside the horizon; a
    /// non-completed run with healthy channels is a stall violation.
    pub expect_completion: bool,
    /// Every fault action in the trace must be healed before it ends
    /// (fuzz scenarios script paired heals; hand-written plans may not).
    pub faults_must_heal: bool,
    /// CUBIC scaling constant `C` the run's controllers used
    /// (`CcConfig::cubic_c`), in MSS/s³.
    pub cubic_c: f64,
    /// CUBIC multiplicative-decrease factor `β` (`CcConfig::cubic_beta`).
    pub cubic_beta: f64,
    /// BBR startup pacing/cwnd gain (`CcConfig::bbr_startup_gain`).
    pub bbr_startup_gain: f64,
    /// BBR steady-state inflight-cap gain (`CcConfig::bbr_cwnd_gain`).
    pub bbr_cwnd_gain: f64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            mss: 1448,
            max_rto_us: 60_000_000,
            rel_tol: 1e-6,
            drain_grace_ns: 5_000_000_000,
            dedup_window: 4096,
            expect_completion: false,
            faults_must_heal: false,
            cubic_c: 0.4,
            cubic_beta: 0.7,
            bbr_startup_gain: 2.885,
            bbr_cwnd_gain: 2.0,
        }
    }
}

/// End-of-run facts the event stream cannot show: did the workload
/// complete, did the payload verify, and what did the middleware's
/// supervision counters end at. The fuzz driver fills this from
/// `ExperimentResult`; protocol-level tests can leave it defaulted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunFacts {
    /// The workload reached its completion condition inside the horizon.
    pub completed: bool,
    /// The delivered payload matched the sent payload byte-for-byte.
    pub verified: bool,
    /// Receiver-side duplicate chunks absorbed by session dedup.
    pub duplicates: u64,
    /// Receiver-side chunks that arrived below the highest seen offset
    /// without being duplicates (out-of-order arrivals).
    pub out_of_order: u64,
    /// Channels the middleware successfully re-established.
    pub reconnects: u64,
    /// Total redial attempts across all supervision episodes.
    pub reconnect_attempts: u64,
    /// Channels that exhausted their reconnect budget.
    pub channels_dropped: u64,
    /// DATA frames rerouted to a surviving transport.
    pub failovers: u64,
    /// Live channels recycled onto a different congestion controller by
    /// the stack policy (each is an at-least-once redelivery episode,
    /// like a reconnect).
    pub controller_swaps: u64,
    /// The workload used a single FIFO channel, so in-order delivery is
    /// expected when no supervision episode occurred. (DATA stripes over
    /// two transports, where reordering is by design.)
    pub fifo_expected: bool,
    /// `Recorder::evicted()` after the run: nonzero means the trace lost
    /// its oldest events and stream-shape oracles must skip.
    pub evicted_events: u64,
    /// End-of-run facts from a pub/sub overlay run, `None` when the
    /// scenario ran no overlay (the [`OverlayOracle`] fact rules then
    /// stay silent; its stream rules always apply).
    pub overlay: Option<OverlayFacts>,
    /// Live slots in the fabric's in-flight packet pool when the run was
    /// sampled (`None` when the runner didn't measure it). The
    /// conservation oracle cross-checks this against the trace's own
    /// in-flight count: every extra slot is a leak, every missing one a
    /// double free.
    pub pool_live_at_end: Option<u64>,
}

/// End-of-run summary of a pub/sub overlay run, captured by the scenario
/// runner after its settle window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OverlayFacts {
    /// Overlay nodes in the mesh.
    pub nodes: u64,
    /// Messages published across all nodes.
    pub published: u64,
    /// Deliveries the subscription tables called for (per-subscriber).
    pub expected_deliveries: u64,
    /// Deliveries that actually reached subscriber applications.
    pub delivered: u64,
    /// Duplicate copies absorbed by receiver-side dedup.
    pub duplicates: u64,
    /// Publishes that found no usable route for some subscriber.
    pub no_route: u64,
    /// All nodes reported the same link-state/subscription table digest
    /// at the end of the settle window.
    pub converged: bool,
}

/// Whether the event stream is incomplete (ring evicted events mid-run or
/// a shrink left an [`EventKind::Overflow`] marker).
#[must_use]
pub fn trace_truncated(events: &[Event], facts: &RunFacts) -> bool {
    facts.evicted_events > 0
        || events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Overflow { .. }))
}

/// An invariant checker over a recorded run.
pub trait Oracle {
    /// Stable oracle name (used in verdicts and artifacts).
    fn name(&self) -> &'static str;
    /// Returns every violation found; empty means the trace is clean.
    fn check(&self, events: &[Event], facts: &RunFacts, cfg: &OracleConfig) -> Vec<Violation>;
}

/// The full oracle suite in a fixed, deterministic order.
#[must_use]
pub fn suite() -> Vec<Box<dyn Oracle>> {
    vec![
        Box::new(TcpOracle),
        Box::new(UdtOracle),
        Box::new(ConservationOracle),
        Box::new(DeliveryOracle),
        Box::new(FaultOracle),
        Box::new(SpanOracle),
        Box::new(OverlayOracle),
        Box::new(CubicOracle),
        Box::new(BbrOracle),
    ]
}

/// Runs every oracle in [`suite`] over the trace and returns all
/// violations, in suite order then trace order.
#[must_use]
pub fn check_all(events: &[Event], facts: &RunFacts, cfg: &OracleConfig) -> Vec<Violation> {
    let mut out = Vec::new();
    for oracle in suite() {
        out.extend(oracle.check(events, facts, cfg));
    }
    out
}

/// Renders a verdict block for a run: `"ok"` for a clean trace, otherwise
/// one line per violation. Deterministic: equal inputs yield equal text,
/// which the same-seed byte-identity tests rely on.
#[must_use]
pub fn render_verdict(violations: &[Violation]) -> String {
    if violations.is_empty() {
        return "ok\n".to_string();
    }
    let mut out = String::new();
    for v in violations {
        out.push_str(&format!("{v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_clean() {
        let violations = check_all(&[], &RunFacts::default(), &OracleConfig::default());
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(render_verdict(&violations), "ok\n");
    }

    #[test]
    fn truncation_detected_from_marker_and_counter() {
        let facts = RunFacts::default();
        let marked = vec![Event {
            time_ns: 0,
            kind: EventKind::Overflow { evicted: 3 },
        }];
        assert!(trace_truncated(&marked, &facts));
        assert!(!trace_truncated(&[], &facts));
        let evicted = RunFacts {
            evicted_events: 1,
            ..RunFacts::default()
        };
        assert!(trace_truncated(&[], &evicted));
    }

    #[test]
    fn verdict_rendering_is_deterministic() {
        let v = Violation {
            oracle: "tcp",
            rule: "rto_backoff",
            time_ns: 42,
            detail: "rto went down".to_string(),
        };
        let a = render_verdict(&[v.clone()]);
        let b = render_verdict(&[v]);
        assert_eq!(a, b);
        assert!(a.contains("[tcp/rto_backoff] t=42ns"));
    }
}
