//! Action-value function backends for the TD(λ) learner.
//!
//! The paper evaluates three (§IV-C3..5):
//!
//! 1. [`MatrixQ`] — a dense `Q(s, a)` table. With 55 entries and ε decaying
//!    within ~70 steps, exploration cannot fill the table in time and the
//!    learner fails to converge (Figure 4).
//! 2. [`ModelV`] — collapses `Q(s, a) = V(M(s, a))` using the environment
//!    model, shrinking the space to 11 values; converges in ~20 s
//!    (Figure 5).
//! 3. [`ApproxV`] — additionally extrapolates unexplored `V` entries with a
//!    least-squares quadratic (the paper's assumption: the reward over the
//!    ratio space is unimodal quadratic), enabling greedy decisions after
//!    only two observations; converges within seconds and avoids late
//!    backtracking (Figure 6).

use crate::space::{ActionIdx, RatioSpace, Space, StateIdx};

/// An action-value estimator `Q(s, a)` over a [`Space`].
pub trait ActionValue: Send {
    /// The learned estimate for `(s, a)`, or `None` if that entry has never
    /// been updated (and cannot be extrapolated).
    fn q(&self, s: StateIdx, a: ActionIdx) -> Option<f64>;

    /// Applies a TD update `Q(s, a) += increment` to the backing store.
    fn update(&mut self, s: StateIdx, a: ActionIdx, increment: f64);

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

impl ActionValue for Box<dyn ActionValue> {
    fn q(&self, s: StateIdx, a: ActionIdx) -> Option<f64> {
        (**self).q(s, a)
    }

    fn update(&mut self, s: StateIdx, a: ActionIdx, increment: f64) {
        (**self).update(s, a, increment);
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Dense `Q(s, a)` matrix (the paper's default, Figure 4).
#[derive(Debug, Clone)]
pub struct MatrixQ<S: Space = RatioSpace> {
    space: S,
    q: Vec<Option<f64>>,
}

impl<S: Space> MatrixQ<S> {
    /// Creates an all-uninitialised matrix.
    #[must_use]
    pub fn new(space: S) -> Self {
        MatrixQ {
            space,
            q: vec![None; space.num_states() * space.num_actions()],
        }
    }

    fn idx(&self, s: StateIdx, a: ActionIdx) -> usize {
        s.0 * self.space.num_actions() + a.0
    }

    /// Number of initialised entries (diagnostics: exploration coverage).
    #[must_use]
    pub fn initialized_entries(&self) -> usize {
        self.q.iter().filter(|v| v.is_some()).count()
    }
}

impl<S: Space> ActionValue for MatrixQ<S> {
    fn q(&self, s: StateIdx, a: ActionIdx) -> Option<f64> {
        self.q[self.idx(s, a)]
    }

    fn update(&mut self, s: StateIdx, a: ActionIdx, increment: f64) {
        let i = self.idx(s, a);
        let v = self.q[i].unwrap_or(0.0) + increment;
        self.q[i] = Some(v);
    }

    fn name(&self) -> &'static str {
        "matrix-q"
    }
}

/// Model-collapsed state-value function: `Q(s, a) = V(M(s, a))`
/// (Figure 5).
#[derive(Debug, Clone)]
pub struct ModelV<S: Space = RatioSpace> {
    space: S,
    v: Vec<Option<f64>>,
}

impl<S: Space> ModelV<S> {
    /// Creates an all-uninitialised state-value vector.
    #[must_use]
    pub fn new(space: S) -> Self {
        ModelV {
            space,
            v: vec![None; space.num_states()],
        }
    }

    /// The learned `V(s)` entries (diagnostics).
    #[must_use]
    pub fn values(&self) -> &[Option<f64>] {
        &self.v
    }
}

impl<S: Space> ActionValue for ModelV<S> {
    fn q(&self, s: StateIdx, a: ActionIdx) -> Option<f64> {
        self.v[self.space.transition(s, a).0]
    }

    fn update(&mut self, s: StateIdx, a: ActionIdx, increment: f64) {
        let target = self.space.transition(s, a).0;
        let v = self.v[target].unwrap_or(0.0) + increment;
        self.v[target] = Some(v);
    }

    fn name(&self) -> &'static str {
        "model-v"
    }
}

/// Model-collapsed `V(s)` with least-squares quadratic extrapolation of
/// unexplored entries (Figure 6).
///
/// Learned values always win; the fit only fills gaps, and only once at
/// least two observations exist (two points: linear fit; three or more:
/// quadratic fit).
#[derive(Debug, Clone)]
pub struct ApproxV<S: Space = RatioSpace> {
    inner: ModelV<S>,
    space: S,
}

impl<S: Space> ApproxV<S> {
    /// Creates an empty approximated value function.
    #[must_use]
    pub fn new(space: S) -> Self {
        ApproxV {
            inner: ModelV::new(space),
            space,
        }
    }

    /// The fitted value at ratio `x`, if enough observations exist.
    #[must_use]
    pub fn fitted(&self, x: f64) -> Option<f64> {
        let pts: Vec<(f64, f64)> = self
            .inner
            .values()
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|y| (self.space.state_value(StateIdx(i)), y)))
            .collect();
        match pts.len() {
            0 | 1 => None,
            2 => {
                let (x0, y0) = pts[0];
                let (x1, y1) = pts[1];
                let slope = (y1 - y0) / (x1 - x0);
                Some(y0 + slope * (x - x0))
            }
            _ => {
                let (a, b, c) = fit_quadratic(&pts)?;
                Some(a * x * x + b * x + c)
            }
        }
    }

    /// The learned (non-approximated) `V(s)` entries.
    #[must_use]
    pub fn learned_values(&self) -> &[Option<f64>] {
        self.inner.values()
    }
}

impl<S: Space> ActionValue for ApproxV<S> {
    fn q(&self, s: StateIdx, a: ActionIdx) -> Option<f64> {
        let target = self.space.transition(s, a);
        // Never use an approximated value when a learned one exists.
        self.inner.v[target.0]
            .or_else(|| self.fitted(self.space.state_value(target)))
    }

    fn update(&mut self, s: StateIdx, a: ActionIdx, increment: f64) {
        // The fit acts as a prior: a state's first real update starts from
        // its extrapolated value rather than zero.
        let target = self.space.transition(s, a);
        if self.inner.v[target.0].is_none() {
            if let Some(prior) = self.fitted(self.space.state_value(target)) {
                self.inner.v[target.0] = Some(prior);
            }
        }
        self.inner.update(s, a, increment);
    }

    fn name(&self) -> &'static str {
        "approx-v"
    }
}

/// Least-squares quadratic fit `y = a·x² + b·x + c` through `pts`
/// (normal equations, Gaussian elimination). Returns `None` if the system
/// is singular (e.g. all x identical).
#[must_use]
pub fn fit_quadratic(pts: &[(f64, f64)]) -> Option<(f64, f64, f64)> {
    if pts.len() < 3 {
        return None;
    }
    // Normal equations A^T A x = A^T y with rows [x^2, x, 1].
    let mut m = [[0.0f64; 4]; 3];
    for &(x, y) in pts {
        let r = [x * x, x, 1.0];
        for i in 0..3 {
            for j in 0..3 {
                m[i][j] += r[i] * r[j];
            }
            m[i][3] += r[i] * y;
        }
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| {
            m[i][col]
                .abs()
                .partial_cmp(&m[j][col].abs())
                .expect("NaN in fit")
        })?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        for row in 0..3 {
            if row != col {
                let f = m[row][col] / m[col][col];
                let pivot_row = m[col];
                for (k, cell) in m[row].iter_mut().enumerate().skip(col) {
                    *cell -= f * pivot_row[k];
                }
            }
        }
    }
    Some((m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> RatioSpace {
        RatioSpace::default()
    }

    #[test]
    fn matrix_q_starts_uninitialised() {
        let q = MatrixQ::new(space());
        assert_eq!(q.initialized_entries(), 0);
        assert_eq!(q.q(StateIdx(0), ActionIdx(0)), None);
    }

    #[test]
    fn matrix_q_updates_accumulate() {
        let mut q = MatrixQ::new(space());
        q.update(StateIdx(3), ActionIdx(1), 0.5);
        q.update(StateIdx(3), ActionIdx(1), 0.25);
        assert_eq!(q.q(StateIdx(3), ActionIdx(1)), Some(0.75));
        assert_eq!(q.initialized_entries(), 1);
        assert_eq!(q.name(), "matrix-q");
    }

    #[test]
    fn model_v_collapses_state_space() {
        let mut v = ModelV::new(space());
        // Updating (s=5, a=+1 step) writes V(6); querying (s=7, a=-1 step)
        // reads the same entry.
        v.update(StateIdx(5), ActionIdx(3), 1.0);
        assert_eq!(v.q(StateIdx(7), ActionIdx(1)), Some(1.0));
        assert_eq!(v.q(StateIdx(5), ActionIdx(3)), Some(1.0));
        assert_eq!(v.q(StateIdx(5), ActionIdx(1)), None);
    }

    #[test]
    fn model_v_edge_clamping_shares_entries() {
        let mut v = ModelV::new(space());
        // At the left edge, all leftward actions collapse to state 0.
        v.update(StateIdx(0), ActionIdx(0), 2.0);
        assert_eq!(v.q(StateIdx(0), ActionIdx(1)), Some(2.0));
        assert_eq!(v.q(StateIdx(1), ActionIdx(1)), Some(2.0));
    }

    #[test]
    fn fit_quadratic_recovers_parabola() {
        let pts: Vec<(f64, f64)> = [-1.0, -0.5, 0.0, 0.5, 1.0]
            .iter()
            .map(|&x| (x, 2.0 * x * x - 3.0 * x + 1.0))
            .collect();
        let (a, b, c) = fit_quadratic(&pts).expect("fit");
        assert!((a - 2.0).abs() < 1e-9);
        assert!((b + 3.0).abs() < 1e-9);
        assert!((c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fit_quadratic_rejects_degenerate() {
        assert!(fit_quadratic(&[(0.0, 1.0), (0.0, 2.0), (0.0, 3.0)]).is_none());
        assert!(fit_quadratic(&[(0.0, 1.0)]).is_none());
    }

    #[test]
    fn approx_v_prefers_learned_values() {
        let mut v = ApproxV::new(space());
        for (s, val) in [(0usize, 0.0), (5, 1.0), (10, 0.2)] {
            // Write via a no-op action so M(s, noop) = s.
            v.update(StateIdx(s), space().noop_action(), val);
        }
        // Learned value returned exactly.
        assert_eq!(v.q(StateIdx(5), space().noop_action()), Some(1.0));
        // Unexplored state gets a fitted value.
        let fitted = v.q(StateIdx(3), space().noop_action()).expect("fitted");
        assert!(fitted.is_finite());
        // Fitted parabola through (-1,0),(0,1),(1,0.2) peaks between -1..1.
        assert!(fitted > 0.0);
    }

    #[test]
    fn approx_v_linear_with_two_points() {
        let mut v = ApproxV::new(space());
        v.update(StateIdx(0), space().noop_action(), 0.0);
        v.update(StateIdx(10), space().noop_action(), 1.0);
        let mid = v.q(StateIdx(5), space().noop_action()).expect("linear fit");
        assert!((mid - 0.5).abs() < 1e-9);
    }

    #[test]
    fn approx_v_none_with_one_point() {
        let mut v = ApproxV::new(space());
        v.update(StateIdx(5), space().noop_action(), 1.0);
        assert_eq!(v.q(StateIdx(3), space().noop_action()), None);
    }
}
