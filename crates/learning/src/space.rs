//! Discretised state and action spaces for the protocol-ratio learner.
//!
//! The paper (§IV-C3) discretises the protocol ratio `r ∈ [-1, 1]` with a
//! fixed step `κ = 1/5`, giving `2/κ + 1 = 11` states, and allows actions
//! of up to two steps in either direction, giving 5 actions. The
//! environment model `M(s, a)` (§IV-C4) maps a state and an action to the
//! successor state with clamping at the edges:
//!
//! ```text
//! M(s, a) = min(s + a, max(S))  for s + a >= 0
//!           max(s + a, min(S))  for s + a <  0
//! ```

/// Index of a state in a [`RatioSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateIdx(pub usize);

/// Index of an action in a [`RatioSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActionIdx(pub usize);

/// The discretised ratio space `[-1, 1]` with step `κ = 1/steps_per_side`,
/// and actions of up to `max_step` steps in either direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RatioSpace {
    steps_per_side: usize,
    max_step: usize,
}

impl Default for RatioSpace {
    /// The paper's configuration: κ = 1/5 (11 states), two-step actions
    /// (5 actions) — an 11 × 5 `Q(s, a)` matrix with 55 entries.
    fn default() -> Self {
        RatioSpace::new(5, 2)
    }
}

impl RatioSpace {
    /// Creates a space with `steps_per_side` intervals on each side of zero
    /// (κ = 1/steps_per_side) and actions up to `max_step` steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps_per_side` is zero or `max_step` is zero.
    #[must_use]
    pub fn new(steps_per_side: usize, max_step: usize) -> Self {
        assert!(steps_per_side > 0, "steps_per_side must be positive");
        assert!(max_step > 0, "max_step must be positive");
        RatioSpace {
            steps_per_side,
            max_step,
        }
    }

    /// Number of states (`2·steps_per_side + 1`).
    #[must_use]
    pub fn num_states(&self) -> usize {
        2 * self.steps_per_side + 1
    }

    /// Number of actions (`2·max_step + 1`).
    #[must_use]
    pub fn num_actions(&self) -> usize {
        2 * self.max_step + 1
    }

    /// The discretisation step κ.
    #[must_use]
    pub fn kappa(&self) -> f64 {
        1.0 / self.steps_per_side as f64
    }

    /// The ratio value in `[-1, 1]` of a state.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[must_use]
    pub fn state_value(&self, s: StateIdx) -> f64 {
        assert!(s.0 < self.num_states(), "state index out of range");
        (s.0 as f64 - self.steps_per_side as f64) / self.steps_per_side as f64
    }

    /// The signed step count of an action (e.g. -2..=2).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[must_use]
    pub fn action_steps(&self, a: ActionIdx) -> isize {
        assert!(a.0 < self.num_actions(), "action index out of range");
        a.0 as isize - self.max_step as isize
    }

    /// The ratio delta of an action (e.g. -2/5..=2/5).
    #[must_use]
    pub fn action_value(&self, a: ActionIdx) -> f64 {
        self.action_steps(a) as f64 / self.steps_per_side as f64
    }

    /// The state whose value is nearest to `ratio ∈ [-1, 1]`.
    #[must_use]
    pub fn nearest_state(&self, ratio: f64) -> StateIdx {
        let clamped = ratio.clamp(-1.0, 1.0);
        let idx = ((clamped + 1.0) * self.steps_per_side as f64).round() as usize;
        StateIdx(idx.min(self.num_states() - 1))
    }

    /// The environment model `M(s, a)`: the successor state, clamped at the
    /// edges of the space.
    #[must_use]
    pub fn transition(&self, s: StateIdx, a: ActionIdx) -> StateIdx {
        let next = s.0 as isize + self.action_steps(a);
        StateIdx(next.clamp(0, self.num_states() as isize - 1) as usize)
    }

    /// The index of the "do nothing" action.
    #[must_use]
    pub fn noop_action(&self) -> ActionIdx {
        ActionIdx(self.max_step)
    }

    /// Iterates over all states.
    pub fn states(&self) -> impl Iterator<Item = StateIdx> {
        (0..self.num_states()).map(StateIdx)
    }

    /// Iterates over all actions.
    pub fn actions(&self) -> impl Iterator<Item = ActionIdx> {
        (0..self.num_actions()).map(ActionIdx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        let space = RatioSpace::default();
        assert_eq!(space.num_states(), 11);
        assert_eq!(space.num_actions(), 5);
        assert_eq!(space.num_states() * space.num_actions(), 55);
        assert!((space.kappa() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn state_values_span_minus_one_to_one() {
        let space = RatioSpace::default();
        assert_eq!(space.state_value(StateIdx(0)), -1.0);
        assert_eq!(space.state_value(StateIdx(5)), 0.0);
        assert_eq!(space.state_value(StateIdx(10)), 1.0);
        assert!((space.state_value(StateIdx(6)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn action_values() {
        let space = RatioSpace::default();
        let vals: Vec<f64> = space.actions().map(|a| space.action_value(a)).collect();
        assert_eq!(vals, vec![-0.4, -0.2, 0.0, 0.2, 0.4]);
        assert_eq!(space.noop_action(), ActionIdx(2));
        assert_eq!(space.action_steps(ActionIdx(0)), -2);
    }

    #[test]
    fn transition_clamps_at_edges() {
        let space = RatioSpace::default();
        // M(-1, -1/5) = -1 (paper's example)
        assert_eq!(space.transition(StateIdx(0), ActionIdx(1)), StateIdx(0));
        assert_eq!(space.transition(StateIdx(10), ActionIdx(4)), StateIdx(10));
        assert_eq!(space.transition(StateIdx(5), ActionIdx(4)), StateIdx(7));
        assert_eq!(space.transition(StateIdx(5), ActionIdx(0)), StateIdx(3));
    }

    #[test]
    fn nearest_state_round_trip() {
        let space = RatioSpace::default();
        for s in space.states() {
            assert_eq!(space.nearest_state(space.state_value(s)), s);
        }
        assert_eq!(space.nearest_state(-2.0), StateIdx(0));
        assert_eq!(space.nearest_state(2.0), StateIdx(10));
        assert_eq!(space.nearest_state(0.09), StateIdx(5));
        assert_eq!(space.nearest_state(0.11), StateIdx(6));
    }

    #[test]
    #[should_panic(expected = "state index out of range")]
    fn state_value_bounds_checked() {
        let space = RatioSpace::default();
        let _ = space.state_value(StateIdx(11));
    }
}
