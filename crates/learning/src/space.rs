//! Discretised state and action spaces for the protocol-ratio learner.
//!
//! The paper (§IV-C3) discretises the protocol ratio `r ∈ [-1, 1]` with a
//! fixed step `κ = 1/5`, giving `2/κ + 1 = 11` states, and allows actions
//! of up to two steps in either direction, giving 5 actions. The
//! environment model `M(s, a)` (§IV-C4) maps a state and an action to the
//! successor state with clamping at the edges:
//!
//! ```text
//! M(s, a) = min(s + a, max(S))  for s + a >= 0
//!           max(s + a, min(S))  for s + a <  0
//! ```
//!
//! The learner itself is agnostic to the space's shape: everything it
//! needs is captured by the [`Space`] trait, implemented both by the
//! paper's [`RatioSpace`] and by [`StackSpace`], which crosses the ratio
//! dimension with a congestion-controller variant per TCP stack
//! (Reno/CUBIC/BBR), widening the action space from {TCP, UDT} to
//! transports × controllers.

/// Index of a state in a [`Space`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateIdx(pub usize);

/// Index of an action in a [`Space`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActionIdx(pub usize);

/// Iterator over the dense index range of a space's states or actions.
type IdxIter<T> = std::iter::Map<std::ops::Range<usize>, fn(usize) -> T>;

/// A finite, discretised state/action space with a deterministic
/// environment model, as consumed by the Sarsa(λ) learner and the
/// value-function backends.
///
/// States and actions are dense indices `0..num_states()` /
/// `0..num_actions()`; [`Space::transition`] is the environment model
/// `M(s, a)`, and [`Space::state_value`] maps a state to the scalar the
/// quadratic approximation ([`crate::value::ApproxV`]) fits over — for
/// composite spaces this is the *ratio component*, so the paper's
/// unimodal-reward assumption keeps holding along that axis.
pub trait Space: Copy + Send + std::fmt::Debug + 'static {
    /// Number of states.
    fn num_states(&self) -> usize;

    /// Number of actions.
    fn num_actions(&self) -> usize;

    /// The scalar value of a state (the protocol ratio in `[-1, 1]`).
    fn state_value(&self, s: StateIdx) -> f64;

    /// The environment model `M(s, a)`: the successor state.
    fn transition(&self, s: StateIdx, a: ActionIdx) -> StateIdx;

    /// The index of the "do nothing" action.
    fn noop_action(&self) -> ActionIdx;

    /// Iterates over all states.
    fn states(&self) -> IdxIter<StateIdx> {
        (0..self.num_states()).map(StateIdx as fn(usize) -> StateIdx)
    }

    /// Iterates over all actions.
    fn actions(&self) -> IdxIter<ActionIdx> {
        (0..self.num_actions()).map(ActionIdx as fn(usize) -> ActionIdx)
    }
}

/// The discretised ratio space `[-1, 1]` with step `κ = 1/steps_per_side`,
/// and actions of up to `max_step` steps in either direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RatioSpace {
    steps_per_side: usize,
    max_step: usize,
}

impl Default for RatioSpace {
    /// The paper's configuration: κ = 1/5 (11 states), two-step actions
    /// (5 actions) — an 11 × 5 `Q(s, a)` matrix with 55 entries.
    fn default() -> Self {
        RatioSpace::new(5, 2)
    }
}

impl RatioSpace {
    /// Creates a space with `steps_per_side` intervals on each side of zero
    /// (κ = 1/steps_per_side) and actions up to `max_step` steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps_per_side` is zero or `max_step` is zero.
    #[must_use]
    pub fn new(steps_per_side: usize, max_step: usize) -> Self {
        assert!(steps_per_side > 0, "steps_per_side must be positive");
        assert!(max_step > 0, "max_step must be positive");
        RatioSpace {
            steps_per_side,
            max_step,
        }
    }

    /// Number of states (`2·steps_per_side + 1`).
    #[must_use]
    pub fn num_states(&self) -> usize {
        2 * self.steps_per_side + 1
    }

    /// Number of actions (`2·max_step + 1`).
    #[must_use]
    pub fn num_actions(&self) -> usize {
        2 * self.max_step + 1
    }

    /// The discretisation step κ.
    #[must_use]
    pub fn kappa(&self) -> f64 {
        1.0 / self.steps_per_side as f64
    }

    /// The ratio value in `[-1, 1]` of a state.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[must_use]
    pub fn state_value(&self, s: StateIdx) -> f64 {
        assert!(s.0 < self.num_states(), "state index out of range");
        (s.0 as f64 - self.steps_per_side as f64) / self.steps_per_side as f64
    }

    /// The signed step count of an action (e.g. -2..=2).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[must_use]
    pub fn action_steps(&self, a: ActionIdx) -> isize {
        assert!(a.0 < self.num_actions(), "action index out of range");
        a.0 as isize - self.max_step as isize
    }

    /// The ratio delta of an action (e.g. -2/5..=2/5).
    #[must_use]
    pub fn action_value(&self, a: ActionIdx) -> f64 {
        self.action_steps(a) as f64 / self.steps_per_side as f64
    }

    /// The state whose value is nearest to `ratio ∈ [-1, 1]`.
    #[must_use]
    pub fn nearest_state(&self, ratio: f64) -> StateIdx {
        let clamped = ratio.clamp(-1.0, 1.0);
        let idx = ((clamped + 1.0) * self.steps_per_side as f64).round() as usize;
        StateIdx(idx.min(self.num_states() - 1))
    }

    /// The environment model `M(s, a)`: the successor state, clamped at the
    /// edges of the space.
    #[must_use]
    pub fn transition(&self, s: StateIdx, a: ActionIdx) -> StateIdx {
        let next = s.0 as isize + self.action_steps(a);
        StateIdx(next.clamp(0, self.num_states() as isize - 1) as usize)
    }

    /// The index of the "do nothing" action.
    #[must_use]
    pub fn noop_action(&self) -> ActionIdx {
        ActionIdx(self.max_step)
    }

    /// Iterates over all states.
    pub fn states(&self) -> impl Iterator<Item = StateIdx> {
        (0..self.num_states()).map(StateIdx)
    }

    /// Iterates over all actions.
    pub fn actions(&self) -> impl Iterator<Item = ActionIdx> {
        (0..self.num_actions()).map(ActionIdx)
    }
}

impl Space for RatioSpace {
    fn num_states(&self) -> usize {
        RatioSpace::num_states(self)
    }

    fn num_actions(&self) -> usize {
        RatioSpace::num_actions(self)
    }

    fn state_value(&self, s: StateIdx) -> f64 {
        RatioSpace::state_value(self, s)
    }

    fn transition(&self, s: StateIdx, a: ActionIdx) -> StateIdx {
        RatioSpace::transition(self, s, a)
    }

    fn noop_action(&self) -> ActionIdx {
        RatioSpace::noop_action(self)
    }
}

/// The ratio space crossed with a per-stack congestion-controller
/// variant: state = (ratio state, variant), action = (ratio action,
/// variant move ∈ {prev, keep, next}).
///
/// The default pairs the paper's 11-state ratio space with three TCP
/// controller variants (Reno, CUBIC, BBR) — 33 states × 15 actions. The
/// variant axis wraps around, so any controller is reachable from any
/// other in at most ⌈N/2⌉ moves; the "keep" move composed with the ratio
/// no-op is the space's global no-op. [`Space::state_value`] exposes only
/// the ratio component, so the quadratic value approximation still fits a
/// single unimodal curve per controller sweep.
///
/// Layout: state `s = variant · ratio_states + ratio_state`, action
/// `a = (move + 1) · ratio_actions + ratio_action` with `move ∈ {-1, 0, 1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackSpace {
    ratio: RatioSpace,
    num_variants: usize,
}

impl Default for StackSpace {
    /// The paper's ratio space × {Reno, CUBIC, BBR}: 33 states, 15 actions.
    fn default() -> Self {
        StackSpace::new(RatioSpace::default(), 3)
    }
}

impl StackSpace {
    /// Number of variant moves per action: previous, keep, next.
    const MOVES: usize = 3;

    /// Creates a stack space over `ratio` with `num_variants` controller
    /// variants.
    ///
    /// # Panics
    ///
    /// Panics if `num_variants` is zero.
    #[must_use]
    pub fn new(ratio: RatioSpace, num_variants: usize) -> Self {
        assert!(num_variants > 0, "num_variants must be positive");
        StackSpace { ratio, num_variants }
    }

    /// The underlying ratio space.
    #[must_use]
    pub fn ratio_space(&self) -> RatioSpace {
        self.ratio
    }

    /// Number of congestion-controller variants.
    #[must_use]
    pub fn num_variants(&self) -> usize {
        self.num_variants
    }

    /// Decomposes a state into (ratio state, variant index).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[must_use]
    pub fn split_state(&self, s: StateIdx) -> (StateIdx, usize) {
        assert!(s.0 < Space::num_states(self), "state index out of range");
        let per = self.ratio.num_states();
        (StateIdx(s.0 % per), s.0 / per)
    }

    /// Composes a state from a ratio state and a variant index.
    ///
    /// # Panics
    ///
    /// Panics if either component is out of range.
    #[must_use]
    pub fn join_state(&self, ratio: StateIdx, variant: usize) -> StateIdx {
        assert!(ratio.0 < self.ratio.num_states(), "ratio state out of range");
        assert!(variant < self.num_variants, "variant out of range");
        StateIdx(variant * self.ratio.num_states() + ratio.0)
    }

    /// Decomposes an action into (ratio action, variant move ∈ -1..=1).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[must_use]
    pub fn split_action(&self, a: ActionIdx) -> (ActionIdx, isize) {
        assert!(a.0 < Space::num_actions(self), "action index out of range");
        let per = self.ratio.num_actions();
        (ActionIdx(a.0 % per), (a.0 / per) as isize - 1)
    }

    /// Composes an action from a ratio action and a variant move.
    ///
    /// # Panics
    ///
    /// Panics if either component is out of range.
    #[must_use]
    pub fn join_action(&self, ratio: ActionIdx, variant_move: isize) -> ActionIdx {
        assert!(ratio.0 < self.ratio.num_actions(), "ratio action out of range");
        assert!(
            (-1..=1).contains(&variant_move),
            "variant move must be -1, 0 or 1"
        );
        ActionIdx(((variant_move + 1) as usize) * self.ratio.num_actions() + ratio.0)
    }

    /// The state nearest `ratio` within the given variant.
    #[must_use]
    pub fn nearest_state(&self, ratio: f64, variant: usize) -> StateIdx {
        self.join_state(self.ratio.nearest_state(ratio), variant)
    }
}

impl Space for StackSpace {
    fn num_states(&self) -> usize {
        self.ratio.num_states() * self.num_variants
    }

    fn num_actions(&self) -> usize {
        self.ratio.num_actions() * Self::MOVES
    }

    fn state_value(&self, s: StateIdx) -> f64 {
        let (rs, _) = self.split_state(s);
        self.ratio.state_value(rs)
    }

    fn transition(&self, s: StateIdx, a: ActionIdx) -> StateIdx {
        let (rs, v) = self.split_state(s);
        let (ra, dv) = self.split_action(a);
        let next_v = (v as isize + dv).rem_euclid(self.num_variants as isize) as usize;
        self.join_state(self.ratio.transition(rs, ra), next_v)
    }

    fn noop_action(&self) -> ActionIdx {
        self.join_action(self.ratio.noop_action(), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        let space = RatioSpace::default();
        assert_eq!(space.num_states(), 11);
        assert_eq!(space.num_actions(), 5);
        assert_eq!(space.num_states() * space.num_actions(), 55);
        assert!((space.kappa() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn state_values_span_minus_one_to_one() {
        let space = RatioSpace::default();
        assert_eq!(space.state_value(StateIdx(0)), -1.0);
        assert_eq!(space.state_value(StateIdx(5)), 0.0);
        assert_eq!(space.state_value(StateIdx(10)), 1.0);
        assert!((space.state_value(StateIdx(6)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn action_values() {
        let space = RatioSpace::default();
        let vals: Vec<f64> = space.actions().map(|a| space.action_value(a)).collect();
        assert_eq!(vals, vec![-0.4, -0.2, 0.0, 0.2, 0.4]);
        assert_eq!(space.noop_action(), ActionIdx(2));
        assert_eq!(space.action_steps(ActionIdx(0)), -2);
    }

    #[test]
    fn transition_clamps_at_edges() {
        let space = RatioSpace::default();
        // M(-1, -1/5) = -1 (paper's example)
        assert_eq!(space.transition(StateIdx(0), ActionIdx(1)), StateIdx(0));
        assert_eq!(space.transition(StateIdx(10), ActionIdx(4)), StateIdx(10));
        assert_eq!(space.transition(StateIdx(5), ActionIdx(4)), StateIdx(7));
        assert_eq!(space.transition(StateIdx(5), ActionIdx(0)), StateIdx(3));
    }

    #[test]
    fn nearest_state_round_trip() {
        let space = RatioSpace::default();
        for s in space.states() {
            assert_eq!(space.nearest_state(space.state_value(s)), s);
        }
        assert_eq!(space.nearest_state(-2.0), StateIdx(0));
        assert_eq!(space.nearest_state(2.0), StateIdx(10));
        assert_eq!(space.nearest_state(0.09), StateIdx(5));
        assert_eq!(space.nearest_state(0.11), StateIdx(6));
    }

    #[test]
    #[should_panic(expected = "state index out of range")]
    fn state_value_bounds_checked() {
        let space = RatioSpace::default();
        let _ = space.state_value(StateIdx(11));
    }

    #[test]
    fn stack_space_dimensions() {
        let space = StackSpace::default();
        assert_eq!(Space::num_states(&space), 33);
        assert_eq!(Space::num_actions(&space), 15);
        assert_eq!(space.num_variants(), 3);
        assert_eq!(Space::states(&space).count(), 33);
        assert_eq!(Space::actions(&space).count(), 15);
    }

    #[test]
    fn stack_state_round_trip() {
        let space = StackSpace::default();
        for s in Space::states(&space) {
            let (rs, v) = space.split_state(s);
            assert_eq!(space.join_state(rs, v), s);
        }
        for a in Space::actions(&space) {
            let (ra, dv) = space.split_action(a);
            assert_eq!(space.join_action(ra, dv), a);
        }
    }

    #[test]
    fn stack_state_value_is_the_ratio_component() {
        let space = StackSpace::default();
        let ratio = space.ratio_space();
        for v in 0..space.num_variants() {
            for rs in ratio.states() {
                let s = space.join_state(rs, v);
                assert_eq!(Space::state_value(&space, s), ratio.state_value(rs));
            }
        }
    }

    #[test]
    fn stack_transition_moves_both_axes() {
        let space = StackSpace::default();
        let ratio = space.ratio_space();
        // Keep the controller, move the ratio.
        let s = space.join_state(StateIdx(5), 1);
        let a = space.join_action(ActionIdx(4), 0);
        assert_eq!(Space::transition(&space, s, a), space.join_state(StateIdx(7), 1));
        // Keep the ratio, cycle the controller (wrapping both ways).
        let noop_ratio = ratio.noop_action();
        let up = space.join_action(noop_ratio, 1);
        let down = space.join_action(noop_ratio, -1);
        let s2 = space.join_state(StateIdx(5), 2);
        assert_eq!(Space::transition(&space, s2, up), space.join_state(StateIdx(5), 0));
        let s0 = space.join_state(StateIdx(5), 0);
        assert_eq!(Space::transition(&space, s0, down), space.join_state(StateIdx(5), 2));
    }

    #[test]
    fn stack_noop_keeps_everything() {
        let space = StackSpace::default();
        let noop = Space::noop_action(&space);
        for s in Space::states(&space) {
            assert_eq!(Space::transition(&space, s, noop), s);
        }
    }

    #[test]
    fn stack_nearest_state_lands_in_variant() {
        let space = StackSpace::default();
        let s = space.nearest_state(-1.0, 2);
        let (rs, v) = space.split_state(s);
        assert_eq!(v, 2);
        assert_eq!(rs, StateIdx(0));
    }

    #[test]
    #[should_panic(expected = "variant out of range")]
    fn stack_join_state_bounds_checked() {
        let space = StackSpace::default();
        let _ = space.join_state(StateIdx(0), 3);
    }
}
