//! # kmsg-learning — online RL for adaptive transport selection
//!
//! The reinforcement-learning substrate of the KompicsMessaging
//! reproduction (§II-C and §IV-C of *Fast and Flexible Networking for
//! Message-oriented Middleware*, ICDCS 2017): an on-policy **Sarsa(λ)**
//! learner with eligibility traces and ε-greedy exploration, over the
//! paper's discretised protocol-ratio space, with three value-function
//! backends of increasing sample efficiency:
//!
//! | Backend | Paper figure | Behaviour |
//! |---------|--------------|-----------|
//! | [`value::MatrixQ`]  | Fig. 4 | dense 11×5 table; too slow to converge |
//! | [`value::ModelV`]   | Fig. 5 | `Q(s,a) = V(M(s,a))`; converges ≈ 20 s |
//! | [`value::ApproxV`]  | Fig. 6 | + quadratic extrapolation; seconds |
//!
//! # Example
//!
//! ```
//! use kmsg_learning::prelude::*;
//! use rand::SeedableRng;
//!
//! let space = RatioSpace::default(); // 11 states x 5 actions
//! let mut learner = Sarsa::new(
//!     space,
//!     SarsaConfig::default(),
//!     ModelV::new(space),
//!     rand_chacha::ChaCha12Rng::seed_from_u64(42),
//! );
//! // Environment: reward peaks at ratio -1 (TCP-favoured, like a LAN).
//! let reward = |s: StateIdx| {
//!     let x = space.state_value(s);
//!     1.0 - (x + 1.0) * (x + 1.0)
//! };
//! let mut s = space.nearest_state(0.0);
//! let mut a = learner.begin(s);
//! for _ in 0..200 {
//!     let s2 = space.transition(s, a);
//!     a = learner.step(reward(s2), s2);
//!     s = s2;
//! }
//! // The learner has settled on the TCP side of the space.
//! assert!(space.state_value(s) < 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod policy;
pub mod sarsa;
pub mod space;
pub mod value;

pub use policy::{EpsilonGreedy, EpsilonGreedyConfig};
pub use sarsa::{ControlAlgo, DecisionProbe, DecisionRecord, Sarsa, SarsaConfig, TraceKind};
pub use space::{ActionIdx, RatioSpace, Space, StackSpace, StateIdx};
pub use value::{ActionValue, ApproxV, MatrixQ, ModelV};

/// Common imports for learner users.
pub mod prelude {
    pub use crate::policy::{EpsilonGreedy, EpsilonGreedyConfig};
    pub use crate::sarsa::{ControlAlgo, DecisionProbe, DecisionRecord, Sarsa, SarsaConfig, TraceKind};
    pub use crate::space::{ActionIdx, RatioSpace, Space, StackSpace, StateIdx};
    pub use crate::value::{ActionValue, ApproxV, MatrixQ, ModelV};
}
