//! ε-greedy action selection with linear decay.
//!
//! The paper starts with a relatively high ε and decays it linearly per
//! time step towards a minimum ("similar to the approach of simulated
//! annealing", §II-C), e.g. ε: 0.8 → 0.1 with Δε = 0.01 per step in
//! Figure 4.

use rand::Rng;

use crate::space::ActionIdx;

/// Configuration for [`EpsilonGreedy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsilonGreedyConfig {
    /// Initial exploration probability.
    pub epsilon_max: f64,
    /// Floor for the exploration probability.
    pub epsilon_min: f64,
    /// Linear decay applied after every decision.
    pub epsilon_decay: f64,
}

impl Default for EpsilonGreedyConfig {
    /// The paper's Figure 4 parameters: ε 0.8 → 0.1, Δε = 0.01.
    fn default() -> Self {
        EpsilonGreedyConfig {
            epsilon_max: 0.8,
            epsilon_min: 0.1,
            epsilon_decay: 0.01,
        }
    }
}

/// ε-greedy policy over a slice of (possibly uninitialised) action values.
#[derive(Debug, Clone)]
pub struct EpsilonGreedy<R: Rng> {
    cfg: EpsilonGreedyConfig,
    epsilon: f64,
    rng: R,
}

impl<R: Rng> EpsilonGreedy<R> {
    /// Creates the policy with ε starting at `cfg.epsilon_max`.
    pub fn new(cfg: EpsilonGreedyConfig, rng: R) -> Self {
        EpsilonGreedy {
            epsilon: cfg.epsilon_max,
            cfg,
            rng,
        }
    }

    /// Current exploration probability.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Picks an action: with probability ε a uniformly random one;
    /// otherwise the greedy argmax over the known values. If the greedy
    /// choice is uninitialised (no value known at all), the decision is
    /// random — the paper's rule for unexplored entries.
    ///
    /// Decays ε after the decision.
    ///
    /// # Panics
    ///
    /// Panics if `q_values` is empty.
    pub fn select(&mut self, q_values: &[Option<f64>]) -> ActionIdx {
        assert!(!q_values.is_empty(), "no actions to select from");
        let explore = self.rng.gen::<f64>() < self.epsilon;
        let choice = if explore {
            ActionIdx(self.rng.gen_range(0..q_values.len()))
        } else {
            let best = q_values
                .iter()
                .enumerate()
                .filter_map(|(i, v)| v.map(|x| (i, x)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN action value"));
            match best {
                Some((i, _)) => ActionIdx(i),
                None => ActionIdx(self.rng.gen_range(0..q_values.len())),
            }
        };
        self.epsilon = (self.epsilon - self.cfg.epsilon_decay).max(self.cfg.epsilon_min);
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn policy(cfg: EpsilonGreedyConfig) -> EpsilonGreedy<ChaCha12Rng> {
        EpsilonGreedy::new(cfg, ChaCha12Rng::seed_from_u64(7))
    }

    #[test]
    fn greedy_when_epsilon_zero() {
        let mut p = policy(EpsilonGreedyConfig {
            epsilon_max: 0.0,
            epsilon_min: 0.0,
            epsilon_decay: 0.0,
        });
        let q = vec![Some(0.1), Some(0.9), Some(0.5)];
        for _ in 0..20 {
            assert_eq!(p.select(&q), ActionIdx(1));
        }
    }

    #[test]
    fn random_when_uninitialised() {
        let mut p = policy(EpsilonGreedyConfig {
            epsilon_max: 0.0,
            epsilon_min: 0.0,
            epsilon_decay: 0.0,
        });
        let q = vec![None, None, None, None];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(p.select(&q).0);
        }
        assert!(seen.len() > 1, "uninitialised values must give random picks");
    }

    #[test]
    fn epsilon_decays_to_minimum() {
        let mut p = policy(EpsilonGreedyConfig {
            epsilon_max: 0.5,
            epsilon_min: 0.1,
            epsilon_decay: 0.1,
        });
        let q = vec![Some(1.0)];
        for _ in 0..10 {
            let _ = p.select(&q);
        }
        assert!((p.epsilon() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn explores_at_high_epsilon() {
        let mut p = policy(EpsilonGreedyConfig {
            epsilon_max: 1.0,
            epsilon_min: 1.0,
            epsilon_decay: 0.0,
        });
        let q = vec![Some(100.0), Some(0.0), Some(0.0), Some(0.0)];
        let mut non_greedy = 0;
        for _ in 0..200 {
            if p.select(&q) != ActionIdx(0) {
                non_greedy += 1;
            }
        }
        assert!(non_greedy > 100, "always-explore must pick non-greedy often");
    }
}
