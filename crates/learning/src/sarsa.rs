//! On-policy Sarsa(λ) control (Sutton & Barto; the paper's Figure 3).
//!
//! The learner maintains an eligibility trace `e(s, a)` that decays by
//! `γλ` each step; TD errors are applied to every eligible state-action
//! pair. The paper uses the *replacing* trace ("to avoid heavily visited
//! state-action pairs having unreasonably high eligibility") and, per
//! Figure 3 lines 9–11, clears the traces of sibling actions of the taken
//! state.

use rand::Rng;

use crate::policy::{EpsilonGreedy, EpsilonGreedyConfig};
use crate::space::{ActionIdx, RatioSpace, Space, StateIdx};
use crate::value::ActionValue;

/// Trace accumulation style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceKind {
    /// `e(s, a) ← 1` on visit (the paper's choice).
    #[default]
    Replacing,
    /// `e(s, a) ← e(s, a) + 1` on visit (classic accumulating trace).
    Accumulating,
}

/// Which TD control algorithm drives the updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControlAlgo {
    /// On-policy Sarsa(λ): bootstrap from the action actually taken
    /// (the paper's algorithm, Figure 3).
    #[default]
    Sarsa,
    /// Off-policy Watkins Q(λ): bootstrap from the greedy action; traces
    /// are cut after exploratory actions. An extension beyond the paper,
    /// compared in the `ablation_learners` bench.
    WatkinsQ,
}

/// Sarsa(λ) hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SarsaConfig {
    /// Step size α for value updates.
    pub alpha: f64,
    /// Discount factor γ.
    pub gamma: f64,
    /// Eligibility decay λ.
    pub lambda: f64,
    /// Trace style.
    pub trace: TraceKind,
    /// Control algorithm.
    pub algo: ControlAlgo,
    /// Exploration schedule.
    pub exploration: EpsilonGreedyConfig,
}

impl Default for SarsaConfig {
    /// The paper's parameters: α = 0.5, γ = 0.5, λ = 0.85,
    /// ε: 0.8 → 0.1 with Δε = 0.01.
    fn default() -> Self {
        SarsaConfig {
            alpha: 0.5,
            gamma: 0.5,
            lambda: 0.85,
            trace: TraceKind::Replacing,
            algo: ControlAlgo::Sarsa,
            exploration: EpsilonGreedyConfig::default(),
        }
    }
}

/// One decision the learner took, as reported to an observer installed
/// with [`Sarsa::set_probe`]. The crate stays dependency-free: richer
/// telemetry backends wrap the probe callback rather than this crate
/// depending on them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRecord {
    /// Zero-based step index (the value of [`Sarsa::steps`] when the
    /// decision was made).
    pub step: u64,
    /// The state the environment transitioned into.
    pub state: usize,
    /// The action chosen for that state.
    pub action: usize,
    /// The reward observed for the previous action.
    pub reward: f64,
    /// Exploration probability in effect when the action was chosen.
    pub epsilon: f64,
    /// Whether the chosen action was the greedy one (`false` both for
    /// exploratory picks and when every action value is uninitialised).
    pub greedy: bool,
}

/// Observer invoked once per [`Sarsa::step`] with the decision taken.
pub type DecisionProbe = Box<dyn FnMut(DecisionRecord) + Send>;

/// The Sarsa(λ) learner, generic over the value-function backend and the
/// state/action space (the paper's [`RatioSpace`] by default; see
/// [`crate::space::StackSpace`] for the transports × controllers variant).
pub struct Sarsa<V: ActionValue, R: Rng, S: Space = RatioSpace> {
    space: S,
    cfg: SarsaConfig,
    value: V,
    policy: EpsilonGreedy<R>,
    traces: Vec<f64>,
    last: Option<(StateIdx, ActionIdx)>,
    steps: u64,
    probe: Option<DecisionProbe>,
}

impl<V: ActionValue, R: Rng, S: Space> std::fmt::Debug for Sarsa<V, R, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sarsa")
            .field("backend", &self.value.name())
            .field("steps", &self.steps)
            .field("epsilon", &self.policy.epsilon())
            .finish()
    }
}

impl<V: ActionValue, R: Rng, S: Space> Sarsa<V, R, S> {
    /// Creates a learner over `space` with backend `value`.
    pub fn new(space: S, cfg: SarsaConfig, value: V, rng: R) -> Self {
        let traces = vec![0.0; space.num_states() * space.num_actions()];
        Sarsa {
            space,
            policy: EpsilonGreedy::new(cfg.exploration, rng),
            cfg,
            value,
            traces,
            last: None,
            steps: 0,
            probe: None,
        }
    }

    /// Installs (or removes) a decision observer. The probe fires once per
    /// [`Sarsa::step`], after action selection and before the value update;
    /// it never influences the learning trajectory.
    pub fn set_probe(&mut self, probe: Option<DecisionProbe>) {
        self.probe = probe;
    }

    fn trace_idx(&self, s: StateIdx, a: ActionIdx) -> usize {
        s.0 * self.space.num_actions() + a.0
    }

    fn q_row(&self, s: StateIdx) -> Vec<Option<f64>> {
        self.space.actions().map(|a| self.value.q(s, a)).collect()
    }

    /// Starts (or restarts) an episode at state `s0`, returning the first
    /// action to take.
    pub fn begin(&mut self, s0: StateIdx) -> ActionIdx {
        self.traces.iter_mut().for_each(|e| *e = 0.0);
        let a0 = self.policy.select(&self.q_row(s0));
        self.last = Some((s0, a0));
        a0
    }

    /// One Sarsa(λ) step: the previously returned action was taken, reward
    /// `r` was observed, and the environment is now in `s_next`. Returns
    /// the next action to take.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Sarsa::begin`].
    pub fn step(&mut self, reward: f64, s_next: StateIdx) -> ActionIdx {
        let (s, a) = self.last.expect("step() before begin()");
        let a_next = self.policy.select(&self.q_row(s_next));

        let greedy_next = self.greedy_action(s_next);
        if let Some(probe) = self.probe.as_mut() {
            probe(DecisionRecord {
                step: self.steps,
                state: s_next.0,
                action: a_next.0,
                reward,
                epsilon: self.policy.epsilon(),
                greedy: greedy_next == Some(a_next),
            });
        }
        let bootstrap_action = match self.cfg.algo {
            ControlAlgo::Sarsa => a_next,
            ControlAlgo::WatkinsQ => greedy_next.unwrap_or(a_next),
        };
        let q_next = self.value.q(s_next, bootstrap_action).unwrap_or(0.0);
        let target = reward + self.cfg.gamma * q_next;
        // First visit adopts the full sample: a single bootstrapped
        // alpha-step from zero would make rarely-visited good states look
        // worse than frequently-visited mediocre ones (whose values pump
        // towards r/(1-gamma)) and strand the policy.
        if self.value.q(s, a).is_none() {
            self.value.update(s, a, target);
        }
        let q_sa = self.value.q(s, a).unwrap_or(0.0);
        let delta = target - q_sa;

        // Visit (s, a): replacing or accumulating; clear sibling actions
        // (Figure 3, lines 8-11).
        let i = self.trace_idx(s, a);
        match self.cfg.trace {
            TraceKind::Replacing => self.traces[i] = 1.0,
            TraceKind::Accumulating => self.traces[i] += 1.0,
        }
        for other in self.space.actions() {
            if other != a {
                let j = self.trace_idx(s, other);
                self.traces[j] = 0.0;
            }
        }

        // Apply the TD error to all eligible pairs, then decay.
        let decay = self.cfg.gamma * self.cfg.lambda;
        for st in self.space.states() {
            for ac in self.space.actions() {
                let j = self.trace_idx(st, ac);
                let e = self.traces[j];
                if e != 0.0 {
                    self.value.update(st, ac, self.cfg.alpha * delta * e);
                    self.traces[j] = e * decay;
                }
            }
        }

        // Watkins: an exploratory (non-greedy) next action invalidates the
        // eligibility of the past trajectory.
        if self.cfg.algo == ControlAlgo::WatkinsQ
            && greedy_next.is_some_and(|g| g != a_next)
        {
            self.traces.iter_mut().for_each(|e| *e = 0.0);
        }

        self.last = Some((s_next, a_next));
        self.steps += 1;
        a_next
    }

    /// Steps taken since creation.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Read-only view of the eligibility traces, laid out
    /// `state * num_actions + action` (diagnostics and property tests).
    #[must_use]
    pub fn trace_values(&self) -> &[f64] {
        &self.traces
    }

    /// Current exploration probability.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.policy.epsilon()
    }

    /// The value-function backend (diagnostics).
    #[must_use]
    pub fn value(&self) -> &V {
        &self.value
    }

    /// The state/action space.
    #[must_use]
    pub fn space(&self) -> S {
        self.space
    }

    /// The greedy action at `s` (ignoring exploration); `None` if every
    /// action value is uninitialised.
    #[must_use]
    pub fn greedy_action(&self, s: StateIdx) -> Option<ActionIdx> {
        self.q_row(s)
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|x| (i, x)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN"))
            .map(|(i, _)| ActionIdx(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ApproxV, MatrixQ, ModelV};
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    /// A deterministic quadratic reward over the ratio space, peaking at
    /// `peak` — the paper's assumed reward shape.
    fn reward_at(space: RatioSpace, s: StateIdx, peak: f64) -> f64 {
        let x = space.state_value(s);
        1.0 - (x - peak) * (x - peak)
    }

    /// Runs an episodic control loop; returns the mean state value over the
    /// final quarter of steps (the converged operating point).
    fn run_control_seeded<V: ActionValue>(
        value: V,
        peak: f64,
        steps: usize,
        cfg: SarsaConfig,
        seed: u64,
    ) -> f64 {
        let space = RatioSpace::default();
        let mut learner = Sarsa::new(space, cfg, value, ChaCha12Rng::seed_from_u64(seed));
        let mut s = space.nearest_state(0.0);
        let mut a = learner.begin(s);
        let mut tail = Vec::new();
        for i in 0..steps {
            let s_next = space.transition(s, a);
            let r = reward_at(space, s_next, peak);
            a = learner.step(r, s_next);
            s = s_next;
            if i >= steps * 3 / 4 {
                tail.push(space.state_value(s));
            }
        }
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    #[test]
    fn model_v_converges_to_peak() {
        let space = RatioSpace::default();
        let cfg = SarsaConfig::default();
        let final_pos = run_control_seeded(ModelV::new(space), -0.8, 400, cfg, 3);
        assert!(
            final_pos < -0.4,
            "model-based learner should settle near the -0.8 peak, got {final_pos}"
        );
    }

    #[test]
    fn approx_v_converges_faster_than_matrix() {
        let space = RatioSpace::default();
        let cfg = SarsaConfig::default();
        // Short horizon, averaged over seeds: the approximated backend
        // should be at the +1 peak while the dense matrix still wanders
        // (the paper's Figure 4 vs Figure 6 contrast).
        let seeds = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let mean = |mk: &dyn Fn() -> Box<dyn FnOnce(u64) -> f64>| -> f64 {
            seeds.iter().map(|&sd| (mk())(sd)).sum::<f64>() / seeds.len() as f64
        };
        let approx_mean = mean(&|| {
            Box::new(move |sd| run_control_seeded(ApproxV::new(space), 1.0, 120, cfg, sd))
        });
        let matrix_mean = mean(&|| {
            Box::new(move |sd| run_control_seeded(MatrixQ::new(space), 1.0, 120, cfg, sd))
        });
        assert!(
            approx_mean > 0.5,
            "approximated V should reach the +1 peak quickly, got {approx_mean}"
        );
        assert!(
            approx_mean >= matrix_mean,
            "approx ({approx_mean}) should not trail matrix ({matrix_mean}) on average"
        );
    }

    #[test]
    fn matrix_q_leaves_entries_unexplored_on_short_runs() {
        let space = RatioSpace::default();
        let mut learner = Sarsa::new(
            space,
            SarsaConfig::default(),
            MatrixQ::new(space),
            ChaCha12Rng::seed_from_u64(5),
        );
        let mut s = space.nearest_state(0.0);
        let mut a = learner.begin(s);
        for _ in 0..60 {
            let s_next = space.transition(s, a);
            a = learner.step(reward_at(space, s_next, -1.0), s_next);
            s = s_next;
        }
        // 55 entries cannot all be visited in 60 steps along one trajectory.
        let filled = learner.value().initialized_entries();
        assert!(
            filled < 55,
            "60 steps cannot explore the whole 11x5 matrix, filled={filled}"
        );
    }

    #[test]
    fn traces_decay_and_propagate() {
        let space = RatioSpace::default();
        let mut learner = Sarsa::new(
            space,
            SarsaConfig {
                exploration: EpsilonGreedyConfig {
                    epsilon_max: 0.0,
                    epsilon_min: 0.0,
                    epsilon_decay: 0.0,
                },
                ..SarsaConfig::default()
            },
            ModelV::new(space),
            ChaCha12Rng::seed_from_u64(5),
        );
        let s0 = space.nearest_state(0.0);
        let mut a = learner.begin(s0);
        let mut s = s0;
        for _ in 0..3 {
            let s_next = space.transition(s, a);
            a = learner.step(1.0, s_next);
            s = s_next;
        }
        // A reward must have propagated into earlier states through the
        // eligibility trace: state s0's neighbourhood has learned values.
        let known: usize = learner
            .value()
            .values()
            .iter()
            .filter(|v| v.is_some())
            .count();
        assert!(known >= 2, "trace should update multiple states, got {known}");
    }

    #[test]
    fn accumulating_trace_differs_from_replacing() {
        let space = RatioSpace::default();
        let mk = |kind| SarsaConfig {
            trace: kind,
            exploration: EpsilonGreedyConfig {
                epsilon_max: 0.0,
                epsilon_min: 0.0,
                epsilon_decay: 0.0,
            },
            ..SarsaConfig::default()
        };
        // Hammer the same state-action repeatedly. Pre-initialising V(0)
        // makes the greedy choice deterministic, so with epsilon = 0 the
        // same action repeats and the accumulating trace can build up.
        let run = |cfg: SarsaConfig| {
            let mut backend = ModelV::new(space);
            backend.update(StateIdx(0), space.noop_action(), 0.0);
            let mut l = Sarsa::new(space, cfg, backend, ChaCha12Rng::seed_from_u64(9));
            let s = StateIdx(0);
            let _ = l.begin(s);
            for _ in 0..5 {
                let _ = l.step(1.0, s);
            }
            l.value().values()[0].unwrap_or(0.0)
        };
        let repl = run(mk(TraceKind::Replacing));
        let acc = run(mk(TraceKind::Accumulating));
        assert!(
            acc > repl,
            "accumulating trace over-rewards hot pairs (acc={acc}, repl={repl})"
        );
    }

    #[test]
    fn greedy_action_none_when_unexplored() {
        let space = RatioSpace::default();
        let learner = Sarsa::new(
            space,
            SarsaConfig::default(),
            MatrixQ::new(space),
            ChaCha12Rng::seed_from_u64(1),
        );
        assert_eq!(learner.greedy_action(StateIdx(5)), None);
    }

    #[test]
    fn watkins_also_converges_to_peak() {
        let space = RatioSpace::default();
        let cfg = SarsaConfig {
            algo: ControlAlgo::WatkinsQ,
            ..SarsaConfig::default()
        };
        let final_pos = run_control_seeded(ModelV::new(space), -0.8, 400, cfg, 3);
        assert!(
            final_pos < -0.3,
            "Watkins Q(lambda) should also find the -0.8 peak, got {final_pos}"
        );
    }

    #[test]
    fn watkins_cuts_traces_on_exploration() {
        let space = RatioSpace::default();
        // Always explore: every step is non-greedy once values exist, so
        // traces must stay cut and only the visited pair updates.
        let cfg = SarsaConfig {
            algo: ControlAlgo::WatkinsQ,
            exploration: EpsilonGreedyConfig {
                epsilon_max: 1.0,
                epsilon_min: 1.0,
                epsilon_decay: 0.0,
            },
            ..SarsaConfig::default()
        };
        let mut l = Sarsa::new(space, cfg, ModelV::new(space), ChaCha12Rng::seed_from_u64(4));
        let mut s = space.nearest_state(0.0);
        let mut a = l.begin(s);
        for _ in 0..30 {
            let s2 = space.transition(s, a);
            a = l.step(1.0, s2);
            s = s2;
        }
        // No assertion beyond termination + sane values: the trace-cut path
        // must not corrupt the value function.
        for st in space.states() {
            for ac in space.actions() {
                if let Some(v) = l.value().q(st, ac) {
                    assert!(v.is_finite());
                }
            }
        }
    }

    #[test]
    fn probe_sees_every_decision() {
        use std::sync::{Arc, Mutex};
        let space = RatioSpace::default();
        let mut learner = Sarsa::new(
            space,
            SarsaConfig::default(),
            ModelV::new(space),
            ChaCha12Rng::seed_from_u64(11),
        );
        let seen: Arc<Mutex<Vec<DecisionRecord>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        learner.set_probe(Some(Box::new(move |d| sink.lock().unwrap().push(d))));
        let mut s = space.nearest_state(0.0);
        let mut a = learner.begin(s);
        for _ in 0..5 {
            let s_next = space.transition(s, a);
            a = learner.step(0.25, s_next);
            s = s_next;
        }
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 5);
        for (i, d) in seen.iter().enumerate() {
            assert_eq!(d.step, i as u64);
            assert_eq!(d.reward, 0.25);
            assert!(d.state < space.num_states());
            assert!(d.action < space.num_actions());
            assert!((0.0..=1.0).contains(&d.epsilon));
        }
    }

    #[test]
    fn stack_space_learner_finds_the_best_controller() {
        use crate::space::StackSpace;
        // Reward peaks at ratio -1 *and* depends on the controller variant:
        // variant 2 (say, BBR on a lossy WAN) earns a flat bonus. The
        // learner must settle both axes.
        let space = StackSpace::default();
        let reward = |s: StateIdx| {
            let (rs, v) = space.split_state(s);
            let x = space.ratio_space().state_value(rs);
            let bonus = if v == 2 { 0.5 } else { 0.0 };
            1.0 - (x + 1.0) * (x + 1.0) + bonus
        };
        let mut tally = 0usize;
        let seeds = [1u64, 2, 3, 4, 5, 6];
        for &seed in &seeds {
            let mut learner = Sarsa::new(
                space,
                SarsaConfig::default(),
                ModelV::new(space),
                ChaCha12Rng::seed_from_u64(seed),
            );
            let mut s = space.nearest_state(0.0, 0);
            let mut a = learner.begin(s);
            let mut variant_hits = 0usize;
            let steps = 600;
            for i in 0..steps {
                let s_next = space.transition(s, a);
                a = learner.step(reward(s_next), s_next);
                s = s_next;
                if i >= steps * 3 / 4 && space.split_state(s).1 == 2 {
                    variant_hits += 1;
                }
            }
            if variant_hits * 2 > steps / 4 {
                tally += 1;
            }
        }
        assert!(
            tally >= 4,
            "learner should prefer the bonus controller on most seeds, got {tally}/6"
        );
    }

    #[test]
    #[should_panic(expected = "before begin")]
    fn step_requires_begin() {
        let space = RatioSpace::default();
        let mut learner = Sarsa::new(
            space,
            SarsaConfig::default(),
            MatrixQ::new(space),
            ChaCha12Rng::seed_from_u64(1),
        );
        let _ = learner.step(0.0, StateIdx(0));
    }
}
