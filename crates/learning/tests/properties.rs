//! Property tests for the learning crate: invariants of the replacing
//! eligibility trace, the ε-greedy decay schedule, and the α = 0 step-size
//! degeneracy of Sarsa(λ). Each property holds for *every* sampled
//! configuration, not just the paper's defaults; cases are drawn by the
//! deterministic [`PropRunner`], so any failure names the seeded stream
//! that replays it.

use kmsg_learning::policy::{EpsilonGreedy, EpsilonGreedyConfig};
use kmsg_learning::sarsa::{Sarsa, SarsaConfig, TraceKind};
use kmsg_learning::space::RatioSpace;
use kmsg_learning::value::{ActionValue, MatrixQ, ModelV};
use kmsg_netsim::testutil::PropRunner;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Drives `steps` Sarsa(λ) control steps through the ratio space with a
/// deterministic quadratic reward, calling `inspect` after every step.
fn drive<V: ActionValue>(
    mut learner: Sarsa<V, ChaCha12Rng>,
    steps: usize,
    mut inspect: impl FnMut(&Sarsa<V, ChaCha12Rng>),
) {
    let space = learner.space();
    let mut s = space.nearest_state(0.0);
    let mut a = learner.begin(s);
    for _ in 0..steps {
        let s_next = space.transition(s, a);
        let x = space.state_value(s_next);
        a = learner.step(1.0 - x * x, s_next);
        s = s_next;
        inspect(&learner);
    }
}

/// Replacing traces are set to exactly 1 on visit and only ever decay by
/// γλ ∈ [0, 1] afterwards, so every entry stays within [0, 1] at every
/// step, for any (γ, λ) in the unit square.
#[test]
fn replacing_traces_stay_within_unit_interval() {
    PropRunner::new("sarsa-replacing-trace-unit-interval")
        .cases(64)
        .run(
            |rng| {
                (
                    rng.gen_range(0u64..1_000),
                    rng.gen_range(0.0f64..=1.0),
                    rng.gen_range(0.0f64..=1.0),
                    rng.gen_range(1usize..80),
                )
            },
            |&(seed, gamma, lambda, steps)| {
                let space = RatioSpace::default();
                let cfg = SarsaConfig {
                    gamma,
                    lambda,
                    trace: TraceKind::Replacing,
                    ..SarsaConfig::default()
                };
                let learner = Sarsa::new(
                    space,
                    cfg,
                    ModelV::new(space),
                    ChaCha12Rng::seed_from_u64(seed),
                );
                drive(learner, steps, |l| {
                    for (i, &e) in l.trace_values().iter().enumerate() {
                        assert!(
                            (0.0..=1.0).contains(&e),
                            "replacing trace escaped [0, 1]: e[{i}] = {e} \
                             (gamma={gamma}, lambda={lambda})"
                        );
                    }
                });
            },
        );
}

/// The linear ε decay clamps at `epsilon_min`: for any schedule with a
/// non-negative floor, ε never undershoots the floor and never goes
/// negative, no matter how many decisions are taken or how large the
/// per-step decay is.
#[test]
fn epsilon_decay_never_negative_and_respects_floor() {
    PropRunner::new("epsilon-greedy-decay-floor").cases(64).run(
        |rng| {
            (
                rng.gen_range(0u64..1_000),
                rng.gen_range(0.0f64..=1.0),
                rng.gen_range(0.0f64..=1.0),
                rng.gen_range(0.0f64..=0.5),
                rng.gen_range(1usize..200),
            )
        },
        |&(seed, lo, hi, decay, decisions)| {
            let (epsilon_min, epsilon_max) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            let cfg = EpsilonGreedyConfig {
                epsilon_max,
                epsilon_min,
                epsilon_decay: decay,
            };
            let mut policy = EpsilonGreedy::new(cfg, ChaCha12Rng::seed_from_u64(seed));
            let q = vec![Some(1.0), Some(0.0), None];
            for _ in 0..decisions {
                let _ = policy.select(&q);
                assert!(
                    policy.epsilon() >= 0.0,
                    "epsilon went negative: {}",
                    policy.epsilon()
                );
                assert!(
                    policy.epsilon() >= epsilon_min - 1e-12,
                    "epsilon {} undershot the floor {epsilon_min}",
                    policy.epsilon()
                );
                assert!(policy.epsilon() <= epsilon_max + 1e-12);
            }
        },
    );
}

/// With every (s, a) entry pre-initialised (so the first-visit adoption
/// path never fires), a step size of α = 0 makes the Sarsa(λ) update a
/// no-op: the value table is bit-identical before and after any number of
/// control steps.
#[test]
fn alpha_zero_never_changes_initialised_values() {
    PropRunner::new("sarsa-alpha-zero-is-noop").cases(64).run(
        |rng| {
            (
                rng.gen_range(0u64..1_000),
                rng.gen_range(0.0f64..=1.0),
                rng.gen_range(0.0f64..=1.0),
                rng.gen_range(1usize..60),
            )
        },
        |&(seed, gamma, lambda, steps)| {
            let space = RatioSpace::default();
            let mut backend = MatrixQ::new(space);
            let mut init_rng = ChaCha12Rng::seed_from_u64(seed ^ 0x9e37_79b9);
            for s in space.states() {
                for a in space.actions() {
                    backend.update(s, a, init_rng.gen_range(-2.0..2.0));
                }
            }
            let before: Vec<Option<f64>> = space
                .states()
                .flat_map(|s| space.actions().map(move |a| (s, a)))
                .map(|(s, a)| backend.q(s, a))
                .collect();
            let cfg = SarsaConfig {
                alpha: 0.0,
                gamma,
                lambda,
                ..SarsaConfig::default()
            };
            let mut learner =
                Sarsa::new(space, cfg, backend, ChaCha12Rng::seed_from_u64(seed));
            let mut s = space.nearest_state(0.0);
            let mut a = learner.begin(s);
            for _ in 0..steps {
                let s_next = space.transition(s, a);
                a = learner.step(1.0, s_next);
                s = s_next;
            }
            let after: Vec<Option<f64>> = space
                .states()
                .flat_map(|s| space.actions().map(move |a| (s, a)))
                .map(|(s, a)| learner.value().q(s, a))
                .collect();
            assert_eq!(
                before, after,
                "alpha = 0 must leave the value table untouched"
            );
        },
    );
}
