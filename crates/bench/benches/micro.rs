//! Criterion micro-benchmarks for the building blocks: pattern
//! generation and selection, Sarsa(λ) steps, the compression codec, wire
//! framing, the discrete-event engine, and component messaging.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use kmsg_core::data::{
    build_pattern, PatternKind, PatternSelection, ProtocolSelectionPolicy, RandomSelection, Ratio,
};
use kmsg_learning::prelude::*;
use kmsg_netsim::engine::Sim;
use kmsg_netsim::rng::SeedSource;
use rand::SeedableRng;

fn bench_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("psp");
    let ratio = Ratio::from_prob_udt(0.37);
    group.bench_function("build_pattern_minimal_rest", |b| {
        let f = ratio.fraction(100);
        b.iter(|| build_pattern(black_box(&f), PatternKind::MinimalRest));
    });
    group.bench_function("pattern_select", |b| {
        let mut psp = PatternSelection::new(ratio, PatternKind::MinimalRest, 100);
        b.iter(|| black_box(psp.select()));
    });
    group.bench_function("random_select", |b| {
        let mut psp = RandomSelection::new(ratio, SeedSource::new(1).stream("bench"));
        b.iter(|| black_box(psp.select()));
    });
    group.finish();
}

fn bench_sarsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("sarsa");
    let space = RatioSpace::default();
    for (name, backend) in [
        ("matrix", 0usize),
        ("model_v", 1),
        ("approx_v", 2),
    ] {
        group.bench_function(format!("step_{name}"), |b| {
            let value: Box<dyn ActionValue> = match backend {
                0 => Box::new(MatrixQ::new(space)),
                1 => Box::new(ModelV::new(space)),
                _ => Box::new(ApproxV::new(space)),
            };
            let mut learner = Sarsa::new(
                space,
                SarsaConfig::default(),
                value,
                rand_chacha::ChaCha12Rng::seed_from_u64(1),
            );
            let mut s = space.nearest_state(0.0);
            let mut a = learner.begin(s);
            b.iter(|| {
                let s2 = space.transition(s, a);
                a = learner.step(black_box(1.0), s2);
                s = s2;
            });
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let climate = kmsg_apps::Dataset::climate(65_000, 1).chunk(0, 65_000);
    let random = kmsg_apps::Dataset::random(65_000, 1).chunk(0, 65_000);
    group.throughput(Throughput::Bytes(65_000));
    group.bench_function("compress_climate_65k", |b| {
        b.iter(|| kmsg_core::codec::compress(black_box(&climate)));
    });
    group.bench_function("compress_random_65k", |b| {
        b.iter(|| kmsg_core::codec::compress(black_box(&random)));
    });
    let compressed = kmsg_core::codec::compress(&climate);
    group.bench_function("decompress_climate_65k", |b| {
        b.iter(|| kmsg_core::codec::decompress(black_box(&compressed), 65_000).expect("ok"));
    });
    group.finish();
}

fn bench_framing(c: &mut Criterion) {
    use kmsg_core::net::frame::{decode_frame_body, encode_frame, Compression, FrameDecoder};
    use kmsg_core::prelude::*;

    let sim = Sim::new(1);
    let net = kmsg_netsim::network::Network::new(&sim);
    let a = net.add_node("a");
    let b = net.add_node("b");
    let msg = NetMessage::new(
        NetAddress::new(a, 1),
        NetAddress::new(b, 2),
        Transport::Tcp,
        kmsg_apps::Dataset::random(65_000, 1).chunk(0, 65_000),
    );
    let mut group = c.benchmark_group("frame");
    group.throughput(Throughput::Bytes(65_000));
    group.bench_function("encode_65k_uncompressed", |bch| {
        bch.iter(|| encode_frame(black_box(&msg), Compression::Off).expect("ok"));
    });
    let frame = encode_frame(&msg, Compression::Off).expect("ok");
    group.bench_function("decode_65k", |bch| {
        bch.iter(|| {
            let mut dec = FrameDecoder::new();
            dec.feed(black_box(&frame));
            let body = dec.next_frame().expect("ok").expect("frame");
            decode_frame_body(body).expect("ok")
        });
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.bench_function("schedule_and_run_1k_events", |b| {
        b.iter(|| {
            let sim = Sim::new(1);
            for i in 0..1000u64 {
                sim.schedule_at(
                    kmsg_netsim::time::SimTime::from_nanos(i),
                    |_| {},
                );
            }
            sim.run_to_completion()
        });
    });
    group.finish();
}

fn bench_component_messaging(c: &mut Criterion) {
    use kmsg_component::prelude::*;

    #[derive(Debug, Clone)]
    struct Tick(u64);
    struct TickPort;
    impl Port for TickPort {
        type Request = Tick;
        type Indication = Tick;
    }
    #[derive(Default)]
    struct Echo {
        port: ProvidedPort<TickPort>,
        seen: u64,
    }
    impl ComponentDefinition for Echo {
        fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
            kmsg_component::execute_ports!(self, ctx, max, [provided port: TickPort])
        }
    }
    impl Provide<TickPort> for Echo {
        fn handle(&mut self, _ctx: &mut ComponentContext, ev: Tick) {
            self.seen += 1;
            self.port.trigger(ev);
        }
    }
    impl ProvideRef<TickPort> for Echo {
        fn provided_port(&mut self) -> &mut ProvidedPort<TickPort> {
            &mut self.port
        }
    }
    #[derive(Default)]
    struct Sink {
        port: RequiredPort<TickPort>,
        seen: u64,
    }
    impl ComponentDefinition for Sink {
        fn execute(&mut self, ctx: &mut ComponentContext, max: usize) -> usize {
            kmsg_component::execute_ports!(self, ctx, max, [required port: TickPort])
        }
    }
    impl Require<TickPort> for Sink {
        fn handle(&mut self, _ctx: &mut ComponentContext, ev: Tick) {
            self.seen = ev.0;
        }
    }
    impl RequireRef<TickPort> for Sink {
        fn required_port(&mut self) -> &mut RequiredPort<TickPort> {
            &mut self.port
        }
    }

    let mut group = c.benchmark_group("component");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("round_trip_1k_events", |b| {
        b.iter(|| {
            let sim = Sim::new(1);
            let system = ComponentSystem::simulation(&sim, SystemConfig::default());
            let echo = system.create(Echo::default);
            let sink = system.create(Sink::default);
            system.connect::<TickPort, _, _>(&echo, &sink);
            system.start(&echo);
            system.start(&sink);
            sink.on_definition(|s| {
                for i in 0..1000 {
                    s.port.trigger(Tick(i));
                }
            });
            sim.run_to_completion();
            sink.on_definition(|s| s.seen)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_patterns,
    bench_sarsa,
    bench_codec,
    bench_framing,
    bench_engine,
    bench_component_messaging
);
criterion_main!(benches);
