//! Criterion benchmark for the event engine rewrite: the timing-wheel
//! [`Sim`] against the heap-based [`ReferenceSim`] oracle on the two
//! workloads that dominate simulations — zero-delay events (the component
//! scheduler's now-lane fast path) and jitter-delayed events (packet
//! arrivals and timers spread across the wheel).
//!
//! Each measurement schedules and drains one million events, so the
//! reported throughput is end-to-end events/sec including scheduling cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::Rng;

use kmsg_netsim::engine::{EventTarget, Sim};
use kmsg_netsim::reference::ReferenceSim;
use kmsg_netsim::rng::SeedSource;
use kmsg_netsim::time::SimTime;

const EVENTS: u64 = 1_000_000;

/// Delays drawn once so every engine sees the identical jitter schedule:
/// microseconds to tens of milliseconds, the range packet events live in.
fn jitter_delays() -> Vec<u64> {
    let mut rng = SeedSource::new(42).stream("engine-bench-jitter");
    (0..EVENTS)
        .map(|_| rng.gen_range(1_000u64..=50_000_000))
        .collect()
}

struct CountTarget(AtomicU64);
impl EventTarget for CountTarget {
    fn fire(self: Arc<Self>, _sim: &Sim, _token: u64) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(EVENTS));

    group.bench_function("wheel/zero_delay", |b| {
        b.iter(|| {
            let sim = Sim::new(1);
            let hits = Arc::new(AtomicU64::new(0));
            for _ in 0..EVENTS {
                let h = hits.clone();
                sim.schedule_in(Duration::ZERO, move |_| {
                    h.fetch_add(1, Ordering::Relaxed);
                });
            }
            sim.run_until(SimTime::ZERO);
            assert_eq!(hits.load(Ordering::Relaxed), EVENTS);
        });
    });

    group.bench_function("heap/zero_delay", |b| {
        b.iter(|| {
            let sim = ReferenceSim::new();
            let hits = Arc::new(AtomicU64::new(0));
            for _ in 0..EVENTS {
                let h = hits.clone();
                sim.schedule_in(Duration::ZERO, move |_| {
                    h.fetch_add(1, Ordering::Relaxed);
                });
            }
            sim.run_until(SimTime::ZERO);
            assert_eq!(hits.load(Ordering::Relaxed), EVENTS);
        });
    });

    let delays = jitter_delays();

    group.bench_function("wheel/jittered", |b| {
        b.iter(|| {
            let sim = Sim::new(1);
            let hits = Arc::new(AtomicU64::new(0));
            for &d in &delays {
                let h = hits.clone();
                sim.schedule_at(SimTime::from_nanos(d), move |_| {
                    h.fetch_add(1, Ordering::Relaxed);
                });
            }
            sim.run_to_completion();
            assert_eq!(hits.load(Ordering::Relaxed), EVENTS);
        });
    });

    group.bench_function("heap/jittered", |b| {
        b.iter(|| {
            let sim = ReferenceSim::new();
            let hits = Arc::new(AtomicU64::new(0));
            for &d in &delays {
                let h = hits.clone();
                sim.schedule_at(SimTime::from_nanos(d), move |_| {
                    h.fetch_add(1, Ordering::Relaxed);
                });
            }
            sim.run_to_completion();
            assert_eq!(hits.load(Ordering::Relaxed), EVENTS);
        });
    });

    // The zero-alloc path the component scheduler actually uses: one shared
    // target, no per-event boxing. Wheel engine only — the reference engine
    // never had it.
    group.bench_function("wheel/zero_delay_targets", |b| {
        b.iter(|| {
            let sim = Sim::new(1);
            let target = Arc::new(CountTarget(AtomicU64::new(0)));
            for i in 0..EVENTS {
                sim.schedule_target_in(Duration::ZERO, target.clone(), i);
            }
            sim.run_until(SimTime::ZERO);
            assert_eq!(target.0.load(Ordering::Relaxed), EVENTS);
        });
    });

    group.finish();
}

/// Telemetry overhead guard: the same zero-delay closure workload with one
/// `Recorder::record` call per event, recorder disabled vs enabled. The
/// disabled case must track `engine_throughput/wheel/zero_delay` (within a
/// few percent) — a disabled recorder costs one relaxed load and a branch.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(EVENTS));

    let run = |enable: bool| {
        let sim = Sim::new(1);
        if enable {
            sim.recorder().enable();
        }
        let hits = Arc::new(AtomicU64::new(0));
        for i in 0..EVENTS {
            let h = hits.clone();
            sim.schedule_in(Duration::ZERO, move |sim: &Sim| {
                let n = h.fetch_add(1, Ordering::Relaxed);
                sim.recorder().record(
                    sim.now().as_nanos(),
                    kmsg_netsim::EventKind::Mark { id: i, value: n },
                );
            });
        }
        sim.run_until(SimTime::ZERO);
        assert_eq!(hits.load(Ordering::Relaxed), EVENTS);
    };

    group.bench_function("recorder_disabled", |b| b.iter(|| run(false)));
    group.bench_function("recorder_enabled", |b| b.iter(|| run(true)));

    group.finish();
}

criterion_group!(benches, bench_engine_throughput, bench_telemetry_overhead);
criterion_main!(benches);
