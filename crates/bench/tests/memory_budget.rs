//! Per-flow memory regression guard.
//!
//! The slab/handle flow representation (DESIGN.md §12) cut the heap cost
//! of an established-but-idle TCP flow from ~6.2 KB to ~3.4 KB. This test
//! re-measures that cost with a counting allocator on a 1000-flow star
//! fan-in world and fails if it creeps back over budget. The budget
//! (4300 B) sits ~30% above the measured value and — deliberately — just
//! under 70% of the pre-slab baseline (6169.4 B, EXPERIMENTS.md
//! "Scaling"), so any regression that erases the PR's ≥30% reduction
//! claim fails here before it reaches a benchmark run.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use kmsg_apps::{star_fanin, CONVERGE_PORT};
use kmsg_netsim::engine::Sim;
use kmsg_netsim::iface::{Connection, StreamAccept, StreamEvents};
use kmsg_netsim::network::Network;
use kmsg_netsim::packet::Endpoint;
use kmsg_netsim::tcp::{TcpConfig, TcpConn, TcpListener};

struct CountingAlloc;

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        LIVE_BYTES.fetch_add(l.size(), Ordering::Relaxed);
        System.alloc(l)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        LIVE_BYTES.fetch_sub(l.size(), Ordering::Relaxed);
        System.dealloc(p, l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new: usize) -> *mut u8 {
        LIVE_BYTES.fetch_add(new, Ordering::Relaxed);
        LIVE_BYTES.fetch_sub(l.size(), Ordering::Relaxed);
        System.realloc(p, l, new)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// 70% of the pre-slab baseline is 4318.6 B; stay under it with margin
/// over the measured ~3448 B.
const BYTES_PER_FLOW_BUDGET: f64 = 4300.0;
const FLOWS: usize = 1000;

struct Quiet;
impl StreamEvents for Quiet {}

struct AcceptQuiet;
impl StreamAccept for AcceptQuiet {
    fn on_accept(&self, _conn: &Connection) -> Arc<dyn StreamEvents> {
        Arc::new(Quiet)
    }
}

#[test]
fn idle_flow_memory_stays_under_budget() {
    let sim = Sim::new(42);
    let net = Network::new(&sim);
    let topo = star_fanin(&net, FLOWS);
    let _listener = TcpListener::bind(
        &net,
        topo.sink,
        CONVERGE_PORT,
        TcpConfig::default(),
        Arc::new(AcceptQuiet),
    )
    .expect("bind");

    // Settle the world so the delta below is pure per-flow state.
    sim.run_for(Duration::from_millis(10));
    let before = LIVE_BYTES.load(Ordering::Relaxed);

    let conns: Vec<TcpConn> = topo
        .senders
        .iter()
        .map(|&s| {
            TcpConn::connect(
                &net,
                s,
                Endpoint::new(topo.sink, CONVERGE_PORT),
                TcpConfig::default(),
                Arc::new(Quiet),
            )
            .expect("connect")
        })
        .collect();
    sim.run_for(Duration::from_secs(5));

    let established = conns.iter().filter(|c| c.is_established()).count();
    assert_eq!(established, FLOWS, "all probe flows must establish");

    let after = LIVE_BYTES.load(Ordering::Relaxed);
    let per_flow = (after as isize - before as isize) as f64 / FLOWS as f64;
    assert!(
        per_flow < BYTES_PER_FLOW_BUDGET,
        "per-flow heap cost regressed: {per_flow:.1} B/flow (budget {BYTES_PER_FLOW_BUDGET} B; \
         pre-slab baseline 6169.4 B)"
    );
}
