//! Parallel-vs-sequential byte-identity for the sweep runner.
//!
//! The sweep runner's contract (see `kmsg_bench::sweep`) is that
//! `--jobs N` changes wall-clock time only: every artifact a sweep
//! produces — fuzz verdicts and flight-recorder traces, figure tables
//! and telemetry snapshots — must be byte-identical to the sequential
//! run. These tests execute real worlds at `jobs = 1` and `jobs = 4`
//! and compare the artifacts byte for byte.

use kmsg_apps::fuzz::ScenarioSpec;
use kmsg_bench::fig1_core::{cells, run_cell};
use kmsg_bench::fuzzer::check_spec;
use kmsg_bench::sweep;
use kmsg_netsim::rng::SeedSource;
use kmsg_oracle::render_verdict;

/// Runs the fuzz sweep at a given parallelism, returning per-seed
/// (verdict text, flight-recorder JSONL) artifacts in submission order.
fn fuzz_artifacts(jobs: usize, seeds: std::ops::Range<u64>) -> Vec<(String, String)> {
    sweep::map(jobs, seeds.collect(), |_idx, seed: u64| {
        let spec = ScenarioSpec::generate(seed);
        let (run, violations) = check_spec(&spec);
        (
            render_verdict(&violations),
            run.result.recorder.to_jsonl(),
        )
    })
}

#[test]
fn fuzz_sweep_byte_identical_at_jobs_1_and_4() {
    let sequential = fuzz_artifacts(1, 0..8);
    let parallel = fuzz_artifacts(4, 0..8);
    assert_eq!(sequential.len(), parallel.len());
    for (seed, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
        assert_eq!(s.0, p.0, "seed {seed}: verdicts diverged");
        assert!(
            s.1 == p.1,
            "seed {seed}: flight-recorder JSONL diverged ({} vs {} bytes)",
            s.1.len(),
            p.1.len()
        );
    }
}

/// Runs one fuzz scenario under the sweep runner and exports its causal
/// spans as a Chrome trace (`--trace-out` format).
fn chrome_trace_artifacts(jobs: usize, seeds: std::ops::Range<u64>) -> Vec<String> {
    sweep::map(jobs, seeds.collect(), |_idx, seed: u64| {
        let spec = ScenarioSpec::generate(seed);
        let (run, _) = check_spec(&spec);
        kmsg_telemetry::export::to_chrome_trace(&run.result.recorder.events())
    })
}

#[test]
fn chrome_trace_byte_identical_at_jobs_1_and_4() {
    // The trace export is a pure function of the event stream and span ids
    // come from a per-world counter, so the rendered Perfetto JSON must be
    // byte-identical at any sweep width.
    let sequential = chrome_trace_artifacts(1, 0..6);
    let parallel = chrome_trace_artifacts(4, 0..6);
    assert_eq!(sequential.len(), parallel.len());
    for (seed, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
        assert!(
            s == p,
            "seed {seed}: chrome traces diverged ({} vs {} bytes)",
            s.len(),
            p.len()
        );
        assert!(
            s.contains("\"traceEvents\":["),
            "seed {seed}: trace export missing its envelope"
        );
    }
}

/// Runs the Figure 1 sweep at a given parallelism, returning the table
/// rows and the rendered telemetry snapshot.
fn fig1_artifacts(jobs: usize, entries: usize) -> (Vec<String>, String) {
    let seeds = SeedSource::new(1);
    let results = sweep::map(jobs, cells(), |_idx, cell| run_cell(&cell, seeds, entries));
    let rec = kmsg_telemetry::Recorder::new();
    rec.enable();
    for r in &results {
        rec.gauge(&format!("{}/median", r.metric)).set(r.median);
        rec.gauge(&format!("{}/mean", r.metric)).set(r.mean);
        rec.gauge(&format!("{}/iqr", r.metric)).set(r.iqr);
    }
    let rows = results.into_iter().map(|r| r.row).collect();
    (rows, rec.snapshot_json())
}

#[test]
fn fig1_sweep_byte_identical_at_jobs_1_and_4() {
    let entries = 5_000; // CI-scale stream; identity must hold at any size
    let (rows_seq, snap_seq) = fig1_artifacts(1, entries);
    let (rows_par, snap_par) = fig1_artifacts(4, entries);
    assert_eq!(rows_seq, rows_par, "table rows diverged");
    assert!(
        snap_seq == snap_par,
        "telemetry snapshots diverged ({} vs {} bytes)",
        snap_seq.len(),
        snap_par.len()
    );
}

#[test]
fn first_failure_matches_sequential_with_real_worlds() {
    // Treat an arbitrary scenario property as a "failure" so the sweep
    // exercises cancellation on real worlds: the first seed whose run
    // delivers out of order. The parallel sweep must report exactly the
    // seed the sequential scan finds (or agree there is none).
    let find = |jobs: usize| {
        kmsg_bench::fuzzer::sweep_seeds(0, 10, jobs, None, |seed| {
            let spec = ScenarioSpec::generate(seed);
            let (run, _) = check_spec(&spec);
            (run.result.out_of_order > 0).then_some(run.result.out_of_order)
        })
    };
    let seq = find(1);
    let par = find(4);
    assert_eq!(seq.failure, par.failure);
    assert_eq!(seq.ran, par.ran);
    assert_eq!(seq.clean, par.clean);
}
