//! # kmsg-bench — the experiment harness
//!
//! One binary per figure of the paper's evaluation (run with
//! `cargo run --release -p kmsg-bench --bin figN`), shared table-printing
//! and repetition helpers here, and Criterion micro-benchmarks under
//! `benches/`.
//!
//! Common flags understood by the figure binaries:
//!
//! * `--size-mb N` — dataset size in MiB (default: the paper's 395);
//! * `--reps N` — maximum repetitions per data point (default 10);
//! * `--seed N` — root experiment seed (default 1);
//! * `--jobs N` — worker threads for sweep parallelism (default: all
//!   cores; `--jobs 1` reproduces the sequential runner exactly — see
//!   [`sweep`] for the byte-identity guarantee);
//! * `--quick` — shorthand for a small dataset and few reps (CI-speed);
//! * `--verbose` — raise the log level to `Debug` (extra diagnostics).

#![warn(missing_docs)]

pub mod fig1_core;
pub mod fuzzer;
pub mod sweep;

use kmsg_netsim::stats::OnlineStats;

/// Parsed common command-line options.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Dataset size in bytes.
    pub size: usize,
    /// Maximum repetitions per point.
    pub reps: u32,
    /// Minimum repetitions before the RSE early-exit applies.
    pub min_reps: u32,
    /// Root seed.
    pub seed: u64,
    /// Worker threads for sweeps (`--jobs N`; default = available cores,
    /// `1` = fully sequential in the calling thread).
    pub jobs: usize,
    /// Quick mode (CI-scale).
    pub quick: bool,
    /// Verbose mode: `--verbose` raises logging to `Debug`.
    pub verbose: bool,
    /// `--trace-out FILE`: write the run's causal spans as a Chrome
    /// trace-event JSON file (open in Perfetto / `chrome://tracing`).
    pub trace_out: Option<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            size: kmsg_apps::PAPER_DATASET_SIZE,
            reps: 10,
            min_reps: 5,
            seed: 1,
            jobs: sweep::default_jobs(),
            quick: false,
            verbose: false,
            trace_out: None,
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args` and applies the logging flags (so every
    /// figure binary honours `--verbose` without extra wiring).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    #[must_use]
    pub fn parse() -> Self {
        let mut out = BenchArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--size-mb" => {
                    let v: usize = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--size-mb takes a number");
                    out.size = v * 1024 * 1024;
                }
                "--reps" => {
                    out.reps = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--reps takes a number");
                    out.min_reps = out.min_reps.min(out.reps);
                }
                "--seed" => {
                    out.seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--seed takes a number");
                }
                "--jobs" => {
                    out.jobs = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--jobs takes a number");
                }
                "--quick" => {
                    out.quick = true;
                    out.size = 24 * 1024 * 1024;
                    out.reps = 3;
                    out.min_reps = 3;
                }
                "--verbose" => out.verbose = true,
                "--trace-out" => {
                    out.trace_out = Some(args.next().expect("--trace-out takes a file path"));
                }
                other => panic!("unknown flag {other}; see kmsg-bench docs"),
            }
        }
        kmsg_telemetry::log::set_verbose(out.verbose);
        out
    }
}

/// Honours `--trace-out`: writes the recorder's events as a Chrome
/// trace-event JSON file (openable in Perfetto or `chrome://tracing`).
/// No-op when the flag was not given.
pub fn write_trace_out(args: &BenchArgs, rec: &kmsg_telemetry::Recorder) {
    let Some(path) = &args.trace_out else {
        return;
    };
    let trace = kmsg_telemetry::export::to_chrome_trace(&rec.events());
    std::fs::write(path, &trace).expect("write --trace-out file");
    kmsg_telemetry::log_info!("trace: wrote {} bytes to {path}", trace.len());
}

/// Repeats `run` (seeded per repetition) until the relative standard error
/// of the mean drops below 10% — the paper's stopping rule — with at least
/// `min_reps` and at most `max_reps` repetitions. Returns the accumulated
/// statistics.
pub fn repeat_until_stable(
    min_reps: u32,
    max_reps: u32,
    mut run: impl FnMut(u64) -> f64,
) -> OnlineStats {
    let mut stats = OnlineStats::new();
    for rep in 0..max_reps.max(1) {
        stats.push(run(u64::from(rep) + 1));
        if rep + 1 >= min_reps && stats.relative_stderr() < 0.10 {
            break;
        }
    }
    stats
}

/// Prints a horizontal rule sized to `width` (at `Info` level).
pub fn rule(width: usize) {
    kmsg_telemetry::log_info!("{}", "-".repeat(width));
}

/// Formats a `[-1, 1]` signed ratio.
#[must_use]
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:+.2}")
}

/// Formats bytes/s as MB/s with two decimals.
#[must_use]
pub fn fmt_mbps(bps: f64) -> String {
    format!("{:.2}", bps / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_stops_when_stable() {
        let mut calls = 0;
        let stats = repeat_until_stable(3, 100, |_seed| {
            calls += 1;
            10.0 // zero variance: stable immediately after min reps
        });
        assert_eq!(calls, 3);
        assert_eq!(stats.count(), 3);
    }

    #[test]
    fn repeat_caps_at_max() {
        let mut x = 0.0;
        let stats = repeat_until_stable(2, 5, |_| {
            x += 100.0; // diverging: never stable
            x
        });
        assert_eq!(stats.count(), 5);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ratio(-1.0), "-1.00");
        assert_eq!(fmt_mbps(10e6), "10.00");
    }
}

/// Shared environment for the learner experiments (Figures 2 and 4–6):
/// the §IV-B2 analysis link (100 MB/s, 10 ms delay) where plain TCP
/// reaches ~100 MB/s and UDT is capped near ~11 MB/s by its
/// receive-processing cost — so the optimal ratio is "very close to −1".
pub mod learner_env {
    use std::time::Duration;

    use kmsg_apps::{run_experiment, Dataset, ExperimentConfig, ExperimentResult, Setup};
    use kmsg_core::data::{DataNetworkConfig, PrpKind, PspKind, TdConfig, ValueBackend};
    use kmsg_core::Transport;
    use kmsg_learning::{EpsilonGreedyConfig, SarsaConfig};
    use kmsg_netsim::rng::SeedSource;

    /// Runs a timed (never-completing) transfer on the analysis link and
    /// returns its full telemetry.
    #[must_use]
    pub fn run_timed(
        transport: Transport,
        data_cfg: Option<DataNetworkConfig>,
        secs: u64,
        seed: u64,
    ) -> ExperimentResult {
        // Large enough to outlast the run at link speed.
        let size = usize::try_from(secs).expect("secs fits") * 120 * 1024 * 1024;
        let dataset = Dataset::climate(size, seed);
        let mut cfg = ExperimentConfig::transfer(Setup::analysis_link(), transport, dataset, seed);
        cfg.use_disk = false;
        cfg.max_sim_time = Duration::from_secs(secs);
        if let Some(d) = data_cfg {
            cfg.data_cfg = d;
        }
        run_experiment(&cfg)
    }

    /// The TD learner configuration for a figure: value backend plus the
    /// figure's exploration schedule (Fig. 4 uses ε 0.8→0.1; Figs. 5 and 6
    /// use ε_max = 0.3).
    #[must_use]
    pub fn td_data_cfg(
        backend: ValueBackend,
        eps_max: f64,
        psp: PspKind,
        seed: u64,
    ) -> DataNetworkConfig {
        DataNetworkConfig {
            psp,
            prp: PrpKind::Td(TdConfig {
                backend,
                sarsa: SarsaConfig {
                    exploration: EpsilonGreedyConfig {
                        epsilon_max: eps_max,
                        epsilon_min: 0.1,
                        epsilon_decay: 0.01,
                    },
                    ..SarsaConfig::default()
                },
                ..TdConfig::default()
            }),
            seeds: SeedSource::new(seed),
            ..DataNetworkConfig::default()
        }
    }

    /// Prints the standard learner time-series table: per second, the
    /// receiver-observed throughput and true wire ratio, with TCP/UDT
    /// reference means in the header.
    pub fn print_learner_table(label: &str, result: &ExperimentResult, refs: (f64, f64)) {
        kmsg_telemetry::log_info!(
            "\n{label}  (references: TCP {} MB/s, UDT {} MB/s)",
            crate::fmt_mbps(refs.0),
            crate::fmt_mbps(refs.1)
        );
        kmsg_telemetry::log_info!(
            "{:>5} {:>14} {:>12} {:>12}",
            "t", "throughput", "target r", "wire r"
        );
        let mut flow = result.flow_points.iter().peekable();
        for s in &result.receiver_samples {
            // Align the flow point closest (<=) to this sample time.
            let mut target = f64::NAN;
            while let Some(p) = flow.peek() {
                if p.time <= s.time {
                    target = p.target_ratio;
                    flow.next();
                } else {
                    break;
                }
            }
            kmsg_telemetry::log_info!(
                "{:>4.0}s {:>11.2} MB/s {:>12} {:>12}",
                s.time.as_secs_f64(),
                s.throughput / 1e6,
                if target.is_nan() {
                    "-".to_string()
                } else {
                    crate::fmt_ratio(target)
                },
                s.wire_ratio().map_or("-".to_string(), crate::fmt_ratio),
            );
        }
    }

    /// Mean receiver throughput of a reference (plain-transport) run,
    /// averaged over the tail half so slow start and early queue overshoot
    /// recovery do not bias the reference line.
    #[must_use]
    pub fn reference_throughput(transport: Transport, secs: u64, seed: u64) -> f64 {
        let secs = secs.max(40);
        let r = run_timed(transport, None, secs, seed);
        let tail: Vec<f64> = r
            .receiver_samples
            .iter()
            .skip(r.receiver_samples.len() / 2)
            .map(|s| s.throughput)
            .collect();
        if tail.is_empty() {
            0.0
        } else {
            tail.iter().sum::<f64>() / tail.len() as f64
        }
    }
}

/// Compact per-run summary for the learner figures: mean throughput and
/// mean target ratio over the final quarter of the run.
pub mod learner_summary {
    use kmsg_apps::ExperimentResult;

    /// `(mean tail throughput B/s, mean tail target ratio)`.
    #[must_use]
    pub fn tail(result: &ExperimentResult) -> (f64, f64) {
        let n = result.receiver_samples.len();
        let thr: Vec<f64> = result.receiver_samples[n - n / 4..]
            .iter()
            .map(|s| s.throughput)
            .collect();
        let m = result.flow_points.len();
        let ratio: Vec<f64> = result.flow_points[m - m / 4..]
            .iter()
            .map(|p| p.target_ratio)
            .collect();
        let mean = |v: &[f64]| {
            if v.is_empty() {
                f64::NAN
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        (mean(&thr), mean(&ratio))
    }
}

#[cfg(test)]
mod summary_tests {
    use kmsg_apps::{ExperimentResult, ReceiverSample};
    use kmsg_core::data::FlowPoint;
    use kmsg_core::MiddlewareStats;
    use kmsg_netsim::time::SimTime;

    #[test]
    fn learner_summary_uses_final_quarter() {
        let samples: Vec<ReceiverSample> = (0..8)
            .map(|i| ReceiverSample {
                time: SimTime::from_secs(i),
                throughput: if i < 6 { 1.0 } else { 100.0 },
                tcp_msgs: 1,
                udt_msgs: 0,
            })
            .collect();
        let flow_points: Vec<FlowPoint> = (0..8)
            .map(|i| FlowPoint {
                time: SimTime::from_secs(i),
                throughput: 0.0,
                target_ratio: if i < 6 { 0.0 } else { -1.0 },
                achieved_ratio: 0.0,
                messages: 1,
            })
            .collect();
        let result = ExperimentResult {
            transfer_time: None,
            throughput: None,
            verified: true,
            receiver_samples: samples,
            flow_points,
            ping: None,
            sender_net: MiddlewareStats::default(),
            receiver_net: MiddlewareStats::default(),
            duplicates: 0,
            out_of_order: 0,
            faults_applied: 0,
            events: 0,
            recorder: kmsg_telemetry::Recorder::new(),
        };
        let (thr, ratio) = crate::learner_summary::tail(&result);
        assert_eq!(thr, 100.0, "tail = last quarter only");
        assert_eq!(ratio, -1.0);
    }
}
