//! Library core of the `fig1` binary: the per-cell computation of the
//! selection-ratio distribution table.
//!
//! Figure 1 is a 16-cell sweep (4 target ratios × 2 windows × 2
//! policies); each cell is independent — the policy stream is derived
//! from a stateless named RNG stream — so the cells parallelise through
//! [`crate::sweep`]. Factored out of `bin/fig1.rs` so the
//! parallel-vs-sequential byte-identity test can drive it directly.

use kmsg_core::data::{
    PatternKind, PatternSelection, ProtocolSelectionPolicy, RandomSelection, Ratio,
};
use kmsg_core::Transport;
use kmsg_netsim::rng::SeedSource;
use kmsg_netsim::stats::Summary;

/// Sliding window matching one 1 s learning episode (~1600 messages).
pub const EPISODE_WINDOW: usize = 1600;
/// Sliding window matching the ~16 messages concurrently on the wire.
pub const WIRE_WINDOW: usize = 16;
/// Observed-ratio entries per dataset at paper scale.
pub const ENTRIES: usize = 160_000;

/// The paper's x-axis: target ratios as the probability of UDT.
pub const TARGETS: [(f64, &str); 4] =
    [(0.0, "0"), (0.03, "3/100"), (1.0 / 3.0, "1/3"), (0.8, "4/5")];

/// One cell of the figure: a (target, window, policy) combination.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Probability of selecting UDT.
    pub prob: f64,
    /// Target-ratio label, e.g. `"1/3"`.
    pub label: &'static str,
    /// Sliding-window length in messages.
    pub window: usize,
    /// `"Episode"` or `"Wire"`.
    pub window_label: &'static str,
    /// `true` = Pattern policy, `false` = Random.
    pub pattern: bool,
}

/// A computed cell: the telemetry gauge values plus the rendered table
/// row, in the exact format the sequential binary printed.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Gauge-name prefix, `fig1/<target>/<window>/<policy>`.
    pub metric: String,
    /// Median observed ratio.
    pub median: f64,
    /// Mean observed ratio.
    pub mean: f64,
    /// Inter-quartile range.
    pub iqr: f64,
    /// The formatted table row.
    pub row: String,
}

/// All 16 cells in the sequential print order: targets outermost, then
/// window, then Pattern before Random.
#[must_use]
pub fn cells() -> Vec<Cell> {
    let mut out = Vec::with_capacity(16);
    for &(prob, label) in &TARGETS {
        for (window, window_label) in [(EPISODE_WINDOW, "Episode"), (WIRE_WINDOW, "Wire")] {
            for pattern in [true, false] {
                out.push(Cell {
                    prob,
                    label,
                    window,
                    window_label,
                    pattern,
                });
            }
        }
    }
    out
}

/// Sliding-window signed ratios over a selection stream.
///
/// # Panics
///
/// Panics if the stream is not longer than the window.
#[must_use]
pub fn windowed_ratios(stream: &[Transport], window: usize) -> Vec<f64> {
    assert!(stream.len() > window);
    let mut udt_in_window = stream[..window]
        .iter()
        .filter(|&&t| t == Transport::Udt)
        .count();
    let mut out = Vec::with_capacity(stream.len() - window);
    out.push(2.0 * udt_in_window as f64 / window as f64 - 1.0);
    for i in window..stream.len() {
        if stream[i] == Transport::Udt {
            udt_in_window += 1;
        }
        if stream[i - window] == Transport::Udt {
            udt_in_window -= 1;
        }
        out.push(2.0 * udt_in_window as f64 / window as f64 - 1.0);
    }
    out
}

fn stream_of(policy: &mut dyn ProtocolSelectionPolicy, n: usize) -> Vec<Transport> {
    (0..n).map(|_| policy.select()).collect()
}

/// Computes one cell: generates the selection stream, windows it, and
/// summarises. Independent of every other cell (the Random policy's RNG
/// stream is derived statelessly from the cell's name), so cells may run
/// in any order on any thread.
#[must_use]
pub fn run_cell(cell: &Cell, seeds: SeedSource, entries: usize) -> CellResult {
    let ratio = Ratio::from_prob_udt(cell.prob);
    let name = if cell.pattern { "Pattern" } else { "Random" };
    let mut policy: Box<dyn ProtocolSelectionPolicy> = if cell.pattern {
        Box::new(PatternSelection::new(ratio, PatternKind::MinimalRest, 100))
    } else {
        Box::new(RandomSelection::new(
            ratio,
            seeds.stream(&format!("fig1-{}-{}", cell.label, cell.window_label)),
        ))
    };
    let stream = stream_of(policy.as_mut(), entries + cell.window);
    let ratios = windowed_ratios(&stream, cell.window);
    let s = Summary::of(&ratios).expect("windowed ratio stream is non-empty");
    let row = format!(
        "{:>7} {:>8} {:<16} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
        cell.label,
        crate::fmt_ratio(ratio.signed()),
        format!("{}/{}", cell.window_label, name),
        s.min,
        s.p25,
        s.median,
        s.p75,
        s.max,
        s.mean,
    );
    CellResult {
        metric: format!("fig1/{}/{}/{}", cell.label, cell.window_label, name),
        median: s.median,
        mean: s.mean,
        iqr: s.p75 - s.p25,
        row,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_cells_in_print_order() {
        let c = cells();
        assert_eq!(c.len(), 16);
        assert_eq!(c[0].label, "0");
        assert!(c[0].pattern && !c[1].pattern, "Pattern row precedes Random");
        assert_eq!(c[0].window, EPISODE_WINDOW);
        assert_eq!(c[2].window, WIRE_WINDOW);
    }

    #[test]
    fn windowed_ratio_bounds() {
        let stream = vec![Transport::Udt; 20];
        let r = windowed_ratios(&stream, 4);
        assert!(r.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }
}
