//! **Figure 5** — TD learner with `Q(s, a)` collapsed into a state-value
//! vector `V(s)` through the environment model `M(s, a) → s'`: the space
//! shrinks from 55 to 11 entries and the learner converges in ~20 s
//! (ε_max lowered to 0.3 to avoid over-exploration after convergence).
//!
//! ```text
//! cargo run --release -p kmsg-bench --bin fig5 [--quick]
//! ```

use kmsg_bench::learner_env;
use kmsg_core::data::{PatternKind, PspKind, ValueBackend};
use kmsg_core::Transport;

fn main() {
    let args = kmsg_bench::BenchArgs::parse();
    let secs = if args.quick { 30 } else { 120 };
    kmsg_telemetry::log_info!("Figure 5 — TD learner, model-collapsed V(s) ({secs} s, analysis link)");
    let tcp_ref = learner_env::reference_throughput(Transport::Tcp, 20, args.seed);
    let udt_ref = learner_env::reference_throughput(Transport::Udt, 20, args.seed);
    let cfg = learner_env::td_data_cfg(
        ValueBackend::Model,
        0.3,
        PspKind::Pattern(PatternKind::MinimalRest),
        args.seed,
    );
    let result = learner_env::run_timed(Transport::Data, Some(cfg), secs, args.seed);
    learner_env::print_learner_table("model-collapsed V(s)", &result, (tcp_ref, udt_ref));
        // Single traces are seed-noisy; summarise a few seeds for context.
    kmsg_telemetry::log_info!("\nmulti-seed tails (final quarter):");
    for extra in 1..4 {
        let seed = args.seed + extra;
        let cfg = learner_env::td_data_cfg(
            ValueBackend::Model,
            0.3,
            PspKind::Pattern(PatternKind::MinimalRest),
            seed,
        );
        let r = learner_env::run_timed(Transport::Data, Some(cfg), secs, seed);
        let (thr, ratio) = kmsg_bench::learner_summary::tail(&r);
        kmsg_telemetry::log_info!(
            "  seed {seed}: mean tail throughput {} MB/s, mean tail ratio {}",
            kmsg_bench::fmt_mbps(thr),
            kmsg_bench::fmt_ratio(ratio)
        );
    }
    kmsg_telemetry::log_info!(
        "\nExpected shape (paper): convergence to a TCP-heavy ratio within\n\
         roughly 20 s, then throughput tracking the TCP reference."
    );
}
