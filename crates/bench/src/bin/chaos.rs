//! **Chaos** — supervised recovery under scripted fault injection.
//!
//! A `Transport::Data` bulk transfer runs over a 10 MB/s, 20 ms RTT link
//! that suffers a full two-second partition (both directions severed,
//! in-flight packets killed). The middleware's channel supervision must
//! observe the outage, redial with backoff and finish the transfer after
//! the heal. The run reports goodput, recovery latency (first
//! `ConnectionLost` to first `ConnectionRestored`), duplicate and
//! per-reason loss accounting, and the supervision counters — all exported
//! as telemetry gauges (`chaos.json`) next to the flight-recorder stream
//! (`chaos.jsonl`).
//!
//! ```text
//! cargo run --release -p kmsg-bench --bin chaos [-- --quick]
//! ```
//!
//! The run executes twice with the same seed and fails if the two
//! flight-recorder streams are not byte-identical.

use std::time::Duration;

use kmsg_apps::{run_experiment, Dataset, ExperimentConfig, ExperimentResult, Setup};
use kmsg_core::prelude::*;
use kmsg_netsim::faults::FaultPlan;
use kmsg_netsim::link::LinkConfig;
use kmsg_netsim::packet::NodeId;
use kmsg_netsim::time::SimTime;
use kmsg_telemetry::critical_path::{recovery_attribution, self_profile, SpanForest};
use kmsg_telemetry::EventKind;

/// The partition window (simulated milliseconds).
const PARTITION_FROM_MS: u64 = 1_000;
const PARTITION_TO_MS: u64 = 3_000;

/// Impatient transports so channel death — and with it supervision — is
/// observable inside the two-second outage.
fn impatient_template() -> NetworkConfig {
    // The harness overwrites the address per host.
    let mut cfg = NetworkConfig::new(NetAddress::new(NodeId::from_index(0), 0));
    cfg.tcp.min_rto = Duration::from_millis(100);
    cfg.tcp.max_rto = Duration::from_millis(400);
    cfg.tcp.max_consecutive_timeouts = 3;
    cfg.tcp.syn_retries = 1;
    cfg.udt.exp_timeout = Duration::from_millis(100);
    cfg.udt.max_expirations = 5;
    cfg.reconnect = Some(ReconnectConfig {
        max_retries: 30,
        base_backoff: Duration::from_millis(100),
        max_backoff: Duration::from_millis(400),
        probe_interval: Some(Duration::from_secs(2)),
    });
    cfg
}

fn chaos_config(size: usize, seed: u64) -> ExperimentConfig {
    let setup = Setup::Custom {
        label: "chaos-10MB/s-10ms",
        link: LinkConfig::new(10e6, Duration::from_millis(10)),
    };
    let dataset = Dataset::random(size, 5);
    let mut cfg = ExperimentConfig::transfer(setup, Transport::Data, dataset, seed);
    cfg.net_template = Some(impatient_template());
    cfg.max_sim_time = Duration::from_secs(600);
    cfg.telemetry = true;
    // Per-packet traces for a multi-MB run overflow the default ring and
    // evict the early supervision events — keep the whole stream.
    cfg.telemetry_capacity = Some(2_000_000);
    cfg.faults = Some(FaultPlan::new().partition_between(
        SimTime::from_millis(PARTITION_FROM_MS),
        SimTime::from_millis(PARTITION_TO_MS),
        &[NodeId::from_index(0)],
        &[NodeId::from_index(1)],
    ));
    cfg
}

/// First `ConnectionLost` to first subsequent `ConnectionRestored`.
fn recovery_latency(result: &ExperimentResult) -> Option<Duration> {
    let mut lost_at = None;
    for e in result.recorder.events() {
        if let EventKind::ConnStatus { status, .. } = e.kind {
            match status {
                "lost" if lost_at.is_none() => lost_at = Some(e.time_ns),
                "restored" => {
                    if let Some(t0) = lost_at {
                        return Some(Duration::from_nanos(e.time_ns.saturating_sub(t0)));
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Link-level drop accounting by reason: `(reason, packets, bytes)`.
fn drops_by_reason(result: &ExperimentResult) -> Vec<(&'static str, u64, u64)> {
    let mut out: Vec<(&'static str, u64, u64)> = Vec::new();
    for e in result.recorder.events() {
        if let EventKind::LinkDrop {
            reason, wire_size, ..
        } = e.kind
        {
            match out.iter_mut().find(|(r, _, _)| *r == reason) {
                Some(entry) => {
                    entry.1 += 1;
                    entry.2 += wire_size;
                }
                None => out.push((reason, 1, wire_size)),
            }
        }
    }
    out
}

fn main() {
    let args = kmsg_bench::BenchArgs::parse();
    // Telemetry captures per-packet traces; bound the dataset so the
    // event stream stays in memory comfortably.
    let size = args.size.min(64 * 1024 * 1024);

    kmsg_telemetry::log_info!("Chaos — DATA transfer through a 2 s partition");
    kmsg_telemetry::log_info!(
        "{} MB over 10 MB/s / 20 ms RTT, partition {}..{} ms, seed {}\n",
        size / (1024 * 1024),
        PARTITION_FROM_MS,
        PARTITION_TO_MS,
        args.seed
    );

    // The run and its same-seed replay are independent worlds — execute
    // them through the sweep runner (concurrently at `--jobs >= 2`).
    let mut runs = kmsg_bench::sweep::map(args.jobs, vec![(), ()], |_idx, ()| {
        run_experiment(&chaos_config(size, args.seed))
    });
    let replay = runs.pop().expect("two runs");
    let result = runs.pop().expect("two runs");
    assert!(result.verified, "transfer must complete and verify after the heal");
    assert!(
        result.sender_net.reconnects >= 1,
        "supervision must have reconnected at least one channel"
    );

    // Determinism: the same seed must reproduce the exact event stream.
    let jsonl = result.recorder.to_jsonl();
    assert!(
        jsonl == replay.recorder.to_jsonl(),
        "same-seed chaos runs diverged: the flight-recorder streams differ"
    );
    kmsg_telemetry::log_info!("replay check: two same-seed runs byte-identical\n");

    let goodput = result.throughput.expect("transfer completed");
    let time = result.transfer_time.expect("transfer completed");
    let recovery = recovery_latency(&result);
    let s = &result.sender_net;

    kmsg_telemetry::log_info!("{:<28} {:>12}", "metric", "value");
    kmsg_bench::rule(41);
    kmsg_telemetry::log_info!(
        "{:<28} {:>9} MB/s",
        "goodput",
        kmsg_bench::fmt_mbps(goodput)
    );
    kmsg_telemetry::log_info!("{:<28} {:>10.2} s", "transfer time", time.as_secs_f64());
    kmsg_telemetry::log_info!(
        "{:<28} {:>10.2} s",
        "recovery latency",
        recovery.map_or(f64::NAN, |d| d.as_secs_f64())
    );
    kmsg_telemetry::log_info!("{:<28} {:>12}", "fault actions applied", result.faults_applied);
    kmsg_telemetry::log_info!("{:<28} {:>12}", "reconnect attempts", s.reconnect_attempts);
    kmsg_telemetry::log_info!("{:<28} {:>12}", "reconnects", s.reconnects);
    kmsg_telemetry::log_info!("{:<28} {:>12}", "channels dropped", s.channels_dropped);
    kmsg_telemetry::log_info!("{:<28} {:>12}", "DATA failovers", s.failovers);
    kmsg_telemetry::log_info!("{:<28} {:>12}", "duplicate chunks (deduped)", result.duplicates);

    let rec = &result.recorder;
    rec.gauge("chaos/goodput_bps").set(goodput);
    rec.gauge("chaos/transfer_time_s").set(time.as_secs_f64());
    if let Some(d) = recovery {
        rec.gauge("chaos/recovery_latency_s").set(d.as_secs_f64());
    }
    rec.gauge("chaos/faults_applied").set(result.faults_applied as f64);
    rec.gauge("chaos/duplicates").set(result.duplicates as f64);
    rec.gauge("chaos/reconnect_attempts").set(s.reconnect_attempts as f64);
    rec.gauge("chaos/reconnects").set(s.reconnects as f64);
    rec.gauge("chaos/channels_dropped").set(s.channels_dropped as f64);
    rec.gauge("chaos/failovers").set(s.failovers as f64);
    for kind in SendError::ALL {
        let n = s.send_failures_of(kind);
        if n > 0 {
            rec.gauge(&format!("chaos/send_failures/{}", kind.label()))
                .set(n as f64);
        }
    }

    kmsg_telemetry::log_info!("\n{:<28} {:>8} {:>12}", "link drops by reason", "packets", "bytes");
    kmsg_bench::rule(50);
    for (reason, packets, bytes) in drops_by_reason(&result) {
        kmsg_telemetry::log_info!("{reason:<28} {packets:>8} {bytes:>12}");
        rec.gauge(&format!("chaos/drops/{reason}/packets")).set(packets as f64);
        rec.gauge(&format!("chaos/drops/{reason}/bytes")).set(bytes as f64);
    }

    // Causal-span attribution: decompose the measured recovery window into
    // where supervision actually spent it. The components partition the
    // window exactly, and the window edges are stamped at the same engine
    // instants as the ConnStatus transitions, so the span-derived total
    // must reproduce the event-derived recovery latency.
    let events = rec.events();
    let forest = SpanForest::build(&events);
    let att = recovery_attribution(&forest).expect("a closed outage span after the heal");
    let measured_ns =
        u64::try_from(recovery.expect("recovery observed").as_nanos()).expect("fits u64");
    assert!(
        att.total_ns.abs_diff(measured_ns) <= 1,
        "span attribution window ({} ns) must equal the measured recovery \
         latency ({measured_ns} ns)",
        att.total_ns
    );
    let ms = |ns: u64| ns as f64 / 1e6;
    let summary = att
        .components
        .iter()
        .filter(|(_, ns)| *ns > 0)
        .map(|(label, ns)| format!("{:.0} ms {label}", ms(*ns)))
        .collect::<Vec<_>>()
        .join(" + ");
    kmsg_telemetry::log_info!(
        "\nrecovery attribution: {:.2} s recovery = {summary}",
        ms(att.total_ns) / 1e3
    );
    kmsg_telemetry::log_info!("{:<28} {:>10}", "component", "ms");
    kmsg_bench::rule(41);
    for (label, ns) in &att.components {
        kmsg_telemetry::log_info!("{label:<28} {:>10.2}", ms(*ns));
        rec.gauge(&format!("chaos/recovery/{label}_ms")).set(ms(*ns));
    }
    kmsg_telemetry::log_info!("{:<28} {:>10.2}", "total", ms(att.total_ns));

    // Per-kind self-time profile of the whole run (flame-graph totals).
    kmsg_telemetry::log_info!(
        "\n{:<14} {:>8} {:>14} {:>14}",
        "span kind", "count", "total ms", "self ms"
    );
    kmsg_bench::rule(54);
    for row in self_profile(&forest) {
        kmsg_telemetry::log_info!(
            "{:<14} {:>8} {:>14.2} {:>14.2}",
            row.kind,
            row.count,
            ms(row.total_ns),
            ms(row.self_ns)
        );
    }

    // Per-kind ring eviction counters (all zero when the capacity bound
    // above holds; nonzero values name exactly which event kinds were
    // dropped).
    rec.publish_overflow_gauges();

    kmsg_bench::write_trace_out(&args, rec);
    rec.write_snapshot("chaos.json").expect("write chaos.json");
    rec.write_jsonl("chaos.jsonl").expect("write chaos.jsonl");
    kmsg_telemetry::log_info!("\nWrote chaos.json and chaos.jsonl");
}
