//! **Figure 6** — TD learner with `V(s)` plus least-squares quadratic
//! value approximation: unexplored states get extrapolated values (never
//! overriding learned ones), so the policy can act greedily after only a
//! couple of observations — converging within seconds and avoiding late
//! backtracking.
//!
//! ```text
//! cargo run --release -p kmsg-bench --bin fig6 [--quick]
//! ```

use kmsg_bench::learner_env;
use kmsg_core::data::{PatternKind, PspKind, ValueBackend};
use kmsg_core::Transport;

fn main() {
    let args = kmsg_bench::BenchArgs::parse();
    let secs = if args.quick { 30 } else { 120 };
    kmsg_telemetry::log_info!("Figure 6 — TD learner, V(s) + quadratic approximation ({secs} s, analysis link)");
    let tcp_ref = learner_env::reference_throughput(Transport::Tcp, 20, args.seed);
    let udt_ref = learner_env::reference_throughput(Transport::Udt, 20, args.seed);
    let cfg = learner_env::td_data_cfg(
        ValueBackend::Approx,
        0.3,
        PspKind::Pattern(PatternKind::MinimalRest),
        args.seed,
    );
    let result = learner_env::run_timed(Transport::Data, Some(cfg), secs, args.seed);
    learner_env::print_learner_table("V(s) + quadratic fit", &result, (tcp_ref, udt_ref));
        // Single traces are seed-noisy; summarise a few seeds for context.
    kmsg_telemetry::log_info!("\nmulti-seed tails (final quarter):");
    for extra in 1..4 {
        let seed = args.seed + extra;
        let cfg = learner_env::td_data_cfg(
            ValueBackend::Approx,
            0.3,
            PspKind::Pattern(PatternKind::MinimalRest),
            seed,
        );
        let r = learner_env::run_timed(Transport::Data, Some(cfg), secs, seed);
        let (thr, ratio) = kmsg_bench::learner_summary::tail(&r);
        kmsg_telemetry::log_info!(
            "  seed {seed}: mean tail throughput {} MB/s, mean tail ratio {}",
            kmsg_bench::fmt_mbps(thr),
            kmsg_bench::fmt_ratio(ratio)
        );
    }
    kmsg_telemetry::log_info!(
        "\nExpected shape (paper): reasonable performance after a few seconds\n\
         and no significant backtracking late in the run."
    );
}
