//! **Figure 8** — RTTs for simple "Ping" control messages over different
//! distances, with and without parallel data transfer using different
//! protocols.
//!
//! Series (the paper's §V-C combinations):
//!
//! 1. TCP pings only (baseline);
//! 2. UDT pings only (baseline);
//! 3. TCP pings + TCP data — control messages queue behind data sharing
//!    the TCP channel: a latency penalty of orders of magnitude;
//! 4. TCP pings + UDT data — separate channels barely interfere;
//! 5. TCP pings + DATA data — in between, thanks to the interceptor's
//!    shallow-queue release.
//!
//! ```text
//! cargo run --release -p kmsg-bench --bin fig8 [--quick] [--size-mb N]
//! ```

use std::time::Duration;

use kmsg_apps::{run_experiment, Dataset, ExperimentConfig, PingSettings, Setup};
use kmsg_core::Transport;

fn mean_rtt_ms(cfg: &ExperimentConfig) -> (f64, u64) {
    let result = run_experiment(cfg);
    let ping = result.ping.expect("ping stats");
    (
        ping.mean().map_or(f64::NAN, |d| d.as_secs_f64() * 1e3),
        ping.received,
    )
}

fn main() {
    let args = kmsg_bench::BenchArgs::parse();
    // The transfer must run long enough for pings to sample the congested
    // state; the full dataset does that everywhere.
    let dataset = Dataset::climate(args.size, args.seed);
    let ping = PingSettings {
        transport: Transport::Tcp,
        interval: Duration::from_millis(250),
    };
    let udp_ping = PingSettings {
        transport: Transport::Udp,
        interval: Duration::from_millis(250),
    };
    let baseline_time = Duration::from_secs(if args.quick { 10 } else { 30 });

    kmsg_telemetry::log_info!(
        "Figure 8 — control-message RTTs (ms), with and without parallel {} MB data transfer",
        args.size / (1024 * 1024)
    );
    kmsg_telemetry::log_info!(
        "\n{:<8} {:>12} {:>12} {:>16} {:>16} {:>17}",
        "setup", "TCP pings", "UDP pings", "TCP ping+TCPdata", "TCP ping+UDTdata", "TCP ping+DATAdata"
    );
    kmsg_bench::rule(88);
    for setup in Setup::paper_setups() {
        let mut row = format!("{:<8}", setup.label());
        // Baselines: pings only.
        for p in [&ping, &udp_ping] {
            let cfg =
                ExperimentConfig::ping_only(setup.clone(), p.clone(), args.seed, baseline_time);
            let (rtt, _) = mean_rtt_ms(&cfg);
            row.push_str(&format!(" {rtt:>12.2}"));
        }
        // Parallel transfer over TCP / UDT / DATA.
        for transport in [Transport::Tcp, Transport::Udt, Transport::Data] {
            let mut cfg =
                ExperimentConfig::transfer(setup.clone(), transport, dataset, args.seed);
            cfg.ping = Some(ping.clone());
            let (rtt, n) = mean_rtt_ms(&cfg);
            let width = if transport == Transport::Data { 17 } else { 16 };
            row.push_str(&format!(" {rtt:>width$.2}", width = width));
            let _ = n;
        }
        kmsg_telemetry::log_info!("{row}");
    }
    kmsg_telemetry::log_info!(
        "\nExpected shape (paper, log scale): sharing the TCP channel with data\n\
         costs orders of magnitude of control latency; data over UDT leaves\n\
         TCP pings near baseline; DATA sits between the extremes but far\n\
         below the all-TCP case (its interceptor keeps transport queues\n\
         shallow so control messages interleave)."
    );
}
