//! **Ablation B** — pattern construction choices (§IV-B4): for a sweep of
//! target ratios, compare the `p`-pattern, the `p+1`-pattern, the paper's
//! minimal-rest rule, and the probabilistic baseline on (a) the rest `c`
//! and (b) the worst prefix deviation from the target.
//!
//! ```text
//! cargo run --release -p kmsg-bench --bin ablation_patterns [-- --jobs N]
//! ```
//!
//! Each target ratio is an independent cell, sharded across `--jobs`
//! workers; rows print in submission order so the table is byte-identical
//! at any job count.

use kmsg_core::data::{
    build_pattern, max_prefix_deviation, p_pattern_rest, p_plus_one_pattern_rest, PatternKind,
    ProtocolSelectionPolicy, RandomSelection, Ratio,
};
use kmsg_netsim::rng::SeedSource;

fn main() {
    let args = kmsg_bench::BenchArgs::parse();
    let seeds = SeedSource::new(3);
    kmsg_telemetry::log_info!("Ablation B — pattern construction (deviation = worst prefix |achieved - target|)\n");
    kmsg_telemetry::log_info!(
        "{:>7} {:>5} {:>5} | {:>6} {:>6} | {:>8} {:>8} {:>8} {:>8}",
        "target", "p", "q", "c(p)", "c(p+1)", "dev(p)", "dev(p+1)", "dev(min)", "dev(rand)"
    );
    kmsg_bench::rule(84);
    let probs = vec![0.03, 0.1, 0.125, 0.2, 0.25, 1.0 / 3.0, 0.4, 0.45, 0.5];
    let rows = kmsg_bench::sweep::map(args.jobs, probs, |_idx, prob| {
        let ratio = Ratio::from_prob_udt(prob);
        let f = ratio.fraction(100);
        let dev = |kind| {
            let pat = build_pattern(&f, kind);
            max_prefix_deviation(&pat, prob)
        };
        // Probabilistic baseline measured over one pattern-length run,
        // averaged over several seeds (stateless named streams, so this
        // cell is identical no matter which worker runs it).
        let pattern_len = (f.p + f.q) as usize;
        let mut rand_dev = 0.0;
        let reps = 32;
        for rep in 0..reps {
            let mut rng = RandomSelection::new(
                ratio,
                seeds.stream(&format!("ablation-patterns-{prob}-{rep}")),
            );
            let run: Vec<_> = (0..pattern_len).map(|_| rng.select()).collect();
            rand_dev += max_prefix_deviation(&run, prob);
        }
        rand_dev /= f64::from(reps);
        format!(
            "{:>7.3} {:>5} {:>5} | {:>6} {:>6} | {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            prob,
            f.p,
            f.q,
            p_pattern_rest(&f),
            p_plus_one_pattern_rest(&f),
            dev(PatternKind::P),
            dev(PatternKind::PPlusOne),
            dev(PatternKind::MinimalRest),
            rand_dev,
        )
    });
    for row in rows {
        kmsg_telemetry::log_info!("{row}");
    }
    kmsg_telemetry::log_info!(
        "\nExpected shape: deterministic patterns dominate the probabilistic\n\
         baseline everywhere; where c(p+1) < c(p) the minimal-rest rule adopts\n\
         the p+1 construction and its deviation column tracks the better one."
    );
}
