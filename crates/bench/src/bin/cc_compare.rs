//! **cc_compare** — congestion controllers head-to-head on the lossy WAN.
//!
//! The same bulk TCP transfer (fixed dataset, fixed seed) runs over the
//! calibrated EU2US environment — 125 MB/s, 155 ms RTT, 5·10⁻⁵ random
//! loss — once per congestion controller (Reno, CUBIC, BBR). The compared
//! metric is disk-to-disk **goodput** in simulated time: on a long fat
//! lossy pipe the loss-tolerant controllers must not fall behind Reno,
//! whose AIMD halving on every stray loss starves the window.
//!
//! Every variant runs twice through the sweep runner and must replay
//! byte-identically (flight-recorder streams compared), the transfer must
//! verify under every controller, and the run writes the `BENCH_cc.json`
//! row file the perf gate diffs against its committed baseline — goodput
//! here is virtual-time and deterministic per seed, so any change past
//! the gate's tolerance is a genuine controller behaviour change, not
//! runner noise.
//!
//! ```text
//! cargo run --release -p kmsg-bench --bin cc_compare [-- --seed N] [--jobs N]
//! ```

use kmsg_apps::{run_experiment, Dataset, ExperimentConfig, ExperimentResult, Setup};
use kmsg_core::prelude::*;
use kmsg_netsim::cc::CcAlgorithm;
use kmsg_netsim::packet::NodeId;
use kmsg_oracle::Json;

/// Transfer size: large enough that every controller reaches its steady
/// state on a 155 ms RTT pipe, small enough to execute in seconds.
const TRANSFER_BYTES: usize = 16_000_000;

/// One EU2US bulk-transfer config pinned to `cc`.
fn cc_config(seed: u64, cc: CcAlgorithm) -> ExperimentConfig {
    let dataset = Dataset::random(TRANSFER_BYTES, 5);
    let mut cfg = ExperimentConfig::transfer(Setup::Eu2Us, Transport::Tcp, dataset, seed);
    // The harness overwrites the address per host.
    let mut tpl = NetworkConfig::new(NetAddress::new(NodeId::from_index(0), 0));
    tpl.tcp.cc.algorithm = cc;
    cfg.net_template = Some(tpl);
    cfg.max_sim_time = std::time::Duration::from_secs(300);
    cfg.telemetry = true;
    cfg.telemetry_capacity = Some(1 << 21);
    cfg
}

fn goodput_mbps(result: &ExperimentResult) -> f64 {
    result.throughput.expect("transfer must complete") / 1e6
}

fn main() {
    let args = kmsg_bench::BenchArgs::parse();

    kmsg_telemetry::log_info!("cc_compare — Reno vs CUBIC vs BBR on the EU2US lossy WAN");
    kmsg_telemetry::log_info!(
        "{} MB bulk TCP transfer, 125 MB/s, 155 ms RTT, 5e-5 loss, seed {}\n",
        TRANSFER_BYTES / 1_000_000,
        args.seed
    );

    // Each controller runs twice (independent worlds) through the sweep
    // runner; the second run is the byte-identity replay.
    let controllers = CcAlgorithm::all();
    let jobs: Vec<CcAlgorithm> = controllers
        .iter()
        .flat_map(|&cc| [cc, cc])
        .collect();
    let mut runs = kmsg_bench::sweep::map(args.jobs, jobs, |_idx, cc| {
        run_experiment(&cc_config(args.seed, cc))
    });

    let mut rows = Vec::new();
    let mut last_result = None;
    kmsg_telemetry::log_info!("{:<10} {:>14} {:>12} {:>12}", "controller", "goodput MB/s", "xfer s", "wire MB");
    kmsg_bench::rule(52);
    for &cc in &controllers {
        let result = runs.remove(0);
        let replay = runs.remove(0);
        assert!(
            result.recorder.to_jsonl() == replay.recorder.to_jsonl(),
            "same-seed {} runs diverged: the flight-recorder streams differ",
            cc.label()
        );
        assert!(
            result.verified,
            "the {} transfer must complete and verify",
            cc.label()
        );
        let goodput = goodput_mbps(&result);
        let secs = result
            .transfer_time
            .expect("transfer completed")
            .as_secs_f64();
        kmsg_telemetry::log_info!(
            "{:<10} {:>14.2} {:>12.2} {:>12.2}",
            cc.label(),
            goodput,
            secs,
            result.sender_net.bytes_out as f64 / 1e6
        );
        rows.push((cc, goodput));
        last_result = Some(result);
    }
    kmsg_telemetry::log_info!("\nreplay check: every controller byte-identical across two runs");

    // Publish gauges on the last run's recorder so trace exports carry
    // the comparison.
    let last = last_result.expect("at least one controller ran");
    let rec = &last.recorder;
    for &(cc, goodput) in &rows {
        rec.gauge(&format!("cc/{}/goodput_mbps", cc.label())).set(goodput);
    }
    rec.publish_overflow_gauges();

    // Row file for the perf gate's baseline diff.
    let doc = Json::obj(vec![
        ("benchmark", Json::Str("cc_compare".to_string())),
        ("setup", Json::Str("eu2us-125MBs-155ms-5e-5loss".to_string())),
        ("transfer_bytes", Json::Num(TRANSFER_BYTES as f64)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|&(cc, goodput)| {
                        Json::obj(vec![
                            ("name", Json::Str(cc.label().to_string())),
                            ("goodput_mbps", Json::Num(goodput)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write("BENCH_cc.json", doc.render() + "\n").expect("write BENCH_cc.json");
    kmsg_bench::write_trace_out(&args, rec);
    kmsg_telemetry::log_info!("wrote BENCH_cc.json");
}
