//! **Figure 1** — Distribution of observed selection ratios of the
//! probabilistic (Random) and the Pattern protocol selection policies,
//! compared to the target ratio.
//!
//! The paper's setting (§IV-B2): on a 100 MB/s link with 10 ms delay and
//! 65 kB messages, one 1 s learning episode covers ~1600 messages and ~16
//! messages are concurrently on the wire. For each target ratio the
//! selectors emit a long stream; sliding windows of 1600 ("Episode") and
//! 16 ("Wire") messages yield ~160 000 observed-ratio entries per dataset,
//! summarised as min / p25 / median / p75 / max boxes.
//!
//! ```text
//! cargo run --release -p kmsg-bench --bin fig1 [-- --quick] [--jobs N]
//! ```
//!
//! `--quick` shrinks the stream to CI scale (the box statistics get a
//! little noisier but keep their shape). `--jobs N` shards the 16 cells
//! across worker threads; the printed table and `telemetry.json` are
//! byte-identical to `--jobs 1` (each cell is an isolated world and the
//! reduction is in submission order — see `kmsg_bench::sweep`).

use kmsg_bench::fig1_core::{cells, run_cell, ENTRIES};
use kmsg_netsim::rng::SeedSource;

fn main() {
    let args = kmsg_bench::BenchArgs::parse();
    let entries = if args.quick { 20_000 } else { ENTRIES };
    let seeds = SeedSource::new(args.seed);
    // Summary gauges land in telemetry.json for the CI artifact.
    let rec = kmsg_telemetry::Recorder::new();
    rec.enable();

    kmsg_telemetry::log_info!("Figure 1 — observed selection ratio distributions");
    kmsg_telemetry::log_info!("(signed form: -1.0 = 100% TCP, +1.0 = 100% UDT)\n");
    kmsg_telemetry::log_info!(
        "{:>7} {:>8} {:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "target", "(signed)", "dataset", "min", "p25", "median", "p75", "max", "mean"
    );
    kmsg_bench::rule(96);

    // Each cell is an independent world; compute in parallel, then print
    // and record gauges in submission order so output never depends on
    // thread scheduling.
    let results = kmsg_bench::sweep::map(args.jobs, cells(), |_idx, cell| {
        run_cell(&cell, seeds, entries)
    });
    for (i, r) in results.iter().enumerate() {
        rec.gauge(&format!("{}/median", r.metric)).set(r.median);
        rec.gauge(&format!("{}/mean", r.metric)).set(r.mean);
        rec.gauge(&format!("{}/iqr", r.metric)).set(r.iqr);
        kmsg_telemetry::log_info!("{}", r.row);
        if (i + 1) % 4 == 0 {
            kmsg_bench::rule(96);
        }
    }
    kmsg_telemetry::log_info!(
        "\nExpected shape (paper): Pattern boxes hug the target, especially for\n\
         full episodes; Random shows ~0.1 skew at episode scale and up to ~0.5\n\
         at wire scale. At 3/100 even Pattern cannot be tight within 16\n\
         messages (majority runs exceed the wire window)."
    );
    kmsg_bench::write_trace_out(&args, &rec);
    rec.write_snapshot("telemetry.json")
        .expect("write telemetry.json");
    kmsg_telemetry::log_info!("\nWrote telemetry.json");
}
