//! **Figure 1** — Distribution of observed selection ratios of the
//! probabilistic (Random) and the Pattern protocol selection policies,
//! compared to the target ratio.
//!
//! The paper's setting (§IV-B2): on a 100 MB/s link with 10 ms delay and
//! 65 kB messages, one 1 s learning episode covers ~1600 messages and ~16
//! messages are concurrently on the wire. For each target ratio the
//! selectors emit a long stream; sliding windows of 1600 ("Episode") and
//! 16 ("Wire") messages yield ~160 000 observed-ratio entries per dataset,
//! summarised as min / p25 / median / p75 / max boxes.
//!
//! ```text
//! cargo run --release -p kmsg-bench --bin fig1 [-- --quick]
//! ```
//!
//! `--quick` shrinks the stream to CI scale (the box statistics get a
//! little noisier but keep their shape).

use kmsg_core::data::{
    PatternKind, PatternSelection, ProtocolSelectionPolicy, RandomSelection, Ratio,
};
use kmsg_core::Transport;
use kmsg_netsim::rng::SeedSource;
use kmsg_netsim::stats::Summary;

const EPISODE_WINDOW: usize = 1600;
const WIRE_WINDOW: usize = 16;
const ENTRIES: usize = 160_000;

/// Sliding-window signed ratios over a selection stream.
fn windowed_ratios(stream: &[Transport], window: usize) -> Vec<f64> {
    assert!(stream.len() > window);
    let mut udt_in_window = stream[..window]
        .iter()
        .filter(|&&t| t == Transport::Udt)
        .count();
    let mut out = Vec::with_capacity(stream.len() - window);
    out.push(2.0 * udt_in_window as f64 / window as f64 - 1.0);
    for i in window..stream.len() {
        if stream[i] == Transport::Udt {
            udt_in_window += 1;
        }
        if stream[i - window] == Transport::Udt {
            udt_in_window -= 1;
        }
        out.push(2.0 * udt_in_window as f64 / window as f64 - 1.0);
    }
    out
}

fn stream_of(policy: &mut dyn ProtocolSelectionPolicy, n: usize) -> Vec<Transport> {
    (0..n).map(|_| policy.select()).collect()
}

fn main() {
    let args = kmsg_bench::BenchArgs::parse();
    let entries = if args.quick { 20_000 } else { ENTRIES };
    let seeds = SeedSource::new(args.seed);
    // Summary gauges land in telemetry.json for the CI artifact.
    let rec = kmsg_telemetry::Recorder::new();
    rec.enable();
    // The paper's x-axis: target ratios as the probability of UDT.
    let targets = [(0.0, "0"), (0.03, "3/100"), (1.0 / 3.0, "1/3"), (0.8, "4/5")];

    kmsg_telemetry::log_info!("Figure 1 — observed selection ratio distributions");
    kmsg_telemetry::log_info!("(signed form: -1.0 = 100% TCP, +1.0 = 100% UDT)\n");
    kmsg_telemetry::log_info!(
        "{:>7} {:>8} {:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "target", "(signed)", "dataset", "min", "p25", "median", "p75", "max", "mean"
    );
    kmsg_bench::rule(96);

    for &(prob, label) in &targets {
        let ratio = Ratio::from_prob_udt(prob);
        for (window, window_label) in [(EPISODE_WINDOW, "Episode"), (WIRE_WINDOW, "Wire")] {
            for pattern in [true, false] {
                let name = if pattern { "Pattern" } else { "Random" };
                let mut policy: Box<dyn ProtocolSelectionPolicy> = if pattern {
                    Box::new(PatternSelection::new(ratio, PatternKind::MinimalRest, 100))
                } else {
                    Box::new(RandomSelection::new(
                        ratio,
                        seeds.stream(&format!("fig1-{label}-{window_label}")),
                    ))
                };
                let stream = stream_of(policy.as_mut(), entries + window);
                let ratios = windowed_ratios(&stream, window);
                let s = Summary::of(&ratios).expect("windowed ratio stream is non-empty");
                let metric = format!("fig1/{label}/{window_label}/{name}");
                rec.gauge(&format!("{metric}/median")).set(s.median);
                rec.gauge(&format!("{metric}/mean")).set(s.mean);
                rec.gauge(&format!("{metric}/iqr")).set(s.p75 - s.p25);
                kmsg_telemetry::log_info!(
                    "{:>7} {:>8} {:<16} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                    label,
                    kmsg_bench::fmt_ratio(ratio.signed()),
                    format!("{window_label}/{name}"),
                    s.min,
                    s.p25,
                    s.median,
                    s.p75,
                    s.max,
                    s.mean,
                );
            }
        }
        kmsg_bench::rule(96);
    }
    kmsg_telemetry::log_info!(
        "\nExpected shape (paper): Pattern boxes hug the target, especially for\n\
         full episodes; Random shows ~0.1 skew at episode scale and up to ~0.5\n\
         at wire scale. At 3/100 even Pattern cannot be tight within 16\n\
         messages (majority runs exceed the wire window)."
    );
    rec.write_snapshot("telemetry.json")
        .expect("write telemetry.json");
    kmsg_telemetry::log_info!("\nWrote telemetry.json");
}
