//! **Ablation C** — control-algorithm and trace-style choices beyond the
//! paper: on-policy Sarsa(λ) (the paper's algorithm) vs off-policy
//! Watkins Q(λ), and replacing vs accumulating eligibility traces, on a
//! synthetic quadratic reward environment (the paper's assumed shape).
//!
//! Reported: mean |final position − peak| over seeds (lower is better)
//! and the mean number of episodes until first reaching the peak state.
//!
//! ```text
//! cargo run --release -p kmsg-bench --bin ablation_learners [-- --jobs N]
//! ```
//!
//! The 6 variants × 16 seeds form 96 independent learner worlds, sharded
//! across `--jobs` workers with submission-order reduction — the table is
//! byte-identical at any job count.

use kmsg_learning::prelude::*;
use rand::SeedableRng;

const EPISODES: usize = 150;
const SEEDS: u64 = 16;

fn reward(space: RatioSpace, s: StateIdx, peak: f64) -> f64 {
    let x = space.state_value(s);
    (1.0 - (x - peak) * (x - peak) / 4.0).max(0.05) * 10.0
}

struct Outcome {
    final_err: f64,
    episodes_to_peak: Option<usize>,
}

fn run(cfg: SarsaConfig, backend: ValueBackend, peak: f64, seed: u64) -> Outcome {
    let space = RatioSpace::default();
    let value: Box<dyn ActionValue> = match backend {
        ValueBackend::Matrix => Box::new(MatrixQ::new(space)),
        ValueBackend::Model => Box::new(ModelV::new(space)),
        ValueBackend::Approx => Box::new(ApproxV::new(space)),
    };
    let mut learner = Sarsa::new(
        space,
        cfg,
        value,
        rand_chacha::ChaCha12Rng::seed_from_u64(seed),
    );
    let mut s = space.nearest_state(0.0);
    let mut a = learner.begin(s);
    let peak_state = space.nearest_state(peak);
    let mut first_hit = None;
    let mut tail = Vec::new();
    for ep in 0..EPISODES {
        let s2 = space.transition(s, a);
        a = learner.step(reward(space, s2, peak), s2);
        s = s2;
        if s == peak_state && first_hit.is_none() {
            first_hit = Some(ep);
        }
        if ep >= EPISODES * 3 / 4 {
            tail.push(space.state_value(s));
        }
    }
    let mean_tail = tail.iter().sum::<f64>() / tail.len() as f64;
    Outcome {
        final_err: (mean_tail - peak).abs(),
        episodes_to_peak: first_hit,
    }
}

// Re-exported backend selector mirroring kmsg-core's enum without the
// dependency cycle.
#[derive(Clone, Copy)]
enum ValueBackend {
    Matrix,
    Model,
    Approx,
}

fn main() {
    let args = kmsg_bench::BenchArgs::parse();
    kmsg_telemetry::log_info!(
        "Ablation C — learner variants on the synthetic quadratic environment \
         (peak at -0.8, {EPISODES} episodes, {SEEDS} seeds)\n"
    );
    kmsg_telemetry::log_info!(
        "{:<34} {:>12} {:>18}",
        "variant", "final |err|", "episodes to peak"
    );
    kmsg_bench::rule(66);
    let variants: Vec<(&str, SarsaConfig, ValueBackend)> = vec![
        (
            "sarsa/replacing/matrix (paper f4)",
            SarsaConfig::default(),
            ValueBackend::Matrix,
        ),
        (
            "sarsa/replacing/model (paper f5)",
            SarsaConfig::default(),
            ValueBackend::Model,
        ),
        (
            "sarsa/replacing/approx (paper f6)",
            SarsaConfig::default(),
            ValueBackend::Approx,
        ),
        (
            "sarsa/accumulating/approx",
            SarsaConfig {
                trace: TraceKind::Accumulating,
                ..SarsaConfig::default()
            },
            ValueBackend::Approx,
        ),
        (
            "watkins-q/replacing/approx",
            SarsaConfig {
                algo: ControlAlgo::WatkinsQ,
                ..SarsaConfig::default()
            },
            ValueBackend::Approx,
        ),
        (
            "watkins-q/replacing/model",
            SarsaConfig {
                algo: ControlAlgo::WatkinsQ,
                ..SarsaConfig::default()
            },
            ValueBackend::Model,
        ),
    ];
    // One world per (variant, seed) cell; the reduction walks cells in
    // submission order, so per-variant aggregates are order-independent.
    let worlds: Vec<(usize, u64)> = (0..variants.len())
        .flat_map(|v| (0..SEEDS).map(move |seed| (v, seed)))
        .collect();
    let outcomes = kmsg_bench::sweep::map(args.jobs, worlds, |_idx, (v, seed)| {
        let (_, cfg, backend) = variants[v];
        run(cfg, backend, -0.8, seed)
    });
    for (v, (name, _, _)) in variants.iter().enumerate() {
        let mut err_sum = 0.0;
        let mut hit_sum = 0usize;
        let mut hits = 0usize;
        for out in &outcomes[v * SEEDS as usize..(v + 1) * SEEDS as usize] {
            err_sum += out.final_err;
            if let Some(ep) = out.episodes_to_peak {
                hit_sum += ep;
                hits += 1;
            }
        }
        let mean_err = err_sum / SEEDS as f64;
        let hit_str = if hits == 0 {
            "never".to_string()
        } else {
            format!("{:.0} ({}/{} seeds)", hit_sum as f64 / hits as f64, hits, SEEDS)
        };
        kmsg_telemetry::log_info!("{name:<34} {mean_err:>12.3} {hit_str:>18}");
    }
    kmsg_telemetry::log_info!(
        "\nExpected shape: the model/approx backends dominate the dense matrix;\n\
         the paper's replacing trace is at least as stable as accumulating;\n\
         Watkins Q(lambda) is competitive but its trace cutting discards\n\
         credit on this exploration-heavy schedule."
    );
}
