//! **perf_gate** — CI guard against engine performance regressions.
//!
//! Compares a freshly produced `BENCH_engine.json` / `BENCH_scale.json`
//! (written by the `timing_probe` binary) and `BENCH_reroute.json`
//! (written by the `reroute` binary) against the committed baselines
//! at the repository root and exits nonzero when any tracked metric
//! regressed beyond the tolerance. Rows are matched by key (engine name,
//! host count, reroute variant), so a `--quick` probe that covers only a
//! subset of the committed rows gates exactly that subset.
//!
//! ```text
//! cargo run --release -p kmsg-bench --bin perf_gate -- \
//!     [--baseline-dir DIR] [--fresh-dir DIR] [--tolerance FRAC]
//! ```
//!
//! * `--baseline-dir` — directory holding the committed baselines
//!   (default `.`). CI copies them aside before `timing_probe` overwrites
//!   the working tree.
//! * `--fresh-dir` — directory holding the fresh probe output
//!   (default `.`).
//! * `--tolerance` — allowed relative slowdown as a fraction
//!   (default `0.5`, i.e. a metric may be up to 50% worse than the
//!   baseline before the gate trips — wall-clock rates on shared CI
//!   runners are noisy; the gate catches step-change regressions, not
//!   single-digit drift).
//!
//! Tracked metrics:
//!
//! * engine: `events_per_sec` per engine/workload row (higher is better);
//! * scale: `events_per_sec` per host-count row (higher is better),
//!   `bytes_per_flow` and `allocs_per_event` (both lower is better —
//!   allocation accounting is deterministic per seed, so a real increase
//!   always means a real regression);
//! * reroute: `gap_ms` per variant row (lower is better — virtual-time
//!   outage gaps, deterministic per seed).

use std::process::ExitCode;

use kmsg_oracle::Json;

/// One gated comparison: a labelled metric with its direction.
struct Check {
    label: String,
    baseline: f64,
    fresh: f64,
    /// `true` when larger values are better (throughput-style metrics).
    higher_is_better: bool,
}

impl Check {
    /// Relative change in the "worse" direction (positive = regressed).
    fn regression(&self) -> f64 {
        if self.baseline == 0.0 {
            return 0.0;
        }
        let delta = (self.fresh - self.baseline) / self.baseline;
        if self.higher_is_better {
            -delta
        } else {
            delta
        }
    }
}

fn load(dir: &str, file: &str) -> Json {
    let path = format!("{dir}/{file}");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("perf_gate: cannot read {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("perf_gate: {path} is not valid JSON: {e}"))
}

fn num(doc: &Json, row: &Json, field: &str, what: &str) -> Option<f64> {
    let v = row.get(field).and_then(Json::as_f64);
    if v.is_none() {
        kmsg_telemetry::log_info!(
            "perf_gate: note: {what} row missing numeric '{field}' in {}",
            doc.get("benchmark")
                .and_then(Json::as_str)
                .unwrap_or("<unnamed>")
        );
    }
    v
}

/// Engine probe: rows keyed by `name`, gated on `events_per_sec`.
fn engine_checks(baseline: &Json, fresh: &Json, out: &mut Vec<Check>) {
    let base_rows = baseline.get("engines").and_then(Json::as_arr).unwrap_or(&[]);
    let fresh_rows = fresh.get("engines").and_then(Json::as_arr).unwrap_or(&[]);
    for b in base_rows {
        let Some(name) = b.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(f) = fresh_rows
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(name))
        else {
            kmsg_telemetry::log_info!("perf_gate: note: engine '{name}' absent from fresh run");
            continue;
        };
        if let (Some(bv), Some(fv)) = (
            num(baseline, b, "events_per_sec", "engine"),
            num(fresh, f, "events_per_sec", "engine"),
        ) {
            out.push(Check {
                label: format!("engine/{name}/events_per_sec"),
                baseline: bv,
                fresh: fv,
                higher_is_better: true,
            });
        }
    }
}

/// Reroute bench: rows keyed by `name`, gated on `gap_ms` (lower is
/// better). Outage gaps are virtual-time and deterministic per seed, so
/// any change past the tolerance is a genuine behaviour change in
/// overlay rerouting or channel supervision, not runner noise.
fn reroute_checks(baseline: &Json, fresh: &Json, out: &mut Vec<Check>) {
    let base_rows = baseline.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
    let fresh_rows = fresh.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
    for b in base_rows {
        let Some(name) = b.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(f) = fresh_rows
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(name))
        else {
            kmsg_telemetry::log_info!("perf_gate: note: reroute '{name}' absent from fresh run");
            continue;
        };
        if let (Some(bv), Some(fv)) = (
            num(baseline, b, "gap_ms", "reroute"),
            num(fresh, f, "gap_ms", "reroute"),
        ) {
            out.push(Check {
                label: format!("reroute/{name}/gap_ms"),
                baseline: bv,
                fresh: fv,
                higher_is_better: false,
            });
        }
    }
}

/// Congestion-controller comparison: rows keyed by `name` (controller
/// label), gated on `goodput_mbps` (higher is better). Goodput on the
/// fixed lossy-WAN scenario is virtual-time and deterministic per seed,
/// so a drop past tolerance is a genuine controller behaviour change.
fn cc_checks(baseline: &Json, fresh: &Json, out: &mut Vec<Check>) {
    let base_rows = baseline.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
    let fresh_rows = fresh.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
    for b in base_rows {
        let Some(name) = b.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(f) = fresh_rows
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(name))
        else {
            kmsg_telemetry::log_info!("perf_gate: note: cc '{name}' absent from fresh run");
            continue;
        };
        if let (Some(bv), Some(fv)) = (
            num(baseline, b, "goodput_mbps", "cc"),
            num(fresh, f, "goodput_mbps", "cc"),
        ) {
            out.push(Check {
                label: format!("cc/{name}/goodput_mbps"),
                baseline: bv,
                fresh: fv,
                higher_is_better: true,
            });
        }
    }
}

/// Scale probe: rows keyed by `hosts`, gated on `events_per_sec`,
/// `bytes_per_flow` and `allocs_per_event`. Rows written before the
/// allocator counters existed simply lack the field and skip that check
/// (the `num` helper logs a note).
fn scale_checks(baseline: &Json, fresh: &Json, out: &mut Vec<Check>) {
    let base_rows = baseline.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
    let fresh_rows = fresh.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
    for b in base_rows {
        let Some(hosts) = b.get("hosts").and_then(Json::as_u64) else {
            continue;
        };
        let Some(f) = fresh_rows
            .iter()
            .find(|r| r.get("hosts").and_then(Json::as_u64) == Some(hosts))
        else {
            kmsg_telemetry::log_info!(
                "perf_gate: note: {hosts}-host row absent from fresh run (quick probe)"
            );
            continue;
        };
        for (field, higher_is_better) in [
            ("events_per_sec", true),
            ("bytes_per_flow", false),
            ("allocs_per_event", false),
        ] {
            if let (Some(bv), Some(fv)) = (
                num(baseline, b, field, "scale"),
                num(fresh, f, field, "scale"),
            ) {
                out.push(Check {
                    label: format!("scale/{hosts}-hosts/{field}"),
                    baseline: bv,
                    fresh: fv,
                    higher_is_better,
                });
            }
        }
    }
}

fn main() -> ExitCode {
    let mut baseline_dir = ".".to_string();
    let mut fresh_dir = ".".to_string();
    let mut tolerance = 0.5_f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline-dir" => {
                baseline_dir = args.next().expect("--baseline-dir takes a directory");
            }
            "--fresh-dir" => {
                fresh_dir = args.next().expect("--fresh-dir takes a directory");
            }
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--tolerance takes a fraction, e.g. 0.5");
            }
            other => panic!("perf_gate: unknown flag {other}"),
        }
    }
    assert!(
        tolerance >= 0.0 && tolerance.is_finite(),
        "--tolerance must be a non-negative fraction"
    );

    let mut checks = Vec::new();
    engine_checks(
        &load(&baseline_dir, "BENCH_engine.json"),
        &load(&fresh_dir, "BENCH_engine.json"),
        &mut checks,
    );
    scale_checks(
        &load(&baseline_dir, "BENCH_scale.json"),
        &load(&fresh_dir, "BENCH_scale.json"),
        &mut checks,
    );
    reroute_checks(
        &load(&baseline_dir, "BENCH_reroute.json"),
        &load(&fresh_dir, "BENCH_reroute.json"),
        &mut checks,
    );
    cc_checks(
        &load(&baseline_dir, "BENCH_cc.json"),
        &load(&fresh_dir, "BENCH_cc.json"),
        &mut checks,
    );
    assert!(
        !checks.is_empty(),
        "perf_gate: no comparable rows between baseline and fresh output"
    );

    kmsg_telemetry::log_info!(
        "perf gate — tolerance {:.0}% ({} comparable metrics)\n",
        tolerance * 100.0,
        checks.len()
    );
    kmsg_telemetry::log_info!(
        "{:<36} {:>14} {:>14} {:>9}  verdict",
        "metric", "baseline", "fresh", "change"
    );
    kmsg_bench::rule(88);

    let mut regressed = 0usize;
    for c in &checks {
        let delta = if c.baseline == 0.0 {
            0.0
        } else {
            (c.fresh - c.baseline) / c.baseline
        };
        let bad = c.regression() > tolerance;
        if bad {
            regressed += 1;
        }
        kmsg_telemetry::log_info!(
            "{:<36} {:>14.1} {:>14.1} {:>+8.1}%  {}",
            c.label,
            c.baseline,
            c.fresh,
            delta * 100.0,
            if bad { "REGRESSED" } else { "ok" }
        );
    }

    if regressed > 0 {
        kmsg_telemetry::log_info!(
            "\nperf gate FAILED: {regressed} metric(s) regressed beyond {:.0}%",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    kmsg_telemetry::log_info!("\nperf gate passed: no metric regressed beyond the tolerance");
    ExitCode::SUCCESS
}
