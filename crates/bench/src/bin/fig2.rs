//! **Figure 2** — Impact of the protocol selection policy on throughput
//! and true protocol ratio: the TD learner running with Pattern vs
//! Probabilistic selection on the §IV-B2 analysis link (100 MB/s, 10 ms).
//!
//! The paper's observation: probabilistic ratio selection is less
//! accurate (smoother wire ratio) and converges slightly more slowly in
//! throughput; both eventually reach the same performance.
//!
//! ```text
//! cargo run --release -p kmsg-bench --bin fig2 [--quick]
//! ```

use kmsg_bench::learner_env;
use kmsg_core::data::{PatternKind, PspKind, ValueBackend};
use kmsg_core::Transport;

fn main() {
    let args = kmsg_bench::BenchArgs::parse();
    let secs = if args.quick { 20 } else { 60 };
    kmsg_telemetry::log_info!(
        "Figure 2 — PSP impact on throughput and true protocol ratio ({secs} s, analysis link)"
    );

    let tcp_ref = learner_env::reference_throughput(Transport::Tcp, secs.min(20), args.seed);
    let udt_ref = learner_env::reference_throughput(Transport::Udt, secs.min(20), args.seed);

    for (label, psp) in [
        ("Pattern selection", PspKind::Pattern(PatternKind::MinimalRest)),
        ("Probabilistic selection", PspKind::Random),
    ] {
        let cfg = learner_env::td_data_cfg(ValueBackend::Approx, 0.3, psp, args.seed);
        let result = learner_env::run_timed(Transport::Data, Some(cfg), secs, args.seed);
        learner_env::print_learner_table(label, &result, (tcp_ref, udt_ref));
    }
    kmsg_telemetry::log_info!(
        "\nExpected shape (paper): both learners converge to the same\n\
         throughput; the probabilistic run's wire ratio is smoother but less\n\
         accurate, costing it slightly slower convergence."
    );
}
