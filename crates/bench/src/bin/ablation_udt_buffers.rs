//! **Ablation A** — UDT protocol buffer sizing (§V-A): the paper had to
//! raise Netty's UDT send/receive buffers from 12 MB to 100 MB for its
//! high bandwidth-delay-product links. The flow window is bounded by the
//! buffers, so an undersized buffer caps throughput near `window / RTT`.
//!
//! ```text
//! cargo run --release -p kmsg-bench --bin ablation_udt_buffers [--quick] [--jobs N]
//! ```
//!
//! Each buffer size is an independent simulated world, sharded across
//! `--jobs` workers; the table is byte-identical at any job count.

use kmsg_apps::{run_experiment, Dataset, ExperimentConfig, Setup};
use kmsg_core::{NetworkConfig, Transport};
use kmsg_netsim::udt::UdtConfig;

fn main() {
    let args = kmsg_bench::BenchArgs::parse();
    let size = if args.quick { 12 * 1024 * 1024 } else { 64 * 1024 * 1024 };
    let dataset = Dataset::climate(size, args.seed);
    kmsg_telemetry::log_info!(
        "Ablation A — UDT throughput at EU2AU (320 ms RTT) vs protocol buffer size\n"
    );
    kmsg_telemetry::log_info!("{:>10} {:>14} {:>16}", "buffers", "window/RTT cap", "throughput");
    kmsg_bench::rule(44);
    let rows = kmsg_bench::sweep::map(
        args.jobs,
        vec![1usize, 2, 4, 8, 12, 32, 100],
        |_idx, buf_mb| {
            let buf = buf_mb * 1024 * 1024;
            let setup = Setup::Eu2Au;
            let cap = buf as f64 / setup.rtt().as_secs_f64();
            let mut cfg = ExperimentConfig::transfer(setup, Transport::Udt, dataset, args.seed);
            let mut net_cfg = NetworkConfig::new(kmsg_core::NetAddress::new(
                kmsg_netsim::packet::NodeId::from_index(0),
                0,
            ));
            net_cfg.udt = UdtConfig {
                snd_buf: buf,
                rcv_buf: buf,
                ..UdtConfig::default()
            };
            cfg.net_template = Some(net_cfg);
            let result = run_experiment(&cfg);
            assert!(result.verified);
            let thr = result.throughput.expect("completed");
            format!(
                "{:>7} MB {:>11.2} MB/s {:>13.2} MB/s",
                buf_mb,
                cap / 1e6,
                thr / 1e6
            )
        },
    );
    for row in rows {
        kmsg_telemetry::log_info!("{row}");
    }
    kmsg_telemetry::log_info!(
        "\nExpected shape: throughput grows with the buffer while window/RTT\n\
         binds, then saturates once the ~10 MB/s policer (not the window)\n\
         becomes the bottleneck — the paper's 12 MB -> 100 MB fix moves the\n\
         deployment safely into the saturated regime."
    );
}
