//! **Reroute** — overlay rerouting vs waiting out a supervised reconnect.
//!
//! Two pub/sub worlds publish a 10 Hz tick stream through the *same*
//! scripted two-second partition of the publisher→subscriber edge:
//!
//! * **overlay** — a triangle mesh. When the direct edge dies, the
//!   overlay's link-state table reroutes the stream through the third
//!   node as soon as channel death is detected, long before supervision
//!   redials the direct channel.
//! * **reconnect** — a two-node world (the PR 3 chaos baseline shape).
//!   There is no alternate path, so the stream stalls until channel
//!   supervision reconnects after the heal.
//!
//! The compared metric is the **outage delivery gap** at the subscriber:
//! last delivery before the cut to first delivery after it, in simulated
//! time. The binary asserts the overlay gap is strictly below the
//! reconnect gap, decomposes it with the causal-span reroute attribution
//! (detect / route_compute / flush / transit, summing exactly), checks
//! both worlds replay byte-identically (runs execute through the sweep
//! runner, so `--jobs N` is byte-identical to `--jobs 1`), and writes
//! `reroute.json`, `reroute.jsonl` and the `BENCH_reroute.json` row file
//! the perf gate diffs against its committed baseline.
//!
//! ```text
//! cargo run --release -p kmsg-bench --bin reroute [-- --seed N] [--jobs N]
//! ```

use kmsg_apps::{run_overlay_spec, OverlayReport, OverlaySpec, PartitionWindow, PublishSpec};
use kmsg_oracle::Json;
use kmsg_telemetry::critical_path::{reroute_attribution, SpanForest};
use kmsg_telemetry::EventKind;

/// The partition window (simulated milliseconds), as in the chaos bench.
const PARTITION_FROM_MS: u64 = 1_000;
const PARTITION_TO_MS: u64 = 3_000;

/// Publish cadence and schedule bounds (ms).
const TICK_MS: u64 = 100;
const FIRST_PUB_MS: u64 = 200;
const LAST_PUB_MS: u64 = 6_000;

/// A tick stream from node 0 through the scripted partition, in a mesh of
/// `nodes` overlay nodes; the last node subscribes.
fn tick_spec(seed: u64, nodes: u32) -> OverlaySpec {
    let sub = nodes - 1;
    OverlaySpec {
        seed,
        nodes,
        chords: false,
        subs: vec![(sub, "tick".to_string())],
        publishes: (FIRST_PUB_MS..=LAST_PUB_MS)
            .step_by(TICK_MS as usize)
            .map(|at_ms| PublishSpec {
                at_ms,
                node: 0,
                subject: "tick".to_string(),
            })
            .collect(),
        partitions: vec![PartitionWindow {
            a: 0,
            b: sub,
            from_ms: PARTITION_FROM_MS,
            to_ms: PARTITION_TO_MS,
        }],
        horizon_ms: 9_000,
    }
}

/// Delivery timestamps (ns) at the subscribing node.
fn deliveries_at(report: &OverlayReport, node: u64) -> Vec<u64> {
    report
        .recorder
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::Overlay {
                    action: "deliver",
                    node: n,
                    ..
                } if n == node
            )
        })
        .map(|e| e.time_ns)
        .collect()
}

/// The outage delivery gap: last delivery before the cut hits the wire to
/// the first delivery at or after it.
fn outage_gap_ns(report: &OverlayReport, node: u64) -> (u64, u64, u64) {
    let fault_ns = PARTITION_FROM_MS * 1_000_000;
    let times = deliveries_at(report, node);
    let before = times
        .iter()
        .copied()
        .filter(|&t| t < fault_ns)
        .max()
        .expect("deliveries before the partition");
    let after = times
        .iter()
        .copied()
        .filter(|&t| t >= fault_ns)
        .min()
        .expect("deliveries after the partition");
    (after - before, before, after)
}

fn main() {
    let args = kmsg_bench::BenchArgs::parse();
    let overlay_spec = tick_spec(args.seed, 3);
    let baseline_spec = tick_spec(args.seed, 2);

    kmsg_telemetry::log_info!("Reroute — overlay rerouting vs supervised reconnect");
    kmsg_telemetry::log_info!(
        "10 Hz tick stream, partition {}..{} ms on the direct edge, seed {}\n",
        PARTITION_FROM_MS,
        PARTITION_TO_MS,
        args.seed
    );

    // Each variant runs twice (independent worlds) through the sweep
    // runner; the second run is the byte-identity replay.
    let mut runs = kmsg_bench::sweep::map(
        args.jobs,
        vec![&overlay_spec, &overlay_spec, &baseline_spec, &baseline_spec],
        |_idx, spec| run_overlay_spec(spec),
    );
    let baseline_replay = runs.pop().expect("four runs");
    let baseline = runs.pop().expect("four runs");
    let overlay_replay = runs.pop().expect("four runs");
    let overlay = runs.pop().expect("four runs");
    for (label, a, b) in [
        ("overlay", &overlay, &overlay_replay),
        ("reconnect", &baseline, &baseline_replay),
    ] {
        assert!(
            a.recorder.to_jsonl() == b.recorder.to_jsonl(),
            "same-seed {label} runs diverged: the flight-recorder streams differ"
        );
        assert_eq!(a.render(), b.render(), "{label} report text diverged");
    }
    kmsg_telemetry::log_info!("replay check: both variants byte-identical across two runs\n");

    // The overlay world must actually have rerouted — and cleanly.
    let reroutes: u64 = overlay.per_node.iter().map(|n| n.reroutes).sum();
    assert!(reroutes >= 1, "the partition must trigger a reroute");
    for (i, n) in overlay.per_node.iter().enumerate() {
        assert_eq!(n.ttl_drops, 0, "overlay node {i} dropped frames on TTL");
    }
    assert!(overlay.facts.converged, "overlay tables must reconverge");
    assert!(baseline.facts.converged, "baseline tables must reconverge");
    assert_eq!(
        overlay.facts.delivered, overlay.facts.expected_deliveries,
        "rerouting must deliver the full stream:\n{}",
        overlay.render()
    );

    let (overlay_gap, _, overlay_resume) = outage_gap_ns(&overlay, 2);
    let (baseline_gap, _, _) = outage_gap_ns(&baseline, 1);
    let ms = |ns: u64| ns as f64 / 1e6;

    kmsg_telemetry::log_info!("{:<28} {:>12} {:>12}", "metric", "overlay", "reconnect");
    kmsg_bench::rule(54);
    kmsg_telemetry::log_info!(
        "{:<28} {:>9.1} ms {:>9.1} ms",
        "outage delivery gap",
        ms(overlay_gap),
        ms(baseline_gap)
    );
    kmsg_telemetry::log_info!(
        "{:<28} {:>12} {:>12}",
        "deliveries",
        overlay.facts.delivered,
        baseline.facts.delivered
    );
    kmsg_telemetry::log_info!(
        "{:<28} {:>12} {:>12}",
        "expected",
        overlay.facts.expected_deliveries,
        baseline.facts.expected_deliveries
    );
    kmsg_telemetry::log_info!(
        "{:<28} {:>12} {:>12}",
        "dup drops (dedup)",
        overlay.facts.duplicates,
        baseline.facts.duplicates
    );
    kmsg_telemetry::log_info!(
        "{:<28} {:>12} {:>12}",
        "reconnects",
        overlay.reconnects,
        baseline.reconnects
    );

    // The tentpole claim, gated hard: routing around the partition beats
    // waiting out the reconnect.
    assert!(
        overlay_gap < baseline_gap,
        "overlay gap ({:.1} ms) must be strictly below the reconnect \
         baseline ({:.1} ms)",
        ms(overlay_gap),
        ms(baseline_gap)
    );

    // Causal-span decomposition of the overlay gap: where did it go?
    let events = overlay.recorder.events();
    let forest = SpanForest::build(&events);
    let fault_ns = PARTITION_FROM_MS * 1_000_000;
    let att = reroute_attribution(&forest, fault_ns, overlay_resume)
        .expect("a reroute span inside the outage window");
    let comp_sum: u64 = att.components.iter().map(|(_, ns)| ns).sum();
    assert_eq!(
        comp_sum, att.total_ns,
        "reroute attribution components must sum exactly to the window"
    );
    kmsg_telemetry::log_info!(
        "\nreroute attribution: {:.1} ms from cut to rerouted delivery",
        ms(att.total_ns)
    );
    kmsg_telemetry::log_info!("{:<28} {:>10}", "component", "ms");
    kmsg_bench::rule(41);
    let rec = &overlay.recorder;
    for (label, ns) in &att.components {
        kmsg_telemetry::log_info!("{label:<28} {:>10.2}", ms(*ns));
        rec.gauge(&format!("reroute/attribution/{label}_ms")).set(ms(*ns));
    }

    rec.gauge("reroute/overlay_gap_ms").set(ms(overlay_gap));
    rec.gauge("reroute/reconnect_gap_ms").set(ms(baseline_gap));
    rec.gauge("reroute/speedup")
        .set(baseline_gap as f64 / overlay_gap as f64);
    rec.gauge("reroute/reroutes").set(reroutes as f64);
    rec.gauge("reroute/overlay_delivered").set(overlay.facts.delivered as f64);
    rec.gauge("reroute/baseline_delivered").set(baseline.facts.delivered as f64);
    rec.publish_overflow_gauges();

    // Row file for the perf gate's baseline diff. Gap metrics are virtual
    // time — deterministic per seed — so any change is a real behaviour
    // change, not runner noise.
    let doc = Json::obj(vec![
        ("benchmark", Json::Str("reroute".to_string())),
        (
            "rows",
            Json::Arr(vec![
                Json::obj(vec![
                    ("name", Json::Str("overlay".to_string())),
                    ("gap_ms", Json::Num(ms(overlay_gap))),
                ]),
                Json::obj(vec![
                    ("name", Json::Str("reconnect".to_string())),
                    ("gap_ms", Json::Num(ms(baseline_gap))),
                ]),
            ]),
        ),
    ]);
    std::fs::write("BENCH_reroute.json", doc.render() + "\n").expect("write BENCH_reroute.json");

    kmsg_bench::write_trace_out(&args, rec);
    rec.write_snapshot("reroute.json").expect("write reroute.json");
    rec.write_jsonl("reroute.jsonl").expect("write reroute.jsonl");
    kmsg_telemetry::log_info!(
        "\nspeedup: {:.1}x — wrote BENCH_reroute.json, reroute.json and reroute.jsonl",
        baseline_gap as f64 / overlay_gap as f64
    );
}
